"""Indexed homomorphism kernel: domains, arc consistency, ordered search.

Deciding whether a homomorphism ``J1 -> J2`` exists is a constraint
satisfaction problem (Chandra-Merlin): the variables are the nulls of J1,
the values are the elements of J2, and every fact of J1 is a hyper-constraint
"this fact, with its nulls substituted, is a fact of J2".  The kernel applies
the standard CSP toolkit on top of the per-relation / per-(relation,
position, value) / per-value indexes that :class:`~repro.logic.instances.Instance`
and :class:`~repro.engine.builder.InstanceBuilder` maintain:

1. **Index-seeded candidates** -- the candidate target facts of a source fact
   are looked up from the most selective bound position (a constant or a
   pre-bound null), never found by scanning a relation.
2. **Per-null domains with AC-3 pruning** -- each null starts from the
   intersection of the values its occurrences can take, and generalized
   arc consistency is enforced before any search: a value survives only
   while some candidate target fact supports it.  An emptied domain fails
   the whole block without search.
3. **Most-constrained-first search** -- the search assigns nulls (not facts),
   always branching on the null with the smallest remaining domain, and
   re-propagates after each assignment (full look-ahead).
4. **Connected-component decomposition** -- facts are grouped by shared
   *free* (unfixed) nulls and each component is solved independently; ground
   and fully-fixed facts reduce to membership tests.

Callers pass an optional ``forbidden`` fact set: those target facts are
treated as absent.  This is how the core engine searches for a retraction
into "the instance minus the facts containing null x" without materializing
a new instance per candidate null.

The naive reference implementation (no indexes, no decomposition, no
propagation) is preserved in :func:`repro.engine.naive.find_homomorphism_naive`
for differential testing and for the speedup curves of
``benchmarks/bench_scaling_hom.py``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection, Iterable, Mapping
from collections.abc import Set as AbstractSet
from typing import Protocol

from repro import perf
from repro.engine.columnar import ColumnarInstance
from repro.engine.hom_kernel_columnar import block_homomorphism_columnar
from repro.logic.atoms import Atom
from repro.logic.values import is_null

_EMPTY_FORBIDDEN: frozenset[Atom] = frozenset()


class FactIndex(Protocol):
    """The read API the kernel needs from a target (Instance or builder)."""

    def facts_of(self, relation: str) -> Collection[Atom]:
        """Return the facts of *relation*."""
        ...

    def facts_with(self, relation: str, position: int, value: object) -> Collection[Atom]:
        """Return the facts of *relation* with *value* at *position*."""
        ...

    def __contains__(self, fact: Atom) -> bool: ...


class _Stats:
    """Locally accumulated counters, flushed to :mod:`repro.perf` once per call."""

    __slots__ = ("revisions", "wipeouts", "nodes", "backtracks")

    def __init__(self) -> None:
        self.revisions = 0
        self.wipeouts = 0
        self.nodes = 0
        self.backtracks = 0

    def flush(self) -> None:
        perf.incr("hom.kernel_calls")
        if self.revisions:
            perf.incr("hom.ac3_revisions", self.revisions)
        if self.wipeouts:
            perf.incr("hom.ac3_wipeouts", self.wipeouts)
        if self.nodes:
            perf.incr("hom.search_nodes", self.nodes)
        if self.backtracks:
            perf.incr("hom.backtracks", self.backtracks)


def _seed_candidates(
    fact: Atom,
    target: FactIndex,
    bound: Mapping[object, object],
    forbidden: AbstractSet[Atom],
) -> list[Atom]:
    """Candidate target facts for *fact*, seeded by the most selective bound position."""
    best: Collection[Atom] | None = None
    for pos, arg in enumerate(fact.args):
        value = bound.get(arg) if is_null(arg) else arg
        if value is None:
            continue
        candidates = target.facts_with(fact.relation, pos, value)
        if best is None or len(candidates) < len(best):
            best = candidates
            if not best:
                return []
    if best is None:
        best = target.facts_of(fact.relation)
    if forbidden:
        return [t for t in best if t not in forbidden]
    return list(best)


def _consistent(
    fact: Atom,
    candidate: Atom,
    bound: Mapping[object, object],
    domains: Mapping[object, AbstractSet[object]],
) -> bool:
    """Is *candidate* compatible with *fact* under current bounds and domains?"""
    if fact.relation != candidate.relation or fact.arity != candidate.arity:
        return False
    seen: dict[object, object] = {}
    for arg, value in zip(fact.args, candidate.args):
        if is_null(arg):
            fixed_value = bound.get(arg)
            if fixed_value is not None:
                if fixed_value != value:
                    return False
                continue
            previous = seen.get(arg)
            if previous is None:
                domain = domains.get(arg)
                if domain is not None and value not in domain:
                    return False
                seen[arg] = value
            elif previous != value:
                return False
        elif arg != value:
            return False
    return True


class _Component:
    """One connected component of a block: facts sharing free nulls."""

    __slots__ = ("facts", "free_nulls", "null_positions", "facts_of_null")

    def __init__(self, facts: list[Atom], bound: Mapping[object, object]) -> None:
        self.facts = facts
        # fact index -> list of (position, null) for free nulls, first occurrence only
        self.null_positions: list[list[tuple[int, object]]] = []
        self.facts_of_null: dict[object, list[int]] = {}
        free: set[object] = set()
        for index, fact in enumerate(facts):
            positions: list[tuple[int, object]] = []
            seen: set[object] = set()
            for pos, arg in enumerate(fact.args):
                if is_null(arg) and arg not in bound and arg not in seen:
                    seen.add(arg)
                    positions.append((pos, arg))
                    free.add(arg)
                    self.facts_of_null.setdefault(arg, []).append(index)
            self.null_positions.append(positions)
        self.free_nulls = free


def _propagate(
    component: _Component,
    candidates: list[list[Atom]],
    domains: dict[object, set[object]],
    bound: Mapping[object, object],
    queue: Iterable[int],
    stats: _Stats,
) -> bool:
    """AC-3 style propagation; return False on a domain or candidate wipeout."""
    pending: deque[int] = deque(queue)
    queued = set(pending)
    while pending:
        index = pending.popleft()
        queued.discard(index)
        stats.revisions += 1
        fact = component.facts[index]
        filtered = [
            t for t in candidates[index] if _consistent(fact, t, bound, domains)
        ]
        candidates[index] = filtered
        if not filtered:
            stats.wipeouts += 1
            return False
        for pos, null in component.null_positions[index]:
            supported = {t.args[pos] for t in filtered}
            domain = domains[null]
            if supported >= domain:
                continue
            shrunk = domain & supported
            if not shrunk:
                stats.wipeouts += 1
                return False
            domains[null] = shrunk
            for other in component.facts_of_null[null]:
                if other != index and other not in queued:
                    pending.append(other)
                    queued.add(other)
    return True


def _search(
    component: _Component,
    candidates: list[list[Atom]],
    domains: dict[object, set[object]],
    bound: dict[object, object],
    stats: _Stats,
) -> dict[object, object] | None:
    """Most-constrained-null backtracking with full look-ahead propagation."""
    stats.nodes += 1
    undecided = [n for n in component.free_nulls if n not in bound]
    if not undecided:
        return dict(bound)
    null = min(undecided, key=lambda n: (len(domains[n]), repr(n)))
    for value in sorted(domains[null], key=repr):
        child_bound = dict(bound)
        child_bound[null] = value
        child_domains = {n: set(d) for n, d in domains.items()}
        child_domains[null] = {value}
        child_candidates = [list(c) for c in candidates]
        if _propagate(
            component, child_candidates, child_domains, child_bound,
            component.facts_of_null[null], stats,
        ):
            # Propagation can pin further nulls to singleton domains; adopt them.
            for n, domain in child_domains.items():
                if n not in child_bound and len(domain) == 1:
                    child_bound[n] = next(iter(domain))
            result = _search(component, child_candidates, child_domains, child_bound, stats)
            if result is not None:
                return result
        stats.backtracks += 1
    return None


def _solve_component(
    component: _Component,
    target: FactIndex,
    fixed: Mapping[object, object],
    forbidden: AbstractSet[Atom],
    stats: _Stats,
) -> dict[object, object] | None:
    """Solve one component: domains, AC-3, then most-constrained search."""
    domains: dict[object, set[object]] = {}
    candidates: list[list[Atom]] = []
    for index, fact in enumerate(component.facts):
        cands = _seed_candidates(fact, target, fixed, forbidden)
        candidates.append(cands)
        if not cands:
            stats.wipeouts += 1
            return None
        for pos, null in component.null_positions[index]:
            occurrence = {t.args[pos] for t in cands}
            domain = domains.get(null)
            domains[null] = occurrence if domain is None else domain & occurrence
            if not domains[null]:
                stats.wipeouts += 1
                return None
    bound: dict[object, object] = dict(fixed)
    if not _propagate(
        component, candidates, domains, bound, range(len(component.facts)), stats
    ):
        return None
    for null, domain in domains.items():
        if null not in bound and len(domain) == 1:
            bound[null] = next(iter(domain))
    solution = _search(component, candidates, domains, bound, stats)
    if solution is None:
        return None
    return {n: solution[n] for n in component.free_nulls}


def _components(
    facts: Iterable[Atom], fixed: Mapping[object, object]
) -> tuple[list[list[Atom]], list[Atom]]:
    """Split facts into components connected by free nulls, plus the rest.

    The second element collects facts with no free null (ground facts and
    facts whose nulls are all pre-bound): they reduce to membership tests.
    """
    grounded: list[Atom] = []
    fact_free: list[tuple[Atom, list[object]]] = []
    anchor_of: dict[object, int] = {}
    parent: list[int] = []

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for fact in facts:
        free = [a for a in fact.nulls() if a not in fixed]
        if not free:
            grounded.append(fact)
            continue
        index = len(fact_free)
        fact_free.append((fact, free))
        parent.append(index)
        for null in free:
            anchor = anchor_of.setdefault(null, index)
            if anchor != index:
                root_a, root_b = find(anchor), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
    groups: dict[int, list[Atom]] = {}
    for index, (fact, __) in enumerate(fact_free):
        groups.setdefault(find(index), []).append(fact)
    return list(groups.values()), grounded


def block_homomorphism(
    facts: Iterable[Atom],
    target: FactIndex,
    fixed: Mapping[object, object] | None = None,
    forbidden: AbstractSet[Atom] = _EMPTY_FORBIDDEN,
) -> dict[object, object] | None:
    """Map the free nulls of *facts* so every fact lands in *target*, or None.

    *fixed* pre-binds some nulls (the bindings are honored but not returned);
    facts in *forbidden* count as absent from the target.  The returned dict
    binds exactly the free nulls of *facts*.

    Dispatches by target type: a :class:`~repro.engine.columnar.
    ColumnarInstance` target runs on the integer-domain kernel of
    :mod:`repro.engine.hom_kernel_columnar` (no atom decode on the hot
    path); everything else runs the generic kernel below over the
    ``FactIndex`` protocol.
    """
    if isinstance(target, ColumnarInstance):
        return block_homomorphism_columnar(facts, target, fixed, forbidden)
    return block_homomorphism_generic(facts, target, fixed, forbidden)


def block_homomorphism_generic(
    facts: Iterable[Atom],
    target: FactIndex,
    fixed: Mapping[object, object] | None = None,
    forbidden: AbstractSet[Atom] = _EMPTY_FORBIDDEN,
) -> dict[object, object] | None:
    """The generic (decode-through) kernel over any ``FactIndex`` target.

    Kept callable directly so the benchmarks can compare the id-space kernel
    against decoding columnar rows through ``facts_of`` / ``facts_with``.
    """
    fixed = fixed or {}
    stats = _Stats()
    result: dict[object, object] = {}
    try:
        components, grounded = _components(facts, fixed)
        fixed_map = dict(fixed) if fixed else None
        for fact in grounded:
            image = fact.rename_values(fixed_map) if fixed_map else fact
            if image not in target or image in forbidden:
                return None
        for component_facts in components:
            component = _Component(component_facts, fixed)
            solution = _solve_component(component, target, fixed, forbidden, stats)
            if solution is None:
                return None
            result.update(solution)
    finally:
        stats.flush()
    return result


def find_homomorphism_indexed(
    source: Iterable[Atom],
    target: FactIndex,
    fixed: Mapping[object, object] | None = None,
) -> dict[object, object] | None:
    """Find a homomorphism from the facts of *source* into *target*, or None.

    The returned dict maps every null of *source* to a value of *target* and
    includes the *fixed* pre-bindings, matching the contract of
    :func:`repro.engine.homomorphism.find_homomorphism`.
    """
    fixed = dict(fixed) if fixed else {}
    mapping = block_homomorphism(source, target, fixed)
    if mapping is None:
        return None
    mapping.update(fixed)
    return mapping


__all__ = [
    "FactIndex",
    "block_homomorphism",
    "block_homomorphism_generic",
    "find_homomorphism_indexed",
]
