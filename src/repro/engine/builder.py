"""Mutable instance construction with incrementally maintained indexes.

:class:`Instance` is immutable: every ``union`` re-indexes all facts, so a
fixpoint loop that grows a target one trigger at a time pays quadratic index
maintenance.  :class:`InstanceBuilder` is the mutable companion the chase
engines use instead: it maintains the same three indexes -- per-relation,
per-(relation, position, value), and the per-value reverse index -- under
insertion (and deletion, for the egd chase's merge rewrites and the core
engine's retractions) in amortized constant time per fact, and freezes into
an :class:`Instance` in one linear pass without re-indexing.

A builder is duck-type compatible with the read API the matching and
homomorphism engines use (``facts_of`` / ``facts_with`` / iteration /
``__contains__`` / ``__len__``), so semi-naive chase rounds can match
directly against the partially built instance.  Index buckets are
insertion-ordered dicts used as sets, making both ``add`` and ``discard``
O(arity); the collections returned by the lookup methods are *live views*:
callers must not mutate them and must not hold them across mutations (the
immutable :class:`Instance` returned by :meth:`freeze` is the safe
hand-off).
"""

from __future__ import annotations

from typing import Collection, Iterable, Iterator

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Constant

_EMPTY: tuple = ()


class InstanceBuilder:
    """A mutable set of facts with incrementally maintained lookup indexes."""

    __slots__ = ("_facts", "_by_relation", "_by_position", "_by_value")

    def __init__(self, facts: "Instance | Iterable[Atom]" = ()):
        self._facts: set[Atom] = set()
        # Buckets are insertion-ordered dicts used as sets: O(1) insert and
        # delete, deterministic iteration order.
        self._by_relation: dict[str, dict[Atom, None]] = {}
        self._by_position: dict[tuple, dict[Atom, None]] = {}
        self._by_value: dict[object, set[Atom]] = {}
        self.add_all(facts)

    # ---------------------------------------------------------------- mutation

    def add(self, fact: Atom) -> bool:
        """Insert *fact*; return True if it was new."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        bucket = self._by_relation.get(fact.relation)
        if bucket is None:
            self._by_relation[fact.relation] = {fact: None}
        else:
            bucket[fact] = None
        by_position = self._by_position
        by_value = self._by_value
        for pos, value in enumerate(fact.args):
            key = (fact.relation, pos, value)
            slot = by_position.get(key)
            if slot is None:
                by_position[key] = {fact: None}
            else:
                slot[fact] = None
            holder = by_value.get(value)
            if holder is None:
                by_value[value] = {fact}
            else:
                holder.add(fact)
        return True

    def add_all(self, facts: "Instance | Iterable[Atom]") -> list[Atom]:
        """Insert all *facts*; return the ones that were new (the delta)."""
        add = self.add
        return [fact for fact in facts if add(fact)]

    def discard(self, fact: Atom) -> bool:
        """Remove *fact* if present; return True if it was removed.

        Used by the egd chase to rewrite merged facts in place.  O(arity).
        """
        if fact not in self._facts:
            return False
        self._facts.remove(fact)
        bucket = self._by_relation[fact.relation]
        del bucket[fact]
        if not bucket:
            del self._by_relation[fact.relation]
        for pos, value in enumerate(fact.args):
            key = (fact.relation, pos, value)
            slot = self._by_position[key]
            del slot[fact]
            if not slot:
                del self._by_position[key]
            holder = self._by_value.get(value)
            if holder is not None:
                holder.discard(fact)
                if not holder:
                    del self._by_value[value]
        return True

    def copy(self) -> "InstanceBuilder":
        """Return an independent builder with the same facts and indexes.

        One linear pass over the index buckets (no re-indexing and no
        re-hashing of facts) -- this is what makes the incremental IMPLIES
        sweep cheap: extending a parent pattern's chase state starts from a
        copy of its builder instead of rebuilding indexes from the fact set.
        """
        clone = InstanceBuilder.__new__(InstanceBuilder)
        clone._facts = set(self._facts)
        clone._by_relation = {rel: dict(bucket) for rel, bucket in self._by_relation.items()}
        clone._by_position = {key: dict(slot) for key, slot in self._by_position.items()}
        clone._by_value = {val: set(holder) for val, holder in self._by_value.items()}
        return clone

    # ----------------------------------------------------------------- lookups

    def facts_of(self, relation: str) -> Collection[Atom]:
        """Return the facts of *relation* (live view; do not mutate)."""
        bucket = self._by_relation.get(relation)
        return bucket.keys() if bucket is not None else _EMPTY

    def facts_with(self, relation: str, position: int, value: object) -> Collection[Atom]:
        """Return the facts of *relation* with *value* at *position* (live view)."""
        slot = self._by_position.get((relation, position, value))
        return slot.keys() if slot is not None else _EMPTY

    def facts_containing(self, value: object) -> frozenset[Atom]:
        """Return the facts with *value* as a (top-level) argument."""
        holder = self._by_value.get(value)
        return frozenset(holder) if holder else frozenset()

    def relations(self) -> frozenset[str]:
        return frozenset(self._by_relation)

    def active_domain(self) -> frozenset:
        return frozenset(self._by_value)

    def nulls(self) -> frozenset:
        return frozenset(v for v in self._by_value if not isinstance(v, Constant))

    def constants(self) -> frozenset:
        return frozenset(v for v in self._by_value if isinstance(v, Constant))

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __repr__(self) -> str:
        return f"InstanceBuilder({len(self._facts)} facts)"

    # ------------------------------------------------------------------ freeze

    def freeze(self) -> Instance:
        """Return an immutable :class:`Instance` of the current facts.

        One linear pass (tuplifying the index buckets); no re-indexing.  The
        builder remains usable afterwards -- the frozen instance copies
        nothing from future mutations.
        """
        nulls = []
        constants = []
        for value in self._by_value:
            if isinstance(value, Constant):
                constants.append(value)
            else:
                nulls.append(value)
        return Instance._from_indexes(
            frozenset(self._facts),
            {rel: tuple(fs) for rel, fs in self._by_relation.items()},
            {key: tuple(fs) for key, fs in self._by_position.items()},
            {val: tuple(fs) for val, fs in self._by_value.items()},
            frozenset(nulls),
            frozenset(constants),
        )


__all__ = ["InstanceBuilder"]
