"""Core computation by iterative f-block retraction.

The core of an instance J is the smallest subinstance of J homomorphically
equivalent to J; it is unique up to isomorphism (Section 2, citing Hell &
Nesetril).  The algorithm repeatedly looks for a null that can be
*eliminated*: null ``x`` is eliminable when the f-block of ``x`` has a
homomorphism into the subinstance of J consisting of the facts that do not
contain ``x``.  Applying such a homomorphism (identity outside the block)
yields a proper retract of J without ``x``; when no null is eliminable, J is
a core.

Correctness of the stopping condition: if J is not a core, it has a proper
idempotent retract ``r``.  ``r`` moves some null ``x`` (otherwise it is the
identity), and idempotence puts ``x`` outside the image of ``r``, so the
restriction of ``r`` to the f-block of ``x`` is exactly an eliminating
homomorphism.  Conversely each elimination strictly decreases the number of
nulls, so the loop terminates after at most ``|nulls(J)|`` rounds.

Note that merely searching for a homomorphism that maps ``x`` to another
value would be wrong: such a homomorphism can be an automorphism (e.g.
rotating the nulls of a symmetric cycle), whose application does not shrink
the instance.

Engine structure (the seed loop -- restricted instance per candidate null,
restart per elimination -- is preserved as
:func:`repro.engine.naive.core_naive` for differential testing):

- **One mutable target.**  The instance lives in an
  :class:`~repro.engine.builder.InstanceBuilder`; an elimination *discards*
  the block facts that left the image instead of rebuilding an immutable
  instance, and "J minus the facts containing x" is expressed as a
  ``forbidden`` fact set (from the per-value reverse index) passed to the
  homomorphism kernel, never materialized.
- **Block worklist.**  Blocks are processed independently.  An elimination
  only removes facts of the processed block (every image fact already exists
  in J), so other blocks are unaffected; the surviving facts are split into
  connected components and re-enqueued.  A block with no eliminable null is
  *rigid* and never revisited: eliminating homomorphisms only lose candidate
  facts as J shrinks, so rigidity is monotone under eliminations.
- **Block-local folding is context-free and memoized.**  A homomorphism from
  block B into ``B minus facts(x)`` is in particular one into
  ``J minus facts(x)``, so a local fold is a valid elimination in any
  enclosing instance.  Folds are memoized process-wide in an LRU keyed by a
  *canonical labeling* of the block (nulls renamed along degree-profile
  groups), so the isomorphic blocks that chase outputs are full of fold
  once -- across blocks and across core calls.  Overly symmetric blocks
  (too many tie-break permutations) skip the cache and fold directly.
- **Isomorphic duplicate blocks drop wholesale.**  If B2 is isomorphic to a
  disjoint block B1 of the same instance, the isomorphism maps B2 into
  ``J minus facts(x)`` for every null x of B2 (distinct blocks share no
  nulls), so all of B2 is eliminated by one retraction.  Duplicates are
  detected by equal canonical forms.
- **Parallel local folding** (``core(instance, parallel=N)``): uncached
  block folds are dispatched to a fork-based process pool (mirroring the
  IMPLIES pattern sweep); results land in the shared LRU.  The canonical
  blocks are published to the workers once through a
  :mod:`repro.cache.shm` shared-memory segment (workers receive integer
  indexes, not pickled fact tuples), with the pre-shm pickling path kept
  as a fallback.  A fold is a deterministic function of the canonical
  form, so parallel and serial runs return identical cores.
- **Persistent fold tier** (:mod:`repro.cache`, enabled by
  ``REPRO_CACHE_DIR`` / ``repro.cache.configure``): canonical blocks are
  already process-independent (nulls renamed to ``Null(("#", i))``), so a
  memo miss consults an on-disk store keyed by the block's content
  fingerprint before folding, and computed folds are written through.
  Disabled by default; the in-memory LRU stays the only tier on hot paths.

**Backends** (``core(instance, backend=...)``): besides the tuple engine
above, :class:`_ColumnarCore` runs the same worklist in *id-space* over a
:class:`~repro.engine.columnar.ColumnarInstance` -- f-blocks are connected
components of a union-find over integer value ids, canonical labelings
permute null *ids* and compare memoized repr strings, eliminating
homomorphisms go through :func:`~repro.engine.hom_kernel_columnar.
solve_encoded` with per-group forbidden row sets, and eliminations are
tombstone row discards.  Canonical-block fingerprints are computed from the
id tuples via :func:`~repro.cache.fingerprint.encode_atom_parts` /
:func:`~repro.cache.fingerprint.fingerprint_encoded_sequence` -- byte-equal
to the tuple path's ``fingerprint_fact_sequence``, so both engines share the
persistent ``SPACE_FOLD`` tier (payloads stay canonical atom tuples; the
columnar engine decodes them only on the cold disk path).  ``backend="sql"``
additionally pushes each candidate elimination down to one SELECT join
(:func:`repro.engine.sql_backend.sql_core`); ``backend="auto"`` resolves
through :func:`repro.engine.dispatch.choose_core_backend`.  All backends
return the same core up to isomorphism (exactly: same fact count, same
constants, isomorphic null structure); the fold each engine picks for a
symmetric block may differ, which is why cross-engine agreement is stated
up to isomorphism.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from typing import Iterable, Sequence

from repro import perf
from repro.cache import SPACE_FOLD, disk_get, disk_put, get_store
from repro.cache import shm as cache_shm
from repro.cache.fingerprint import (
    encode_atom_parts,
    encode_canonical_null,
    encode_value,
    fingerprint_encoded_sequence,
    fingerprint_fact_sequence,
)
from repro.engine.builder import InstanceBuilder
from repro.engine.columnar import ColumnarInstance, _RelGroup
from repro.engine.gaifman import fact_blocks
from repro.engine.hom_kernel import block_homomorphism
from repro.engine.hom_kernel_columnar import (
    _CONST as _ID_CONST,
    _VAR as _ID_VAR,
    EncodedFact,
    solve_encoded,
)
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Null, is_null

#: One stored fact of a columnar store: (fact table, row index).
_Row = tuple[_RelGroup, int]

#: Maximum number of tie-break permutations tried when canonically labeling
#: the nulls of a block; blocks more symmetric than this skip the fold cache.
_CANON_PERMUTATION_LIMIT = 120

#: Process-wide LRU of block-local folds: canonical fact tuple -> folded
#: canonical fact tuple.  Sound because a fold is context-free (see module
#: docstring) and deterministic given the canonical form.
_FOLD_CACHE: OrderedDict[tuple[Atom, ...], tuple[Atom, ...]] = OrderedDict()
_FOLD_CACHE_MAX = 1024

#: The columnar twin of ``_FOLD_CACHE``: content fingerprint of the
#: canonical block -> indexes (into the canonical row order) of the facts
#: that survive the local fold.  Keyed by fingerprint rather than repr
#: strings so adversarial names that render alike cannot alias entries.
_COLUMNAR_FOLD_CACHE: OrderedDict[str, tuple[int, ...]] = OrderedDict()


def clear_fold_cache() -> None:
    """Empty the process-wide block-fold caches (mainly for tests)."""
    _FOLD_CACHE.clear()
    _COLUMNAR_FOLD_CACHE.clear()


def _store_columnar_fold(fingerprint: str, surviving: tuple[int, ...]) -> None:
    _COLUMNAR_FOLD_CACHE[fingerprint] = surviving
    _COLUMNAR_FOLD_CACHE.move_to_end(fingerprint)
    while len(_COLUMNAR_FOLD_CACHE) > _FOLD_CACHE_MAX:
        _COLUMNAR_FOLD_CACHE.popitem(last=False)


def _store_fold(key: tuple[Atom, ...], folded: tuple[Atom, ...]) -> None:
    _FOLD_CACHE[key] = folded
    _FOLD_CACHE.move_to_end(key)
    while len(_FOLD_CACHE) > _FOLD_CACHE_MAX:
        _FOLD_CACHE.popitem(last=False)


def _has_nulls(facts: Iterable[Atom]) -> bool:
    return any(is_null(arg) for fact in facts for arg in fact.args)


def _block_nulls(facts: Iterable[Atom]) -> list:
    """The nulls of a block, sorted by repr for deterministic elimination order."""
    return sorted({null for fact in facts for null in fact.nulls()}, key=repr)


def _null_components(facts: Sequence[Atom]) -> list[list[Atom]]:
    """Split facts into connected components linked by shared (top-level) nulls."""
    anchor_of: dict = {}
    parent = list(range(len(facts)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for index, fact in enumerate(facts):
        for null in fact.nulls():
            anchor = anchor_of.setdefault(null, index)
            if anchor != index:
                root_a, root_b = find(anchor), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
    groups: dict[int, list[Atom]] = {}
    for index, fact in enumerate(facts):
        groups.setdefault(find(index), []).append(fact)
    return list(groups.values())


def _eliminating_hom(block: Sequence[Atom], target) -> dict | None:
    """Find a retraction of *block* into *target* eliminating one of its nulls.

    Tries each null x of the block in repr order; "target minus the facts
    containing x" is expressed by passing those facts (looked up in the
    per-value reverse index) to the kernel as a forbidden set.  The nulls of
    a block occur in no other block, so the lookup returns block facts only.
    """
    for null in _block_nulls(block):
        forbidden = frozenset(target.facts_containing(null))
        mapping = block_homomorphism(block, target, None, forbidden)
        if mapping is not None:
            return mapping
    return None


def _process_blocks(builder: InstanceBuilder, pending: deque[list[Atom]]) -> None:
    """Drain the block worklist, applying eliminations to *builder* in place.

    Every image fact of an eliminating homomorphism already exists in the
    target, so applying it means discarding the block facts that left the
    image; the surviving facts may disconnect and are re-enqueued as fresh
    components.  Blocks with no eliminable null are rigid and leave the
    queue permanently (rigidity is monotone as the target shrinks).
    """
    while pending:
        block = pending.popleft()
        mapping = _eliminating_hom(block, builder)
        if mapping is None:
            perf.incr("core.rigid_blocks")
            continue
        perf.incr("core.eliminations")
        images = {fact.rename_values(mapping) for fact in block}
        survivors: list[Atom] = []
        for fact in block:
            if fact in images:
                survivors.append(fact)
            else:
                builder.discard(fact)
        if survivors:
            pending.extend(_null_components(survivors))


def _fold_facts(facts: Iterable[Atom]) -> tuple[Atom, ...]:
    """Fold a block against itself until no null is locally eliminable.

    A pure, deterministic function of the fact set (it is the fold-cache
    value computation and the parallel worker); returns repr-sorted facts.
    """
    builder = InstanceBuilder(facts)
    pending: deque[list[Atom]] = deque(_null_components(list(builder)))
    _process_blocks(builder, pending)
    return tuple(sorted(builder, key=repr))


def _canonical_block(facts: Sequence[Atom]) -> tuple[tuple[Atom, ...], dict] | None:
    """Canonically label the nulls of a block, or None if too symmetric.

    Nulls are grouped by degree profile (multiset of (relation, position)
    occurrences -- an isomorphism invariant) and renamed to ``Null(("#",
    i))``; ties within a profile group are broken by trying every
    within-group permutation and keeping the lexicographically least fact
    tuple, so isomorphic blocks get identical canonical forms.  Returns the
    canonical fact tuple and the null -> canonical-null labeling, or None
    when the tie groups would need more than ``_CANON_PERMUTATION_LIMIT``
    permutations.
    """
    profiles: dict = {}
    for fact in facts:
        for pos, arg in enumerate(fact.args):
            if is_null(arg):
                profile = profiles.setdefault(arg, {})
                key = (fact.relation, pos)
                profile[key] = profile.get(key, 0) + 1
    groups: dict = {}
    for null, profile in profiles.items():
        groups.setdefault(tuple(sorted(profile.items())), []).append(null)
    total = 1
    for members in groups.values():
        for i in range(2, len(members) + 1):
            total *= i
            if total > _CANON_PERMUTATION_LIMIT:
                return None
    ordered_groups = [sorted(members, key=repr) for __, members in sorted(groups.items())]
    best: tuple[Atom, ...] | None = None
    best_key: list[str] = []
    best_labeling: dict = {}
    for orderings in itertools.product(
        *(itertools.permutations(members) for members in ordered_groups)
    ):
        labeling: dict = {}
        for members in orderings:
            for null in members:
                labeling[null] = Null(("#", len(labeling)))
        relabeled = tuple(sorted((f.rename_values(labeling) for f in facts), key=repr))
        relabeled_key = [repr(f) for f in relabeled]
        if best is None or relabeled_key < best_key:
            best = relabeled
            best_key = relabeled_key
            best_labeling = labeling
    assert best is not None
    return best, best_labeling


def _disk_fold_get(key: tuple[Atom, ...]) -> tuple[Atom, ...] | None:
    """Look a canonical-block fold up in the persistent tier."""
    if get_store() is None:
        return None
    payload = disk_get(SPACE_FOLD, fingerprint_fact_sequence(key))
    if not isinstance(payload, tuple) or not all(
        isinstance(fact, Atom) for fact in payload
    ):
        return None
    return payload


def _disk_fold_put(key: tuple[Atom, ...], folded: tuple[Atom, ...]) -> None:
    """Write one computed fold through to the persistent tier."""
    if get_store() is None:
        return
    disk_put(SPACE_FOLD, fingerprint_fact_sequence(key), folded)


def _fold_block(
    block: Sequence[Atom], canon: tuple[tuple[Atom, ...], dict] | None
) -> tuple[Atom, ...]:
    """Fold one block locally, through the canonical-form cache when possible."""
    if canon is None:
        return _fold_facts(block)
    key, labeling = canon
    cached = _FOLD_CACHE.get(key)
    if cached is not None:
        _FOLD_CACHE.move_to_end(key)
        perf.incr("core.memo_hits")
    else:
        perf.incr("core.memo_misses")
        cached = _disk_fold_get(key)
        if cached is None:
            cached = _fold_facts(key)
            _disk_fold_put(key, cached)
        _store_fold(key, cached)
    inverse = {label: null for null, label in labeling.items()}
    return tuple(fact.rename_values(inverse) for fact in cached)


#: Canonical blocks published to prefold workers (shared-memory segment, or
#: this fork-inherited global as the fallback); tasks are plain indexes.
_PREFOLD_KEYS: tuple[tuple[Atom, ...], ...] | None = None
_PREFOLD_HANDLE: "cache_shm.ShmHandle | None" = None


def _prefold_worker(index: int) -> tuple[Atom, ...]:
    if _PREFOLD_HANDLE is not None:
        keys = cache_shm.attach(_PREFOLD_HANDLE)
        assert isinstance(keys, tuple)
    else:
        assert _PREFOLD_KEYS is not None
        keys = _PREFOLD_KEYS
    return _fold_facts(keys[index])


def _prefold_parallel(keys: list[tuple[Atom, ...]], workers: int) -> None:
    """Fold uncached canonical blocks across a fork-based process pool."""
    import concurrent.futures
    import multiprocessing

    global _PREFOLD_KEYS, _PREFOLD_HANDLE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return
    perf.incr("core.parallel_blocks", len(keys))
    spec = tuple(keys)
    handle = cache_shm.publish(spec)
    if handle is not None:
        _PREFOLD_HANDLE = handle
    else:
        _PREFOLD_KEYS = spec
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            for key, folded in zip(keys, pool.map(_prefold_worker, range(len(keys)))):
                _store_fold(key, folded)
                _disk_fold_put(key, folded)
    finally:
        _PREFOLD_KEYS = None
        _PREFOLD_HANDLE = None
        cache_shm.unlink(handle)


class _ColumnarCore:
    """One id-space core computation: per-call caches over a shared ValueTable.

    Every method works on ``(_RelGroup, row)`` pairs; interned value objects
    are touched only through the three memoized per-id accessors (null
    classification, repr, fingerprint encoding) and when a cold disk fold is
    decoded -- no :class:`Atom` is materialized on the worklist path.  The
    fold helper builds private mini stores over the *same* value table, so
    one instance of this class serves the outer store and every fold store.
    """

    __slots__ = ("values", "_null_flags", "_reprs", "_encodings")

    def __init__(self, values) -> None:
        self.values = values
        self._null_flags: list[bool] = []
        self._reprs: dict[int, str] = {}
        self._encodings: dict[int, bytes] = {}

    # ------------------------------------------------------ per-id accessors

    def is_null_vid(self, vid: int) -> bool:
        flags = self._null_flags
        value = self.values.value
        while len(flags) <= vid:
            flags.append(is_null(value(len(flags))))
        return flags[vid]

    def vid_repr(self, vid: int) -> str:
        text = self._reprs.get(vid)
        if text is None:
            text = self._reprs[vid] = repr(self.values.value(vid))
        return text

    def vid_encoding(self, vid: int) -> bytes:
        encoding = self._encodings.get(vid)
        if encoding is None:
            encoding = self._encodings[vid] = encode_value(self.values.value(vid))
        return encoding

    # ------------------------------------------------------------- structure

    def null_components(self, rows: Sequence[_Row]) -> list[list[_Row]]:
        """Split rows into connected components linked by shared null ids."""
        is_null_vid = self.is_null_vid
        anchor_of: dict[int, int] = {}
        parent = list(range(len(rows)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        for index, (group, row) in enumerate(rows):
            for column in group.columns:
                vid = column[row]
                if not is_null_vid(vid):
                    continue
                anchor = anchor_of.setdefault(vid, index)
                if anchor != index:
                    root_a, root_b = find(anchor), find(index)
                    if root_a != root_b:
                        parent[root_b] = root_a
        components: dict[int, list[_Row]] = {}
        for index, entry in enumerate(rows):
            components.setdefault(find(index), []).append(entry)
        return list(components.values())

    def null_blocks(self, store: ColumnarInstance) -> list[list[_Row]]:
        """The f-blocks of *store* that contain a null (ground rows stay put)."""
        is_null_vid = self.is_null_vid
        rows: list[_Row] = [
            (group, row)
            for groups in store._groups.values()
            for group in groups
            for row in group.live_rows()
        ]
        blocks: list[list[_Row]] = []
        for component in self.null_components(rows):
            group, row = component[0]
            if len(component) > 1 or any(
                is_null_vid(column[row]) for column in group.columns
            ):
                blocks.append(component)
        return blocks

    # -------------------------------------------------------- canonical form

    def canonical_block(
        self, block: Sequence[_Row]
    ) -> tuple[list[_Row], dict[int, int]] | None:
        """Canonically label the null ids of a block, or None if too symmetric.

        Mirrors :func:`_canonical_block` id-for-object: nulls group by degree
        profile, ties try every within-group permutation, and the winning
        ordering is the lexicographically least repr-string tuple (rendering
        ``Null(("#", i))`` reprs from the canonical index directly).  Returns
        the block rows in canonical order plus the null id -> canonical
        index labeling.
        """
        is_null_vid = self.is_null_vid
        profiles: dict[int, dict[tuple[str, int], int]] = {}
        for group, row in block:
            for pos, column in enumerate(group.columns):
                vid = column[row]
                if is_null_vid(vid):
                    profile = profiles.setdefault(vid, {})
                    key = (group.relation, pos)
                    profile[key] = profile.get(key, 0) + 1
        groups: dict[tuple, list[int]] = {}
        for vid, profile in profiles.items():
            groups.setdefault(tuple(sorted(profile.items())), []).append(vid)
        total = 1
        for members in groups.values():
            for i in range(2, len(members) + 1):
                total *= i
                if total > _CANON_PERMUTATION_LIMIT:
                    return None
        vid_repr = self.vid_repr
        ordered_groups = [
            sorted(members, key=vid_repr) for __, members in sorted(groups.items())
        ]
        best_key: tuple[str, ...] | None = None
        best_rows: list[_Row] = []
        best_labeling: dict[int, int] = {}
        for orderings in itertools.product(
            *(itertools.permutations(members) for members in ordered_groups)
        ):
            labeling: dict[int, int] = {}
            for members in orderings:
                for vid in members:
                    labeling[vid] = len(labeling)
            entries: list[tuple[str, _Row]] = []
            for group, row in block:
                parts: list[str] = []
                for column in group.columns:
                    vid = column[row]
                    canonical = labeling.get(vid)
                    parts.append(
                        f"_{('#', canonical)}" if canonical is not None
                        else vid_repr(vid)
                    )
                entries.append((f"{group.relation}({', '.join(parts)})", (group, row)))
            entries.sort(key=lambda entry: entry[0])
            key = tuple(entry[0] for entry in entries)
            if best_key is None or key < best_key:
                best_key = key
                best_rows = [entry[1] for entry in entries]
                best_labeling = labeling
        assert best_key is not None
        return best_rows, best_labeling

    def block_fingerprint(
        self, canon_rows: Sequence[_Row], labeling: dict[int, int]
    ) -> str:
        """Content fingerprint of the canonical block, from id tuples.

        Byte-equal to ``fingerprint_fact_sequence`` of the decoded canonical
        atoms, so the persistent fold tier is shared with the tuple engine.
        """
        vid_encoding = self.vid_encoding
        encodings: list[bytes] = []
        for group, row in canon_rows:
            arg_encodings: list[bytes] = []
            for column in group.columns:
                vid = column[row]
                canonical = labeling.get(vid)
                arg_encodings.append(
                    encode_canonical_null(canonical) if canonical is not None
                    else vid_encoding(vid)
                )
            encodings.append(encode_atom_parts(group.relation, arg_encodings))
        return fingerprint_encoded_sequence(encodings)

    def canonical_atoms(
        self, canon_rows: Sequence[_Row], labeling: dict[int, int]
    ) -> tuple[Atom, ...]:
        """Decode the canonical block (cold path: disk-tier payloads only)."""
        value = self.values.value
        out: list[Atom] = []
        for group, row in canon_rows:
            args: list[object] = []
            for column in group.columns:
                vid = column[row]
                canonical = labeling.get(vid)
                args.append(
                    Null(("#", canonical)) if canonical is not None else value(vid)
                )
            out.append(Atom(group.relation, tuple(args)))
        return tuple(out)

    # ------------------------------------------------------------ elimination

    def encode_block(self, block: Sequence[_Row]) -> list[EncodedFact]:
        """Encode block rows for the id-space kernel: null ids are the vars."""
        is_null_vid = self.is_null_vid
        return [
            EncodedFact(
                group,
                tuple(
                    (_ID_VAR, vid) if is_null_vid(vid := column[row])
                    else (_ID_CONST, vid)
                    for column in group.columns
                ),
            )
            for group, row in block
        ]

    def block_null_vids(self, block: Sequence[_Row]) -> list[int]:
        """The null ids of a block, repr-sorted (same order the tuple engine
        tries its elimination candidates in)."""
        is_null_vid = self.is_null_vid
        vids = {
            vid
            for group, row in block
            for column in group.columns
            if is_null_vid(vid := column[row])
        }
        return sorted(vids, key=self.vid_repr)

    def rows_containing(
        self, store: ColumnarInstance, vid: int
    ) -> dict[_RelGroup, set[int]]:
        """Per-group row sets in which value id *vid* occurs (forbidden sets)."""
        forbidden: dict[_RelGroup, set[int]] = {}
        for groups in store._groups.values():
            for group in groups:
                rows: set[int] | None = None
                for position_index in group.index:
                    bucket = position_index.get(vid)
                    if bucket:
                        if rows is None:
                            rows = set(bucket)
                        else:
                            rows.update(bucket)
                if rows:
                    forbidden[group] = rows
        return forbidden

    def eliminating_hom(
        self, store: ColumnarInstance, block: Sequence[_Row]
    ) -> dict[object, int] | None:
        """Id-space twin of :func:`_eliminating_hom`: retraction dropping a null."""
        encoded = self.encode_block(block)
        for vid in self.block_null_vids(block):
            mapping = solve_encoded(encoded, self.rows_containing(store, vid))
            if mapping is not None:
                return mapping
        return None

    def process_blocks(
        self, store: ColumnarInstance, pending: "deque[list[_Row]]"
    ) -> None:
        """Id-space twin of :func:`_process_blocks`: eliminations tombstone rows."""
        while pending:
            block = pending.popleft()
            mapping = self.eliminating_hom(store, block)
            if mapping is None:
                perf.incr("core.columnar.rigid_blocks")
                continue
            perf.incr("core.columnar.eliminations")
            images: set[tuple[_RelGroup, tuple[int, ...]]] = set()
            for group, row in block:
                image = tuple(
                    mapping.get(column[row], column[row]) for column in group.columns
                )
                images.add((group, image))
            survivors: list[_Row] = []
            for group, row in block:
                own = tuple(column[row] for column in group.columns)
                if (group, own) in images:
                    survivors.append((group, row))
                else:
                    store.discard_row(group, row)
            if survivors:
                pending.extend(self.null_components(survivors))

    # ----------------------------------------------------------------- folding

    def fold_canonical(
        self, canon_rows: Sequence[_Row], labeling: dict[int, int]
    ) -> tuple[int, ...]:
        """Fold the canonical block in a private store sharing the value table.

        Returns the canonical indexes of the surviving facts -- a pure,
        deterministic function of the canonical form (elimination candidates
        are repr-sorted, and canonical-null reprs are index-determined), so
        the result is safe to memoize process-wide.
        """
        values = self.values
        mini = ColumnarInstance(values=values)
        canon_vids: dict[int, int] = {}
        mini_rows: list[_Row] = []
        for group, row in canon_rows:
            ids: list[int] = []
            for column in group.columns:
                vid = column[row]
                canonical = labeling.get(vid)
                if canonical is None:
                    ids.append(vid)
                else:
                    canon_vid = canon_vids.get(canonical)
                    if canon_vid is None:
                        canon_vid = values.intern(Null(("#", canonical)))
                        canon_vids[canonical] = canon_vid
                    ids.append(canon_vid)
            mini_group = mini.group(group.relation, group.arity)
            mini_row = mini.add_row(mini_group, tuple(ids))
            assert mini_row is not None  # canonical facts are distinct
            mini_rows.append((mini_group, mini_row))
        pending: deque[list[_Row]] = deque(self.null_components(mini_rows))
        self.process_blocks(mini, pending)
        return tuple(
            index
            for index, (mini_group, mini_row) in enumerate(mini_rows)
            if mini_row not in mini_group.dead
        )

    def _disk_fold_indexes(
        self, fingerprint: str, canon_rows: Sequence[_Row], labeling: dict[int, int]
    ) -> tuple[int, ...] | None:
        """Map a tuple-engine disk payload back to canonical indexes, or None.

        Payloads are canonical atom tuples (the cross-engine format); they
        map back through a repr -> index table over the canonical order.  An
        ambiguous repr (adversarial names) or an unmatched payload fact means
        the entry is unusable here -- fold locally instead.
        """
        if get_store() is None:
            return None
        payload = disk_get(SPACE_FOLD, fingerprint)
        if not isinstance(payload, tuple) or not all(
            isinstance(fact, Atom) for fact in payload
        ):
            return None
        vid_repr = self.vid_repr
        index_of: dict[str, int] = {}
        for index, (group, row) in enumerate(canon_rows):
            parts = []
            for column in group.columns:
                vid = column[row]
                canonical = labeling.get(vid)
                parts.append(
                    f"_{('#', canonical)}" if canonical is not None
                    else vid_repr(vid)
                )
            text = f"{group.relation}({', '.join(parts)})"
            if text in index_of:
                return None
            index_of[text] = index
        indexes: list[int] = []
        for fact in payload:
            index = index_of.get(repr(fact))
            if index is None:
                return None
            indexes.append(index)
        return tuple(sorted(indexes))

    def fold_block(
        self,
        store: ColumnarInstance,
        block: list[_Row],
        canon: tuple[list[_Row], dict[int, int]] | None,
        fingerprint: str | None,
    ) -> list[_Row]:
        """Fold one block in place (memoized via *fingerprint*); survivors back.

        A block too symmetric to canonicalize is returned unchanged: its
        local fold is subsumed by the global worklist pass that follows,
        which tries the same eliminations against the whole store.
        """
        if canon is None or fingerprint is None:
            return block
        canon_rows, labeling = canon
        surviving = _COLUMNAR_FOLD_CACHE.get(fingerprint)
        if surviving is not None:
            _COLUMNAR_FOLD_CACHE.move_to_end(fingerprint)
            perf.incr("core.columnar.memo_hits")
        else:
            perf.incr("core.columnar.memo_misses")
            surviving = self._disk_fold_indexes(fingerprint, canon_rows, labeling)
            if surviving is None:
                surviving = self.fold_canonical(canon_rows, labeling)
                if get_store() is not None:
                    atoms = self.canonical_atoms(canon_rows, labeling)
                    disk_put(
                        SPACE_FOLD,
                        fingerprint,
                        tuple(atoms[index] for index in surviving),
                    )
            _store_columnar_fold(fingerprint, surviving)
        keep = {canon_rows[index] for index in surviving}
        survivors: list[_Row] = []
        for group, row in block:
            if (group, row) in keep:
                survivors.append((group, row))
            else:
                store.discard_row(group, row)
        return survivors


def _core_columnar(instance: "Instance | ColumnarInstance") -> Instance:
    """Compute the core in id-space over a columnar store.

    Accepts either representation; an :class:`Instance` is encoded once, a
    :class:`ColumnarInstance` is *consumed* (eliminations tombstone its rows
    in place).  Same structure as the tuple path in :func:`core`: split into
    f-blocks, drop isomorphic duplicates, fold each block locally through
    the memo, then drain the global worklist.
    """
    store = (
        instance
        if isinstance(instance, ColumnarInstance)
        else ColumnarInstance(instance)
    )
    engine = _ColumnarCore(store.values)
    blocks = engine.null_blocks(store)
    perf.incr("core.columnar.blocks", len(blocks))

    kept: list[tuple[list[_Row], tuple[list[_Row], dict[int, int]] | None, str | None]] = []
    seen: set[str] = set()
    for block in blocks:
        canon = engine.canonical_block(block)
        fingerprint = None
        if canon is not None:
            fingerprint = engine.block_fingerprint(canon[0], canon[1])
            if fingerprint in seen:
                perf.incr("core.columnar.iso_folds")
                for group, row in block:
                    store.discard_row(group, row)
                continue
            seen.add(fingerprint)
        kept.append((block, canon, fingerprint))

    pending: deque[list[_Row]] = deque()
    for block, canon, fingerprint in kept:
        survivors = engine.fold_block(store, block, canon, fingerprint)
        if survivors:
            pending.extend(engine.null_components(survivors))
    engine.process_blocks(store, pending)
    return store.to_instance()


def core(
    instance: Instance,
    parallel: int | None = None,
    *,
    backend: str = "tuple",
) -> Instance:
    """Return the core of *instance*.

        >>> from repro.logic.parser import parse_instance
        >>> core(parse_instance("R(a, _x), R(a, b)"))
        Instance{R(a, b)}

    The result contains the same constants as the input and a subset of its
    facts; it is homomorphically equivalent to the input and no proper
    subinstance of it is.  With ``parallel=N``, block-local folding runs on
    a pool of N worker processes (same result as the serial run).

    ``backend`` selects the execution engine: ``"tuple"`` (this module's
    object worklist -- the reference), ``"columnar"`` (id-space over a
    :class:`~repro.engine.columnar.ColumnarInstance`), ``"sql"`` (per-block
    eliminating homomorphisms as SELECT joins), or ``"auto"``
    (:func:`~repro.engine.dispatch.choose_core_backend` by instance size).
    All backends return the same core up to isomorphism; ``parallel``
    applies to the tuple path only.
    """
    if backend != "tuple":
        from repro.engine.dispatch import CORE_SQL_AUTO_THRESHOLD, choose_core_backend

        size = len(instance)
        sql_supported = False
        if backend == "sql" or (backend == "auto" and size >= CORE_SQL_AUTO_THRESHOLD):
            from repro.engine.sql_backend import sql_core_supported

            sql_supported = sql_core_supported(instance)
        choice = choose_core_backend(
            backend, input_size=size, sql_supported=sql_supported
        )
        if choice.backend == "sql":
            from repro.engine.sql_backend import sql_core

            return sql_core(instance)
        if choice.backend == "columnar":
            return _core_columnar(instance)
    builder = InstanceBuilder()
    null_blocks: list[list[Atom]] = []
    for block in fact_blocks(instance):
        block_facts = sorted(block, key=repr)
        if _has_nulls(block_facts):
            null_blocks.append(block_facts)
        else:
            builder.add_all(block_facts)
    perf.incr("core.blocks", len(null_blocks))
    null_blocks.sort(key=lambda facts: [repr(f) for f in facts])

    # Drop isomorphic duplicates (equal canonical form => the isomorphism is
    # a wholesale eliminating retraction into the kept representative).
    kept: list[tuple[list[Atom], tuple[tuple[Atom, ...], dict] | None]] = []
    seen_keys: set[tuple[Atom, ...]] = set()
    for block_facts in null_blocks:
        canon = _canonical_block(block_facts)
        if canon is not None:
            if canon[0] in seen_keys:
                perf.incr("core.iso_folds")
                continue
            seen_keys.add(canon[0])
        kept.append((block_facts, canon))

    if parallel and parallel > 1:
        uncached = [
            canon[0]
            for __, canon in kept
            if canon is not None and canon[0] not in _FOLD_CACHE
        ]
        if len(uncached) > 1:
            _prefold_parallel(uncached, parallel)

    pending: deque[list[Atom]] = deque()
    for block_facts, canon in kept:
        folded = _fold_block(block_facts, canon)
        builder.add_all(folded)
        pending.extend(_null_components(list(folded)))
    _process_blocks(builder, pending)
    return builder.freeze()


def is_core(instance: Instance) -> bool:
    """Return True if *instance* equals its own core (no null is eliminable)."""
    for block in fact_blocks(instance):
        block_facts = sorted(block, key=repr)
        if not _has_nulls(block_facts):
            continue
        if _eliminating_hom(block_facts, instance) is not None:
            return False
    return True


__all__ = ["core", "is_core", "clear_fold_cache", "core_columnar"]

#: Public alias: the id-space engine, callable directly (benchmarks, tests).
core_columnar = _core_columnar
