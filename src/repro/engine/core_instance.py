"""Core computation by iterative f-block retraction.

The core of an instance J is the smallest subinstance of J homomorphically
equivalent to J; it is unique up to isomorphism (Section 2, citing Hell &
Nesetril).  The algorithm repeatedly looks for a null that can be
*eliminated*: null ``x`` is eliminable when the f-block of ``x`` has a
homomorphism into the subinstance of J consisting of the facts that do not
contain ``x``.  Applying such a homomorphism (identity outside the block)
yields a proper retract of J without ``x``; when no null is eliminable, J is
a core.

Correctness of the stopping condition: if J is not a core, it has a proper
idempotent retract ``r``.  ``r`` moves some null ``x`` (otherwise it is the
identity), and idempotence puts ``x`` outside the image of ``r``, so the
restriction of ``r`` to the f-block of ``x`` is exactly an eliminating
homomorphism.  Conversely each elimination strictly decreases the number of
nulls, so the loop terminates after at most ``|nulls(J)|`` rounds.

Note that merely searching for a homomorphism that maps ``x`` to another
value would be wrong: such a homomorphism can be an automorphism (e.g.
rotating the nulls of a symmetric cycle), whose application does not shrink
the instance.

Engine structure (the seed loop -- restricted instance per candidate null,
restart per elimination -- is preserved as
:func:`repro.engine.naive.core_naive` for differential testing):

- **One mutable target.**  The instance lives in an
  :class:`~repro.engine.builder.InstanceBuilder`; an elimination *discards*
  the block facts that left the image instead of rebuilding an immutable
  instance, and "J minus the facts containing x" is expressed as a
  ``forbidden`` fact set (from the per-value reverse index) passed to the
  homomorphism kernel, never materialized.
- **Block worklist.**  Blocks are processed independently.  An elimination
  only removes facts of the processed block (every image fact already exists
  in J), so other blocks are unaffected; the surviving facts are split into
  connected components and re-enqueued.  A block with no eliminable null is
  *rigid* and never revisited: eliminating homomorphisms only lose candidate
  facts as J shrinks, so rigidity is monotone under eliminations.
- **Block-local folding is context-free and memoized.**  A homomorphism from
  block B into ``B minus facts(x)`` is in particular one into
  ``J minus facts(x)``, so a local fold is a valid elimination in any
  enclosing instance.  Folds are memoized process-wide in an LRU keyed by a
  *canonical labeling* of the block (nulls renamed along degree-profile
  groups), so the isomorphic blocks that chase outputs are full of fold
  once -- across blocks and across core calls.  Overly symmetric blocks
  (too many tie-break permutations) skip the cache and fold directly.
- **Isomorphic duplicate blocks drop wholesale.**  If B2 is isomorphic to a
  disjoint block B1 of the same instance, the isomorphism maps B2 into
  ``J minus facts(x)`` for every null x of B2 (distinct blocks share no
  nulls), so all of B2 is eliminated by one retraction.  Duplicates are
  detected by equal canonical forms.
- **Parallel local folding** (``core(instance, parallel=N)``): uncached
  block folds are dispatched to a fork-based process pool (mirroring the
  IMPLIES pattern sweep); results land in the shared LRU.  The canonical
  blocks are published to the workers once through a
  :mod:`repro.cache.shm` shared-memory segment (workers receive integer
  indexes, not pickled fact tuples), with the pre-shm pickling path kept
  as a fallback.  A fold is a deterministic function of the canonical
  form, so parallel and serial runs return identical cores.
- **Persistent fold tier** (:mod:`repro.cache`, enabled by
  ``REPRO_CACHE_DIR`` / ``repro.cache.configure``): canonical blocks are
  already process-independent (nulls renamed to ``Null(("#", i))``), so a
  memo miss consults an on-disk store keyed by the block's content
  fingerprint before folding, and computed folds are written through.
  Disabled by default; the in-memory LRU stays the only tier on hot paths.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from typing import Iterable, Sequence

from repro import perf
from repro.cache import SPACE_FOLD, disk_get, disk_put, get_store
from repro.cache import shm as cache_shm
from repro.cache.fingerprint import fingerprint_fact_sequence
from repro.engine.builder import InstanceBuilder
from repro.engine.gaifman import fact_blocks
from repro.engine.hom_kernel import block_homomorphism
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Null, is_null

#: Maximum number of tie-break permutations tried when canonically labeling
#: the nulls of a block; blocks more symmetric than this skip the fold cache.
_CANON_PERMUTATION_LIMIT = 120

#: Process-wide LRU of block-local folds: canonical fact tuple -> folded
#: canonical fact tuple.  Sound because a fold is context-free (see module
#: docstring) and deterministic given the canonical form.
_FOLD_CACHE: OrderedDict[tuple[Atom, ...], tuple[Atom, ...]] = OrderedDict()
_FOLD_CACHE_MAX = 1024


def clear_fold_cache() -> None:
    """Empty the process-wide block-fold cache (mainly for tests)."""
    _FOLD_CACHE.clear()


def _store_fold(key: tuple[Atom, ...], folded: tuple[Atom, ...]) -> None:
    _FOLD_CACHE[key] = folded
    _FOLD_CACHE.move_to_end(key)
    while len(_FOLD_CACHE) > _FOLD_CACHE_MAX:
        _FOLD_CACHE.popitem(last=False)


def _has_nulls(facts: Iterable[Atom]) -> bool:
    return any(is_null(arg) for fact in facts for arg in fact.args)


def _block_nulls(facts: Iterable[Atom]) -> list:
    """The nulls of a block, sorted by repr for deterministic elimination order."""
    return sorted({null for fact in facts for null in fact.nulls()}, key=repr)


def _null_components(facts: Sequence[Atom]) -> list[list[Atom]]:
    """Split facts into connected components linked by shared (top-level) nulls."""
    anchor_of: dict = {}
    parent = list(range(len(facts)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for index, fact in enumerate(facts):
        for null in fact.nulls():
            anchor = anchor_of.setdefault(null, index)
            if anchor != index:
                root_a, root_b = find(anchor), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
    groups: dict[int, list[Atom]] = {}
    for index, fact in enumerate(facts):
        groups.setdefault(find(index), []).append(fact)
    return list(groups.values())


def _eliminating_hom(block: Sequence[Atom], target) -> dict | None:
    """Find a retraction of *block* into *target* eliminating one of its nulls.

    Tries each null x of the block in repr order; "target minus the facts
    containing x" is expressed by passing those facts (looked up in the
    per-value reverse index) to the kernel as a forbidden set.  The nulls of
    a block occur in no other block, so the lookup returns block facts only.
    """
    for null in _block_nulls(block):
        forbidden = frozenset(target.facts_containing(null))
        mapping = block_homomorphism(block, target, None, forbidden)
        if mapping is not None:
            return mapping
    return None


def _process_blocks(builder: InstanceBuilder, pending: deque[list[Atom]]) -> None:
    """Drain the block worklist, applying eliminations to *builder* in place.

    Every image fact of an eliminating homomorphism already exists in the
    target, so applying it means discarding the block facts that left the
    image; the surviving facts may disconnect and are re-enqueued as fresh
    components.  Blocks with no eliminable null are rigid and leave the
    queue permanently (rigidity is monotone as the target shrinks).
    """
    while pending:
        block = pending.popleft()
        mapping = _eliminating_hom(block, builder)
        if mapping is None:
            perf.incr("core.rigid_blocks")
            continue
        perf.incr("core.eliminations")
        images = {fact.rename_values(mapping) for fact in block}
        survivors: list[Atom] = []
        for fact in block:
            if fact in images:
                survivors.append(fact)
            else:
                builder.discard(fact)
        if survivors:
            pending.extend(_null_components(survivors))


def _fold_facts(facts: Iterable[Atom]) -> tuple[Atom, ...]:
    """Fold a block against itself until no null is locally eliminable.

    A pure, deterministic function of the fact set (it is the fold-cache
    value computation and the parallel worker); returns repr-sorted facts.
    """
    builder = InstanceBuilder(facts)
    pending: deque[list[Atom]] = deque(_null_components(list(builder)))
    _process_blocks(builder, pending)
    return tuple(sorted(builder, key=repr))


def _canonical_block(facts: Sequence[Atom]) -> tuple[tuple[Atom, ...], dict] | None:
    """Canonically label the nulls of a block, or None if too symmetric.

    Nulls are grouped by degree profile (multiset of (relation, position)
    occurrences -- an isomorphism invariant) and renamed to ``Null(("#",
    i))``; ties within a profile group are broken by trying every
    within-group permutation and keeping the lexicographically least fact
    tuple, so isomorphic blocks get identical canonical forms.  Returns the
    canonical fact tuple and the null -> canonical-null labeling, or None
    when the tie groups would need more than ``_CANON_PERMUTATION_LIMIT``
    permutations.
    """
    profiles: dict = {}
    for fact in facts:
        for pos, arg in enumerate(fact.args):
            if is_null(arg):
                profile = profiles.setdefault(arg, {})
                key = (fact.relation, pos)
                profile[key] = profile.get(key, 0) + 1
    groups: dict = {}
    for null, profile in profiles.items():
        groups.setdefault(tuple(sorted(profile.items())), []).append(null)
    total = 1
    for members in groups.values():
        for i in range(2, len(members) + 1):
            total *= i
            if total > _CANON_PERMUTATION_LIMIT:
                return None
    ordered_groups = [sorted(members, key=repr) for __, members in sorted(groups.items())]
    best: tuple[Atom, ...] | None = None
    best_key: list[str] = []
    best_labeling: dict = {}
    for orderings in itertools.product(
        *(itertools.permutations(members) for members in ordered_groups)
    ):
        labeling: dict = {}
        for members in orderings:
            for null in members:
                labeling[null] = Null(("#", len(labeling)))
        relabeled = tuple(sorted((f.rename_values(labeling) for f in facts), key=repr))
        relabeled_key = [repr(f) for f in relabeled]
        if best is None or relabeled_key < best_key:
            best = relabeled
            best_key = relabeled_key
            best_labeling = labeling
    assert best is not None
    return best, best_labeling


def _disk_fold_get(key: tuple[Atom, ...]) -> tuple[Atom, ...] | None:
    """Look a canonical-block fold up in the persistent tier."""
    if get_store() is None:
        return None
    payload = disk_get(SPACE_FOLD, fingerprint_fact_sequence(key))
    if not isinstance(payload, tuple) or not all(
        isinstance(fact, Atom) for fact in payload
    ):
        return None
    return payload


def _disk_fold_put(key: tuple[Atom, ...], folded: tuple[Atom, ...]) -> None:
    """Write one computed fold through to the persistent tier."""
    if get_store() is None:
        return
    disk_put(SPACE_FOLD, fingerprint_fact_sequence(key), folded)


def _fold_block(
    block: Sequence[Atom], canon: tuple[tuple[Atom, ...], dict] | None
) -> tuple[Atom, ...]:
    """Fold one block locally, through the canonical-form cache when possible."""
    if canon is None:
        return _fold_facts(block)
    key, labeling = canon
    cached = _FOLD_CACHE.get(key)
    if cached is not None:
        _FOLD_CACHE.move_to_end(key)
        perf.incr("core.memo_hits")
    else:
        perf.incr("core.memo_misses")
        cached = _disk_fold_get(key)
        if cached is None:
            cached = _fold_facts(key)
            _disk_fold_put(key, cached)
        _store_fold(key, cached)
    inverse = {label: null for null, label in labeling.items()}
    return tuple(fact.rename_values(inverse) for fact in cached)


#: Canonical blocks published to prefold workers (shared-memory segment, or
#: this fork-inherited global as the fallback); tasks are plain indexes.
_PREFOLD_KEYS: tuple[tuple[Atom, ...], ...] | None = None
_PREFOLD_HANDLE: "cache_shm.ShmHandle | None" = None


def _prefold_worker(index: int) -> tuple[Atom, ...]:
    if _PREFOLD_HANDLE is not None:
        keys = cache_shm.attach(_PREFOLD_HANDLE)
        assert isinstance(keys, tuple)
    else:
        assert _PREFOLD_KEYS is not None
        keys = _PREFOLD_KEYS
    return _fold_facts(keys[index])


def _prefold_parallel(keys: list[tuple[Atom, ...]], workers: int) -> None:
    """Fold uncached canonical blocks across a fork-based process pool."""
    import concurrent.futures
    import multiprocessing

    global _PREFOLD_KEYS, _PREFOLD_HANDLE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        return
    perf.incr("core.parallel_blocks", len(keys))
    spec = tuple(keys)
    handle = cache_shm.publish(spec)
    if handle is not None:
        _PREFOLD_HANDLE = handle
    else:
        _PREFOLD_KEYS = spec
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            for key, folded in zip(keys, pool.map(_prefold_worker, range(len(keys)))):
                _store_fold(key, folded)
                _disk_fold_put(key, folded)
    finally:
        _PREFOLD_KEYS = None
        _PREFOLD_HANDLE = None
        cache_shm.unlink(handle)


def core(instance: Instance, parallel: int | None = None) -> Instance:
    """Return the core of *instance*.

        >>> from repro.logic.parser import parse_instance
        >>> core(parse_instance("R(a, _x), R(a, b)"))
        Instance{R(a, b)}

    The result contains the same constants as the input and a subset of its
    facts; it is homomorphically equivalent to the input and no proper
    subinstance of it is.  With ``parallel=N``, block-local folding runs on
    a pool of N worker processes (same result as the serial run).
    """
    builder = InstanceBuilder()
    null_blocks: list[list[Atom]] = []
    for block in fact_blocks(instance):
        block_facts = sorted(block, key=repr)
        if _has_nulls(block_facts):
            null_blocks.append(block_facts)
        else:
            builder.add_all(block_facts)
    perf.incr("core.blocks", len(null_blocks))
    null_blocks.sort(key=lambda facts: [repr(f) for f in facts])

    # Drop isomorphic duplicates (equal canonical form => the isomorphism is
    # a wholesale eliminating retraction into the kept representative).
    kept: list[tuple[list[Atom], tuple[tuple[Atom, ...], dict] | None]] = []
    seen_keys: set[tuple[Atom, ...]] = set()
    for block_facts in null_blocks:
        canon = _canonical_block(block_facts)
        if canon is not None:
            if canon[0] in seen_keys:
                perf.incr("core.iso_folds")
                continue
            seen_keys.add(canon[0])
        kept.append((block_facts, canon))

    if parallel and parallel > 1:
        uncached = [
            canon[0]
            for __, canon in kept
            if canon is not None and canon[0] not in _FOLD_CACHE
        ]
        if len(uncached) > 1:
            _prefold_parallel(uncached, parallel)

    pending: deque[list[Atom]] = deque()
    for block_facts, canon in kept:
        folded = _fold_block(block_facts, canon)
        builder.add_all(folded)
        pending.extend(_null_components(list(folded)))
    _process_blocks(builder, pending)
    return builder.freeze()


def is_core(instance: Instance) -> bool:
    """Return True if *instance* equals its own core (no null is eliminable)."""
    for block in fact_blocks(instance):
        block_facts = sorted(block, key=repr)
        if not _has_nulls(block_facts):
            continue
        if _eliminating_hom(block_facts, instance) is not None:
            return False
    return True


__all__ = ["core", "is_core", "clear_fold_cache"]
