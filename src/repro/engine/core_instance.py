"""Core computation.

The core of an instance J is the smallest subinstance of J homomorphically
equivalent to J; it is unique up to isomorphism (Section 2, citing Hell &
Nesetril).  The algorithm repeatedly looks for a null that can be
*eliminated*: null ``x`` is eliminable when the f-block of ``x`` has a
homomorphism into the subinstance of J consisting of the facts that do not
contain ``x``.  Applying such a homomorphism (identity outside the block)
yields a proper retract of J without ``x``; when no null is eliminable, J is
a core.

Correctness of the stopping condition: if J is not a core, it has a proper
idempotent retract ``r``.  ``r`` moves some null ``x`` (otherwise it is the
identity), and idempotence puts ``x`` outside the image of ``r``, so the
restriction of ``r`` to the f-block of ``x`` is exactly an eliminating
homomorphism.  Conversely each elimination strictly decreases the number of
nulls, so the loop terminates after at most ``|nulls(J)|`` rounds.

Note that merely searching for a homomorphism that maps ``x`` to another
value would be wrong: such a homomorphism can be an automorphism (e.g.
rotating the nulls of a symmetric cycle), whose application does not shrink
the instance.
"""

from __future__ import annotations

from repro.engine.gaifman import fact_blocks
from repro.engine.homomorphism import _block_homomorphism
from repro.logic.instances import Instance
from repro.logic.values import is_null


def _try_eliminate(instance: Instance) -> Instance | None:
    """Eliminate one null via a folding retract; return None if J is a core."""
    for block in fact_blocks(instance):
        block_facts = list(block)
        block_nulls = sorted(
            {arg for fact in block_facts for arg in fact.args if is_null(arg)}, key=repr
        )
        for null in block_nulls:
            target = instance.restrict(lambda fact: null not in fact.args)
            mapping = _block_homomorphism(block_facts, target, {})
            if mapping is not None:
                return instance.map_values(mapping)
    return None


def core(instance: Instance) -> Instance:
    """Return the core of *instance*.

        >>> from repro.logic.parser import parse_instance
        >>> core(parse_instance("R(a, _x), R(a, b)"))
        Instance{R(a, b)}

    The result contains the same constants as the input and a subset of its
    nulls; it is homomorphically equivalent to the input and no proper
    subinstance of it is.
    """
    current = instance
    while True:
        folded = _try_eliminate(current)
        if folded is None:
            return current
        current = folded


def is_core(instance: Instance) -> bool:
    """Return True if *instance* equals its own core (no null is eliminable)."""
    return _try_eliminate(instance) is None


__all__ = ["core", "is_core"]
