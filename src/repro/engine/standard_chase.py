"""The standard (non-oblivious) chase and the core chase.

The oblivious chase of :mod:`repro.engine.chase` fires every trigger
unconditionally: one null per body match.  The *standard* chase checks each
trigger first and only fires when the instantiated conclusion cannot already
be satisfied in the current target (a homomorphism extending the body match),
producing smaller -- but still universal -- solutions.  The *core chase*
additionally replaces the result by its core, yielding the smallest universal
solution (for mappings closed under target homomorphisms, Section 4.1 of the
paper, this is well-defined).

These variants exist for the ablation study in
``benchmarks/bench_ablation_chase.py``: the paper's constructions all use the
oblivious chase (its chase-forest structure is what the pattern machinery of
Section 3 analyzes), and the ablation quantifies what the obliviousness
costs in output size and what the core computation buys back.
"""

from __future__ import annotations

from typing import Sequence

from repro import perf
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.tgds import STTgd
from repro.logic.values import Null, Variable
from repro.engine.builder import InstanceBuilder
from repro.engine.core_instance import core
from repro.engine.hom_kernel import block_homomorphism
from repro.engine.matching import find_matches


def _conclusion_satisfied(
    head: tuple[Atom, ...], assignment: dict, target
) -> bool:
    """Can the instantiated head embed into *target* (existentials as unknowns)?"""
    existential_nulls: dict[Variable, Null] = {}
    facts: list[Atom] = []
    for atom in head:
        args = []
        for arg in atom.args:
            if isinstance(arg, Variable) and arg not in assignment:
                null = existential_nulls.setdefault(arg, Null(("?", arg.name)))
                args.append(null)
            elif isinstance(arg, Variable):
                args.append(assignment[arg])
            else:
                args.append(arg)
        facts.append(Atom(atom.relation, tuple(args)))
    return block_homomorphism(facts, target) is not None


def standard_chase(
    source: Instance, tgds: Sequence[STTgd], max_rounds: int = 100
) -> Instance:
    """The standard chase: fire a trigger only when its conclusion is unmet.

    For s-t tgds a single pass over all triggers suffices (firing a trigger
    can only satisfy later ones, never enable new body matches), but the
    trigger order affects which nulls are created; the implementation is
    deterministic given the instance.

    The target grows through an :class:`InstanceBuilder`, so each fired
    trigger updates the lookup indexes incrementally instead of re-indexing
    the whole target (``Instance.union`` per trigger -- the quadratic seed
    behaviour preserved as :func:`repro.engine.naive.standard_chase_naive`).

        >>> from repro.logic.parser import parse_instance, parse_tgd
        >>> I = parse_instance("S(a,b), S(a,c)")
        >>> weak = parse_tgd("S(x,y) -> R(x,z)")
        >>> len(standard_chase(I, [weak]))   # one R(a,*) fact satisfies both
        1
    """
    target = InstanceBuilder()
    counter = [0]
    for tgd in tgds:
        for assignment in find_matches(tgd.body, source):
            if _conclusion_satisfied(tgd.head, assignment, target):
                continue
            perf.incr("chase.triggers")
            instantiation = dict(assignment)
            for var in tgd.existential_variables:
                counter[0] += 1
                instantiation[var] = Null(f"v{counter[0]}")
            target.add_all(
                atom.substitute(instantiation) for atom in tgd.head
            )
    return target.freeze()


def core_chase(source: Instance, tgds: Sequence[STTgd]) -> Instance:
    """The core chase: the standard chase followed by core computation.

    For GLAV mappings the result is the smallest universal solution.
    """
    return core(standard_chase(source, tgds))


__all__ = ["standard_chase", "core_chase"]
