"""Columnar instance backend: integer-interned fact tables, vectorized joins.

The tuple engines walk Python objects fact by fact: every join step hashes
an interned :class:`~repro.logic.atoms.Atom`, every assignment is a dict of
:class:`~repro.logic.values.Variable` keys.  :class:`ColumnarInstance`
stores the same facts as **dense integer arrays** instead: every distinct
value (constant, labeled null, ground Skolem term) gets a dense id from a
:class:`ValueTable` at intern time, and each relation's facts live in
per-position ``array('q')`` columns plus a per-(position, id) inverted
index.  The inner loops of trigger matching then compare machine integers
and append to flat arrays; interned value objects are only touched at the
encode/decode boundary and when a *new* Skolem term is first created.

Three layers:

- :class:`ColumnarInstance` -- the store.  It implements the read API of
  the :class:`~repro.engine.hom_kernel.FactIndex` protocol (``facts_of`` /
  ``facts_with`` / ``__contains__`` / iteration), decoding rows to interned
  :class:`Atom` objects lazily and caching them, so the homomorphism kernel
  and the generic matching engine run over it unchanged.
- :class:`_ClausePlan` -- one Skolemized clause compiled against the store:
  a greedy join order (most bound variables first), per-atom bind/check
  position lists resolved to environment *slots*, and head/equality term
  builders that produce value ids directly (with a per-(function, arg-ids)
  cache, so re-firing a trigger never rebuilds its Skolem term).
- :func:`columnar_fixpoint_rounds` / :func:`columnar_execute_exchange` --
  the semi-naive delta loop and the single-pass exchange, mirroring the
  tuple engines round for round (same delta discipline, same intra-round
  visibility), so bounded runs agree with the tuple engine exactly.

Perf counters: ``backend.columnar.joins`` (per-atom index joins performed),
``backend.columnar.encoded_rows`` / ``backend.columnar.decoded_rows`` (facts
crossing the object/array boundary), ``backend.columnar.probe_hits``
(``facts_of`` / ``facts_with`` probes answered by the per-group decode memo
without re-materializing an atom list).

The store also supports **tombstone deletion** (:meth:`ColumnarInstance.
discard_row` / :meth:`~ColumnarInstance.discard_fact`): a discarded row is
removed from the dedup map and the inverted index and recorded in the
group's ``dead`` set, so full-scan fallbacks skip it while the columns keep
their dense layout.  The chase engines never delete; the columnar core
engine (:mod:`repro.engine.core_instance`) retracts eliminated facts this
way, and every read path filters dead rows only behind an ``if group.dead``
guard, keeping the append-only hot paths unchanged.
"""

from __future__ import annotations

from array import array
from typing import Collection, Iterable, Iterator, Sequence

from repro import perf
from repro.errors import BudgetExceeded, ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.sotgd import SOClause
from repro.logic.terms import FuncTerm, is_ground
from repro.logic.values import Variable

_EMPTY: tuple = ()


class ValueTable:
    """Dense integer ids for interned values, shared by related stores.

    The hash-consed logic layer guarantees structurally equal values are the
    *same* object, so the id table is a plain identity-agnostic dict keyed by
    the interned object.  A source and a target :class:`ColumnarInstance` of
    one exchange share a table so row emission can move ids between stores
    without re-encoding.
    """

    __slots__ = ("_id_of", "_values")

    def __init__(self) -> None:
        self._id_of: dict[object, int] = {}
        self._values: list[object] = []

    def intern(self, value: object) -> int:
        vid = self._id_of.get(value)
        if vid is None:
            vid = len(self._values)
            self._id_of[value] = vid
            self._values.append(value)
        return vid

    def lookup(self, value: object) -> int | None:
        """The id of *value*, or None if it was never interned."""
        return self._id_of.get(value)

    def value(self, vid: int) -> object:
        return self._values[vid]

    def __len__(self) -> int:
        return len(self._values)


class _RelGroup:
    """The fact table of one (relation, arity): columns, dedup map, index."""

    __slots__ = (
        "relation", "arity", "columns", "row_of", "index", "atoms",
        "dead", "probe", "facts_cache",
    )

    def __init__(self, relation: str, arity: int) -> None:
        self.relation = relation
        self.arity = arity
        self.columns: list[array] = [array("q") for _ in range(arity)]
        self.row_of: dict[tuple[int, ...], int] = {}
        self.index: list[dict[int, list[int]]] = [{} for _ in range(arity)]
        self.atoms: list[Atom | None] = []
        #: Tombstoned row indexes (usually empty; see module docstring).
        self.dead: set[int] = set()
        #: Probe memo: (position, vid) -> decoded atom list, dropped on mutation.
        self.probe: dict[tuple[int, int], list[Atom]] = {}
        #: ``facts_of`` memo for this group, dropped on mutation.
        self.facts_cache: list[Atom] | None = None

    def __len__(self) -> int:
        return len(self.atoms) - len(self.dead)

    def live_rows(self) -> Iterable[int]:
        """The indexes of the live (non-tombstoned) rows, in insertion order."""
        if not self.dead:
            return range(len(self.atoms))
        dead = self.dead
        return [row for row in range(len(self.atoms)) if row not in dead]

    def add(self, ids: tuple[int, ...]) -> int | None:
        """Insert a row; return its index if new, None if already present."""
        if ids in self.row_of:
            return None
        row = len(self.atoms)
        self.row_of[ids] = row
        self.atoms.append(None)
        if self.probe:
            for position, vid in enumerate(ids):
                self.probe.pop((position, vid), None)
        self.facts_cache = None
        for position, vid in enumerate(ids):
            self.columns[position].append(vid)
            bucket = self.index[position].get(vid)
            if bucket is None:
                self.index[position][vid] = [row]
            else:
                bucket.append(row)
        return row

    def discard(self, row: int) -> bool:
        """Tombstone a live row: drop it from the dedup map and the index."""
        if row in self.dead or row >= len(self.atoms):
            return False
        ids = tuple(column[row] for column in self.columns)
        if self.row_of.get(ids) != row:
            return False
        del self.row_of[ids]
        self.dead.add(row)
        self.atoms[row] = None
        self.facts_cache = None
        for position, vid in enumerate(ids):
            bucket = self.index[position].get(vid)
            if bucket is not None:
                try:
                    bucket.remove(row)
                except ValueError:
                    pass
                if not bucket:
                    del self.index[position][vid]
            self.probe.pop((position, vid), None)
        return True


class ColumnarInstance:
    """A mutable columnar fact store satisfying the ``FactIndex`` protocol."""

    __slots__ = ("values", "_groups", "_count")

    def __init__(
        self,
        facts: "Instance | Iterable[Atom]" = (),
        *,
        values: ValueTable | None = None,
    ):
        self.values = values if values is not None else ValueTable()
        self._groups: dict[str, list[_RelGroup]] = {}
        self._count = 0
        encoded = 0
        for fact in facts:
            encoded += 1
            self.add_fact(fact)
        if encoded:
            perf.incr("backend.columnar.encoded_rows", encoded)

    # ---------------------------------------------------------------- mutation

    def group(self, relation: str, arity: int) -> _RelGroup:
        """The fact table of (relation, arity), created on first use."""
        groups = self._groups.setdefault(relation, [])
        for group in groups:
            if group.arity == arity:
                return group
        group = _RelGroup(relation, arity)
        groups.append(group)
        return group

    def add_fact(self, fact: Atom) -> bool:
        intern = self.values.intern
        ids = tuple(intern(arg) for arg in fact.args)
        group = self.group(fact.relation, len(ids))
        row = group.add(ids)
        if row is None:
            return False
        group.atoms[row] = fact
        self._count += 1
        return True

    def add_row(self, group: _RelGroup, ids: tuple[int, ...]) -> int | None:
        """Insert an id row directly; returns the new row index or None."""
        row = group.add(ids)
        if row is not None:
            self._count += 1
        return row

    def discard_row(self, group: _RelGroup, row: int) -> bool:
        """Tombstone one row of *group*; returns True if it was live."""
        if group.discard(row):
            self._count -= 1
            return True
        return False

    def discard_fact(self, fact: Atom) -> bool:
        """Tombstone the row holding *fact*, if present."""
        groups = self._groups.get(fact.relation)
        if not groups:
            return False
        lookup = self.values.lookup
        ids = []
        for arg in fact.args:
            vid = lookup(arg)
            if vid is None:
                return False
            ids.append(vid)
        key = tuple(ids)
        for group in groups:
            if group.arity == len(key):
                row = group.row_of.get(key)
                if row is not None:
                    return self.discard_row(group, row)
        return False

    # ------------------------------------------------------------------ decode

    def decode_row(self, group: _RelGroup, row: int) -> Atom:
        atom = group.atoms[row]
        if atom is None:
            value = self.values.value
            atom = Atom(
                group.relation,
                tuple(value(column[row]) for column in group.columns),
            )
            group.atoms[row] = atom
        return atom

    def to_instance(self) -> Instance:
        """Decode every row into the immutable tuple representation."""
        perf.incr("backend.columnar.decoded_rows", self._count)
        return Instance(self)

    # --------------------------------------------------- FactIndex / read API

    def _group_facts(self, group: _RelGroup) -> list[Atom]:
        """All live facts of *group*, through the per-group decode memo."""
        cached = group.facts_cache
        if cached is None:
            decode = self.decode_row
            cached = [decode(group, row) for row in group.live_rows()]
            group.facts_cache = cached
        else:
            perf.incr("backend.columnar.probe_hits")
        return cached

    def facts_of(self, relation: str) -> Collection[Atom]:
        groups = self._groups.get(relation)
        if not groups:
            return _EMPTY
        if len(groups) == 1:
            return self._group_facts(groups[0])
        out: list[Atom] = []
        for group in groups:
            out.extend(self._group_facts(group))
        return out

    def facts_with(self, relation: str, position: int, value: object) -> Collection[Atom]:
        groups = self._groups.get(relation)
        if not groups:
            return _EMPTY
        vid = self.values.lookup(value)
        if vid is None:
            return _EMPTY
        out: list[Atom] | None = None
        single: list[Atom] | None = None
        for group in groups:
            if position >= group.arity:
                continue
            cached = group.probe.get((position, vid))
            if cached is None:
                decode = self.decode_row
                cached = [
                    decode(group, row)
                    for row in group.index[position].get(vid, _EMPTY)
                ]
                group.probe[(position, vid)] = cached
            else:
                perf.incr("backend.columnar.probe_hits")
            if single is None and out is None:
                single = cached
            else:
                if out is None:
                    out = list(single) if single else []
                    single = None
                out.extend(cached)
        if out is not None:
            return out
        return single if single is not None else _EMPTY

    def facts_containing(self, value: object) -> Collection[Atom]:
        """The live facts in which *value* occurs (at any position)."""
        vid = self.values.lookup(value)
        if vid is None:
            return _EMPTY
        decode = self.decode_row
        out: list[Atom] = []
        for groups in self._groups.values():
            for group in groups:
                rows: set[int] = set()
                for position_index in group.index:
                    rows.update(position_index.get(vid, _EMPTY))
                for row in sorted(rows):
                    out.append(decode(group, row))
        return out

    def active_domain(self) -> frozenset:
        """The values occurring in some live fact."""
        value = self.values.value
        vids: set[int] = set()
        for groups in self._groups.values():
            for group in groups:
                for position_index in group.index:
                    vids.update(position_index)
        return frozenset(value(vid) for vid in vids)

    def nulls(self) -> frozenset:
        """The null values (labeled nulls, ground Skolem terms) of the store."""
        from repro.logic.values import is_null

        return frozenset(v for v in self.active_domain() if is_null(v))

    def __contains__(self, fact: Atom) -> bool:
        groups = self._groups.get(fact.relation)
        if not groups:
            return False
        lookup = self.values.lookup
        ids = []
        for arg in fact.args:
            vid = lookup(arg)
            if vid is None:
                return False
            ids.append(vid)
        key = tuple(ids)
        return any(
            group.arity == len(key) and key in group.row_of for group in groups
        )

    def relations(self) -> frozenset[str]:
        return frozenset(self._groups)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Atom]:
        decode = self.decode_row
        for groups in self._groups.values():
            for group in groups:
                for row in group.live_rows():
                    yield decode(group, row)

    def __repr__(self) -> str:
        return f"ColumnarInstance({self._count} facts, {len(self.values)} values)"


# -------------------------------------------------------------- clause plans


def _order_atoms(atoms: Sequence[Atom], bound: set[Variable]) -> list[Atom]:
    from repro.engine.matching import _order_atoms as order

    return order(atoms, bound)


class _AtomStep:
    """One body atom resolved against environment slots, in join order.

    ``checks`` hold positions whose slot is bound by an *earlier* step (their
    env value is valid before this atom runs, so they can seed index
    lookups); ``local_checks`` hold repeat occurrences of a variable first
    bound inside this very atom (only checkable after ``binds`` run).
    """

    __slots__ = ("relation", "arity", "checks", "local_checks", "binds")

    def __init__(self, atom: Atom, slot_of: dict[Variable, int], bound: set[Variable]):
        self.relation = atom.relation
        self.arity = atom.arity
        self.checks: list[tuple[int, int]] = []
        self.local_checks: list[tuple[int, int]] = []
        self.binds: list[tuple[int, int]] = []
        seen_here: set[Variable] = set()
        for position, arg in enumerate(atom.args):
            slot = slot_of[arg]
            if arg in bound:
                self.checks.append((position, slot))
            elif arg in seen_here:
                self.local_checks.append((position, slot))
            else:
                seen_here.add(arg)
                self.binds.append((position, slot))
        bound.update(seen_here)


def _make_builder(term: object, slot_of: dict[Variable, int], store: ColumnarInstance):
    """Compile a head/equality term to an env -> value-id function.

    Skolem terms memoize on their argument-id tuple: re-firing a trigger
    reuses the id without reconstructing the interned FuncTerm.
    """
    values = store.values
    if isinstance(term, Variable):
        slot = slot_of[term]
        return lambda env: env[slot]
    if isinstance(term, FuncTerm) and not is_ground(term):
        arg_builders = tuple(_make_builder(a, slot_of, store) for a in term.args)
        function = term.function
        cache: dict[tuple[int, ...], int] = {}

        def build(env: list[int]) -> int:
            key = tuple(builder(env) for builder in arg_builders)
            vid = cache.get(key)
            if vid is None:
                term_value = FuncTerm(
                    function, tuple(values.value(arg) for arg in key)
                )
                vid = values.intern(term_value)
                cache[key] = vid
            return vid

        return build
    # Ground term (constant, null, or variable-free Skolem term): fixed id.
    vid = values.intern(term)
    return lambda env: vid


class _ClausePlan:
    """A Skolemized clause compiled against one (or a pair of) stores."""

    def __init__(self, clause: SOClause, source: ColumnarInstance, target: ColumnarInstance):
        self.clause = clause
        self.source = source
        self.target = target
        self.slot_of: dict[Variable, int] = {}
        for atom in clause.body:
            for arg in atom.args:
                if not isinstance(arg, Variable):
                    raise ChaseError(
                        f"columnar backend: non-variable body argument {arg!r}"
                    )
                self.slot_of.setdefault(arg, len(self.slot_of))
        self.slots = len(self.slot_of)
        self.equalities = tuple(
            (_make_builder(left, self.slot_of, target), _make_builder(right, self.slot_of, target))
            for left, right in clause.equalities
        )
        self.heads = tuple(
            (
                target.group(atom.relation, atom.arity),
                tuple(_make_builder(arg, self.slot_of, target) for arg in atom.args),
            )
            for atom in clause.head
        )
        self._full_steps: list[_AtomStep] | None = None
        self._seeded_steps: dict[int, tuple[_AtomStep, list[_AtomStep]]] = {}

    def full_steps(self) -> list[_AtomStep]:
        if self._full_steps is None:
            bound: set[Variable] = set()
            self._full_steps = [
                _AtomStep(atom, self.slot_of, bound)
                for atom in _order_atoms(self.clause.body, set())
            ]
        return self._full_steps

    def seeded_steps(self, seed_index: int) -> tuple[_AtomStep, list[_AtomStep]]:
        """The plan seeding atom *seed_index* from a delta row: (seed, rest)."""
        cached = self._seeded_steps.get(seed_index)
        if cached is None:
            body = self.clause.body
            seed_atom = body[seed_index]
            bound: set[Variable] = set()
            seed = _AtomStep(seed_atom, self.slot_of, bound)
            rest_atoms = body[:seed_index] + body[seed_index + 1:]
            rest = [
                _AtomStep(atom, self.slot_of, bound)
                for atom in _order_atoms(rest_atoms, set(bound))
            ]
            cached = (seed, rest)
            self._seeded_steps[seed_index] = cached
        return cached

    # ---------------------------------------------------------------- matching

    def _candidates(
        self, step: _AtomStep, env: list[int], stats: "_Stats"
    ) -> Iterable[tuple[_RelGroup, Iterable[int]]]:
        """Candidate (group, rows) for *step*, from the most selective index."""
        groups = self.source._groups.get(step.relation)
        if not groups:
            return ()
        out = []
        for group in groups:
            if group.arity != step.arity:
                continue
            stats.joins += 1
            best: list[int] | None = None
            for position, slot in step.checks:
                bucket = group.index[position].get(env[slot])
                if bucket is None:
                    best = []
                    break
                if best is None or len(bucket) < len(best):
                    best = bucket
            if best is None:
                out.append((group, group.live_rows()))
            elif best:
                out.append((group, best))
        return out

    def _match(
        self, steps: list[_AtomStep], index: int, env: list[int], stats: "_Stats"
    ) -> Iterator[list[int]]:
        if index == len(steps):
            yield env
            return
        step = steps[index]
        checks = step.checks
        local_checks = step.local_checks
        binds = step.binds
        for group, rows in self._candidates(step, env, stats):
            columns = group.columns
            for row in rows:
                ok = True
                for position, slot in checks:
                    if columns[position][row] != env[slot]:
                        ok = False
                        break
                if not ok:
                    continue
                for position, slot in binds:
                    env[slot] = columns[position][row]
                for position, slot in local_checks:
                    if columns[position][row] != env[slot]:
                        ok = False
                        break
                if not ok:
                    continue
                yield from self._match(steps, index + 1, env, stats)
        for _, slot in binds:
            env[slot] = -1

    def stream_assignments(self, stats: "_Stats") -> Iterator[list[int]]:
        """Yield live environments over the full source store.

        The yielded list is *borrowed*: it is mutated by the next step of the
        iteration, so callers must consume (or copy) it before advancing.
        Safe to feed straight into :meth:`emit` when the plan's target store
        is distinct from its source store (the exchange case).
        """
        env = [-1] * self.slots
        return self._match(self.full_steps(), 0, env, stats)

    def full_assignments(self, stats: "_Stats") -> list[tuple[int, ...]]:
        """Every satisfying environment over the full source store."""
        return [tuple(e) for e in self.stream_assignments(stats)]

    def delta_assignments(
        self, delta: dict[tuple[str, int], list[int]], stats: "_Stats"
    ) -> list[tuple[int, ...]]:
        """Environments whose match uses at least one delta row (deduplicated)."""
        seen: set[tuple[int, ...]] = set()
        out: list[tuple[int, ...]] = []
        body = self.clause.body
        for seed_index, atom in enumerate(body):
            rows = delta.get((atom.relation, atom.arity))
            if not rows:
                continue
            seed, rest = self.seeded_steps(seed_index)
            group = self.source.group(atom.relation, atom.arity)
            columns = group.columns
            for row in rows:
                env = [-1] * self.slots
                ok = True
                for position, slot in seed.binds:
                    env[slot] = columns[position][row]
                for position, slot in seed.local_checks:
                    if columns[position][row] != env[slot]:
                        ok = False
                        break
                if not ok:
                    continue
                stats.joins += 1
                for result in self._match(rest, 0, env, stats):
                    key = tuple(result)
                    if key not in seen:
                        seen.add(key)
                        out.append(key)
        return out

    # ---------------------------------------------------------------- emission

    def emit(self, env: Sequence[int]) -> Iterator[tuple[_RelGroup, int]]:
        """Yield the (group, row) of each genuinely new head fact.

        *env* is read, never written, so streamed (borrowed) environments
        from :meth:`stream_assignments` are safe to pass directly.
        """
        for left, right in self.equalities:
            if left(env) != right(env):
                return
        target = self.target
        for group, builders in self.heads:
            row = target.add_row(group, tuple(builder(env) for builder in builders))
            if row is not None:
                yield group, row


class _Stats:
    __slots__ = ("joins",)

    def __init__(self) -> None:
        self.joins = 0

    def flush(self) -> None:
        if self.joins:
            perf.incr("backend.columnar.joins", self.joins)


# ----------------------------------------------------------------- engines


def columnar_fixpoint_rounds(
    store: ColumnarInstance,
    clauses: Sequence[SOClause],
    *,
    max_rounds: int | None = None,
    budget: int | None = None,
    predicted: int | None = None,
    fact_hook=None,
) -> tuple[int, bool]:
    """Iterate *clauses* over *store* to a fixpoint, semi-naively, in place.

    Mirrors the tuple engine's loop exactly -- same per-round delta
    discipline and intra-round visibility -- so a bounded run derives the
    same facts in the same number of rounds.  Returns ``(rounds,
    reached_fixpoint)``.
    """
    plans = [_ClausePlan(clause, store, store) for clause in clauses]
    stats = _Stats()
    total_facts = len(store)
    rounds = 0
    changed = True
    delta: dict[tuple[str, int], list[int]] | None = None
    try:
        while changed and (max_rounds is None or rounds < max_rounds):
            changed = False
            rounds += 1
            perf.incr("chase.fixpoint_rounds")
            new_delta: dict[tuple[str, int], list[int]] = {}
            for plan in plans:
                if delta is None:
                    assignments = plan.full_assignments(stats)
                else:
                    assignments = plan.delta_assignments(delta, stats)
                for assignment in assignments:
                    for group, row in plan.emit(assignment):
                        changed = True
                        new_delta.setdefault(
                            (group.relation, group.arity), []
                        ).append(row)
                        perf.incr("chase.facts")
                        total_facts += 1
                        if budget is not None and total_facts > budget:
                            raise BudgetExceeded(
                                "fixpoint chase", budget, predicted=predicted,
                                hint="Lint finding CC002 predicts the "
                                "chase-size bound; raise budget= or bound "
                                "the run with max_rounds=.",
                            )
                        if fact_hook is not None:
                            fact_hook(store.decode_row(group, row))
            delta = new_delta
    finally:
        stats.flush()
    return rounds, not changed


def columnar_execute_exchange(
    source: Instance, clauses: Sequence[SOClause]
) -> Instance:
    """Single-pass (source-to-target) execution over columnar stores.

    The source loads into one store, head facts accumulate in a second store
    sharing the same :class:`ValueTable`, and the result decodes to exactly
    the fact set of :func:`repro.engine.chase.chase` (given
    :func:`~repro.engine.chase.compile_clause_program`'s clauses).
    """
    values = ValueTable()
    source_store = ColumnarInstance(source, values=values)
    target_store = ColumnarInstance(values=values)
    stats = _Stats()
    try:
        facts = 0
        for clause in clauses:
            plan = _ClausePlan(clause, source_store, target_store)
            # Streaming is safe here: the plan matches over the source store
            # and emits into a distinct target store, so emission can never
            # invalidate the in-flight iteration.
            for env in plan.stream_assignments(stats):
                for _ in plan.emit(env):
                    facts += 1
        perf.incr("chase.facts", facts)
    finally:
        stats.flush()
    return target_store.to_instance()


__all__ = [
    "ColumnarInstance",
    "ValueTable",
    "columnar_execute_exchange",
    "columnar_fixpoint_rounds",
]
