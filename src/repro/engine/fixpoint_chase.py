"""The oblivious fixpoint chase, guided by the static termination verdict.

The single-pass engines of :mod:`repro.engine.chase` only ever match bodies
against the *source* instance -- correct for the source-to-target setting of
the paper, where a dependency's output can never re-trigger it.  This engine
iterates the oblivious chase over its own output until a fixpoint, which is
what general (target or same-schema) tgds need -- e.g. transitive closure, or
the deliberately diverging programs exercised by the analyzer tests.

Before chasing, the engine consults the static termination analyses:

- **weakly acyclic** program: the chase is guaranteed to terminate, so it
  runs to the natural fixpoint (no round bound needed); the verdict's
  ``depth_bound`` caps the Skolem-nesting depth of every null created, which
  the tests verify.
- **not weakly acyclic**: the engine climbs the termination hierarchy of
  :func:`repro.analysis.acyclicity.classify_termination` (joint acyclicity,
  super-weak acyclicity, MFA, stratified MFA -- lint findings
  ``TD002``-``TD004`` and ``TD007``).  Any rung that certifies the set lets
  the chase run unbounded; only when *no* rung admits it does the engine
  refuse without an explicit ``max_rounds``, with a
  :class:`~repro.errors.ChaseError` pointing at the ``TD001`` finding.
  With ``max_rounds`` it runs at most that many rounds and reports whether
  a fixpoint was actually reached.

A ``budget=`` caps the total number of facts: when the static bounds
(the coarse :func:`repro.analysis.cost.chase_cost` estimate or the refined
per-relation tier bound of :func:`repro.analysis.frontier.frontier_report`,
whichever is tighter) already prove the chase fits, the cap costs nothing
at runtime; otherwise every derived fact counts against it and crossing it
raises :class:`~repro.errors.BudgetExceeded` immediately instead of
grinding on a blowup (lint finding ``CC002`` predicts this).  The
``"auto"`` backend additionally consults the complexity tier: bounded runs
of non-elementary-tier (uncertified) sets get a default fact budget so a
runaway chase fails fast.

Nulls are ground Skolem terms, exactly as in the single-pass engines, so
re-firing a trigger re-derives the *same* fact and the fixpoint is
well-defined.

    >>> from repro.logic.parser import parse_instance, parse_tgd
    >>> tc = parse_tgd("E(x,y) & E(y,z) -> E(x,z)")
    >>> result = fixpoint_chase(parse_instance("E(a,b), E(b,c), E(c,d)"), [tc])
    >>> result.reached_fixpoint, len(result.instance)
    (True, 6)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro import perf
from repro.errors import BudgetExceeded, ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import substitute_term
from repro.logic.tgds import STTgd
from repro.engine.builder import InstanceBuilder
from repro.engine.chase import _rename_functions_apart
from repro.engine.matching import find_delta_matches, find_matches

if TYPE_CHECKING:
    from repro.analysis.acyclicity import TerminationClass
    from repro.analysis.frontier import ComplexityTier
    from repro.analysis.termination import TerminationReport


@dataclass(frozen=True)
class FixpointChaseResult:
    """The outcome of a fixpoint chase run.

    ``instance`` contains the input facts plus everything derived;
    ``reached_fixpoint`` is False only when ``max_rounds`` cut the run short.
    ``termination`` is the static weak-acyclicity verdict the engine
    consulted, and ``termination_class`` the hierarchy rung that certified
    the run (``None`` for a bounded run of an uncertified set).
    """

    instance: Instance
    rounds: int
    reached_fixpoint: bool
    termination: TerminationReport
    termination_class: "TerminationClass | None" = None
    #: The backend that actually executed the run ("tuple"/"columnar"/"sql").
    backend: str = "tuple"
    #: The complexity tier the "auto" policy consulted (None otherwise).
    tier: "ComplexityTier | None" = None

    def __iter__(self) -> "Iterator[Atom]":
        return iter(self.instance)


def _clauses_of(dependencies: Sequence[object]) -> list[SOClause]:
    """Normalize tgds of any formalism into Skolemized clauses, renamed apart."""
    clauses: list[SOClause] = []
    for index, dep in enumerate(dependencies):
        if isinstance(dep, STTgd):
            head = dep.skolem_head(lambda var: f"d{index}_f_{var.name}")
            clauses.append(SOClause(body=dep.body, equalities=(), head=head))
        elif isinstance(dep, NestedTgd):
            clauses.extend(dep.skolemize(function_prefix=f"d{index}_").clauses)
        elif isinstance(dep, SOTgd):
            clauses.extend(_rename_functions_apart(dep, f"d{index}_").clauses)
        else:
            raise ChaseError(f"fixpoint chase cannot run dependency {dep!r}")
    return clauses


def fixpoint_chase(
    instance: Instance,
    dependencies: "STTgd | NestedTgd | SOTgd | Iterable[object]",
    *,
    max_rounds: int | None = None,
    budget: int | None = None,
    fact_hook: "Callable[[Atom], None] | None" = None,
    backend: str = "tuple",
) -> FixpointChaseResult:
    """Chase *instance* with tgds of any formalism until a fixpoint.

    *dependencies* may be a single dependency or an iterable mixing s-t
    tgds (which, unlike nested/SO tgds, may share source and target
    relations), nested tgds, and SO tgds.  The result instance contains the
    input facts.

    The static termination hierarchy gates the run: a program certified by
    *any* rung (weakly/jointly/super-weakly/model-faithfully acyclic) runs
    unbounded; otherwise *max_rounds* is required and the result's
    ``reached_fixpoint`` records whether the bound was actually reached.

    *budget* caps the total number of facts (input plus derived); the chase
    raises :class:`~repro.errors.BudgetExceeded` the moment it would cross
    the cap, unless the static cost model already proves it cannot.
    *fact_hook* is called with every newly derived fact (the MFA test of the
    acyclicity analysis watches the critical-instance chase through it);
    exceptions it raises propagate to the caller.

    *backend* selects the execution engine: ``"tuple"`` (the reference
    engine below), ``"columnar"`` (:mod:`repro.engine.columnar`; identical
    round-by-round semantics over dense integer arrays), ``"sql"``
    (:mod:`repro.engine.sql_backend`; semi-naive SQLite pushdown -- derives
    the same fixpoint, though a round there only sees the previous round's
    facts, so bounded runs can need more rounds than the tuple engine), or
    ``"auto"`` (:func:`repro.engine.dispatch.choose_backend` picks by
    instance size, the static certification, and the complexity tier:
    PTIME-tier programs reach SQL pushdown at a lower threshold, and
    bounded runs of non-elementary-tier programs get a default fact
    budget).  The result's ``backend`` and ``tier`` fields record which
    engine actually ran and which tier the policy consulted.
    """
    from repro.analysis.termination import termination_report

    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    verdict = termination_report(deps)
    hierarchy = None
    if not verdict.weakly_acyclic and max_rounds is None:
        from repro.analysis.acyclicity import classify_termination

        hierarchy = classify_termination(deps, weak=verdict)
        if not hierarchy.guarantees_termination:
            raise ChaseError(
                "no rung of the termination hierarchy certifies the dependency "
                "set (lint finding TD001: not weakly, jointly, or super-weakly "
                "acyclic, not MFA even per stratum, and MFA found "
                + (
                    f"the cyclic term {hierarchy.mfa_cyclic_term}"
                    if hierarchy.mfa_cyclic_term is not None
                    else "no certificate"
                )
                + "): the fixpoint chase may diverge.  Pass max_rounds=... to "
                "run a bounded number of rounds anyway, or inspect the witness "
                "cycle with repro.analysis.static.analyze / `repro lint`."
            )

    enforce_budget = budget is not None
    predicted: int | None = None
    total_facts = 0
    frontier = None
    if budget is not None or backend == "auto":
        # Both the budget check and the "auto" policy want the frontier
        # certificate: the former for the tightest static fact bound, the
        # latter for the complexity tier.
        from repro.analysis.frontier import frontier_report

        if hierarchy is None:
            from repro.analysis.acyclicity import classify_termination

            hierarchy = classify_termination(deps, weak=verdict)
        frontier = frontier_report(deps, verdict=hierarchy)
    if budget is not None and frontier is not None:
        from repro.analysis.cost import chase_budget

        domain = {value for fact in instance for value in fact.args}
        predicted = chase_budget(deps, len(domain), verdict=hierarchy)
        if predicted is not None and predicted <= budget:
            enforce_budget = False  # statically certified to fit the budget
        total_facts = len(instance)
        if enforce_budget and total_facts > budget:
            raise BudgetExceeded(
                "fixpoint chase", budget, predicted=predicted,
                hint="The input instance alone is larger than the budget.",
            )

    clauses = _clauses_of(deps)

    from repro.engine.dispatch import choose_backend

    certified = verdict.weakly_acyclic or (
        hierarchy is not None and hierarchy.guarantees_termination
    )
    choice = choose_backend(
        backend,
        input_size=len(instance),
        clauses=clauses,
        certified=certified,
        needs_fact_stream=fact_hook is not None,
        tier=frontier.tier.tier if frontier is not None else None,
    )
    if budget is None and choice.forced_budget is not None:
        # "auto" caps bounded runs of non-elementary-tier sets; no static
        # bound exists for them, so the cap is always enforced.
        budget = choice.forced_budget
        enforce_budget = True
        total_facts = len(instance)
        if total_facts > budget:
            raise BudgetExceeded(
                "fixpoint chase", budget, predicted=None,
                hint="The input instance alone exceeds the automatic budget "
                "imposed on non-elementary-tier programs; pass budget= "
                "explicitly to raise it.",
            )

    def finish(result: Instance, rounds: int, reached: bool) -> FixpointChaseResult:
        if hierarchy is not None:
            termination_class = hierarchy.cls
        elif verdict.weakly_acyclic:
            from repro.analysis.acyclicity import TerminationClass

            termination_class = TerminationClass.WEAKLY_ACYCLIC
        else:
            termination_class = None
        return FixpointChaseResult(
            instance=result,
            rounds=rounds,
            reached_fixpoint=reached,
            termination=verdict,
            termination_class=termination_class,
            backend=choice.backend,
            tier=choice.tier,
        )

    if choice.backend == "columnar":
        from repro.engine.columnar import ColumnarInstance, columnar_fixpoint_rounds

        store = ColumnarInstance(instance)
        rounds, reached = columnar_fixpoint_rounds(
            store,
            clauses,
            max_rounds=max_rounds,
            budget=budget if enforce_budget else None,
            predicted=predicted,
            fact_hook=fact_hook,
        )
        return finish(store.to_instance(), rounds, reached)
    if choice.backend == "sql":
        from repro.engine.sql_backend import (
            check_sql_backend_supported,
            sql_fixpoint_chase,
        )

        check_sql_backend_supported(clauses, what="fixpoint chase")
        result, rounds, reached = sql_fixpoint_chase(
            instance,
            clauses,
            max_rounds=max_rounds,
            budget=budget if enforce_budget else None,
            predicted=predicted,
        )
        return finish(result, rounds, reached)

    builder = InstanceBuilder(instance)
    rounds = 0
    changed = True
    delta: list[Atom] | None = None  # None: the first round matches everything
    while changed and (max_rounds is None or rounds < max_rounds):
        changed = False
        rounds += 1
        perf.incr("chase.fixpoint_rounds")
        new_delta: list[Atom] = []
        for clause in clauses:
            # Semi-naive rounds: the first round fires every trigger; later
            # rounds only fire triggers whose body uses at least one fact of
            # the previous round's delta -- a match over older facts already
            # fired (the oblivious chase is monotone and head facts are
            # determined by the assignment alone, so re-firing is redundant).
            if delta is None:
                assignments = list(find_matches(clause.body, builder))
            else:
                assignments = find_delta_matches(clause.body, builder, delta)
            for assignment in assignments:
                if any(
                    substitute_term(left, assignment) != substitute_term(right, assignment)
                    for left, right in clause.equalities
                ):
                    continue
                for atom in clause.head:
                    args = tuple(substitute_term(t, assignment) for t in atom.args)
                    fact = Atom(atom.relation, args)
                    if builder.add(fact):
                        changed = True
                        new_delta.append(fact)
                        perf.incr("chase.facts")
                        total_facts += 1
                        if enforce_budget and budget is not None and total_facts > budget:
                            raise BudgetExceeded(
                                "fixpoint chase", budget, predicted=predicted,
                                hint="Lint finding CC002 predicts the chase-size "
                                "bound; raise budget= or bound the run with "
                                "max_rounds=.",
                            )
                        if fact_hook is not None:
                            fact_hook(fact)
        delta = new_delta
    return finish(builder.freeze(), rounds, not changed)


__all__ = ["FixpointChaseResult", "fixpoint_chase"]
