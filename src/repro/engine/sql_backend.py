"""SQL-pushdown chase execution on SQLite.

"Laconic schema mappings" (PAPERS.md) shows that (core) universal solutions
for the mapping classes this library certifies are computable by plain SQL
queries.  This module turns that observation into an execution backend: a
Skolemized clause program (the same :class:`~repro.logic.sotgd.SOClause`
form every chase engine consumes) compiles to ``INSERT ... SELECT``
statements over one TEXT table per relation, and the database -- not a
Python loop -- performs the joins.

Three entry points:

- :func:`sql_execute_exchange` -- single-pass (source-to-target) execution
  of a clause program: evaluate every clause over the ``src_``-prefixed
  source tables, insert into the ``tgt_``-prefixed target tables, decode.
  Matches :func:`repro.engine.chase.chase` fact for fact when given
  :func:`~repro.engine.chase.compile_clause_program`'s output.
- :func:`sql_fixpoint_chase` -- the recursive (same-schema) case as a
  **semi-naive delta loop**: per relation ``R`` the backend keeps ``R``
  (all facts), ``R__delta`` (the previous round's new facts) and
  ``R__next`` (this round's emissions).  Every round evaluates each clause
  once per body position seeded from a delta table, then computes the
  genuinely new rows with ``SELECT * FROM R__next EXCEPT SELECT * FROM R``
  and rotates them into the delta.  This replays the semi-naive Python
  fixpoint of :mod:`repro.engine.fixpoint_chase` inside SQLite.
- :func:`sql_chase_egds` -- egds by **equalization round-trips**: each egd
  body compiles to a ``SELECT`` producing the value pairs to merge; the
  merges run through the same :class:`~repro.engine.egd_chase.UnionFind`
  (so representatives match the tuple engine), and one ``UPDATE`` per
  (relation, position) joined against a temporary merge table rewrites the
  instance in place.  The loop repeats until no egd produces a pair.

Values cross the SQL boundary through an **injective textual encoding**
(:func:`encode_value` / :func:`decode_value`): constants are tagged ``c``,
labeled nulls ``n``, and ground Skolem terms ``f`` with *length-prefixed*
components, so constants whose names contain ``,``/``(``/``)`` can never
collide with (or inside) a generated Skolem label -- the collision the
naive string concatenation of early ``export/sql.py`` versions allowed.
Because the encoding is injective and parseable, results decode back into
the hash-consed value objects of :mod:`repro.logic`, and the SQL backend
returns *exactly* the fact set the tuple engines produce (not merely an
isomorphic copy).

A fourth entry point, :func:`sql_core`, pushes *core computation* down
(following the "Laconic schema mappings" observation that cores of the
certified mapping classes are SQL-computable): each candidate elimination
of the core worklist -- "does the f-block of null ``x`` map into the
instance minus the facts containing ``x``?" -- compiles to one SELECT join
(:class:`_BlockQuery`) and eliminations apply as exact-row DELETEs.  When
the ``duckdb`` module is importable the session can run on an in-memory
DuckDB connection for vectorized joins; SQLite remains the default and the
fallback.

Perf counters: ``backend.sql.statements`` (statements executed),
``backend.sql.encoded_rows`` / ``backend.sql.decoded_rows`` (rows crossing
the boundary in each direction); for the core pushdown additionally
``core.sql.blocks``, ``core.sql.queries`` (eliminating-hom SELECTs),
``core.sql.eliminations``, ``core.sql.rigid_blocks``, and
``core.sql.duckdb_sessions``.
"""

from __future__ import annotations

import re
import sqlite3
from collections import deque
from typing import Any, Callable, Iterable, Sequence

from repro import perf
from repro.errors import BudgetExceeded, ChaseError, DependencyError, EgdViolation
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.sotgd import SOClause
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null, Variable, is_null

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")

#: Suffixes of the backend's working tables; relation names must not end in
#: them (so a user relation can never alias a delta table).
_RESERVED_SUFFIXES = ("__delta", "__next")


class SQLCompileError(DependencyError):
    """A clause program (or instance) cannot be compiled to the SQL backend."""


def _check_identifier(name: str) -> str:
    if not _IDENTIFIER.match(name):
        raise SQLCompileError(f"{name!r} is not usable as an SQL identifier")
    if name.endswith(_RESERVED_SUFFIXES):
        raise SQLCompileError(f"{name!r} collides with a backend working table")
    return name


def _sql_literal(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


# ------------------------------------------------------------ value encoding


def encode_value(value: object) -> str:
    """Injectively encode an instance value as TEXT for the SQL backend.

    Constants are tagged ``c``, labeled nulls ``n``; ground Skolem terms are
    tagged ``f`` and carry each component *length-prefixed* (``len:text``),
    so adversarial constant names containing ``,``/``(``/``)``/digits cannot
    forge or collide with a Skolem label.

        >>> encode_value(Constant("a"))
        'ca'
        >>> encode_value(FuncTerm("f_y", (Constant("a,b"), Constant("c"))))
        'ff_y(4:ca,b,2:cc)'
    """
    if isinstance(value, Constant):
        return "c" + str(value.name)
    if isinstance(value, Null):
        return "n" + str(value.name)
    if isinstance(value, FuncTerm):
        pieces = ["f", value.function, "("]
        for index, arg in enumerate(value.args):
            if index:
                pieces.append(",")
            encoded = encode_value(arg)
            pieces.append(f"{len(encoded)}:{encoded}")
        pieces.append(")")
        return "".join(pieces)
    raise SQLCompileError(f"cannot encode value {value!r}")


def decode_value(text: str) -> object:
    """Invert :func:`encode_value`, re-interning through the logic layer.

        >>> decode_value('ff_y(4:ca,b,2:cc)')
        f_y(a,b, c)
    """
    value, end = _decode_at(text, 0, len(text))
    if end != len(text):
        raise DependencyError(f"trailing data in encoded value {text!r}")
    return value


def _decode_at(text: str, start: int, end: int) -> tuple[object, int]:
    tag = text[start]
    if tag == "c":
        return Constant(text[start + 1:end]), end
    if tag == "n":
        return Null(text[start + 1:end]), end
    if tag != "f":
        raise DependencyError(f"bad value tag {tag!r} in {text!r}")
    open_paren = text.index("(", start)
    function = text[start + 1:open_paren]
    args: list[object] = []
    pos = open_paren + 1
    while text[pos] != ")":
        colon = text.index(":", pos)
        length = int(text[pos:colon])
        arg, arg_end = _decode_at(text, colon + 1, colon + 1 + length)
        if arg_end != colon + 1 + length:
            raise DependencyError(f"bad component length in {text!r}")
        args.append(arg)
        pos = arg_end
        if text[pos] == ",":
            pos += 1
    return FuncTerm(function, tuple(args)), pos + 1


# ----------------------------------------------------------- clause compiler


class _CompiledClause:
    """One Skolemized clause, compiled to parameterizable INSERT ... SELECT.

    The FROM clause is produced per statement by a ``table_for(alias_index)``
    callback, which is how one compilation serves the full pass (all aliases
    over full tables) and every delta-seeded variant (one alias over the
    seeded relation's ``__delta`` table).
    """

    def __init__(self, clause: SOClause):
        self.body_relations: list[str] = []
        self.aliases: list[str] = []
        self.variable_columns: dict[Variable, str] = {}
        self.conditions: list[str] = []
        for index, atom in enumerate(clause.body):
            _check_identifier(atom.relation)
            alias = f"a{index}"
            self.aliases.append(alias)
            self.body_relations.append(atom.relation)
            for position, arg in enumerate(atom.args):
                column = f"{alias}.c{position}"
                if not isinstance(arg, Variable):
                    raise SQLCompileError(f"non-variable body argument {arg!r}")
                if arg in self.variable_columns:
                    self.conditions.append(f"{column} = {self.variable_columns[arg]}")
                else:
                    self.variable_columns[arg] = column
        for left, right in clause.equalities:
            self.conditions.append(f"{self.expression(left)} = {self.expression(right)}")
        self.heads: list[tuple[str, str]] = []
        for atom in clause.head:
            _check_identifier(atom.relation)
            select_list = ", ".join(self.expression(arg) for arg in atom.args)
            self.heads.append((atom.relation, select_list))

    def expression(self, term: object) -> str:
        """The SQL expression computing the encoded text of *term*."""
        if isinstance(term, Variable):
            try:
                return self.variable_columns[term]
            except KeyError:
                raise SQLCompileError(f"head variable {term!r} unbound in the body")
        if isinstance(term, (Constant, Null)):
            return _sql_literal(encode_value(term))
        if isinstance(term, FuncTerm):
            # Mirror encode_value: 'f<name>(' || len:arg || ',' || ... || ')'
            pieces = [_sql_literal(f"f{term.function}(")]
            for index, arg in enumerate(term.args):
                if index:
                    pieces.append(_sql_literal(","))
                inner = self.expression(arg)
                pieces.append(f"length({inner}) || ':' || {inner}")
            pieces.append(_sql_literal(")"))
            return " || ".join(pieces)
        raise SQLCompileError(f"cannot compile head term {term!r}")

    def insert_statements(
        self, table_for: Callable[[int], str], target_prefix: str, target_suffix: str
    ) -> list[str]:
        from_clause = ", ".join(
            f'"{table_for(i)}" AS {alias}' for i, alias in enumerate(self.aliases)
        )
        where = (" WHERE " + " AND ".join(self.conditions)) if self.conditions else ""
        return [
            f'INSERT INTO "{target_prefix}{relation}{target_suffix}" '
            f"SELECT DISTINCT {select_list} FROM {from_clause}{where}"
            for relation, select_list in self.heads
        ]


def compile_clauses(clauses: Iterable[SOClause]) -> list[_CompiledClause]:
    """Compile a clause program; raises :class:`SQLCompileError` if unsupported."""
    return [_CompiledClause(clause) for clause in clauses]


def sql_compilable(clauses: Iterable[SOClause]) -> bool:
    """Can this clause program run on the SQL backend?  (Used by ``auto``.)"""
    try:
        compile_clauses(clauses)
    except DependencyError:
        return False
    return True


# ------------------------------------------------------------ schema loading


def _collect_arities(
    facts: Iterable[Atom], clauses: Sequence[SOClause]
) -> dict[str, int]:
    """One table per relation: every occurrence must agree on the arity."""
    arities: dict[str, int] = {}

    def note(relation: str, arity: int) -> None:
        if arity == 0:
            raise SQLCompileError(f"relation {relation} has arity 0 (no columns)")
        known = arities.setdefault(relation, arity)
        if known != arity:
            raise SQLCompileError(
                f"relation {relation} used with arities {known} and {arity}: "
                "the SQL backend needs one fixed-width table per relation"
            )

    for fact in facts:
        note(_check_identifier(fact.relation), fact.arity)
    for clause in clauses:
        for atom in clause.body:
            note(_check_identifier(atom.relation), atom.arity)
        for atom in clause.head:
            note(_check_identifier(atom.relation), atom.arity)
    return arities


class _Session:
    """A connection plus statement/row accounting flushed to :mod:`repro.perf`.

    Defaults to an in-memory SQLite connection; callers may inject any
    DB-API-compatible connection instead (the core pushdown hands in a
    DuckDB connection when the module is importable -- only the portable
    subset of SQL used here runs on it: ``?`` placeholders, ``CREATE
    TABLE``/``CREATE INDEX``, SELECT/INSERT/DELETE without ``rowcount``).
    """

    def __init__(self, connection: Any = None) -> None:
        self.connection = (
            connection if connection is not None else sqlite3.connect(":memory:")
        )
        self.cursor = self.connection.cursor()
        self.statements = 0
        self.encoded_rows = 0
        self.decoded_rows = 0
        # Decoded-text memo: column values repeat across rows (every node of
        # a graph appears in many facts), so decoding each distinct text once
        # cuts the read-back cost well below the parse cost per cell.
        self._decoded: dict[str, object] = {}

    def execute(self, statement: str, parameters: Sequence = ()) -> sqlite3.Cursor:
        self.statements += 1
        return self.cursor.execute(statement, parameters)

    def executemany(self, statement: str, rows: list) -> None:
        self.statements += 1
        self.encoded_rows += len(rows)
        self.cursor.executemany(statement, rows)

    def create_table(self, name: str, arity: int) -> None:
        columns = ", ".join(f"c{i} TEXT" for i in range(max(arity, 1)))
        self.execute(f'CREATE TABLE "{name}" ({columns})')

    def create_indexes(self, name: str, arity: int) -> None:
        for i in range(arity):
            self.execute(f'CREATE INDEX "idx_{name}_{i}" ON "{name}"(c{i})')

    def load_facts(self, table: str, arity: int, facts: Iterable[Atom]) -> None:
        rows = [tuple(encode_value(arg) for arg in fact.args) for fact in facts]
        if rows:
            placeholders = ", ".join("?" for _ in range(arity))
            self.executemany(f'INSERT INTO "{table}" VALUES ({placeholders})', rows)

    def read_facts(self, table: str, relation: str) -> list[Atom]:
        self.execute(f'SELECT DISTINCT * FROM "{table}"')
        facts = []
        memo = self._decoded
        for row in self.cursor.fetchall():
            self.decoded_rows += 1
            args = []
            for text in row:
                value = memo.get(text)
                if value is None:
                    value = memo[text] = decode_value(text)
                args.append(value)
            facts.append(Atom(relation, tuple(args)))
        return facts

    def close(self) -> None:
        perf.incr("backend.sql.statements", self.statements)
        if self.encoded_rows:
            perf.incr("backend.sql.encoded_rows", self.encoded_rows)
        if self.decoded_rows:
            perf.incr("backend.sql.decoded_rows", self.decoded_rows)
        self.connection.close()


# ------------------------------------------------------- single-pass exchange


def sql_execute_exchange(source: Instance, clauses: Sequence[SOClause]) -> Instance:
    """Run a single-pass (source-to-target) clause program on SQLite.

    Source relations load into ``src_``-prefixed tables and head facts land
    in ``tgt_``-prefixed tables, so a relation appearing on both sides (legal
    for s-t tgds over overlapping schemas) is matched strictly against the
    *source* state -- the single-pass semantics of
    :func:`repro.engine.chase.chase`, which this function replays exactly.
    """
    compiled = compile_clauses(clauses)
    arities = _collect_arities(source, clauses)
    source_relations = set(source.relations())
    for clause in clauses:
        source_relations.update(atom.relation for atom in clause.body)
    target_relations = {
        relation for clause in compiled for relation, _ in clause.heads
    }
    session = _Session()
    try:
        for relation in sorted(source_relations):
            session.create_table(f"src_{relation}", arities[relation])
        for relation in sorted(target_relations):
            session.create_table(f"tgt_{relation}", arities[relation])
        for relation in sorted(source_relations):
            session.load_facts(
                f"src_{relation}", arities[relation], source.facts_of(relation)
            )
            session.create_indexes(f"src_{relation}", arities[relation])
        for clause in compiled:
            for statement in clause.insert_statements(
                lambda i, clause=clause: f"src_{clause.body_relations[i]}",
                "tgt_", "",
            ):
                session.execute(statement)
        facts: list[Atom] = []
        for relation in sorted(target_relations):
            facts.extend(session.read_facts(f"tgt_{relation}", relation))
        return Instance(facts)
    finally:
        session.close()


# --------------------------------------------------- semi-naive fixpoint loop


def sql_fixpoint_chase(
    instance: Instance,
    clauses: Sequence[SOClause],
    *,
    max_rounds: int | None = None,
    budget: int | None = None,
    predicted: int | None = None,
) -> tuple[Instance, int, bool]:
    """Iterate a clause program to a fixpoint inside SQLite, semi-naively.

    Returns ``(instance, rounds, reached_fixpoint)`` exactly as the tuple
    engine would compute them (the fixpoint of the oblivious chase is unique:
    head facts are determined by the body assignment alone).  Callers gate
    termination: pass ``max_rounds`` for uncertified programs.

    Round 1 evaluates every clause over the full tables; each later round
    evaluates one delta-seeded statement per (clause, body position) --
    ``FROM R__delta AS a_j`` with the other aliases over the full tables --
    and rotates ``R__next EXCEPT R`` into ``R__delta``.  *budget* caps the
    total fact count across rounds (:class:`~repro.errors.BudgetExceeded`).
    """
    compiled = compile_clauses(clauses)
    arities = _collect_arities(instance, clauses)
    head_relations = sorted({r for clause in compiled for r, _ in clause.heads})
    session = _Session()
    try:
        for relation, arity in sorted(arities.items()):
            session.create_table(relation, arity)
            session.create_indexes(relation, arity)
        for relation in head_relations:
            session.create_table(f"{relation}__next", arities[relation])
            session.create_table(f"{relation}__delta", arities[relation])
        for relation, arity in sorted(arities.items()):
            session.load_facts(relation, arity, instance.facts_of(relation))

        total_facts = len(instance)
        # Relations whose delta is currently non-empty (round 1: everything
        # with at least one fact -- the "delta" is the whole input).
        delta_rows = {r: len(instance.facts_of(r)) for r in arities}
        rounds = 0
        changed = True
        first_round = True
        while changed and (max_rounds is None or rounds < max_rounds):
            changed = False
            rounds += 1
            perf.incr("chase.fixpoint_rounds")
            for clause in compiled:
                if first_round:
                    # Every match's alias-0 fact is an input fact, so one
                    # full-table statement per clause is complete.
                    if all(delta_rows.get(r, 0) for r in clause.body_relations):
                        for statement in clause.insert_statements(
                            lambda i, clause=clause: clause.body_relations[i], "", "__next"
                        ):
                            session.execute(statement)
                    continue
                for seed in range(len(clause.body_relations)):
                    if not delta_rows.get(clause.body_relations[seed], 0):
                        continue

                    def table_for(i: int, clause=clause, seed=seed) -> str:
                        relation = clause.body_relations[i]
                        return f"{relation}__delta" if i == seed else relation

                    for statement in clause.insert_statements(table_for, "", "__next"):
                        session.execute(statement)
            first_round = False
            delta_rows = {}
            for relation in head_relations:
                session.execute(f'DELETE FROM "{relation}__delta"')
                cursor = session.execute(
                    f'INSERT INTO "{relation}__delta" '
                    f'SELECT * FROM "{relation}__next" EXCEPT SELECT * FROM "{relation}"'
                )
                new_rows = max(cursor.rowcount, 0)
                session.execute(f'DELETE FROM "{relation}__next"')
                if not new_rows:
                    continue
                session.execute(
                    f'INSERT INTO "{relation}" SELECT * FROM "{relation}__delta"'
                )
                delta_rows[relation] = new_rows
                changed = True
                perf.incr("chase.facts", new_rows)
                total_facts += new_rows
                if budget is not None and total_facts > budget:
                    raise BudgetExceeded(
                        "fixpoint chase", budget, predicted=predicted,
                        hint="Lint finding CC002 predicts the chase-size "
                        "bound; raise budget= or bound the run with "
                        "max_rounds=.",
                    )
        facts: list[Atom] = []
        for relation in sorted(arities):
            facts.extend(session.read_facts(relation, relation))
        return Instance(facts), rounds, not changed
    finally:
        session.close()


# ------------------------------------------------- egd equalization round-trips


class _CompiledEgd:
    """An egd body compiled to a SELECT of the (left, right) pairs to merge."""

    def __init__(self, egd: Egd):
        clause_like = _CompiledClause(
            SOClause(body=egd.body, equalities=(), head=())
        )
        left = clause_like.variable_columns[egd.left]
        right = clause_like.variable_columns[egd.right]
        from_clause = ", ".join(
            f'"{relation}" AS {alias}'
            for relation, alias in zip(clause_like.body_relations, clause_like.aliases)
        )
        conditions = clause_like.conditions + [f"{left} <> {right}"]
        self.select = (
            f"SELECT DISTINCT {left}, {right} FROM {from_clause} "
            f"WHERE {' AND '.join(conditions)}"
        )


def sql_chase_egds(
    instance: Instance,
    egds: Sequence[Egd],
    *,
    allow_constant_merge: bool = False,
) -> tuple[Instance, dict]:
    """Chase *instance* with *egds* on SQLite by equalization round-trips.

    Each round SELECTs the value pairs every egd forces equal, merges them in
    a Python union-find (same representative policy as the tuple engine), and
    pushes the resulting rewrite back as one ``UPDATE`` per (relation,
    position) joined against a temporary merge table, followed by a
    deduplication pass.  Differentially equal to
    :func:`repro.engine.egd_chase.chase_egds`.
    """
    from repro.engine.egd_chase import UnionFind

    compiled = [_CompiledEgd(egd) for egd in egds]
    arities = _collect_arities(
        instance,
        [SOClause(body=egd.body, equalities=(), head=()) for egd in egds],
    )
    union_find = UnionFind()
    session = _Session()
    try:
        for relation, arity in sorted(arities.items()):
            session.create_table(relation, arity)
            session.load_facts(relation, arity, instance.facts_of(relation))
            session.create_indexes(relation, arity)
        session.execute('CREATE TABLE "__merge" (old TEXT PRIMARY KEY, new TEXT)')
        changed = True
        while changed:
            changed = False
            perf.incr("chase.rounds")
            touched: set = set()
            for compiled_egd in compiled:
                session.execute(compiled_egd.select)
                for left_text, right_text in session.cursor.fetchall():
                    session.decoded_rows += 2
                    left, right = decode_value(left_text), decode_value(right_text)
                    if left == right:
                        continue
                    if (
                        not allow_constant_merge
                        and not is_null(left)
                        and not is_null(right)
                    ):
                        raise EgdViolation(left, right)
                    if union_find.union(left, right):
                        changed = True
                        touched.add(left)
                        touched.add(right)
            if not changed:
                break
            rewrites = [
                (encode_value(value), encode_value(root))
                for value in touched
                if (root := union_find.find(value)) != value
            ]
            session.execute('DELETE FROM "__merge"')
            session.executemany('INSERT INTO "__merge" VALUES (?, ?)', rewrites)
            for relation, arity in sorted(arities.items()):
                for i in range(arity):
                    session.execute(
                        f'UPDATE "{relation}" SET c{i} = '
                        f'(SELECT new FROM "__merge" WHERE old = c{i}) '
                        f'WHERE c{i} IN (SELECT old FROM "__merge")'
                    )
                group = ", ".join(f"c{i}" for i in range(arity))
                session.execute(
                    f'DELETE FROM "{relation}" WHERE rowid NOT IN '
                    f'(SELECT MIN(rowid) FROM "{relation}" GROUP BY {group})'
                )
        facts: list[Atom] = []
        for relation in sorted(arities):
            facts.extend(session.read_facts(relation, relation))
        equalities = union_find.as_mapping(instance.active_domain())
        return Instance(facts), equalities
    finally:
        session.close()


# ------------------------------------------------------------- core pushdown


def sql_core_supported(instance: Instance) -> bool:
    """Can *instance* load into a SQL core session?  (Used by ``auto``.)

    Requires SQL-safe relation names and one fixed arity (>= 1) per
    relation -- the same table-shape rules as the chase pushdown.
    """
    try:
        _collect_arities(instance, ())
    except DependencyError:
        return False
    return True


def _duckdb_connection() -> Any:
    """An in-memory DuckDB connection, or None when the module is absent."""
    try:
        import duckdb
    except ImportError:
        return None
    return duckdb.connect(":memory:")


class _BlockQuery:
    """One f-block compiled to per-null eliminating-homomorphism SELECTs.

    The block's facts become one table alias each (``a{i}``); a null's first
    occurrence defines its join column, repeats add equalities, and ground
    arguments pin columns with ``= ?`` parameters.  Eliminating null ``x``
    means the image avoids every fact containing ``x``, which compiles to
    ``a{i}.c{p} <> ?`` (the encoding of ``x``) for *every* alias position --
    the SQL rendering of the tuple engine's ``forbidden`` fact set.  The
    SELECT list is the distinct null columns (repr-sorted, ``ORDER BY`` +
    ``LIMIT 1`` so runs are reproducible), and a returned row decodes
    directly into the ``null -> value`` mapping.
    """

    def __init__(self, block: Sequence[Atom], nulls: Sequence[object]):
        self.nulls = list(nulls)
        column_of: dict[object, str] = {}
        conditions: list[str] = []
        parameters: list[str] = []
        tables: list[str] = []
        for index, fact in enumerate(block):
            alias = f"a{index}"
            tables.append(f'"{fact.relation}" AS {alias}')
            for position, arg in enumerate(fact.args):
                column = f"{alias}.c{position}"
                if is_null(arg):
                    known = column_of.get(arg)
                    if known is None:
                        column_of[arg] = column
                    else:
                        conditions.append(f"{column} = {known}")
                else:
                    conditions.append(f"{column} = ?")
                    parameters.append(encode_value(arg))
        self.base_conditions = conditions
        self.base_parameters = parameters
        self.from_clause = ", ".join(tables)
        self.columns = [column_of[null] for null in self.nulls]
        #: Every (alias, position) -- the exclusion conditions range over all.
        self.all_columns = [
            f"a{index}.c{position}"
            for index, fact in enumerate(block)
            for position in range(fact.arity)
        ]

    def eliminating(self, null: object) -> tuple[str, list[str]]:
        """The (statement, parameters) eliminating *null*, LIMIT 1."""
        encoded = encode_value(null)
        conditions = list(self.base_conditions)
        parameters = list(self.base_parameters)
        for column in self.all_columns:
            conditions.append(f"{column} <> ?")
            parameters.append(encoded)
        select_list = ", ".join(self.columns)
        where = (" WHERE " + " AND ".join(conditions)) if conditions else ""
        order = f" ORDER BY {select_list}" if self.columns else ""
        return (
            f"SELECT {select_list} FROM {self.from_clause}{where}{order} LIMIT 1",
            parameters,
        )


def sql_core(instance: Instance, *, use_duckdb: bool | None = None) -> Instance:
    """Compute the core of *instance* with block eliminations pushed to SQL.

    Same worklist as :func:`repro.engine.core_instance.core` -- split into
    f-blocks, repeatedly retract a block along an eliminating homomorphism,
    re-enqueue the surviving components -- but each candidate elimination is
    one SELECT join evaluated by the database over the live tables, and an
    elimination is applied as exact-row DELETEs.  No block-local fold memo:
    the database already amortizes the repeated joins, and memoization would
    re-introduce the per-fact object traffic the pushdown avoids.

    ``use_duckdb=None`` (the default) uses DuckDB when importable and falls
    back to SQLite; ``True`` requires it; ``False`` forces SQLite.  Either
    engine returns the same core up to isomorphism (and the identical fact
    set on deterministic instances: candidate nulls are tried in repr order
    and the SELECTs are ordered).
    """
    from repro.engine.builder import InstanceBuilder
    from repro.engine.core_instance import _block_nulls, _has_nulls, _null_components
    from repro.engine.gaifman import fact_blocks

    arities = _collect_arities(instance, ())
    connection = None
    if use_duckdb or use_duckdb is None:
        connection = _duckdb_connection()
        if connection is None and use_duckdb:
            raise ChaseError(
                "use_duckdb=True but the duckdb module is not importable"
            )
    if connection is not None:
        perf.incr("core.sql.duckdb_sessions")

    builder = InstanceBuilder(instance)
    pending: "deque[list[Atom]]" = deque()
    blocks = 0
    for block in fact_blocks(instance):
        block_facts = sorted(block, key=repr)
        if _has_nulls(block_facts):
            blocks += 1
            pending.append(block_facts)
    perf.incr("core.sql.blocks", blocks)

    session = _Session(connection)
    queries = 0
    try:
        for relation, arity in sorted(arities.items()):
            session.create_table(relation, arity)
            session.load_facts(relation, arity, instance.facts_of(relation))
            session.create_indexes(relation, arity)
        while pending:
            block = pending.popleft()
            query = _BlockQuery(block, _block_nulls(block))
            mapping: dict | None = None
            for null in query.nulls:
                statement, parameters = query.eliminating(null)
                queries += 1
                session.execute(statement, parameters)
                row = session.cursor.fetchone()
                if row is not None:
                    session.decoded_rows += len(row)
                    mapping = {
                        key: decode_value(text)
                        for key, text in zip(query.nulls, row)
                    }
                    break
            if mapping is None:
                perf.incr("core.sql.rigid_blocks")
                continue
            perf.incr("core.sql.eliminations")
            images = {fact.rename_values(mapping) for fact in block}
            survivors: list[Atom] = []
            for fact in block:
                if fact in images:
                    survivors.append(fact)
                else:
                    builder.discard(fact)
                    placeholders = " AND ".join(
                        f"c{i} = ?" for i in range(fact.arity)
                    )
                    session.execute(
                        f'DELETE FROM "{fact.relation}" WHERE {placeholders}',
                        [encode_value(arg) for arg in fact.args],
                    )
            if survivors:
                pending.extend(_null_components(survivors))
        return builder.freeze()
    finally:
        perf.incr("core.sql.queries", queries)
        session.close()


def check_sql_backend_supported(clauses: Iterable[SOClause], *, what: str) -> None:
    """Raise a :class:`~repro.errors.ChaseError` if *clauses* cannot push down."""
    try:
        compile_clauses(clauses)
    except DependencyError as exc:
        raise ChaseError(f"{what} cannot run on the SQL backend: {exc}") from exc


__all__ = [
    "SQLCompileError",
    "encode_value",
    "decode_value",
    "sql_compilable",
    "sql_core",
    "sql_core_supported",
    "sql_execute_exchange",
    "sql_fixpoint_chase",
    "sql_chase_egds",
    "check_sql_backend_supported",
]
