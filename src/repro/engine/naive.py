"""Naive reference implementations of matching and homomorphism search.

These are deliberately simple, obviously-correct versions of the engine's
two performance-critical primitives:

- :func:`find_matches_naive` -- CQ matching without atom reordering and
  without the per-position index (scans every fact of each relation);
- :func:`find_homomorphism_naive` -- homomorphism search without f-block
  decomposition and without candidate seeding (backtracking over the raw
  fact list).

They serve two purposes: as *oracles* for differential property tests
(``tests/test_differential.py`` checks that the optimized engine agrees with
them on random inputs), and as the baselines of the ablation benchmark
``benchmarks/bench_ablation_engine.py`` that quantifies what the indexes and
the block decomposition buy.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Variable, is_null


def find_matches_naive(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping | None = None,
) -> Iterator[dict]:
    """All satisfying assignments, by brute-force backtracking in given order."""
    atoms = list(atoms)
    base: dict = dict(partial) if partial else {}

    def search(index: int, assignment: dict) -> Iterator[dict]:
        if index == len(atoms):
            yield dict(assignment)
            return
        atom = atoms[index]
        for fact in instance.facts_of(atom.relation):
            new_bindings: dict = {}
            ok = True
            for arg, value in zip(atom.args, fact.args):
                if isinstance(arg, Variable):
                    bound = assignment.get(arg, new_bindings.get(arg))
                    if bound is None:
                        new_bindings[arg] = value
                    elif bound != value:
                        ok = False
                        break
                elif arg != value:
                    ok = False
                    break
            if not ok or atom.arity != fact.arity:
                continue
            assignment.update(new_bindings)
            yield from search(index + 1, assignment)
            for var in new_bindings:
                del assignment[var]

    yield from search(0, base)


def find_homomorphism_naive(
    source: Instance, target: Instance, fixed: Mapping | None = None
) -> dict | None:
    """Homomorphism search without block decomposition or index seeding."""
    facts = sorted(source.facts, key=repr)
    mapping: dict = dict(fixed) if fixed else {}

    def search(index: int) -> dict | None:
        if index == len(facts):
            return dict(mapping)
        fact = facts[index]
        for candidate in target.facts_of(fact.relation):
            if fact.arity != candidate.arity:
                continue
            new_bindings: dict = {}
            ok = True
            for arg, value in zip(fact.args, candidate.args):
                if is_null(arg):
                    bound = mapping.get(arg, new_bindings.get(arg))
                    if bound is None:
                        new_bindings[arg] = value
                    elif bound != value:
                        ok = False
                        break
                elif arg != value:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(new_bindings)
            result = search(index + 1)
            if result is not None:
                return result
            for null in new_bindings:
                del mapping[null]
        return None

    return search(0)


__all__ = ["find_matches_naive", "find_homomorphism_naive"]
