"""Naive reference implementations of matching, homomorphisms, and chases.

These are deliberately simple, obviously-correct versions of the engine's
performance-critical procedures:

- :func:`find_matches_naive` -- CQ matching without atom reordering and
  without the per-position index (scans every fact of each relation);
- :func:`find_homomorphism_naive` -- homomorphism search without f-block
  decomposition and without candidate seeding (backtracking over the raw
  fact list);
- :func:`core_naive` -- core computation that rebuilds a restricted
  immutable instance per candidate null and restarts the scan after every
  elimination (no block memoization, no forbidden-set targets);
- :func:`standard_chase_naive` -- the standard chase growing its target with
  one immutable ``Instance.union`` per fired trigger (full re-indexing each
  time: quadratic index maintenance);
- :func:`chase_egds_naive` -- the egd chase re-running full CQ matching over
  the whole instance on every fixpoint round (no delta restriction).

The two chase baselines are verbatim the pre-delta-engine implementations.
They serve two purposes: as *oracles* for differential property tests
(``tests/test_differential.py`` and ``tests/test_delta_engine.py`` check
that the optimized engine agrees with them on random inputs), and as the
baselines of the ablation/scaling benchmarks
(``benchmarks/bench_ablation_engine.py``, ``benchmarks/bench_scaling_chase.py``)
that quantify what the indexes, the block decomposition, and the
delta-driven fixpoints buy.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import EgdViolation
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Null, Variable, is_null


def find_matches_naive(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping | None = None,
) -> Iterator[dict]:
    """All satisfying assignments, by brute-force backtracking in given order."""
    atoms = list(atoms)
    base: dict = dict(partial) if partial else {}

    def search(index: int, assignment: dict) -> Iterator[dict]:
        if index == len(atoms):
            yield dict(assignment)
            return
        atom = atoms[index]
        for fact in instance.facts_of(atom.relation):
            new_bindings: dict = {}
            ok = True
            for arg, value in zip(atom.args, fact.args):
                if isinstance(arg, Variable):
                    bound = assignment.get(arg, new_bindings.get(arg))
                    if bound is None:
                        new_bindings[arg] = value
                    elif bound != value:
                        ok = False
                        break
                elif arg != value:
                    ok = False
                    break
            if not ok or atom.arity != fact.arity:
                continue
            assignment.update(new_bindings)
            yield from search(index + 1, assignment)
            for var in new_bindings:
                del assignment[var]

    yield from search(0, base)


def find_homomorphism_naive(
    source: Instance, target: Instance, fixed: Mapping | None = None
) -> dict | None:
    """Homomorphism search without block decomposition or index seeding."""
    facts = sorted(source.facts, key=repr)
    mapping: dict = dict(fixed) if fixed else {}

    def search(index: int) -> dict | None:
        if index == len(facts):
            return dict(mapping)
        fact = facts[index]
        for candidate in target.facts_of(fact.relation):
            if fact.arity != candidate.arity:
                continue
            new_bindings: dict = {}
            ok = True
            for arg, value in zip(fact.args, candidate.args):
                if is_null(arg):
                    bound = mapping.get(arg, new_bindings.get(arg))
                    if bound is None:
                        new_bindings[arg] = value
                    elif bound != value:
                        ok = False
                        break
                elif arg != value:
                    ok = False
                    break
            if not ok:
                continue
            mapping.update(new_bindings)
            result = search(index + 1)
            if result is not None:
                return result
            for null in new_bindings:
                del mapping[null]
        return None

    return search(0)


def core_naive(instance: Instance) -> Instance:
    """Core computation by the seed elimination loop (pre-kernel baseline).

    Semantically the same stopping condition as
    :func:`repro.engine.core_instance.core` -- null ``x`` is eliminable when
    its f-block maps into the instance minus the facts containing ``x`` --
    but implemented the way the seed did: a *restricted immutable instance*
    is rebuilt per candidate null (full re-indexing), the legacy ordered
    backtracker searches it, and each elimination restarts the whole scan.
    Kept as the oracle for differential tests (cores agree up to isomorphism)
    and as the baseline of ``benchmarks/bench_scaling_hom.py``.
    """
    from repro.engine.gaifman import fact_blocks
    from repro.engine.homomorphism import _block_homomorphism

    def try_eliminate(current: Instance) -> Instance | None:
        for block in fact_blocks(current):
            block_facts = list(block)
            block_nulls = sorted(
                {arg for fact in block_facts for arg in fact.args if is_null(arg)},
                key=repr,
            )
            for null in block_nulls:
                target = current.restrict(lambda fact: null not in fact.args)
                mapping = _block_homomorphism(block_facts, target, {})
                if mapping is not None:
                    return current.map_values(mapping)
        return None

    current = instance
    while True:
        folded = try_eliminate(current)
        if folded is None:
            return current
        current = folded


def standard_chase_naive(source: Instance, tgds: Sequence, max_rounds: int = 100) -> Instance:
    """The standard chase with immutable-union target growth (seed baseline).

    Semantically identical to :func:`repro.engine.standard_chase.standard_chase`
    (same trigger order, same null names), but every fired trigger rebuilds
    the target instance's indexes from scratch via ``Instance.union``.
    """
    from repro.engine.matching import find_matches
    from repro.engine.standard_chase import _conclusion_satisfied

    target = Instance()
    counter = [0]
    for tgd in tgds:
        for assignment in find_matches(tgd.body, source):
            if _conclusion_satisfied(tgd.head, assignment, target):
                continue
            instantiation = dict(assignment)
            for var in tgd.existential_variables:
                counter[0] += 1
                instantiation[var] = Null(f"v{counter[0]}")
            target = target.union(
                atom.substitute(instantiation) for atom in tgd.head
            )
    return target


def chase_egds_naive(
    instance: Instance,
    egds: Sequence,
    *,
    allow_constant_merge: bool = False,
) -> tuple[Instance, dict]:
    """The egd chase with full re-matching every round (seed baseline).

    Semantically identical to :func:`repro.engine.egd_chase.chase_egds`, but
    each fixpoint round re-runs CQ matching over the whole instance instead
    of only against the facts rewritten in the previous round.
    """
    from repro.engine.egd_chase import UnionFind
    from repro.engine.matching import find_matches

    union_find = UnionFind()
    current = instance
    changed = True
    while changed:
        changed = False
        for egd in egds:
            for assignment in find_matches(egd.body, current):
                left = assignment[egd.left]
                right = assignment[egd.right]
                if left == right:
                    continue
                if not allow_constant_merge and not is_null(left) and not is_null(right):
                    raise EgdViolation(left, right)
                union_find.union(left, right)
                changed = True
        if changed:
            mapping = union_find.as_mapping(current.active_domain())
            current = current.map_values(mapping)
    equalities = union_find.as_mapping(instance.active_domain())
    return current, equalities


__all__ = [
    "find_matches_naive",
    "find_homomorphism_naive",
    "core_naive",
    "standard_chase_naive",
    "chase_egds_naive",
]
