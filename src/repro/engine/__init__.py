"""Reasoning engine: matching, homomorphisms, cores, Gaifman graphs, chases.

- :mod:`repro.engine.builder` -- mutable instance construction with
  incrementally maintained indexes (the substrate of the delta-driven chases);
- :mod:`repro.engine.matching` -- conjunctive-query matching over instances;
- :mod:`repro.engine.homomorphism` -- homomorphism search between instances;
- :mod:`repro.engine.core_instance` -- core computation;
- :mod:`repro.engine.gaifman` -- fact graph, null graph, f-blocks and their metrics;
- :mod:`repro.engine.chase` -- oblivious chase for s-t tgds and (plain) SO tgds;
- :mod:`repro.engine.nested_chase` -- recursive-triggering chase for nested tgds
  with materialized chase forests (Section 3 of the paper);
- :mod:`repro.engine.egd_chase` -- egd chase on source instances;
- :mod:`repro.engine.fixpoint_chase` -- oblivious chase iterated to a fixpoint,
  gated by the static weak-acyclicity verdict;
- :mod:`repro.engine.columnar` -- columnar fact store (dense integer arrays)
  with vectorized semi-naive trigger matching;
- :mod:`repro.engine.sql_backend` -- chase programs compiled to SQLite
  (SQL pushdown), results decoded back through the intern tables;
- :mod:`repro.engine.dispatch` -- backend selection (tuple / columnar / sql
  / auto) for the chase entry points;
- :mod:`repro.engine.model_check` -- ``(I, J) |= sigma`` for every formalism.
"""

from repro.engine.builder import InstanceBuilder
from repro.engine.matching import find_matches
from repro.engine.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
)
from repro.engine.core_instance import core
from repro.engine.gaifman import (
    fact_blocks,
    fact_block_size,
    fact_graph,
    fblock_degree,
    null_graph,
    null_path_length,
)
from repro.engine.chase import chase, chase_so_tgd, chase_st_tgds
from repro.engine.nested_chase import ChaseForest, ChaseTree, Triggering, chase_nested
from repro.engine.egd_chase import chase_egds
from repro.engine.fixpoint_chase import FixpointChaseResult, fixpoint_chase
from repro.engine.columnar import ColumnarInstance
from repro.engine.dispatch import BACKENDS, BackendChoice, choose_backend
from repro.engine.model_check import satisfies

__all__ = [
    "BACKENDS",
    "BackendChoice",
    "ColumnarInstance",
    "choose_backend",
    "InstanceBuilder",
    "find_matches",
    "find_homomorphism",
    "has_homomorphism",
    "homomorphically_equivalent",
    "core",
    "fact_graph",
    "fact_blocks",
    "fact_block_size",
    "fblock_degree",
    "null_graph",
    "null_path_length",
    "chase",
    "chase_st_tgds",
    "chase_so_tgd",
    "chase_nested",
    "ChaseForest",
    "ChaseTree",
    "Triggering",
    "chase_egds",
    "FixpointChaseResult",
    "fixpoint_chase",
    "satisfies",
]
