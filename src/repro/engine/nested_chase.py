"""The chase for nested tgds: recursive triggerings and chase forests.

Section 3 of the paper describes the oblivious chase of a source instance I
with a nested tgd as a sequence of *recursive triggerings*.  A triggering t
is associated with a part ``sigma_i : forall x (phi(x, x0) -> psi(x, x0))``
and an assignment for ``x``; unless ``sigma_i`` is the top-level part, t has
a unique parent triggering binding the inherited variables ``x0``.  The
result of t instantiates the (Skolemized) conclusion atoms of ``sigma_i``,
with ground Skolem terms acting as nulls; the child parts are then triggered
recursively.

This module materializes the *chase forest*: one chase tree per root
triggering.  Two facts produced in distinct chase trees share no nulls --
one of the two key underpinnings of the paper's decidability results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro import perf
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.terms import rename_term_functions
from repro.engine.builder import InstanceBuilder
from repro.engine.matching import find_matches


@dataclass
class Triggering:
    """One triggering of a nested-tgd part during the chase."""

    part_id: int
    assignment: dict
    parent: "Triggering | None" = None
    children: list["Triggering"] = field(default_factory=list)
    facts: tuple[Atom, ...] = ()

    def ancestors(self) -> Iterator["Triggering"]:
        """Yield the ancestor triggerings, innermost first."""
        current = self.parent
        while current is not None:
            yield current
            current = current.parent

    def recursive_triggerings(self) -> Iterator["Triggering"]:
        """Yield all triggerings recursively called from this one (``rec(t)``)."""
        for child in self.children:
            yield child
            yield from child.recursive_triggerings()

    def subtree_facts(self) -> frozenset[Atom]:
        """All facts produced by this triggering and its recursive triggerings."""
        facts = set(self.facts)
        for triggering in self.recursive_triggerings():
            facts.update(triggering.facts)
        return frozenset(facts)


@dataclass
class ChaseTree:
    """A chase tree: one root triggering and everything recursively triggered."""

    tgd: NestedTgd
    root: Triggering

    def triggerings(self) -> Iterator[Triggering]:
        """Yield all triggerings of the tree, preorder."""
        yield self.root
        yield from self.root.recursive_triggerings()

    def facts(self) -> frozenset[Atom]:
        return self.root.subtree_facts()

    def pattern(self) -> "Pattern":
        """The pattern of this chase tree (Definition 3.2): part ids only."""
        from repro.core.patterns import Pattern

        def build(triggering: Triggering) -> Pattern:
            return Pattern(triggering.part_id, tuple(build(c) for c in triggering.children))

        return build(self.root)


@dataclass
class ChaseForest:
    """The chase forest of a source instance with a nested tgd."""

    tgd: NestedTgd
    source: Instance
    trees: tuple[ChaseTree, ...]

    @property
    def instance(self) -> Instance:
        """The chased target instance (union of all trees' facts)."""
        builder = InstanceBuilder()
        for tree in self.trees:
            builder.add_all(tree.facts())
        return builder.freeze()

    def patterns(self) -> list["Pattern"]:
        """The patterns of all chase trees."""
        return [tree.pattern() for tree in self.trees]

    def provenance(self) -> dict[Atom, list[Triggering]]:
        """Map each produced fact to the triggerings that produced it.

        A fact can have several producing triggerings (different assignments
        may instantiate a head atom identically); all are recorded.
        """
        result: dict[Atom, list[Triggering]] = {}
        for tree in self.trees:
            for triggering in tree.triggerings():
                for fact in triggering.facts:
                    result.setdefault(fact, []).append(triggering)
        return result


def chase_nested(
    source: Instance, tgd: NestedTgd, function_prefix: str = ""
) -> ChaseForest:
    """Chase *source* with a nested tgd; return the materialized chase forest.

    *function_prefix* is prepended to Skolem function names so that chasing
    with several nested tgds produces disjoint nulls (triggerings in distinct
    chase trees -- and a fortiori distinct tgds -- share no nulls).

    The body matches of a child part depend only on the inherited bindings of
    the variables actually occurring in that body, so they are memoized per
    (part, relevant bindings): sibling subtrees triggered under identical
    relevant bindings share one CQ-matching run instead of re-scanning the
    source per parent triggering (the source never changes during the chase,
    which is what makes the sharing sound).

        >>> from repro.logic.parser import parse_instance, parse_nested_tgd
        >>> s = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
        >>> forest = chase_nested(parse_instance("S(a,b)"), s)
        >>> len(forest.instance)   # root and child produce the same fact R(y, b)
        1
    """
    skolemized_heads: dict[int, tuple[Atom, ...]] = {}
    body_vars: dict[int, frozenset] = {}
    for pid in tgd.part_ids():
        head = tgd.skolemized_head(pid)
        if function_prefix:
            renaming = {
                term.function: f"{function_prefix}{term.function}"
                for var, term in tgd._skolem_functions.items()
            }
            head = tuple(
                Atom(a.relation, tuple(rename_term_functions(t, renaming) for t in a.args))
                for a in head
            )
        skolemized_heads[pid] = head
        body_vars[pid] = frozenset(
            var for atom in tgd.part(pid).body for var in atom.variable_set()
        )

    match_memo: dict[tuple, list[dict]] = {}

    def child_matches(child_pid: int, assignment: dict) -> list[dict]:
        """Matches of the child part's body under *assignment*, shared via memo."""
        relevant = tuple(
            (var, assignment[var]) for var in body_vars[child_pid] if var in assignment
        )
        key = (child_pid, frozenset(relevant))
        cached = match_memo.get(key)
        if cached is None:
            cached = list(
                find_matches(tgd.part(child_pid).body, source, partial=dict(relevant))
            )
            match_memo[key] = cached
        else:
            perf.incr("match.memo_hits")
        return cached

    def trigger(pid: int, assignment: dict, parent: Triggering | None) -> Triggering:
        perf.incr("chase.triggers")
        facts = tuple(atom.substitute(assignment) for atom in skolemized_heads[pid])
        triggering = Triggering(
            part_id=pid, assignment=dict(assignment), parent=parent, facts=facts
        )
        for child_pid in tgd.children_of(pid):
            for match in child_matches(child_pid, assignment):
                child_assignment = dict(assignment)
                child_assignment.update(match)
                triggering.children.append(
                    trigger(child_pid, child_assignment, triggering)
                )
        return triggering

    trees: list[ChaseTree] = []
    for assignment in find_matches(tgd.part(1).body, source):
        root = trigger(1, assignment, None)
        trees.append(ChaseTree(tgd=tgd, root=root))
    return ChaseForest(tgd=tgd, source=source, trees=tuple(trees))


__all__ = ["Triggering", "ChaseTree", "ChaseForest", "chase_nested"]
