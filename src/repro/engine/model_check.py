"""Model checking: does a pair (I, J) satisfy a dependency?

For s-t tgds and nested tgds this is first-order model checking -- a direct
recursive evaluation whose data complexity is polynomial (the paper's
introduction notes it is in LOGSPACE).  For SO tgds, the existential
second-order function quantifiers require searching for function
interpretations; the data complexity is NP-complete for plain SO tgds, and
our solver is a backtracking search over *function points* (argument tuples)
with candidate values drawn from the active domains plus the free term
algebra.  The runtime contrast between the two checkers is measured by the
``bench_model_checking`` benchmark.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.terms import FuncTerm
from repro.logic.tgds import STTgd
from repro.logic.values import Constant, Variable
from repro.engine.egd_chase import satisfies_egds
from repro.engine.matching import find_matches


# ------------------------------------------------------------- shared state


class _CheckContext:
    """Per-(source, target) state shared across all dependencies of a check.

    Checking a mapping means checking every dependency of Sigma against the
    same pair (I, J); the sorted active domains (the witness candidate pools
    of both checkers) depend only on the pair, so they are computed once here
    instead of once per dependency.
    """

    __slots__ = ("target_adom", "joint_adom")

    def __init__(self, source: Instance, target: Instance):
        self.target_adom = sorted(target.active_domain(), key=repr) or [
            Constant("__dummy__")
        ]
        self.joint_adom = sorted(
            set(source.active_domain()) | set(target.active_domain()), key=repr
        )


# --------------------------------------------------------------- nested tgds


def satisfies_nested(
    source: Instance,
    target: Instance,
    tgd: NestedTgd,
    context: _CheckContext | None = None,
) -> bool:
    """First-order model checking of a nested tgd on (source, target)."""
    if context is None:
        context = _CheckContext(source, target)
    adom = context.target_adom

    def check_part(pid: int, assignment: dict) -> bool:
        part = tgd.part(pid)
        for match in find_matches(part.body, source, partial=assignment):
            if not witness_exists(pid, match):
                return False
        return True

    def witness_exists(pid: int, match: dict) -> bool:
        part = tgd.part(pid)
        # Existential variables constrained by this part's own head atoms are
        # enumerated by matching the head atoms against the target; the rest
        # range over the target's active domain.
        head_exist = [v for v in part.exist_vars if any(v in a.variable_set() for a in part.head)]
        free_exist = [v for v in part.exist_vars if v not in head_exist]
        for head_match in find_matches(part.head, target, partial=match) if part.head else [
            dict(match)
        ]:
            for free_values in product(adom, repeat=len(free_exist)):
                candidate = dict(head_match)
                candidate.update(zip(free_exist, free_values))
                if all(check_part(child, candidate) for child in tgd.children_of(pid)):
                    return True
        return False

    return check_part(1, {})


# ------------------------------------------------------------------- SO tgds


class _FunctionTable:
    """Partial interpretation of the existential function symbols."""

    def __init__(self):
        self.table: dict[tuple, object] = {}

    def evaluate(self, term, assignment: Mapping):
        """Evaluate *term*; return ``(value, None)`` or ``(None, point)``.

        *point* is the first undetermined ``(function, args)`` pair blocking
        the evaluation.
        """
        if isinstance(term, Variable):
            return assignment[term], None
        if isinstance(term, FuncTerm):
            arg_values = []
            for arg in term.args:
                value, point = self.evaluate(arg, assignment)
                if point is not None:
                    return None, point
                arg_values.append(value)
            point = (term.function, tuple(arg_values))
            if point in self.table:
                return self.table[point], None
            return None, point
        return term, None


def satisfies_so(
    source: Instance,
    target: Instance,
    so_tgd: SOTgd,
    context: _CheckContext | None = None,
) -> bool:
    """Second-order model checking: search for witnessing function interpretations.

    Candidate values for each function point are the active domains of source
    and target plus the point's own free term (the Herbrand value), which
    suffices: function outputs appearing in head atoms must be target values,
    and keeping a point "fresh" (distinct from everything else) is exactly
    what the Herbrand value provides for falsifying body equalities.
    """
    obligations: list[tuple] = []
    for clause in so_tgd.clauses:
        for match in find_matches(clause.body, source):
            obligations.append((clause, match))

    if context is None:
        context = _CheckContext(source, target)
    base_candidates = context.joint_adom
    table = _FunctionTable()

    def check_obligation(index: int) -> bool:
        if index == len(obligations):
            return True
        clause, match = obligations[index]

        def eval_equalities() -> tuple[bool | None, tuple | None]:
            """Return (verdict, blocking_point); verdict None means undetermined."""
            all_true = True
            for left, right in clause.equalities:
                left_value, point = table.evaluate(left, match)
                if point is not None:
                    return None, point
                right_value, point = table.evaluate(right, match)
                if point is not None:
                    return None, point
                if left_value != right_value:
                    return False, None
            return all_true, None

        def check_heads(atom_index: int) -> bool:
            if atom_index == len(clause.head):
                return check_obligation(index + 1)
            atom = clause.head[atom_index]
            arg_values = []
            for arg in atom.args:
                value, point = table.evaluate(arg, match)
                if point is not None:
                    return branch_point(point, lambda: check_heads(atom_index))
                arg_values.append(value)
            if Atom(atom.relation, tuple(arg_values)) not in target.facts:
                return False
            return check_heads(atom_index + 1)

        def branch_point(point: tuple, continuation) -> bool:
            function, args = point
            herbrand = FuncTerm(function, args)
            for candidate in base_candidates + [herbrand]:
                table.table[point] = candidate
                if continuation():
                    return True
                del table.table[point]
            return False

        def resolve() -> bool:
            verdict, point = eval_equalities()
            if point is not None:
                return branch_point(point, resolve)
            if verdict is False:
                return check_obligation(index + 1)
            return check_heads(0)

        return resolve()

    return check_obligation(0)


# ----------------------------------------------------------------- dispatch


def satisfies(source: Instance, target: Instance, dependencies) -> bool:
    """Check ``(I, J) |= Sigma`` for a dependency or an iterable of dependencies.

    Supports :class:`STTgd`, :class:`NestedTgd`, :class:`SOTgd` and
    :class:`Egd` (egds are checked on the source instance).

        >>> from repro.logic.parser import parse_instance, parse_tgd
        >>> I, J = parse_instance("S(a,b)"), parse_instance("R(a,b)")
        >>> satisfies(I, J, parse_tgd("S(x,y) -> R(x,y)"))
        True
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    context = _CheckContext(source, target)
    for dep in dependencies:
        if isinstance(dep, STTgd):
            if not satisfies_nested(source, target, dep.to_nested(), context):
                return False
        elif isinstance(dep, NestedTgd):
            if not satisfies_nested(source, target, dep, context):
                return False
        elif isinstance(dep, SOTgd):
            if not satisfies_so(source, target, dep, context):
                return False
        elif isinstance(dep, Egd):
            if not satisfies_egds(source, [dep]):
                return False
        else:
            raise DependencyError(f"cannot model-check dependency {dep!r}")
    return True


__all__ = ["satisfies", "satisfies_nested", "satisfies_so"]
