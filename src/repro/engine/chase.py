"""The oblivious chase for s-t tgds and (plain) SO tgds.

``chase(I, M)`` produces the canonical universal solution of Section 2: for
every dependency and every assignment making its body true in the source
instance, the head atoms are added with existential variables instantiated by
fresh nulls.  We realize "fresh null per trigger" with ground Skolem terms:
the null for existential variable ``y`` under body match ``a`` is the ground
term ``f_y(a)``, which both deduplicates repeated triggers and records
provenance (Section 3: "Skolem terms are considered as null labels").

For SO tgds the chase interprets the existentially quantified functions over
the term algebra: a term evaluates to the corresponding ground Skolem term,
and an equality ``t = t'`` holds iff the two ground terms are identical.
This is the canonical-universal-solution chase of Fagin et al. (reference [8]
of the paper).

All engines accumulate their output through a single
:class:`~repro.engine.builder.InstanceBuilder`, so indexes are maintained
incrementally as facts are emitted and the final instance is frozen without
re-indexing -- ``chase`` with many dependencies no longer pays one full
re-index per dependency (the old ``Instance.union`` accumulation).
"""

from __future__ import annotations

from typing import Sequence

from repro import perf
from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.sotgd import SOTgd
from repro.logic.terms import substitute_term
from repro.logic.tgds import STTgd
from repro.engine.builder import InstanceBuilder
from repro.engine.matching import find_matches


def _evaluate_term(term, assignment: dict):
    """Evaluate a term under *assignment*; function symbols build ground terms."""
    value = substitute_term(term, assignment)
    return value


def _chase_st_tgds_into(
    builder: InstanceBuilder, instance: Instance, tgds: Sequence[STTgd]
) -> None:
    for index, tgd in enumerate(tgds):
        head = tgd.skolem_head(
            function_namer=lambda var, index=index: f"t{index}_{var.name}"
        )
        for assignment in find_matches(tgd.body, instance):
            perf.incr("chase.triggers")
            for atom in head:
                builder.add(atom.substitute(assignment))


def chase_st_tgds(instance: Instance, tgds: Sequence[STTgd]) -> Instance:
    """Chase *instance* with a finite set of s-t tgds; return the target instance.

        >>> from repro.logic.parser import parse_instance, parse_tgd
        >>> I = parse_instance("S(a, b)")
        >>> J = chase_st_tgds(I, [parse_tgd("S(x,y) -> R(x,z)")])
        >>> len(J)
        1
    """
    builder = InstanceBuilder()
    _chase_st_tgds_into(builder, instance, tgds)
    perf.incr("chase.facts", len(builder))
    return builder.freeze()


def _chase_so_tgd_into(
    builder: InstanceBuilder, instance: Instance, so_tgd: SOTgd
) -> None:
    for clause in so_tgd.clauses:
        for assignment in find_matches(clause.body, instance):
            satisfied = True
            for left, right in clause.equalities:
                if _evaluate_term(left, assignment) != _evaluate_term(right, assignment):
                    satisfied = False
                    break
            if not satisfied:
                continue
            perf.incr("chase.triggers")
            for atom in clause.head:
                args = tuple(_evaluate_term(t, assignment) for t in atom.args)
                builder.add(Atom(atom.relation, args))


def chase_so_tgd(instance: Instance, so_tgd: SOTgd) -> Instance:
    """Chase *instance* with an SO tgd; return the canonical universal solution.

    Equalities between terms are evaluated over the term algebra (two ground
    Skolem terms are equal iff identical); this matches the chase of [8] that
    produces canonical universal solutions for SO tgds.
    """
    builder = InstanceBuilder()
    _chase_so_tgd_into(builder, instance, so_tgd)
    perf.incr("chase.facts", len(builder))
    return builder.freeze()


def chase(instance: Instance, dependencies) -> Instance:
    """Chase *instance* with dependencies of any supported formalism.

    *dependencies* may be a single dependency or an iterable mixing
    :class:`STTgd`, :class:`~repro.logic.nested.NestedTgd`, and
    :class:`SOTgd`.  Nested tgds are chased with the recursive-triggering
    procedure of Section 3; SO tgds clause-wise; s-t tgds obliviously.
    Distinct dependencies never share nulls (their Skolem functions are
    renamed apart).
    """
    from repro.logic.nested import NestedTgd
    from repro.engine.nested_chase import chase_nested

    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd)):
        dependencies = [dependencies]

    builder = InstanceBuilder()
    st_batch: list[STTgd] = []
    for index, dep in enumerate(dependencies):
        if isinstance(dep, STTgd):
            st_batch.append(dep)
        elif isinstance(dep, NestedTgd):
            forest = chase_nested(instance, dep, function_prefix=f"d{index}_")
            for tree in forest.trees:
                builder.add_all(tree.facts())
        elif isinstance(dep, SOTgd):
            renamed = _rename_functions_apart(dep, f"d{index}_")
            _chase_so_tgd_into(builder, instance, renamed)
        else:
            raise ChaseError(f"cannot chase with dependency {dep!r}")
    if st_batch:
        _chase_st_tgds_into(builder, instance, st_batch)
    perf.incr("chase.facts", len(builder))
    return builder.freeze()


def compile_clause_program(dependencies) -> tuple:
    """Compile a dependency list into Skolemized clauses that replay ``chase``.

    The returned clauses are :class:`~repro.logic.sotgd.SOClause` objects
    whose single-pass evaluation over a source instance emits *exactly* the
    fact set ``chase(instance, dependencies)`` produces -- including the null
    labels, because the Skolem-function naming replicates ``chase``'s scheme
    verbatim: s-t tgds are batched and named ``t{batch_index}_{var}``, nested
    tgds are skolemized under ``d{index}_`` (the fact set of the
    recursive-triggering procedure equals its Skolemization's), and SO tgds
    are renamed apart under ``d{index}_``.  This is what lets the incremental
    IMPLIES sweep extend a cached chase result by a source delta and still
    agree, fact for fact, with a from-scratch ``chase`` of the extended
    source.
    """
    from repro.logic.nested import NestedTgd
    from repro.logic.sotgd import SOClause

    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd)):
        dependencies = [dependencies]
    clauses: list[SOClause] = []
    st_batch: list[STTgd] = []
    for index, dep in enumerate(dependencies):
        if isinstance(dep, STTgd):
            st_batch.append(dep)
        elif isinstance(dep, NestedTgd):
            clauses.extend(dep.skolemize(function_prefix=f"d{index}_").clauses)
        elif isinstance(dep, SOTgd):
            clauses.extend(_rename_functions_apart(dep, f"d{index}_").clauses)
        else:
            raise ChaseError(f"cannot chase with dependency {dep!r}")
    for batch_index, tgd in enumerate(st_batch):
        head = tgd.skolem_head(
            function_namer=lambda var, batch_index=batch_index: f"t{batch_index}_{var.name}"
        )
        clauses.append(SOClause(body=tgd.body, equalities=(), head=head))
    return tuple(clauses)


def _emit_clause(clause, assignment: dict, out: list[Atom]) -> None:
    """Append the head facts of *clause* under *assignment* (if equalities hold)."""
    for left, right in clause.equalities:
        if _evaluate_term(left, assignment) != _evaluate_term(right, assignment):
            return
    perf.incr("chase.triggers")
    for atom in clause.head:
        args = tuple(_evaluate_term(t, assignment) for t in atom.args)
        out.append(Atom(atom.relation, args))


def run_clause_program(clauses, source) -> list[Atom]:
    """Emit the chase facts of a compiled clause program over *source*.

    *source* may be an :class:`Instance` or an
    :class:`~repro.engine.builder.InstanceBuilder` (the matching engine is
    duck-typed over both).  Returns the emitted facts, possibly with
    duplicates -- callers deduplicate through a builder or set.
    """
    out: list[Atom] = []
    for clause in clauses:
        for assignment in find_matches(clause.body, source):
            _emit_clause(clause, assignment, out)
    return out


def run_clause_program_delta(clauses, source, delta) -> list[Atom]:
    """Emit the chase facts whose body match touches at least one *delta* fact.

    *source* must already contain the delta.  For single-pass (source-to-
    target) programs, ``chase(I ∪ Δ) = chase(I) ∪ run_clause_program_delta``:
    a body match over ``I ∪ Δ`` either avoids Δ entirely (so its emission is
    already in ``chase(I)``) or touches Δ (and is found here, seeded atom by
    atom through :func:`repro.engine.matching.find_delta_matches`).
    """
    from repro.engine.matching import find_delta_matches

    out: list[Atom] = []
    for clause in clauses:
        for assignment in find_delta_matches(clause.body, source, delta):
            _emit_clause(clause, assignment, out)
    return out


def _rename_functions_apart(so_tgd: SOTgd, prefix: str) -> SOTgd:
    """Prefix all function symbols of *so_tgd* so nulls do not collide across tgds."""
    from repro.logic.sotgd import SOClause
    from repro.logic.terms import rename_term_functions

    renaming = {f: f"{prefix}{f}" for f in so_tgd.functions}
    clauses = []
    for clause in so_tgd.clauses:
        head = tuple(
            Atom(a.relation, tuple(rename_term_functions(t, renaming) for t in a.args))
            for a in clause.head
        )
        equalities = tuple(
            (rename_term_functions(left, renaming), rename_term_functions(right, renaming))
            for left, right in clause.equalities
        )
        clauses.append(SOClause(body=clause.body, equalities=equalities, head=head))
    return SOTgd(
        functions=tuple(renaming[f] for f in so_tgd.functions),
        clauses=tuple(clauses),
        name=so_tgd.name,
    )


__all__ = [
    "chase",
    "chase_st_tgds",
    "chase_so_tgd",
    "compile_clause_program",
    "run_clause_program",
    "run_clause_program_delta",
]
