"""Integer-domain homomorphism kernel over the columnar backend.

This is the CSP kernel of :mod:`repro.engine.hom_kernel` re-based onto
:class:`~repro.engine.columnar.ColumnarInstance`: candidate domains are row
ids read straight out of the per-(position, value-id) inverted index,
AC-3 propagation and the most-constrained-variable search compare machine
integers from the ``array('q')`` columns, and connected-component
decomposition runs over variable keys -- no :class:`~repro.logic.atoms.Atom`
is decoded anywhere on the hot path.  Interned value objects appear only at
the boundary: when a source fact is *encoded* against the target's
:class:`~repro.engine.columnar.ValueTable` and when a found solution is
decoded back into the ``null -> value`` mapping the tuple kernel returns.

Two entry layers:

- :func:`block_homomorphism_columnar` -- drop-in for
  :func:`repro.engine.hom_kernel.block_homomorphism` when the target is a
  ``ColumnarInstance`` (``hom_kernel`` dispatches here by instance type, so
  ``find_homomorphism`` / ``model_check`` callers never change).  Source
  facts arrive as atoms; *fixed* bindings are folded into constant ids at
  encode time, *forbidden* atoms are resolved to per-group row-id sets.
- :func:`solve_encoded` -- the id-space core: a block of
  :class:`EncodedFact` rows (built by this module or directly from group
  columns by the columnar core engine) is split into components and solved.
  Variable keys are opaque hashables (interned nulls from the atom path,
  integer value ids from the core engine); domain elements are always
  integer value ids.

The semantics match the tuple kernel exactly -- same candidate seeding from
the most selective bound position, same generalized arc consistency, same
most-constrained-first search with full look-ahead -- so verdicts agree on
every input; only the found witness may differ (both are valid
homomorphisms).  ``forbidden`` rows are how the core engine expresses
"the instance minus the facts containing null x" without copying anything.

Perf counters: ``hom.columnar.kernel_calls``, ``hom.columnar.ac3_revisions``,
``hom.columnar.ac3_wipeouts``, ``hom.columnar.search_nodes``,
``hom.columnar.backtracks`` (same meanings as their ``hom.*`` twins).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping
from collections.abc import Set as AbstractSet

from repro import perf
from repro.engine.columnar import ColumnarInstance, _RelGroup
from repro.logic.atoms import Atom
from repro.logic.values import is_null

_CONST = 0
_VAR = 1
_EMPTY_FORBIDDEN: frozenset[Atom] = frozenset()


class _Stats:
    """Locally accumulated counters, flushed once per kernel call."""

    __slots__ = ("revisions", "wipeouts", "nodes", "backtracks")

    def __init__(self) -> None:
        self.revisions = 0
        self.wipeouts = 0
        self.nodes = 0
        self.backtracks = 0

    def flush(self) -> None:
        perf.incr("hom.columnar.kernel_calls")
        if self.revisions:
            perf.incr("hom.columnar.ac3_revisions", self.revisions)
        if self.wipeouts:
            perf.incr("hom.columnar.ac3_wipeouts", self.wipeouts)
        if self.nodes:
            perf.incr("hom.columnar.search_nodes", self.nodes)
        if self.backtracks:
            perf.incr("hom.columnar.backtracks", self.backtracks)


class EncodedFact:
    """One source fact resolved against a target group.

    ``args`` holds one ``(kind, key)`` pair per position: ``(_CONST, vid)``
    for a ground (or pre-bound) value id, ``(_VAR, key)`` for a free
    variable.  ``var_positions`` lists the first occurrence of each distinct
    variable -- the positions whose candidate columns define its domain.
    """

    __slots__ = ("group", "args", "var_positions")

    def __init__(self, group: _RelGroup, args: tuple[tuple[int, object], ...]):
        self.group = group
        self.args = args
        seen: set[object] = set()
        positions: list[tuple[int, object]] = []
        for pos, (kind, key) in enumerate(args):
            if kind == _VAR and key not in seen:
                seen.add(key)
                positions.append((pos, key))
        self.var_positions = tuple(positions)


def encode_facts(
    facts: Iterable[Atom],
    target: ColumnarInstance,
    fixed: Mapping[object, object],
) -> list[EncodedFact] | None:
    """Encode source atoms against *target*'s value table, or None on a
    value/relation the target provably cannot match (fail fast)."""
    lookup = target.values.lookup
    groups = target._groups
    encoded: list[EncodedFact] = []
    for fact in facts:
        group: _RelGroup | None = None
        for candidate in groups.get(fact.relation, ()):
            if candidate.arity == fact.arity:
                group = candidate
                break
        if group is None:
            return None
        args: list[tuple[int, object]] = []
        for arg in fact.args:
            if is_null(arg):
                bound_value = fixed.get(arg)
                if bound_value is None:
                    args.append((_VAR, arg))
                    continue
                arg = bound_value
            vid = lookup(arg)
            if vid is None:
                # The required value was never interned by the target, so no
                # target fact can contain it.
                return None
            args.append((_CONST, vid))
        encoded.append(EncodedFact(group, tuple(args)))
    return encoded


def forbidden_rows_of(
    target: ColumnarInstance, forbidden: AbstractSet[Atom]
) -> dict[_RelGroup, set[int]] | None:
    """Resolve an atom-level forbidden set to per-group row-id sets."""
    if not forbidden:
        return None
    lookup = target.values.lookup
    rows: dict[_RelGroup, set[int]] = {}
    for fact in forbidden:
        groups = target._groups.get(fact.relation)
        if not groups:
            continue
        ids: list[int] = []
        ok = True
        for arg in fact.args:
            vid = lookup(arg)
            if vid is None:
                ok = False
                break
            ids.append(vid)
        if not ok:
            continue
        key = tuple(ids)
        for group in groups:
            if group.arity == len(key):
                row = group.row_of.get(key)
                if row is not None:
                    rows.setdefault(group, set()).add(row)
    return rows or None


def _split_components(
    encoded: list[EncodedFact],
) -> tuple[list[list[EncodedFact]], list[EncodedFact]]:
    """Group facts connected by shared variables; grounded facts separately."""
    grounded: list[EncodedFact] = []
    with_vars: list[EncodedFact] = []
    for fact in encoded:
        (with_vars if fact.var_positions else grounded).append(fact)
    anchor_of: dict[object, int] = {}
    parent = list(range(len(with_vars)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for index, fact in enumerate(with_vars):
        for __, var in fact.var_positions:
            anchor = anchor_of.setdefault(var, index)
            if anchor != index:
                root_a, root_b = find(anchor), find(index)
                if root_a != root_b:
                    parent[root_b] = root_a
    components: dict[int, list[EncodedFact]] = {}
    for index, fact in enumerate(with_vars):
        components.setdefault(find(index), []).append(fact)
    return list(components.values()), grounded


def _seed_rows(
    fact: EncodedFact, forbidden: dict[_RelGroup, set[int]] | None
) -> list[int]:
    """Candidate rows for *fact* from its most selective constant position."""
    group = fact.group
    best: list[int] | None = None
    for pos, (kind, key) in enumerate(fact.args):
        if kind != _CONST:
            continue
        bucket = group.index[pos].get(key)
        if bucket is None:
            return []
        if best is None or len(bucket) < len(best):
            best = bucket
    rows: Iterable[int] = group.live_rows() if best is None else best
    if forbidden:
        blocked = forbidden.get(group)
        if blocked:
            return [row for row in rows if row not in blocked]
    return list(rows)


def _consistent(
    fact: EncodedFact,
    row: int,
    bound: Mapping[object, int],
    domains: Mapping[object, set[int]],
) -> bool:
    """Is target row *row* compatible with *fact* under bounds and domains?"""
    columns = fact.group.columns
    seen: dict[object, int] = {}
    for pos, (kind, key) in enumerate(fact.args):
        value = columns[pos][row]
        if kind == _CONST:
            if value != key:
                return False
            continue
        fixed_value = bound.get(key)
        if fixed_value is not None:
            if fixed_value != value:
                return False
            continue
        previous = seen.get(key)
        if previous is None:
            domain = domains.get(key)
            if domain is not None and value not in domain:
                return False
            seen[key] = value
        elif previous != value:
            return False
    return True


def _propagate(
    facts: list[EncodedFact],
    facts_of_var: dict[object, list[int]],
    candidates: list[list[int]],
    domains: dict[object, set[int]],
    bound: Mapping[object, int],
    queue: Iterable[int],
    stats: _Stats,
) -> bool:
    """AC-3 style propagation; return False on a domain or candidate wipeout."""
    pending: deque[int] = deque(queue)
    queued = set(pending)
    while pending:
        index = pending.popleft()
        queued.discard(index)
        stats.revisions += 1
        fact = facts[index]
        filtered = [
            row for row in candidates[index] if _consistent(fact, row, bound, domains)
        ]
        candidates[index] = filtered
        if not filtered:
            stats.wipeouts += 1
            return False
        columns = fact.group.columns
        for pos, var in fact.var_positions:
            column = columns[pos]
            supported = {column[row] for row in filtered}
            domain = domains[var]
            if supported >= domain:
                continue
            shrunk = domain & supported
            if not shrunk:
                stats.wipeouts += 1
                return False
            domains[var] = shrunk
            for other in facts_of_var[var]:
                if other != index and other not in queued:
                    pending.append(other)
                    queued.add(other)
    return True


def _search(
    facts: list[EncodedFact],
    facts_of_var: dict[object, list[int]],
    candidates: list[list[int]],
    domains: dict[object, set[int]],
    bound: dict[object, int],
    stats: _Stats,
) -> dict[object, int] | None:
    """Most-constrained-variable backtracking with full look-ahead."""
    stats.nodes += 1
    undecided = [var for var in domains if var not in bound]
    if not undecided:
        return dict(bound)
    var = min(undecided, key=lambda v: (len(domains[v]), repr(v)))
    for value in sorted(domains[var]):
        child_bound = dict(bound)
        child_bound[var] = value
        child_domains = {v: set(d) for v, d in domains.items()}
        child_domains[var] = {value}
        child_candidates = [list(c) for c in candidates]
        if _propagate(
            facts, facts_of_var, child_candidates, child_domains, child_bound,
            facts_of_var[var], stats,
        ):
            # Propagation can pin further variables to singletons; adopt them.
            for v, domain in child_domains.items():
                if v not in child_bound and len(domain) == 1:
                    child_bound[v] = next(iter(domain))
            result = _search(
                facts, facts_of_var, child_candidates, child_domains,
                child_bound, stats,
            )
            if result is not None:
                return result
        stats.backtracks += 1
    return None


def _solve_component(
    facts: list[EncodedFact],
    forbidden: dict[_RelGroup, set[int]] | None,
    stats: _Stats,
) -> dict[object, int] | None:
    """Solve one component: domains from index buckets, AC-3, then search."""
    domains: dict[object, set[int]] = {}
    candidates: list[list[int]] = []
    facts_of_var: dict[object, list[int]] = {}
    for index, fact in enumerate(facts):
        rows = _seed_rows(fact, forbidden)
        candidates.append(rows)
        if not rows:
            stats.wipeouts += 1
            return None
        columns = fact.group.columns
        for pos, var in fact.var_positions:
            facts_of_var.setdefault(var, []).append(index)
            column = columns[pos]
            occurrence = {column[row] for row in rows}
            domain = domains.get(var)
            domains[var] = occurrence if domain is None else domain & occurrence
            if not domains[var]:
                stats.wipeouts += 1
                return None
    bound: dict[object, int] = {}
    if not _propagate(
        facts, facts_of_var, candidates, domains, bound, range(len(facts)), stats
    ):
        return None
    for var, domain in domains.items():
        if len(domain) == 1:
            bound[var] = next(iter(domain))
    return _search(facts, facts_of_var, candidates, domains, bound, stats)


def solve_encoded(
    encoded: list[EncodedFact],
    forbidden: dict[_RelGroup, set[int]] | None = None,
) -> dict[object, int] | None:
    """Map every variable key of *encoded* to a value id, or None.

    Grounded facts reduce to (live) row lookups; components solve
    independently.  This is the entry the columnar core engine calls with
    facts built directly from group columns (variable keys are the null
    value ids themselves).
    """
    stats = _Stats()
    try:
        result: dict[object, int] = {}
        components, grounded = _split_components(encoded)
        for fact in grounded:
            ids = tuple(key for __, key in fact.args)
            row = fact.group.row_of.get(ids)  # type: ignore[arg-type]
            if row is None:
                return None
            if forbidden:
                blocked = forbidden.get(fact.group)
                if blocked and row in blocked:
                    return None
        for component in components:
            solution = _solve_component(component, forbidden, stats)
            if solution is None:
                return None
            result.update(solution)
        return result
    finally:
        stats.flush()


def block_homomorphism_columnar(
    facts: Iterable[Atom],
    target: ColumnarInstance,
    fixed: Mapping[object, object] | None = None,
    forbidden: AbstractSet[Atom] = _EMPTY_FORBIDDEN,
) -> dict[object, object] | None:
    """Map the free nulls of *facts* so every fact lands in *target*, or None.

    Same contract as :func:`repro.engine.hom_kernel.block_homomorphism`
    (which dispatches here when the target is columnar): *fixed* pre-binds
    some nulls without returning them, *forbidden* facts count as absent,
    and the returned dict binds exactly the free nulls of *facts*.
    """
    fixed = fixed or {}
    encoded = encode_facts(facts, target, fixed)
    if encoded is None:
        # Unmatchable relation or value; still one kernel call for accounting.
        perf.incr("hom.columnar.kernel_calls")
        return None
    solution = solve_encoded(encoded, forbidden_rows_of(target, forbidden))
    if solution is None:
        return None
    value = target.values.value
    return {null: value(vid) for null, vid in solution.items()}


__all__ = [
    "EncodedFact",
    "block_homomorphism_columnar",
    "encode_facts",
    "forbidden_rows_of",
    "solve_encoded",
]
