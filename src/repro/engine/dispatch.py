"""Backend selection for the chase engines: tuple, columnar, or SQL pushdown.

Three interchangeable execution backends run the oblivious chase:

``tuple``
    The original engines over interned Python objects -- lowest constant
    setup cost, no restrictions, and the reference semantics every other
    backend is differential-tested against.
``columnar``
    :mod:`repro.engine.columnar` -- facts as dense integer arrays with
    index-seeded integer joins.  Same round-by-round semantics as the tuple
    engine (bounded runs agree exactly); pays an encode pass up front.
``sql``
    :mod:`repro.engine.sql_backend` -- the program compiled to SQLite
    ``INSERT ... SELECT`` statements (semi-naive delta loop for fixpoints).
    Highest setup cost, by far the fastest joins at scale; only available
    for SQL-compilable clause programs, and a fixpoint run should be
    certified terminating by the static hierarchy (or explicitly bounded)
    before being handed to an unbounded SQL loop.

:func:`choose_backend` implements the ``"auto"`` policy.  The thresholds
derive from the static cost model's role: :func:`repro.analysis.cost.chase_cost`
certifies *whether* a polynomial bound exists (``estimate.degree``); the
instance size then decides whether the per-fact savings amortize each
backend's setup cost.  The crossover points below were measured by
``benchmarks/bench_backend_chase.py`` on the scaling workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ChaseError
from repro.logic.sotgd import SOClause

#: Backend names accepted by ``backend=`` parameters everywhere.
BACKENDS = ("tuple", "columnar", "sql", "auto")

#: Minimum input facts before "auto" prefers the columnar engine (below
#: this, encoding the instance costs more than the joins it speeds up).
COLUMNAR_AUTO_THRESHOLD = 500

#: Minimum input facts before "auto" prefers SQL pushdown (below this,
#: connection setup + encode/decode round-trips dominate).
SQL_AUTO_THRESHOLD = 5_000


@dataclass(frozen=True)
class BackendChoice:
    """The resolved backend plus the reason, for reports and ``--backend`` CLI."""

    backend: str  # "tuple" | "columnar" | "sql"
    requested: str
    reason: str

    @property
    def was_auto(self) -> bool:
        return self.requested == "auto"


def validate_backend(name: str) -> str:
    """Return *name* if it is a known backend name, else raise ``ChaseError``."""
    if name not in BACKENDS:
        raise ChaseError(
            f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
        )
    return name


def choose_backend(
    requested: str,
    *,
    input_size: int,
    clauses: Sequence[SOClause],
    certified: bool,
    needs_fact_stream: bool = False,
) -> BackendChoice:
    """Resolve a ``backend=`` argument ("auto" included) to a concrete backend.

    *certified* tells whether the static termination hierarchy certified the
    program (for single-pass exchanges, pass True: they always terminate).
    *needs_fact_stream* marks callers that watch facts as they are derived
    (``fact_hook``); the SQL backend cannot stream, so "auto" avoids it and
    an explicit ``backend="sql"`` is rejected.
    """
    from repro.engine.sql_backend import sql_compilable

    validate_backend(requested)
    if requested == "sql":
        if needs_fact_stream:
            raise ChaseError(
                "backend 'sql' cannot stream derived facts (fact_hook); "
                "use the tuple or columnar backend"
            )
        return BackendChoice("sql", requested, "requested explicitly")
    if requested != "auto":
        return BackendChoice(requested, requested, "requested explicitly")

    if (
        not needs_fact_stream
        and certified
        and input_size >= SQL_AUTO_THRESHOLD
        and sql_compilable(clauses)
    ):
        return BackendChoice(
            "sql",
            requested,
            f"certified program, {input_size} facts >= {SQL_AUTO_THRESHOLD}",
        )
    if input_size >= COLUMNAR_AUTO_THRESHOLD:
        return BackendChoice(
            "columnar",
            requested,
            f"{input_size} facts >= {COLUMNAR_AUTO_THRESHOLD}",
        )
    return BackendChoice(
        "tuple", requested, f"small input ({input_size} facts)"
    )


__all__ = [
    "BACKENDS",
    "BackendChoice",
    "COLUMNAR_AUTO_THRESHOLD",
    "SQL_AUTO_THRESHOLD",
    "choose_backend",
    "validate_backend",
]
