"""Backend selection for the chase engines: tuple, columnar, or SQL pushdown.

Three interchangeable execution backends run the oblivious chase:

``tuple``
    The original engines over interned Python objects -- lowest constant
    setup cost, no restrictions, and the reference semantics every other
    backend is differential-tested against.
``columnar``
    :mod:`repro.engine.columnar` -- facts as dense integer arrays with
    index-seeded integer joins.  Same round-by-round semantics as the tuple
    engine (bounded runs agree exactly); pays an encode pass up front.
``sql``
    :mod:`repro.engine.sql_backend` -- the program compiled to SQLite
    ``INSERT ... SELECT`` statements (semi-naive delta loop for fixpoints).
    Highest setup cost, by far the fastest joins at scale; only available
    for SQL-compilable clause programs, and a fixpoint run should be
    certified terminating by the static hierarchy (or explicitly bounded)
    before being handed to an unbounded SQL loop.

:func:`choose_backend` implements the ``"auto"`` policy.  The thresholds
derive from the static cost model's role: :func:`repro.analysis.cost.chase_cost`
certifies *whether* a polynomial bound exists (``estimate.degree``); the
instance size then decides whether the per-fact savings amortize each
backend's setup cost.  The crossover points below were measured by
``benchmarks/bench_backend_chase.py`` on the scaling workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ChaseError
from repro.logic.sotgd import SOClause

if TYPE_CHECKING:
    from repro.analysis.frontier import ComplexityTier

#: Backend names accepted by ``backend=`` parameters everywhere.
BACKENDS = ("tuple", "columnar", "sql", "auto")

#: Minimum input facts before "auto" prefers the columnar engine (below
#: this, encoding the instance costs more than the joins it speeds up).
COLUMNAR_AUTO_THRESHOLD = 500

#: Minimum input facts before "auto" prefers SQL pushdown (below this,
#: connection setup + encode/decode round-trips dominate).
SQL_AUTO_THRESHOLD = 5_000

#: Lowered SQL threshold for PTIME-tier programs: the per-relation degree
#: witnesses bound the joins tightly enough that the pushdown amortizes its
#: setup much earlier than in the worst (merely certified) case.
SQL_AUTO_THRESHOLD_PTIME = 1_000

#: Fact budget "auto" imposes on bounded runs of non-elementary-tier
#: (uncertified) programs, so a runaway bounded chase fails fast with
#: ``BudgetExceeded`` instead of grinding through a blowup.
NON_ELEMENTARY_AUTO_BUDGET = 1_000_000

#: Minimum input facts before core's "auto" prefers the columnar engine.
#: Lower than the chase crossover: the core worklist re-probes the same
#: blocks many times, so the one-shot encode pass amortizes sooner.
CORE_COLUMNAR_AUTO_THRESHOLD = 300

#: Minimum input facts before core's "auto" pushes per-block eliminating
#: homomorphisms down to SQL (per-block SELECT joins; session setup and
#: encode/decode round-trips dominate below this).
CORE_SQL_AUTO_THRESHOLD = 20_000


@dataclass(frozen=True)
class BackendChoice:
    """The resolved backend plus the reason, for reports and ``--backend`` CLI.

    ``tier`` records the complexity tier the policy consulted (when the
    caller passed one) and ``forced_budget`` a fact cap "auto" imposes on
    non-elementary-tier programs (``None`` otherwise -- the caller applies
    it only when no explicit budget was given).
    """

    backend: str  # "tuple" | "columnar" | "sql"
    requested: str
    reason: str
    tier: "ComplexityTier | None" = None
    forced_budget: int | None = None

    @property
    def was_auto(self) -> bool:
        return self.requested == "auto"


def validate_backend(name: str) -> str:
    """Return *name* if it is a known backend name, else raise ``ChaseError``."""
    if name not in BACKENDS:
        raise ChaseError(
            f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
        )
    return name


def choose_backend(
    requested: str,
    *,
    input_size: int,
    clauses: Sequence[SOClause],
    certified: bool,
    needs_fact_stream: bool = False,
    tier: "ComplexityTier | None" = None,
) -> BackendChoice:
    """Resolve a ``backend=`` argument ("auto" included) to a concrete backend.

    *certified* tells whether the static termination hierarchy certified the
    program (for single-pass exchanges, pass True: they always terminate).
    *needs_fact_stream* marks callers that watch facts as they are derived
    (``fact_hook``); the SQL backend cannot stream, so "auto" avoids it and
    an explicit ``backend="sql"`` is rejected.

    *tier* refines the "auto" policy with the complexity tier of
    :func:`repro.analysis.frontier.tier_report`: a ``PTIME``-certified
    program becomes SQL-eligible at :data:`SQL_AUTO_THRESHOLD_PTIME` facts
    (its per-relation degree witnesses bound the pushdown's work), and a
    ``NON_ELEMENTARY`` program gets ``forced_budget`` set so bounded runs
    fail fast instead of blowing up.
    """
    from repro.engine.sql_backend import sql_compilable

    validate_backend(requested)
    if requested == "sql":
        if needs_fact_stream:
            raise ChaseError(
                "backend 'sql' cannot stream derived facts (fact_hook); "
                "use the tuple or columnar backend"
            )
        return BackendChoice("sql", requested, "requested explicitly", tier=tier)
    if requested != "auto":
        return BackendChoice(
            requested, requested, "requested explicitly", tier=tier
        )

    forced_budget = None
    if tier is not None:
        from repro.analysis.frontier import ComplexityTier

        if tier is ComplexityTier.NON_ELEMENTARY:
            # No certificate at all -- cap bounded runs.
            forced_budget = NON_ELEMENTARY_AUTO_BUDGET

    sql_threshold = SQL_AUTO_THRESHOLD
    if tier is not None and tier.polynomial:
        sql_threshold = SQL_AUTO_THRESHOLD_PTIME
    if (
        not needs_fact_stream
        and certified
        and input_size >= sql_threshold
        and sql_compilable(clauses)
    ):
        qualifier = (
            "PTIME-tier program" if sql_threshold != SQL_AUTO_THRESHOLD
            else "certified program"
        )
        return BackendChoice(
            "sql",
            requested,
            f"{qualifier}, {input_size} facts >= {sql_threshold}",
            tier=tier,
            forced_budget=forced_budget,
        )
    if input_size >= COLUMNAR_AUTO_THRESHOLD:
        return BackendChoice(
            "columnar",
            requested,
            f"{input_size} facts >= {COLUMNAR_AUTO_THRESHOLD}",
            tier=tier,
            forced_budget=forced_budget,
        )
    return BackendChoice(
        "tuple", requested, f"small input ({input_size} facts)",
        tier=tier, forced_budget=forced_budget,
    )


def choose_core_backend(
    requested: str,
    *,
    input_size: int,
    sql_supported: bool = False,
) -> BackendChoice:
    """Resolve a core-computation ``backend=`` argument to a concrete backend.

    Core computation has its own crossover points: the block worklist
    re-probes the shrinking instance many times per null, so the columnar
    encode pass amortizes earlier than in a chase, while the SQL pushdown
    (one SELECT join per candidate elimination) only wins once blocks are
    large enough to drown the per-query compile/decode cost.

    *sql_supported* reports whether the instance can be loaded into a SQL
    core session (:func:`repro.engine.sql_backend.sql_core_supported`);
    callers probe it lazily, only when SQL is actually in play.  An explicit
    ``"sql"`` request on an unsupported instance raises, while ``"auto"``
    falls back to the columnar engine.
    """
    validate_backend(requested)
    if requested == "sql":
        if not sql_supported:
            raise ChaseError(
                "backend 'sql' cannot load this instance for core "
                "computation (unencodable value, arity-0 or mixed-arity "
                "relation); use the columnar backend"
            )
        return BackendChoice("sql", requested, "requested explicitly")
    if requested != "auto":
        return BackendChoice(requested, requested, "requested explicitly")
    if sql_supported and input_size >= CORE_SQL_AUTO_THRESHOLD:
        return BackendChoice(
            "sql", requested, f"{input_size} facts >= {CORE_SQL_AUTO_THRESHOLD}"
        )
    if input_size >= CORE_COLUMNAR_AUTO_THRESHOLD:
        return BackendChoice(
            "columnar",
            requested,
            f"{input_size} facts >= {CORE_COLUMNAR_AUTO_THRESHOLD}",
        )
    return BackendChoice("tuple", requested, f"small input ({input_size} facts)")


__all__ = [
    "BACKENDS",
    "BackendChoice",
    "COLUMNAR_AUTO_THRESHOLD",
    "CORE_COLUMNAR_AUTO_THRESHOLD",
    "CORE_SQL_AUTO_THRESHOLD",
    "NON_ELEMENTARY_AUTO_BUDGET",
    "SQL_AUTO_THRESHOLD",
    "SQL_AUTO_THRESHOLD_PTIME",
    "choose_backend",
    "choose_core_backend",
    "validate_backend",
]
