"""Conjunctive-query matching: find all assignments satisfying a conjunction of atoms.

This is the workhorse used by every chase variant and by model checking.  It
is a backtracking join over the instance's per-relation and per-position
indexes, with a greedy "most bound variables first" atom ordering.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Variable


def _order_atoms(atoms: Sequence[Atom], bound: set[Variable]) -> list[Atom]:
    """Greedily order atoms so that each one shares variables with earlier ones."""
    remaining = list(atoms)
    ordered: list[Atom] = []
    known = set(bound)
    while remaining:
        best_index = 0
        best_score = (-1, 0)
        for index, atom in enumerate(remaining):
            atom_vars = atom.variable_set()
            score = (len(atom_vars & known), -len(atom_vars - known))
            if score > best_score:
                best_score = score
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        known |= chosen.variable_set()
    return ordered


def _candidate_facts(atom: Atom, instance: Instance, assignment: dict) -> list[Atom]:
    """Return the candidate facts for *atom*, seeded by the most selective bound position."""
    best: list[Atom] | None = None
    for pos, arg in enumerate(atom.args):
        value = assignment.get(arg) if isinstance(arg, Variable) else arg
        if value is None:
            continue
        candidates = instance.facts_with(atom.relation, pos, value)
        if best is None or len(candidates) < len(best):
            best = candidates
            if not best:
                return []
    if best is not None:
        return best
    return instance.facts_of(atom.relation)


def _match_atom(atom: Atom, fact: Atom, assignment: dict) -> dict | None:
    """Try to unify *atom* against *fact* under *assignment*; return extended bindings."""
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    new_bindings: dict = {}
    for arg, value in zip(atom.args, fact.args):
        if isinstance(arg, Variable):
            existing = assignment.get(arg, new_bindings.get(arg))
            if existing is None:
                new_bindings[arg] = value
            elif existing != value:
                return None
        elif arg != value:
            return None
    return new_bindings


def find_matches(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping | None = None,
) -> Iterator[dict]:
    """Yield every assignment of the variables of *atoms* satisfied in *instance*.

    *partial* pre-binds some variables (the "input assignment" of a nested-tgd
    triggering, Section 3).  Each yielded dict extends *partial* and binds all
    variables occurring in *atoms*.  Assignments are yielded once each; the
    iteration order is deterministic for a given instance.

        >>> from repro.logic.parser import parse_atom, parse_instance
        >>> inst = parse_instance("S(a,b), S(b,c)")
        >>> sorted(m[Variable("x")].name for m in find_matches([parse_atom("S(x,y)")], inst))
        ['a', 'b']
    """
    base: dict = dict(partial) if partial else {}
    ordered = _order_atoms(atoms, set(base))

    def search(index: int, assignment: dict) -> Iterator[dict]:
        if index == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[index]
        for fact in _candidate_facts(atom, instance, assignment):
            new_bindings = _match_atom(atom, fact, assignment)
            if new_bindings is None:
                continue
            assignment.update(new_bindings)
            yield from search(index + 1, assignment)
            for var in new_bindings:
                del assignment[var]

    yield from search(0, base)


def has_match(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping | None = None,
) -> bool:
    """Return True if *atoms* has at least one match in *instance*."""
    return next(find_matches(atoms, instance, partial), None) is not None


__all__ = ["find_matches", "has_match"]
