"""Conjunctive-query matching: find all assignments satisfying a conjunction of atoms.

This is the workhorse used by every chase variant and by model checking.  It
is a backtracking join over the instance's per-relation and per-position
indexes, with a greedy "most bound variables first" atom ordering.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Iterator, Mapping, Sequence

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Variable


def _order_atoms(atoms: Sequence[Atom], bound: set[Variable]) -> list[Atom]:
    """Greedily order atoms so that each one shares variables with earlier ones.

    Most bound variables first, fewest new variables as tie-break.  Variable
    sets are computed once per atom and scores live in a lazy max-heap, so an
    atom is rescored only when one of its variables becomes bound: the
    ordering is near-linear in the total number of variable occurrences
    instead of quadratic in the atom count.
    """
    var_sets = [atom.variable_set() for atom in atoms]
    atoms_of_var: dict[Variable, list[int]] = defaultdict(list)
    for index, variables in enumerate(var_sets):
        for var in variables:
            atoms_of_var[var].append(index)
    known = set(bound)
    known_counts = [len(variables & known) for variables in var_sets]

    def entry(index: int) -> tuple[int, int, int]:
        return (-known_counts[index], len(var_sets[index]) - known_counts[index], index)

    heap = [entry(index) for index in range(len(atoms))]
    heapq.heapify(heap)
    placed = [False] * len(atoms)
    ordered: list[Atom] = []
    while heap:
        popped = heapq.heappop(heap)
        index = popped[2]
        if placed[index]:
            continue
        if popped != entry(index):
            # Stale score: a fresher (better) entry for this atom is queued.
            continue
        placed[index] = True
        ordered.append(atoms[index])
        for var in var_sets[index]:
            if var in known:
                continue
            known.add(var)
            for other in atoms_of_var[var]:
                if not placed[other]:
                    known_counts[other] += 1
                    heapq.heappush(heap, entry(other))
    return ordered


def _candidate_facts(atom: Atom, instance: Instance, assignment: dict) -> list[Atom]:
    """Return the candidate facts for *atom*, seeded by the most selective bound position."""
    best: list[Atom] | None = None
    for pos, arg in enumerate(atom.args):
        value = assignment.get(arg) if isinstance(arg, Variable) else arg
        if value is None:
            continue
        candidates = instance.facts_with(atom.relation, pos, value)
        if best is None or len(candidates) < len(best):
            best = candidates
            if not best:
                return []
    if best is not None:
        return best
    return instance.facts_of(atom.relation)


def _match_atom(atom: Atom, fact: Atom, assignment: dict) -> dict | None:
    """Try to unify *atom* against *fact* under *assignment*; return extended bindings."""
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    new_bindings: dict = {}
    for arg, value in zip(atom.args, fact.args):
        if isinstance(arg, Variable):
            existing = assignment.get(arg, new_bindings.get(arg))
            if existing is None:
                new_bindings[arg] = value
            elif existing != value:
                return None
        elif arg != value:
            return None
    return new_bindings


def find_matches(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping | None = None,
) -> Iterator[dict]:
    """Yield every assignment of the variables of *atoms* satisfied in *instance*.

    *partial* pre-binds some variables (the "input assignment" of a nested-tgd
    triggering, Section 3).  Each yielded dict extends *partial* and binds all
    variables occurring in *atoms*.  Assignments are yielded once each; the
    iteration order is deterministic for a given instance.

        >>> from repro.logic.parser import parse_atom, parse_instance
        >>> inst = parse_instance("S(a,b), S(b,c)")
        >>> sorted(m[Variable("x")].name for m in find_matches([parse_atom("S(x,y)")], inst))
        ['a', 'b']
    """
    base: dict = dict(partial) if partial else {}
    ordered = _order_atoms(atoms, set(base))

    def search(index: int, assignment: dict) -> Iterator[dict]:
        if index == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[index]
        for fact in _candidate_facts(atom, instance, assignment):
            new_bindings = _match_atom(atom, fact, assignment)
            if new_bindings is None:
                continue
            assignment.update(new_bindings)
            yield from search(index + 1, assignment)
            for var in new_bindings:
                del assignment[var]

    yield from search(0, base)


def has_match(
    atoms: Sequence[Atom],
    instance: Instance,
    partial: Mapping | None = None,
) -> bool:
    """Return True if *atoms* has at least one match in *instance*."""
    return next(find_matches(atoms, instance, partial), None) is not None


def find_delta_matches(
    atoms: Sequence[Atom],
    instance: Instance,
    delta: Sequence[Atom],
    partial: Mapping | None = None,
) -> list[dict]:
    """All matches of *atoms* in *instance* that use at least one fact of *delta*.

    This is the seeding step of every semi-naive fixpoint in the engine (the
    egd chase, the semi-naive oblivious fixpoint chase, and the incremental
    IMPLIES sweep): for each atom in turn, unify it against each delta fact
    and complete the remaining atoms against the full instance.  A match that
    uses no delta fact consists entirely of pre-existing facts and was found
    by an earlier (full) matching pass, so restricting to these seeds loses
    nothing.  A match using several delta facts is found once per usable
    (atom, fact) seed, so assignments are deduplicated.
    """
    delta_by_relation: dict[str, list[Atom]] = {}
    for fact in delta:
        delta_by_relation.setdefault(fact.relation, []).append(fact)
    base: dict = dict(partial) if partial else {}
    seen: set[frozenset] = set()
    matches: list[dict] = []
    for index, atom in enumerate(atoms):
        candidates = delta_by_relation.get(atom.relation)
        if not candidates:
            continue
        rest = tuple(atoms[:index]) + tuple(atoms[index + 1:])
        for fact in candidates:
            if atom.arity != fact.arity:
                continue
            bindings = _match_atom(atom, fact, base)
            if bindings is None:
                continue
            if base:
                bindings = {**base, **bindings}
            for assignment in find_matches(rest, instance, partial=bindings):
                key = frozenset(assignment.items())
                if key not in seen:
                    seen.add(key)
                    matches.append(assignment)
    return matches


__all__ = ["find_matches", "find_delta_matches", "has_match"]
