"""Egd chase on source instances.

Section 5 of the paper allows equality-generating dependencies over the
source schema.  The *legal canonical instances* of Definition 5.4 are built
by chasing the canonical source instance of a pattern with the source egds:
whenever the body of an egd matches with ``left != right``, the two values
are merged.

Because canonical source instances are built from anonymous fresh constants,
merging two constants is the intended behaviour there
(``allow_constant_merge=True``).  On ordinary instances with rigid constants,
the standard chase semantics raises :class:`EgdViolation` instead.
Merging is implemented with a union-find over the active domain.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import EgdViolation
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.values import is_null
from repro.engine.matching import find_matches


class UnionFind:
    """Union-find over instance values with deterministic representatives.

    Representatives are chosen so that constants win over nulls and the
    repr-smallest value wins among equals, making chase results reproducible.
    """

    def __init__(self):
        self._parent: dict = {}

    def find(self, value):
        parent = self._parent.get(value, value)
        if parent == value:
            return value
        root = self.find(parent)
        self._parent[value] = root
        return root

    def union(self, left, right) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        winner, loser = self._pick(left_root, right_root)
        self._parent[loser] = winner

    @staticmethod
    def _pick(left, right):
        """Prefer constants over nulls, then repr order, as the representative."""
        left_is_null, right_is_null = is_null(left), is_null(right)
        if left_is_null != right_is_null:
            return (right, left) if left_is_null else (left, right)
        if repr(left) <= repr(right):
            return left, right
        return right, left

    def as_mapping(self, domain: Iterable) -> dict:
        """Return the value -> representative map restricted to *domain*."""
        return {value: self.find(value) for value in domain}


def chase_egds(
    instance: Instance,
    egds: Sequence[Egd],
    *,
    allow_constant_merge: bool = False,
) -> tuple[Instance, dict]:
    """Chase *instance* with *egds* to a fixpoint.

    Returns ``(chased_instance, equalities)`` where *equalities* maps each
    value of the original active domain to its representative.  Raises
    :class:`EgdViolation` if two distinct constants would be merged and
    *allow_constant_merge* is False.

        >>> from repro.logic.parser import parse_egd, parse_instance
        >>> egd = parse_egd("P(z, x) & P(z, y) -> x = y")
        >>> I = parse_instance("P(a, b), P(a, c)")
        >>> J, eq = chase_egds(I, [egd], allow_constant_merge=True)
        >>> len(J)
        1
    """
    union_find = UnionFind()
    current = instance
    changed = True
    while changed:
        changed = False
        for egd in egds:
            for assignment in find_matches(egd.body, current):
                left = assignment[egd.left]
                right = assignment[egd.right]
                if left == right:
                    continue
                if not allow_constant_merge and not is_null(left) and not is_null(right):
                    raise EgdViolation(left, right)
                union_find.union(left, right)
                changed = True
        if changed:
            mapping = union_find.as_mapping(current.active_domain())
            current = current.map_values(mapping)
    equalities = union_find.as_mapping(instance.active_domain())
    return current, equalities


def satisfies_egds(instance: Instance, egds: Sequence[Egd]) -> bool:
    """Return True if *instance* satisfies every egd in *egds*."""
    for egd in egds:
        for assignment in find_matches(egd.body, instance):
            if assignment[egd.left] != assignment[egd.right]:
                return False
    return True


__all__ = ["UnionFind", "chase_egds", "satisfies_egds"]
