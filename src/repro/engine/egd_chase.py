"""Egd chase on source instances, as a semi-naive (delta-driven) fixpoint.

Section 5 of the paper allows equality-generating dependencies over the
source schema.  The *legal canonical instances* of Definition 5.4 are built
by chasing the canonical source instance of a pattern with the source egds:
whenever the body of an egd matches with ``left != right``, the two values
are merged.

Because canonical source instances are built from anonymous fresh constants,
merging two constants is the intended behaviour there
(``allow_constant_merge=True``).  On ordinary instances with rigid constants,
the standard chase semantics raises :class:`EgdViolation` instead.
Merging is implemented with a union-find over the active domain.

The fixpoint is *semi-naive*: round 0 matches every egd body against the
whole instance, but every later round only looks for matches involving at
least one fact of the previous round's **delta** -- the facts newly produced
by rewriting merged values.  Any match that uses no delta fact consists
entirely of facts that already existed (with the same values) in the
previous round and was therefore already processed; restricting to the delta
loses nothing and turns the per-round matching cost from O(instance) into
O(delta).  Rewriting is equally incremental: only the facts actually
containing a merged value (found via the builder's per-value index) are
removed and re-added.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro import perf
from repro.errors import EgdViolation
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.values import is_null
from repro.engine.builder import InstanceBuilder
from repro.engine.matching import find_delta_matches, find_matches


class UnionFind:
    """Union-find over instance values with deterministic representatives.

    Representatives are chosen so that constants win over nulls and the
    repr-smallest value wins among equals, making chase results reproducible
    regardless of merge order (the representative of a class is always its
    most-preferred member).
    """

    def __init__(self):
        self._parent: dict = {}

    def find(self, value):
        parent = self._parent.get(value, value)
        if parent == value:
            return value
        root = self.find(parent)
        self._parent[value] = root
        return root

    def union(self, left, right) -> bool:
        """Merge the classes of *left* and *right*; return True if they were distinct."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        winner, loser = self._pick(left_root, right_root)
        self._parent[loser] = winner
        return True

    @staticmethod
    def _pick(left, right):
        """Prefer constants over nulls, then repr order, as the representative."""
        left_is_null, right_is_null = is_null(left), is_null(right)
        if left_is_null != right_is_null:
            return (right, left) if left_is_null else (left, right)
        if repr(left) <= repr(right):
            return left, right
        return right, left

    def as_mapping(self, domain: Iterable) -> dict:
        """Return the value -> representative map restricted to *domain*."""
        return {value: self.find(value) for value in domain}


def chase_egds(
    instance: Instance,
    egds: Sequence[Egd],
    *,
    allow_constant_merge: bool = False,
) -> tuple[Instance, dict]:
    """Chase *instance* with *egds* to a fixpoint, semi-naively.

    Returns ``(chased_instance, equalities)`` where *equalities* maps each
    value of the original active domain to its representative.  Raises
    :class:`EgdViolation` if two distinct constants would be merged and
    *allow_constant_merge* is False.

        >>> from repro.logic.parser import parse_egd, parse_instance
        >>> egd = parse_egd("P(z, x) & P(z, y) -> x = y")
        >>> I = parse_instance("P(a, b), P(a, c)")
        >>> J, eq = chase_egds(I, [egd], allow_constant_merge=True)
        >>> len(J)
        1
    """
    union_find = UnionFind()
    builder = InstanceBuilder(instance)
    bodies = [(egd, tuple(egd.body)) for egd in egds]
    delta: list[Atom] | None = None  # None: first round matches everything
    changed = True
    while changed:
        changed = False
        perf.incr("chase.rounds")
        merged_roots: set = set()
        for egd, body in bodies:
            if delta is None:
                assignments = find_matches(body, builder)
            else:
                assignments = find_delta_matches(body, builder, delta)
            for assignment in assignments:
                left = assignment[egd.left]
                right = assignment[egd.right]
                if left == right:
                    continue
                if not allow_constant_merge and not is_null(left) and not is_null(right):
                    raise EgdViolation(left, right)
                if union_find.union(left, right):
                    changed = True
                    merged_roots.add(left)
                    merged_roots.add(right)
        if changed:
            # Incremental rewrite: only values whose representative moved this
            # round can occur in the instance (facts always hold round-start
            # representatives), and only their facts need rewriting.
            mapping = {
                value: root
                for value in merged_roots
                if (root := union_find.find(value)) != value
            }
            affected: set[Atom] = set()
            for value in mapping:
                affected |= builder.facts_containing(value)
            for fact in affected:
                builder.discard(fact)
            delta = []
            for fact in affected:
                renamed = fact.rename_values(mapping)
                if builder.add(renamed):
                    delta.append(renamed)
            perf.incr("chase.delta_facts", len(delta))
    equalities = union_find.as_mapping(instance.active_domain())
    return builder.freeze(), equalities


def satisfies_egds(instance: Instance, egds: Sequence[Egd]) -> bool:
    """Return True if *instance* satisfies every egd in *egds*."""
    for egd in egds:
        for assignment in find_matches(egd.body, instance):
            if assignment[egd.left] != assignment[egd.right]:
                return False
    return True


__all__ = ["UnionFind", "chase_egds", "satisfies_egds"]
