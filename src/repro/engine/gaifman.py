"""Gaifman graphs of facts and of nulls, f-blocks, and their metrics.

Section 2 of the paper defines the *Gaifman graph of facts* of a target
instance J: nodes are the facts of J, with an edge between two facts sharing
a null.  Its connected components are the *fact blocks* (f-blocks) of J, and
the *f-block size* of J is the maximum cardinality of an f-block.

Section 4.2 additionally defines the *Gaifman graph of nulls*: nodes are the
nulls of J, with an edge between two nulls occurring in the same fact, and
the *path length* of an instance: the length of the longest simple path in
the null graph.  These drive the separation tools (Theorems 4.12 and 4.16).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

import networkx as nx

from repro.logic.atoms import Atom
from repro.logic.instances import Instance


def fact_graph(instance: Instance) -> nx.Graph:
    """Return the Gaifman graph of facts of *instance* (nodes are facts)."""
    graph = nx.Graph()
    graph.add_nodes_from(instance.facts)
    by_null: dict = defaultdict(list)
    for fact in instance:
        for null in set(fact.nulls()):
            by_null[null].append(fact)
    for facts in by_null.values():
        anchor = facts[0]
        for other in facts[1:]:
            graph.add_edge(anchor, other)
    return graph


def fact_blocks(instance: Instance) -> Iterator[frozenset[Atom]]:
    """Yield the f-blocks of *instance* (connected components of the fact graph).

    Facts without nulls form singleton blocks.
    """
    for component in nx.connected_components(fact_graph(instance)):
        yield frozenset(component)


def fact_block_of(instance: Instance, fact: Atom) -> frozenset[Atom]:
    """Return the f-block containing *fact*."""
    graph = fact_graph(instance)
    return frozenset(nx.node_connected_component(graph, fact))


def fact_block_size(instance: Instance) -> int:
    """Return the f-block size of *instance*: the maximum f-block cardinality."""
    if not len(instance):
        return 0
    return max(len(block) for block in fact_blocks(instance))


def is_connected(instance: Instance) -> bool:
    """Return True if the fact graph of *instance* is connected (Section 2)."""
    graph = fact_graph(instance)
    if graph.number_of_nodes() == 0:
        return True
    return nx.is_connected(graph)


def fblock_degree(instance: Instance) -> int:
    """Return the maximum degree over all f-blocks of the fact graph.

    Section 4.2: a mapping has bounded f-degree on a class of instances if the
    degree of every f-block of the core of the chase stays below a constant.
    The degree of a fact is the number of fact-graph edges incident to it.
    Note that :func:`fact_graph` uses a star per null to witness connectivity,
    so for degree purposes we use the *complete* sharing graph instead.
    """
    graph = full_fact_graph(instance)
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for __, degree in graph.degree())


def full_fact_graph(instance: Instance) -> nx.Graph:
    """Return the fact graph with an edge for *every* pair of facts sharing a null.

    :func:`fact_graph` adds only a star per null (sufficient for connectivity
    and hence f-blocks); this variant materializes all edges and is the graph
    whose degree Section 4.2 refers to.
    """
    graph = nx.Graph()
    graph.add_nodes_from(instance.facts)
    by_null: dict = defaultdict(list)
    for fact in instance:
        for null in set(fact.nulls()):
            by_null[null].append(fact)
    for facts in by_null.values():
        for i, left in enumerate(facts):
            for right in facts[i + 1:]:
                graph.add_edge(left, right)
    return graph


def null_graph(instance: Instance) -> nx.Graph:
    """Return the Gaifman graph of nulls of *instance* (nodes are nulls)."""
    graph = nx.Graph()
    graph.add_nodes_from(instance.nulls())
    for fact in instance:
        nulls = sorted(set(fact.nulls()), key=repr)
        for i, left in enumerate(nulls):
            for right in nulls[i + 1:]:
                graph.add_edge(left, right)
    return graph


def longest_simple_path(graph: nx.Graph, cutoff: int | None = None) -> int:
    """Return the length (edge count) of the longest simple path in *graph*.

    Exact branch-and-bound DFS; exponential in the worst case, adequate for
    the instance sizes produced by the paper's constructions.  If *cutoff* is
    given, the search stops early once a path of length >= cutoff is found
    and returns that length.
    """
    best = 0
    nodes = list(graph.nodes)

    adjacency = {node: set(graph.adj[node]) for node in nodes}

    def dfs(node: object, visited: set, length: int) -> int:
        nonlocal best
        if length > best:
            best = length
        if cutoff is not None and best >= cutoff:
            return best
        for neighbor in adjacency[node]:
            if neighbor in visited:
                continue
            visited.add(neighbor)
            dfs(neighbor, visited, length + 1)
            visited.discard(neighbor)
            if cutoff is not None and best >= cutoff:
                return best
        return best

    for start in nodes:
        dfs(start, {start}, 0)
        if cutoff is not None and best >= cutoff:
            break
    return best


def null_path_length(instance: Instance, cutoff: int | None = None) -> int:
    """Return the path length of *instance*: longest simple path in its null graph."""
    return longest_simple_path(null_graph(instance), cutoff=cutoff)


__all__ = [
    "fact_graph",
    "full_fact_graph",
    "fact_blocks",
    "fact_block_of",
    "fact_block_size",
    "is_connected",
    "fblock_degree",
    "null_graph",
    "longest_simple_path",
    "null_path_length",
]
