"""Homomorphisms between target instances.

A homomorphism ``h : J1 -> J2`` maps values to values such that h is the
identity on constants and every fact of J1 is mapped to a fact of J2
(Section 2 of the paper).  Only nulls need to be assigned, so the search
decomposes along the f-blocks of J1: nulls in different f-blocks never
interact, and ground facts of J1 must simply occur in J2.

The search itself lives in :mod:`repro.engine.hom_kernel` (index-seeded
candidates, AC-3 domain pruning, most-constrained-null ordering); this
module keeps the public API and the legacy fact-at-a-time backtracker
(`_block_homomorphism`), which the naive core baseline still exercises.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Mapping

from repro import perf
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import is_null


def _order_block(facts: list[Atom], fixed_nulls: set) -> list[Atom]:
    """Order facts so that consecutive facts share nulls with earlier ones.

    Greedy most-connected-first, implemented with a lazy max-heap over
    (known-null count, -new-null count, index) scores: each fact's null set
    is computed once, and a fact is rescored only when one of its nulls
    becomes known, so the ordering is near-linear in the total number of
    null occurrences (the old version rescored every remaining fact per
    pick: O(n^2) per block).
    """
    null_sets = [set(fact.nulls()) for fact in facts]
    facts_of_null: dict[object, list[int]] = defaultdict(list)
    for index, nulls in enumerate(null_sets):
        for null in nulls:
            facts_of_null[null].append(index)
    known: set = set(fixed_nulls)
    known_counts = [len(nulls & known) for nulls in null_sets]

    def entry(index: int) -> tuple[int, int, int]:
        # Max known-null overlap first, fewest new nulls as tie-break, then
        # position for determinism (matches the old first-max-wins scan).
        return (-known_counts[index], len(null_sets[index]) - known_counts[index], index)

    heap = [entry(index) for index in range(len(facts))]
    heapq.heapify(heap)
    placed = [False] * len(facts)
    ordered: list[Atom] = []
    while heap:
        popped = heapq.heappop(heap)
        index = popped[2]
        if placed[index]:
            continue
        if popped != entry(index):
            # Stale score (a null of this fact became known since the push);
            # the fresher, better entry is already in the heap.
            continue
        placed[index] = True
        ordered.append(facts[index])
        for null in null_sets[index]:
            if null in known:
                continue
            known.add(null)
            for other in facts_of_null[null]:
                if not placed[other]:
                    known_counts[other] += 1
                    heapq.heappush(heap, entry(other))
    return ordered


def _match_fact(query: Atom, target: Atom, mapping: dict) -> dict | None:
    """Unify *query* (with nulls as unknowns) against *target* under *mapping*."""
    if query.relation != target.relation or query.arity != target.arity:
        return None
    new_bindings: dict = {}
    for arg, value in zip(query.args, target.args):
        if is_null(arg):
            existing = mapping.get(arg, new_bindings.get(arg))
            if existing is None:
                new_bindings[arg] = value
            elif existing != value:
                return None
        elif arg != value:
            return None
    return new_bindings


def _candidates(query: Atom, target: Instance, mapping: dict) -> list[Atom]:
    best: list[Atom] | None = None
    for pos, arg in enumerate(query.args):
        value = mapping.get(arg) if is_null(arg) else arg
        if value is None:
            continue
        candidates = target.facts_with(query.relation, pos, value)
        if best is None or len(candidates) < len(best):
            best = candidates
            if not best:
                return []
    if best is not None:
        return best
    return target.facts_of(query.relation)


def _block_homomorphism(
    facts: list[Atom], target: Instance, fixed: Mapping
) -> dict | None:
    """Find a mapping of the nulls of *facts* sending every fact into *target*."""
    fixed_nulls = {n for n in fixed if is_null(n)}
    ordered = _order_block(facts, fixed_nulls)
    mapping: dict = dict(fixed)
    backtracks = 0

    def search(index: int) -> dict | None:
        nonlocal backtracks
        if index == len(ordered):
            return dict(mapping)
        query = ordered[index]
        for candidate in _candidates(query, target, mapping):
            new_bindings = _match_fact(query, candidate, mapping)
            if new_bindings is None:
                backtracks += 1
                continue
            mapping.update(new_bindings)
            result = search(index + 1)
            if result is not None:
                return result
            backtracks += 1
            for null in new_bindings:
                del mapping[null]
        return None

    result = search(0)
    if backtracks:
        perf.incr("hom.backtracks", backtracks)
    return result


def find_homomorphism(
    source: Instance, target: Instance, fixed: Mapping | None = None
) -> dict | None:
    """Find a homomorphism from *source* to *target*, or return None.

    The returned dict maps every null of *source* to a value of *target*
    (constants are implicitly fixed and not included).  *fixed* pre-binds
    some nulls, which is how the core computation searches for folding
    endomorphisms.

        >>> from repro.logic.parser import parse_instance
        >>> J1 = parse_instance("R(a, _x)")
        >>> J2 = parse_instance("R(a, b)")
        >>> find_homomorphism(J1, J2) is not None
        True
        >>> find_homomorphism(J2, J1) is None   # R(a, b) does not occur in J1
        True
    """
    from repro.engine.hom_kernel import find_homomorphism_indexed

    return find_homomorphism_indexed(source, target, fixed)


def has_homomorphism(source: Instance, target: Instance) -> bool:
    """Return True if ``source -> target`` (a homomorphism exists)."""
    return find_homomorphism(source, target) is not None


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """Return True if homomorphisms exist in both directions (``J1 <-> J2``)."""
    return has_homomorphism(left, right) and has_homomorphism(right, left)


def is_homomorphism(mapping: Mapping, source: Instance, target: Instance) -> bool:
    """Verify that *mapping* is a homomorphism from *source* to *target*."""
    for key in mapping:
        if not is_null(key):
            return False
    return all(fact.rename_values(dict(mapping)) in target.facts for fact in source)


__all__ = [
    "find_homomorphism",
    "has_homomorphism",
    "homomorphically_equivalent",
    "is_homomorphism",
]
