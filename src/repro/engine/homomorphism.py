"""Homomorphisms between target instances.

A homomorphism ``h : J1 -> J2`` maps values to values such that h is the
identity on constants and every fact of J1 is mapped to a fact of J2
(Section 2 of the paper).  Only nulls need to be assigned, so the search
decomposes along the f-blocks of J1: nulls in different f-blocks never
interact, and ground facts of J1 must simply occur in J2.
"""

from __future__ import annotations

from typing import Mapping

from repro import perf
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import is_null


def _order_block(facts: list[Atom], fixed_nulls: set) -> list[Atom]:
    """Order facts so that consecutive facts share nulls with earlier ones."""
    remaining = list(facts)
    ordered: list[Atom] = []
    known: set = set(fixed_nulls)
    while remaining:
        best_index = 0
        best_score = (-1, 0)
        for index, fact in enumerate(remaining):
            nulls = set(fact.nulls())
            score = (len(nulls & known), -len(nulls - known))
            if score > best_score:
                best_score = score
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        known |= set(chosen.nulls())
    return ordered


def _match_fact(query: Atom, target: Atom, mapping: dict) -> dict | None:
    """Unify *query* (with nulls as unknowns) against *target* under *mapping*."""
    if query.relation != target.relation or query.arity != target.arity:
        return None
    new_bindings: dict = {}
    for arg, value in zip(query.args, target.args):
        if is_null(arg):
            existing = mapping.get(arg, new_bindings.get(arg))
            if existing is None:
                new_bindings[arg] = value
            elif existing != value:
                return None
        elif arg != value:
            return None
    return new_bindings


def _candidates(query: Atom, target: Instance, mapping: dict) -> list[Atom]:
    best: list[Atom] | None = None
    for pos, arg in enumerate(query.args):
        value = mapping.get(arg) if is_null(arg) else arg
        if value is None:
            continue
        candidates = target.facts_with(query.relation, pos, value)
        if best is None or len(candidates) < len(best):
            best = candidates
            if not best:
                return []
    if best is not None:
        return best
    return target.facts_of(query.relation)


def _block_homomorphism(
    facts: list[Atom], target: Instance, fixed: Mapping
) -> dict | None:
    """Find a mapping of the nulls of *facts* sending every fact into *target*."""
    fixed_nulls = {n for n in fixed if is_null(n)}
    ordered = _order_block(facts, fixed_nulls)
    mapping: dict = dict(fixed)
    backtracks = 0

    def search(index: int) -> dict | None:
        nonlocal backtracks
        if index == len(ordered):
            return dict(mapping)
        query = ordered[index]
        for candidate in _candidates(query, target, mapping):
            new_bindings = _match_fact(query, candidate, mapping)
            if new_bindings is None:
                backtracks += 1
                continue
            mapping.update(new_bindings)
            result = search(index + 1)
            if result is not None:
                return result
            backtracks += 1
            for null in new_bindings:
                del mapping[null]
        return None

    result = search(0)
    if backtracks:
        perf.incr("hom.backtracks", backtracks)
    return result


def find_homomorphism(
    source: Instance, target: Instance, fixed: Mapping | None = None
) -> dict | None:
    """Find a homomorphism from *source* to *target*, or return None.

    The returned dict maps every null of *source* to a value of *target*
    (constants are implicitly fixed and not included).  *fixed* pre-binds
    some nulls, which is how the core computation searches for folding
    endomorphisms.

        >>> from repro.logic.parser import parse_instance
        >>> J1 = parse_instance("R(a, _x)")
        >>> J2 = parse_instance("R(a, b)")
        >>> find_homomorphism(J1, J2) is not None
        True
        >>> find_homomorphism(J2, J1) is None   # R(a, b) does not occur in J1
        True
    """
    from repro.engine.gaifman import fact_blocks

    fixed = dict(fixed) if fixed else {}
    result: dict = dict(fixed)
    for block in fact_blocks(source):
        block_facts = list(block)
        if all(not any(is_null(a) for a in f.args) for f in block_facts):
            # Ground facts must occur verbatim in the target.
            if any(f not in target.facts for f in block_facts):
                return None
            continue
        mapping = _block_homomorphism(block_facts, target, fixed)
        if mapping is None:
            return None
        result.update(mapping)
    return result


def has_homomorphism(source: Instance, target: Instance) -> bool:
    """Return True if ``source -> target`` (a homomorphism exists)."""
    return find_homomorphism(source, target) is not None


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """Return True if homomorphisms exist in both directions (``J1 <-> J2``)."""
    return has_homomorphism(left, right) and has_homomorphism(right, left)


def is_homomorphism(mapping: Mapping, source: Instance, target: Instance) -> bool:
    """Verify that *mapping* is a homomorphism from *source* to *target*."""
    for key in mapping:
        if not is_null(key):
            return False
    return all(fact.rename_values(dict(mapping)) in target.facts for fact in source)


__all__ = [
    "find_homomorphism",
    "has_homomorphism",
    "homomorphically_equivalent",
    "is_homomorphism",
]
