"""Text renderings of patterns, parts, and chase trees.

The output style follows the paper's figures: one node per line, indentation
for nesting, part identifiers as labels, and (for chase trees) the variable
assignment of each triggering.
"""

from __future__ import annotations

from repro.core.patterns import Pattern
from repro.logic.nested import NestedTgd
from repro.logic.printer import format_atom, format_conjunction
from repro.engine.nested_chase import ChaseTree, Triggering


def render_part(tgd: NestedTgd, pid: int) -> str:
    """One-line description of a part: ``sigma_i: body -> head``."""
    part = tgd.part(pid)
    body = format_conjunction(part.body)
    head = format_conjunction(part.head) if part.head else "T"
    exists = ""
    if part.exist_vars:
        exists = "exists " + ", ".join(v.name for v in part.exist_vars) + " . "
    return f"sigma_{pid}: {body} -> {exists}{head}"


def render_pattern(pattern: Pattern, tgd: NestedTgd | None = None, indent: str = "  ") -> str:
    """Render a pattern as an indented tree (Figure 1 style).

        >>> from repro.core.patterns import Pattern
        >>> print(render_pattern(Pattern(1, (Pattern(2),))))
        sigma_1
          sigma_2
    """
    lines: list[str] = []

    def visit(node: Pattern, depth: int) -> None:
        label = f"sigma_{node.part_id}"
        if tgd is not None:
            label = render_part(tgd, node.part_id)
        lines.append(indent * depth + label)
        for child in node.children:
            visit(child, depth + 1)

    visit(pattern, 0)
    return "\n".join(lines)


def render_triggering(triggering: Triggering, indent: str = "  ", depth: int = 0) -> str:
    """Render a triggering with its assignment and produced facts."""
    assignment = ", ".join(
        f"{var.name}={value!r}"
        for var, value in sorted(triggering.assignment.items(), key=lambda kv: kv[0].name)
    )
    facts = ", ".join(format_atom(f) for f in triggering.facts) or "-"
    lines = [indent * depth + f"sigma_{triggering.part_id} [{assignment}] => {facts}"]
    for child in triggering.children:
        lines.append(render_triggering(child, indent, depth + 1))
    return "\n".join(lines)


def render_chase_tree(tree: ChaseTree, indent: str = "  ") -> str:
    """Render a chase tree: the triggerings with assignments and facts.

        >>> from repro.engine.nested_chase import chase_nested
        >>> from repro.logic.parser import parse_instance, parse_nested_tgd
        >>> tgd = parse_nested_tgd("S(x,y) -> R(x,y)")
        >>> forest = chase_nested(parse_instance("S(a,b)"), tgd)
        >>> print(render_chase_tree(forest.trees[0]))
        sigma_1 [x=a, y=b] => R(a, b)
    """
    return render_triggering(tree.root, indent)


__all__ = ["render_part", "render_pattern", "render_triggering", "render_chase_tree"]
