"""Graphviz DOT export for instances, patterns, and chase forests.

The DOT strings render the paper's figure styles:

- :func:`fact_graph_dot` -- Gaifman graph of facts (top of Figures 6/7);
- :func:`null_graph_dot` -- Gaifman graph of nulls (bottom of Figures 6/7);
- :func:`pattern_dot` -- a pattern tree (Figures 1, 3, 4);
- :func:`chase_forest_dot` -- a chase forest with assignments.

Output is plain text; no Graphviz installation is required to produce it.
"""

from __future__ import annotations

from repro.core.patterns import Pattern
from repro.logic.instances import Instance
from repro.logic.printer import format_atom
from repro.engine.gaifman import full_fact_graph, null_graph
from repro.engine.nested_chase import ChaseForest


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def fact_graph_dot(instance: Instance, name: str = "fact_graph") -> str:
    """The Gaifman graph of facts as an undirected DOT graph."""
    graph = full_fact_graph(instance)
    lines = [f"graph {name} {{", "  node [shape=box];"]
    index = {fact: f"f{i}" for i, fact in enumerate(sorted(graph.nodes, key=repr))}
    for fact, node_id in index.items():
        lines.append(f"  {node_id} [label={_quote(format_atom(fact))}];")
    for left, right in sorted(graph.edges, key=repr):
        lines.append(f"  {index[left]} -- {index[right]};")
    lines.append("}")
    return "\n".join(lines)


def null_graph_dot(instance: Instance, name: str = "null_graph") -> str:
    """The Gaifman graph of nulls as an undirected DOT graph."""
    graph = null_graph(instance)
    lines = [f"graph {name} {{", "  node [shape=circle];"]
    index = {null: f"n{i}" for i, null in enumerate(sorted(graph.nodes, key=repr))}
    for null, node_id in index.items():
        lines.append(f"  {node_id} [label={_quote(repr(null))}];")
    for left, right in sorted(graph.edges, key=repr):
        lines.append(f"  {index[left]} -- {index[right]};")
    lines.append("}")
    return "\n".join(lines)


def pattern_dot(pattern: Pattern, name: str = "pattern") -> str:
    """A pattern tree as a directed DOT graph (edges parent -> child)."""
    lines = [f"digraph {name} {{", "  node [shape=circle];"]
    counter = [0]

    def visit(node: Pattern) -> str:
        node_id = f"p{counter[0]}"
        counter[0] += 1
        lines.append(f"  {node_id} [label={_quote(f'sigma_{node.part_id}')}];")
        for child in node.children:
            child_id = visit(child)
            lines.append(f"  {node_id} -> {child_id};")
        return node_id

    visit(pattern)
    lines.append("}")
    return "\n".join(lines)


def chase_forest_dot(forest: ChaseForest, name: str = "chase_forest") -> str:
    """A chase forest as a directed DOT graph with triggering labels."""
    lines = [f"digraph {name} {{", "  node [shape=box];"]
    counter = [0]

    def visit(triggering) -> str:
        node_id = f"t{counter[0]}"
        counter[0] += 1
        assignment = ", ".join(
            f"{var.name}={value!r}"
            for var, value in sorted(
                triggering.assignment.items(), key=lambda kv: kv[0].name
            )
        )
        label = f"sigma_{triggering.part_id}\\n{assignment}"
        lines.append(f"  {node_id} [label={_quote(label)}];")
        for child in triggering.children:
            child_id = visit(child)
            lines.append(f"  {node_id} -> {child_id};")
        return node_id

    for tree in forest.trees:
        visit(tree.root)
    lines.append("}")
    return "\n".join(lines)


__all__ = ["fact_graph_dot", "null_graph_dot", "pattern_dot", "chase_forest_dot"]
