"""Rendering helpers: text trees and Graphviz DOT export.

These produce the paper's figures as inspectable artifacts:

- :func:`render_pattern` / :func:`render_chase_tree` -- indented text trees
  in the style of Figures 1-4;
- :func:`fact_graph_dot` / :func:`null_graph_dot` -- the Gaifman graphs of
  Figures 6 and 7 as DOT;
- :func:`pattern_dot` / :func:`chase_forest_dot` -- tree diagrams as DOT.
"""

from repro.viz.text import render_chase_tree, render_part, render_pattern
from repro.viz.dot import (
    chase_forest_dot,
    fact_graph_dot,
    null_graph_dot,
    pattern_dot,
)

__all__ = [
    "render_pattern",
    "render_part",
    "render_chase_tree",
    "fact_graph_dot",
    "null_graph_dot",
    "pattern_dot",
    "chase_forest_dot",
]
