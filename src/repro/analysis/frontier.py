"""Decidability-frontier analysis: triangular guardedness and complexity tiers.

The termination lattice of :mod:`repro.analysis.acyclicity` answers one
question -- *does the Skolem chase terminate?* -- with a yes/no certificate
per rung.  This module refines the frontier along two independent axes named
by the follow-up literature:

- **Triangular guardedness** (Asuncion & Zhang, "Fine-grained complexity of
  safety verification", arXiv:1804.05997): a *reasoning* certificate, not a
  termination certificate.  BCQ entailment over triangularly-guarded tgds is
  decidable even when the chase diverges, because the frontier variables of
  every rule are pairwise covered by body atoms ("triangular": a triangle of
  binary atoms guards a three-variable frontier without any single guard
  atom).  :func:`triangular_guard_report` implements the *sufficient*
  pairwise-guard condition -- every pair of frontier variables co-occurs in
  some body atom of its Skolemized clause -- over the shared
  :class:`~repro.analysis.termination.DependencyGraphIR`, and names the
  first unguarded clause/variable pair as a concrete witness when the check
  fails.  Egds fall outside the fragment and void the certificate.
- **Termination-complexity tiers** ("Chase Termination Beyond Polynomial
  Time", Hanisch & Kroetzsch, arXiv:2403.16712): every *certified* verdict
  is refined into a :class:`ComplexityTier` describing how large the chase
  result can grow.  The single coarse degree of
  :func:`repro.analysis.cost.chase_cost` (``A * w^D``) over-approximates
  wildly; on sets whose joint-acyclicity function graph is *acyclic* a
  per-relation degree program (below) certifies much tighter polynomial
  bounds, and a maximum relation degree within
  :data:`~repro.analysis.cost.CC002_DEGREE_LIMIT` places the set in the
  ``PTIME`` tier with explicit per-relation witnesses (lint ``CC003``).

The per-relation degree program
-------------------------------

Over an *acyclic* JA function graph, process Skolem functions in
topological order and assign each a *value degree*: the number of distinct
``f``-terms the chase can create is ``O(n^valdeg(f))`` for an ``n``-value
instance.  An argument variable ``x`` of ``f`` is bound by a trigger to
either an input value (``n`` choices, degree 1) or a ``g``-term for some
``g`` whose movement set :func:`~repro.analysis.acyclicity._ja_movement`
covers *every* body position of ``x`` -- exactly the JA edge condition, so
only topological predecessors contribute and the recursion is well-founded:

    ``valdeg(f) = max over occurrences of  sum_x  max(1, max_g valdeg(g))``

A position's degree is then the largest value degree that reaches it, and a
relation's degree the sum over its positions; ``R`` holds ``O(n^degree(R))``
facts.  On a *cyclic* function graph the recursion is not well-founded (a
function feeding its own arguments hides unbounded constants behind a fixed
degree), so no refined witnesses are produced there -- those sets keep the
tier their lattice rung implies.

Tier assignment: uncertified sets get ``NON_ELEMENTARY`` (no elementary
bound is provable); MFA-certified sets get ``2-EXPTIME`` (the critical
chase admits doubly-exponential term counts in the program); WA/JA/SWA sets
get ``EXPTIME`` (``n^{w^D}`` with program-sized ``D``) unless the degree
program certifies ``PTIME``.

    >>> from repro.logic.parser import parse_tgd
    >>> report = frontier_report([parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)")])
    >>> report.tier.tier.value, report.triangular.guarded
    ('ptime', True)
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any

import networkx as nx

from repro.logic.egds import Egd
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.tgds import STTgd
from repro.logic.values import Variable
from repro.analysis.acyclicity import (
    TerminationClass,
    TerminationVerdict,
    _function_occurrences,
    _ja_movement,
    classify_termination,
)
from repro.analysis.cost import (
    CC002_DEGREE_LIMIT,
    SATURATION_CAP,
    ChaseCostEstimate,
    chase_cost,
    saturating_add,
    saturating_pow,
)
from repro.analysis.termination import (
    DependencyGraphIR,
    Position,
    dependency_graph_ir,
    format_position,
)

#: Maximum per-relation polynomial degree admitted into the PTIME tier
#: (deliberately the CC002 limit: the tiers replace the single CC002 bucket).
PTIME_DEGREE_LIMIT = CC002_DEGREE_LIMIT


class ComplexityTier(enum.Enum):
    """How large a *certified-terminating* chase can grow, coarsest tier last.

    The tiers form a chain ``PTIME < EXPTIME < TWO_EXPTIME <
    NON_ELEMENTARY``.  ``PTIME`` is witnessed by per-relation polynomial
    degrees; ``NON_ELEMENTARY`` marks sets with no termination certificate
    at all (no elementary chase-size bound is provable).
    """

    PTIME = "ptime"
    EXPTIME = "exptime"
    TWO_EXPTIME = "2-exptime"
    NON_ELEMENTARY = "non-elementary"

    @property
    def rank(self) -> int:
        """Position in the chain (0 = PTIME, 3 = non-elementary)."""
        return list(ComplexityTier).index(self)

    @property
    def polynomial(self) -> bool:
        """True when per-relation degree witnesses certify a polynomial chase."""
        return self is ComplexityTier.PTIME

    def __le__(self, other: "ComplexityTier") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "ComplexityTier") -> bool:
        return self.rank < other.rank


# ------------------------------------------------------ triangular guardedness


@dataclass(frozen=True)
class TriangularGuardReport:
    """The triangular-guardedness certificate (or its refutation witness).

    ``guarded`` certifies decidable BCQ entailment for the set -- it says
    *nothing* about chase termination.  On failure ``witness`` names the
    first Skolemized clause (by label) and the frontier-variable pair that
    no body atom covers; when egds void the fragment ``witness`` is ``None``
    and ``reason`` explains.
    """

    guarded: bool
    reason: str
    witness: tuple[str, str, str] | None = None  # (clause label, var, var)
    clause_count: int = 0

    def __bool__(self) -> bool:
        return self.guarded

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the certificate."""
        return {
            "guarded": self.guarded,
            "reason": self.reason,
            "witness": None if self.witness is None else list(self.witness),
            "clause_count": self.clause_count,
        }


def _clause_frontier(clause: Any) -> list[Variable]:
    """The frontier of a Skolemized clause: universal variables its head uses.

    Covers both top-level head occurrences and occurrences as Skolem-term
    arguments -- a variable a null *depends on* is as frontier as one copied
    into the head directly.
    """
    frontier = set(clause.head_positions)
    for skolem in clause.skolems:
        frontier.update(skolem.args)
    return sorted(
        (var for var in frontier if var in clause.body_positions),
        key=lambda var: var.name,
    )


def triangular_guard_report(
    dependencies: object,
    *,
    ir: DependencyGraphIR | None = None,
) -> TriangularGuardReport:
    """Check the pairwise frontier-guard condition over the shared IR.

    The check is a documented *sufficient* condition for membership in the
    triangularly-guarded class of arXiv:1804.05997: every pair of frontier
    variables of every Skolemized clause must co-occur in some body atom.  A
    triangle of binary atoms pairwise-guards a three-variable frontier that
    no single atom could guard, which is exactly the shape the class is
    named after and strictly wider than (frontier-)guardedness.

        >>> from repro.logic.parser import parse_tgd
        >>> triangular_guard_report(
        ...     [parse_tgd("R(x,y) -> exists z . R(y,z) & R(z,x)")]
        ... ).guarded
        True
        >>> report = triangular_guard_report(
        ...     [parse_tgd("E(x,y) & E(y,w) -> exists z . T(x,w,z)")]
        ... )
        >>> report.guarded, report.witness
        (False, ('d0.0', 'w', 'x'))
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    if any(isinstance(dep, Egd) for dep in deps):
        return TriangularGuardReport(
            guarded=False,
            reason="egds fall outside the triangularly-guarded tgd fragment",
        )
    if ir is None:
        ir = dependency_graph_ir(deps)
    for clause in ir.clauses:
        frontier = _clause_frontier(clause)
        if len(frontier) < 2:
            continue
        atom_vars = [
            {arg for arg in atom.args if isinstance(arg, Variable)}
            for atom in clause.body
        ]
        for i, left in enumerate(frontier):
            for right in frontier[i + 1 :]:
                if not any(left in vs and right in vs for vs in atom_vars):
                    return TriangularGuardReport(
                        guarded=False,
                        reason=(
                            f"frontier variables {left} and {right} of clause "
                            f"{clause.label} share no body atom"
                        ),
                        witness=(clause.label, left.name, right.name),
                        clause_count=len(ir.clauses),
                    )
    return TriangularGuardReport(
        guarded=True,
        reason="every frontier-variable pair is covered by a body atom",
        clause_count=len(ir.clauses),
    )


# ------------------------------------------------------------ complexity tiers


@dataclass(frozen=True)
class TierReport:
    """A certified verdict refined into a :class:`ComplexityTier`.

    When ``refined`` is True the per-relation ``relation_degrees`` (and the
    per-function ``function_degrees`` behind them) are sound polynomial
    witnesses: relation ``R`` holds ``O(n^degree(R))`` facts after chasing
    an ``n``-value instance.  ``basis`` records the lattice rung the tier
    was derived from; ``reason`` says why this tier and not a lower one.
    """

    tier: ComplexityTier
    basis: TerminationClass
    reason: str
    refined: bool
    relation_degrees: tuple[tuple[str, int], ...] | None = None
    function_degrees: tuple[tuple[str, int], ...] | None = None
    max_degree: int | None = None

    def fact_bound(self, n: int) -> int | None:
        """Refined fact bound ``sum_R n^degree(R)``; None without witnesses."""
        if not self.refined or self.relation_degrees is None:
            return None
        values = max(n, 1)
        total = 0
        for _relation, degree in self.relation_degrees:
            # The degree program counts value combinations; a small constant
            # factor (the Skolem functions targeting the relation) is folded
            # into the +1 headroom of the saturating sum.
            total = saturating_add(
                total, saturating_add(saturating_pow(values, degree), 1)
            )
        return total

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the tier."""
        return {
            "tier": self.tier.value,
            "basis": self.basis.value,
            "reason": self.reason,
            "refined": self.refined,
            "relation_degrees": None
            if self.relation_degrees is None
            else {relation: degree for relation, degree in self.relation_degrees},
            "function_degrees": None
            if self.function_degrees is None
            else {fn: degree for fn, degree in self.function_degrees},
            "max_degree": self.max_degree,
        }


def _degree_program(
    ir: DependencyGraphIR,
) -> tuple[dict[str, int], dict[Position, int]] | None:
    """The per-function / per-position degree assignment, or None if cyclic.

    Implements the topological recursion of the module docstring over the JA
    function graph; returns ``None`` when that graph has a cycle (the
    recursion would not be well-founded, so no sound witnesses exist here).
    """
    functions = _function_occurrences(ir)
    movement = {
        fn: _ja_movement(
            ir, {p for _clause, _args, positions in occs for p in positions}
        )
        for fn, occs in functions.items()
    }

    def feeders(ci: int, var: Variable) -> list[str]:
        """Functions whose terms can be the value of *var* in clause *ci*."""
        body_positions = ir.clauses[ci].body_positions.get(var, ())
        if not body_positions:
            return []
        return [
            fn
            for fn, moved in movement.items()
            if all(p in moved for p in body_positions)
        ]

    graph = nx.DiGraph()
    graph.add_nodes_from(functions)
    for target, occs in functions.items():
        for ci, args, _positions in occs:
            for var in args:
                for source in feeders(ci, var):
                    graph.add_edge(source, target)
    if not nx.is_directed_acyclic_graph(graph):
        return None

    valdeg: dict[str, int] = {}
    for fn in nx.topological_sort(graph):
        best = 0
        for ci, args, _positions in functions[fn]:
            total = 0
            for var in args:
                contributions = [valdeg[g] for g in feeders(ci, var)]
                total = saturating_add(total, max([1, *contributions]))
            best = max(best, total)
        valdeg[fn] = best

    posdeg: dict[Position, int] = {}
    for position in ir.positions:
        reaching = [deg for fn, deg in valdeg.items() if position in movement[fn]]
        posdeg[position] = max([1, *reaching])
    return valdeg, posdeg


def tier_report(
    dependencies: object,
    *,
    verdict: TerminationVerdict | None = None,
    ir: DependencyGraphIR | None = None,
) -> TierReport:
    """Assign a :class:`ComplexityTier` to a dependency set.

        >>> from repro.logic.parser import parse_tgd
        >>> tier_report([parse_tgd("E(x,y) -> exists z . E(y,z)")]).tier.value
        'non-elementary'
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    if verdict is None:
        verdict = classify_termination(deps)
    if not verdict.guarantees_termination:
        return TierReport(
            tier=ComplexityTier.NON_ELEMENTARY,
            basis=verdict.cls,
            reason="no termination certificate: no elementary chase-size "
            "bound is provable",
            refined=False,
        )
    if ir is None:
        ir = dependency_graph_ir(deps)

    if verdict.cls in (
        TerminationClass.WEAKLY_ACYCLIC,
        TerminationClass.JOINTLY_ACYCLIC,
    ):
        degrees = _degree_program(ir)
    else:
        degrees = None
    if degrees is not None:
        valdeg, posdeg = degrees
        arities: dict[str, int] = {}
        for relation, index in ir.positions:
            arities[relation] = max(arities.get(relation, 0), index + 1)
        relation_degrees = tuple(
            (
                relation,
                sum(posdeg[(relation, index)] for index in range(arity)),
            )
            for relation, arity in sorted(arities.items())
        )
        max_degree = max((deg for _r, deg in relation_degrees), default=0)
        function_degrees = tuple(sorted(valdeg.items()))
        if max_degree <= PTIME_DEGREE_LIMIT and max_degree < SATURATION_CAP:
            return TierReport(
                tier=ComplexityTier.PTIME,
                basis=verdict.cls,
                reason=f"per-relation degree witnesses certify a polynomial "
                f"chase of degree at most {max_degree}",
                refined=True,
                relation_degrees=relation_degrees,
                function_degrees=function_degrees,
                max_degree=max_degree,
            )
        return TierReport(
            tier=ComplexityTier.EXPTIME,
            basis=verdict.cls,
            reason=f"maximum certified relation degree {max_degree} exceeds "
            f"the PTIME limit {PTIME_DEGREE_LIMIT}",
            refined=True,
            relation_degrees=relation_degrees,
            function_degrees=function_degrees,
            max_degree=max_degree,
        )

    if verdict.cls is TerminationClass.SUPER_WEAKLY_ACYCLIC:
        return TierReport(
            tier=ComplexityTier.EXPTIME,
            basis=verdict.cls,
            reason="super-weak acyclicity bounds the chase exponentially in "
            "the program; its cyclic function graph admits no per-relation "
            "degree witnesses",
            refined=False,
        )
    return TierReport(
        tier=ComplexityTier.TWO_EXPTIME,
        basis=verdict.cls,
        reason=f"{verdict.cls.value} certifies termination via the critical "
        "chase only, which admits doubly-exponential term counts",
        refined=False,
    )


# ------------------------------------------------------------- the full report


@dataclass(frozen=True)
class FrontierReport:
    """Everything the decidability-frontier analyzer knows about a set."""

    termination: TerminationVerdict
    triangular: TriangularGuardReport
    tier: TierReport
    cost: ChaseCostEstimate

    @property
    def certified(self) -> bool:
        """True when some lattice rung certifies chase termination."""
        return self.termination.guarantees_termination

    @property
    def decidable_reasoning(self) -> bool:
        """True when BCQ reasoning is decidable (terminating *or* guarded)."""
        return self.certified or self.triangular.guarded

    def fact_bound(self, n: int) -> int | None:
        """The tightest static fact bound available (refined, else coarse)."""
        refined = self.tier.fact_bound(n)
        coarse = self.cost.fact_bound(n)
        if refined is None:
            return coarse
        if coarse is None:
            return refined
        return min(refined, coarse)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the whole report."""
        return {
            "certified": self.certified,
            "decidable_reasoning": self.decidable_reasoning,
            "termination": self.termination.to_dict(),
            "triangular": self.triangular.to_dict(),
            "tier": self.tier.to_dict(),
            "cost": self.cost.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON (sorted keys) -- the ``repro analyze`` payload."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def frontier_report(
    dependencies: object,
    *,
    verdict: TerminationVerdict | None = None,
    ir: DependencyGraphIR | None = None,
) -> FrontierReport:
    """Run the full frontier analysis (memoized by the dependency reprs)."""
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    key = tuple(repr(dep) for dep in deps)
    cached = _FRONTIER_CACHE.get(key)
    if cached is not None:
        return cached
    if verdict is None:
        verdict = classify_termination(deps)
    if ir is None:
        ir = dependency_graph_ir(deps)
    report = FrontierReport(
        termination=verdict,
        triangular=triangular_guard_report(deps, ir=ir),
        tier=tier_report(deps, verdict=verdict, ir=ir),
        cost=chase_cost(deps, verdict=verdict, ir=ir),
    )
    if len(_FRONTIER_CACHE) >= _FRONTIER_CACHE_LIMIT:
        _FRONTIER_CACHE.clear()
    _FRONTIER_CACHE[key] = report
    return report


_FRONTIER_CACHE: dict[tuple[str, ...], FrontierReport] = {}
_FRONTIER_CACHE_LIMIT = 256


def clear_frontier_cache() -> None:
    """Drop all memoized frontier reports (used by benchmarks)."""
    _FRONTIER_CACHE.clear()


def describe_witnesses(report: FrontierReport) -> list[str]:
    """Human-readable one-liners for every witness the report carries."""
    lines: list[str] = []
    verdict = report.termination
    if verdict.weak.witness_cycle:
        rendered = " -> ".join(
            format_position(p) for p in verdict.weak.witness_cycle
        )
        lines.append(f"weak-acyclicity cycle: {rendered}")
    if verdict.ja_cycle:
        lines.append("joint-acyclicity cycle: " + " -> ".join(verdict.ja_cycle))
    if verdict.swa_cycle:
        lines.append(
            "super-weak-acyclicity cycle: " + " -> ".join(verdict.swa_cycle)
        )
    if verdict.mfa_cyclic_term is not None:
        lines.append(f"MFA cyclic term: {verdict.mfa_cyclic_term}")
    if report.triangular.witness is not None:
        label, left, right = report.triangular.witness
        lines.append(
            f"unguarded frontier pair: {left}, {right} in clause {label}"
        )
    if report.tier.relation_degrees:
        rendered = ", ".join(
            f"{relation}: n^{degree}"
            for relation, degree in report.tier.relation_degrees
        )
        lines.append(f"relation degrees: {rendered}")
    return lines


__all__ = [
    "ComplexityTier",
    "FrontierReport",
    "PTIME_DEGREE_LIMIT",
    "TierReport",
    "TriangularGuardReport",
    "clear_frontier_cache",
    "describe_witnesses",
    "frontier_report",
    "tier_report",
    "triangular_guard_report",
]
