"""Verifiers for the structural characterization properties of [17].

The paper's concluding section points to structural characterizations of
schema-mapping languages (ten Cate & Kolaitis, reference [17]): GLAV
mappings are exactly the mappings that admit universal solutions and are
closed under target homomorphisms, *closed under union*, and *n-modular* for
some n.  Nested GLAV mappings keep the first two properties but can fail
closure under union -- which gives yet another executable separation tool,
complementing the f-degree and path-length criteria of Section 4.2.

- *Closed under union*: if J is a solution for I and J' for I', then J ∪ J'
  is a solution for I ∪ I'.
- *n-modular*: if (I, J) is NOT a solution, some subinstance of I with at
  most n facts already witnesses that.  GLAV mappings are n-modular for n =
  the maximal body size; the introduction's nested tgd is not n-modular for
  any n (larger and larger sources are needed to expose violations).

As in :mod:`repro.analysis.properties`, the verifiers are refuters over
supplied batches: a False verdict carries a genuine counterexample, a True
verdict means "no counterexample in the batch".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from repro.logic.instances import Instance
from repro.engine.model_check import satisfies
from repro.analysis.properties import PropertyReport, _normalize


def check_closed_under_union(
    dependencies,
    pairs: Iterable[tuple[Instance, Instance]],
) -> PropertyReport:
    """Refute closure under union on a batch of (source, solution) pairs.

    For every two pairs (I, J), (I', J') with J, J' solutions, the union
    (I ∪ I', J ∪ J') must be a solution too.
    """
    deps = _normalize(dependencies)
    valid = [(i, j) for i, j in pairs if satisfies(i, j, deps)]
    checked = 0
    for (left_i, left_j), (right_i, right_j) in combinations(valid, 2):
        checked += 1
        union_source = left_i.union(right_i)
        union_target = left_j.union(right_j)
        if not satisfies(union_source, union_target, deps):
            return PropertyReport(
                "closed_under_union",
                False,
                checked,
                (left_i, right_i, union_target),
            )
    return PropertyReport("closed_under_union", True, checked)


@dataclass
class ModularityReport:
    """Outcome of the n-modularity probe."""

    n: int
    modular: bool
    checked: int
    counterexample: tuple | None = None

    def __bool__(self) -> bool:
        return self.modular


def check_n_modular(
    dependencies,
    pairs: Iterable[tuple[Instance, Instance]],
    n: int,
) -> ModularityReport:
    """Refute n-modularity on a batch of (source, target) pairs.

    For each non-solution (I, J), some subinstance of I with at most *n*
    facts must already be a non-solution with J.  A counterexample is a
    non-solution all of whose small sub-sources are fine -- the signature of
    the unbounded correlations nested tgds express.
    """
    deps = _normalize(dependencies)
    checked = 0
    for source, target in pairs:
        if satisfies(source, target, deps):
            continue
        checked += 1
        witnessed = False
        facts = sorted(source.facts, key=repr)
        for size in range(1, min(n, len(facts)) + 1):
            for subset in combinations(facts, size):
                if not satisfies(Instance(subset), target, deps):
                    witnessed = True
                    break
            if witnessed:
                break
        if not witnessed:
            return ModularityReport(
                n=n, modular=False, checked=checked, counterexample=(source, target)
            )
    return ModularityReport(n=n, modular=True, checked=checked)


def glav_modularity_bound(dependencies) -> int:
    """The n for which a GLAV mapping is guaranteed n-modular: max body size."""
    from repro.logic.nested import nested_tgds_from

    best = 1
    for tgd in nested_tgds_from(_normalize(dependencies)):
        total = sum(len(tgd.part(pid).body) for pid in tgd.part_ids())
        best = max(best, total)
    return best


__all__ = [
    "check_closed_under_union",
    "check_n_modular",
    "ModularityReport",
    "glav_modularity_bound",
]
