"""Cheap syntactic subsumption between dependencies: a sound pre-pass for IMPLIES.

The k-pattern sweep of IMPLIES is non-elementary in the nesting depth of the
right-hand side (Section 6 of the paper), yet many implication queries in
practice are *trivial*: the right-hand side is a variable-renamed copy of a
left-hand-side member, or a plain weakening of one (drop a head atom,
specialize a body).  This module decides a sound, incomplete syntactic
fragment of implication in polynomial time:

- :func:`alpha_equivalent` -- equality of (nested) tgds up to a consistent
  renaming of bound variables;
- :func:`subsumes` -- ``sigma |= tau`` by a variable-to-variable
  homomorphism argument between flat tgds, applied to a nested left-hand
  side through its per-part flat projections (the single-branch pattern tgds
  of its unfoldings).

``subsumes(sigma, tau)`` returning True *guarantees* ``sigma |= tau`` (the
differential tests check this against the full IMPLIES procedure); returning
False means nothing.  ``core/implication.py`` runs :func:`trivially_implied`
before enumerating patterns and records skips in :mod:`repro.perf` under
``implies.subsumption_checks`` / ``implies.subsumption_skips``.

    >>> from repro.logic.parser import parse_tgd
    >>> subsumes(parse_tgd("S(x,y) -> R(x,y)"), parse_tgd("S(x,y) -> exists z . R(x,z)"))
    True
    >>> subsumes(parse_tgd("S(x,y) -> exists z . R(x,z)"), parse_tgd("S(x,y) -> R(x,y)"))
    False
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.logic.atoms import Atom
from repro.logic.nested import NestedTgd, Part
from repro.logic.tgds import STTgd
from repro.logic.values import Variable

#: Bodies/heads larger than this skip the (backtracking) subsumption check;
#: the pre-pass must stay negligible next to a single pattern chase.
MAX_SUBSUMPTION_ATOMS = 24


# --------------------------------------------------------- alpha equivalence


def _canonical_part(
    part: Part, mapping: dict[Variable, Variable], counter: Iterator[int]
) -> Part:
    for var in part.universal_vars:
        mapping[var] = Variable(f"u{next(counter)}")
    for var in part.exist_vars:
        mapping[var] = Variable(f"e{next(counter)}")
    return Part(
        universal_vars=tuple(mapping[v] for v in part.universal_vars),
        body=tuple(atom.substitute(mapping) for atom in part.body),
        exist_vars=tuple(mapping[v] for v in part.exist_vars),
        head=tuple(atom.substitute(mapping) for atom in part.head),
        children=tuple(_canonical_part(c, mapping, counter) for c in part.children),
    )


def _canonical_root(tgd: NestedTgd | STTgd) -> Part:
    """The root part of *tgd* with bound variables renamed canonically.

    Variables are renamed in preorder traversal order (universals before
    existentials per part); two tgds are alpha-equivalent iff their canonical
    roots are equal.  s-t tgds are canonicalized through an equivalent
    single-part view (built directly, so tgds sharing source and target
    relations are supported too).
    """
    if isinstance(tgd, STTgd):
        root = Part(
            universal_vars=tgd.universal_variables,
            body=tgd.body,
            exist_vars=tgd.existential_variables,
            head=tgd.head,
            children=(),
        )
    else:
        root = tgd.root
    return _canonical_part(root, {}, itertools.count())


def alpha_equivalent(left: NestedTgd | STTgd, right: NestedTgd | STTgd) -> bool:
    """True if the two tgds are equal up to renaming of bound variables.

        >>> from repro.logic.parser import parse_nested_tgd
        >>> a = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
        >>> b = parse_nested_tgd("S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))")
        >>> alpha_equivalent(a, b)
        True
    """
    if not isinstance(left, (NestedTgd, STTgd)) or not isinstance(right, (NestedTgd, STTgd)):
        return False
    return _canonical_root(left) == _canonical_root(right)


# ------------------------------------------------------- flat subsumption


def _flat_views(dep: NestedTgd | STTgd) -> Iterator[tuple[tuple[Atom, ...], tuple[Atom, ...]]]:
    """Yield ``(body, head)`` flat projections implied by *dep*.

    For an s-t tgd the projection is the tgd itself.  A nested tgd implies,
    for every part with a non-empty head, the flat tgd whose body collects
    the ancestors' bodies plus the part's own and whose head is the part's
    head (the single-branch pattern tgds of its unfoldings): any witness for
    the nested tgd witnesses each projection.
    """
    if isinstance(dep, STTgd):
        yield dep.body, dep.head
        return
    for pid in dep.part_ids():
        part = dep.part(pid)
        if not part.head:
            continue
        body: list[Atom] = []
        for anc in dep.ancestors(pid):
            body.extend(dep.part(anc).body)
        body.extend(part.body)
        yield tuple(body), part.head


def _flat_subsumes(
    sigma_body: tuple[Atom, ...],
    sigma_head: tuple[Atom, ...],
    tau_body: tuple[Atom, ...],
    tau_head: tuple[Atom, ...],
) -> bool:
    """Sound check that the flat tgd ``sigma`` implies the flat tgd ``tau``.

    Searches for a variable map ``m`` from sigma's universals into tau's
    universals with ``m(body sigma) ⊆ body tau``, together with a witness
    choice ``W`` assigning each existential of tau a sigma-side variable so
    that every head atom of tau is ``(m, W)``-matched by some head atom of
    sigma.  Whenever both exist, any source match of tau's body extends to a
    match of sigma's body, and sigma's (skolem) witnesses instantiate tau's
    existentials -- hence ``sigma |= tau``.
    """
    if (
        len(sigma_body) + len(sigma_head) > MAX_SUBSUMPTION_ATOMS
        or len(tau_body) + len(tau_head) > MAX_SUBSUMPTION_ATOMS
    ):
        return False
    tau_universal = {v for atom in tau_body for v in atom.variables()}

    def match_head(index: int, m: dict[Variable, Variable],
                   witness: dict[Variable, Variable]) -> bool:
        if index == len(tau_head):
            return True
        atom = tau_head[index]
        for candidate in sigma_head:
            if candidate.relation != atom.relation or candidate.arity != atom.arity:
                continue
            extended = dict(witness)
            ok = True
            for sigma_arg, tau_arg in zip(candidate.args, atom.args):
                if tau_arg in tau_universal:
                    # tau asserts a universally-bound value here: sigma must
                    # place a universal variable mapped onto it.
                    if m.get(sigma_arg) != tau_arg:
                        ok = False
                        break
                else:
                    # tau's existential: witnessed by whatever sigma places
                    # here -- consistently across all occurrences.
                    seen = extended.get(tau_arg)
                    if seen is None:
                        extended[tau_arg] = sigma_arg
                    elif seen != sigma_arg:
                        ok = False
                        break
            if ok and match_head(index + 1, m, extended):
                return True
        return False

    def match_body(index: int, m: dict[Variable, Variable]) -> bool:
        if index == len(sigma_body):
            return match_head(0, m, {})
        atom = sigma_body[index]
        for fact in tau_body:
            if fact.relation != atom.relation or fact.arity != atom.arity:
                continue
            extended = dict(m)
            ok = True
            for sigma_arg, tau_arg in zip(atom.args, fact.args):
                seen = extended.get(sigma_arg)
                if seen is None:
                    extended[sigma_arg] = tau_arg
                elif seen != tau_arg:
                    ok = False
                    break
            if ok and match_body(index + 1, extended):
                return True
        return False

    return match_body(0, {})


def subsumes(sigma: object, tau: object) -> bool:
    """Sound, incomplete check that dependency *sigma* implies *tau*.

    Handles s-t tgds and nested tgds (other formalisms return False).  A
    nested right-hand side is only recognized when alpha-equivalent to
    *sigma*; a flat right-hand side is matched against every flat projection
    of *sigma*.

        >>> from repro.logic.parser import parse_nested_tgd, parse_tgd
        >>> nested = parse_nested_tgd("S(x1) -> exists y . (T(x2) -> R(y, x2))")
        >>> subsumes(nested, parse_tgd("S(x1) & T(x2) -> exists y . R(y, x2)"))
        True
    """
    if not isinstance(sigma, (NestedTgd, STTgd)) or not isinstance(tau, (NestedTgd, STTgd)):
        return False
    if alpha_equivalent(sigma, tau):
        return True
    if isinstance(tau, NestedTgd):
        if not tau.is_flat():
            return False
        tau_body, tau_head = tau.root.body, tau.root.head
    else:
        tau_body, tau_head = tau.body, tau.head
    return any(
        _flat_subsumes(body, head, tau_body, tau_head)
        for body, head in _flat_views(sigma)
    )


def trivially_implied(sigma_set: Iterable[object], tau: object) -> bool:
    """True if some member of *sigma_set* syntactically subsumes *tau*.

    This is the IMPLIES pre-pass: verdict-preserving because
    :func:`subsumes` is sound and IMPLIES is complete -- a True answer here
    agrees with the sweep, and a False answer just falls through to it.
    """
    return any(subsumes(dep, tau) for dep in sigma_set)


__all__ = [
    "MAX_SUBSUMPTION_ATOMS",
    "alpha_equivalent",
    "subsumes",
    "trivially_implied",
]
