"""Analysis of schema mappings: structural properties and static checks.

Section 2 and 4.1 of the paper rest on two structural properties that nested
GLAV mappings (and plain SO tgds) enjoy: *admitting universal solutions* and
*closure under target homomorphisms*.  This subpackage provides executable
verifiers for them -- exhaustive where feasible, sampling-based otherwise --
used both as test oracles and as analysis tools for user-supplied mappings.

It also hosts the *static analyzer* over dependency programs:

- :mod:`repro.analysis.termination` -- position graphs, the weak-acyclicity
  test, and chase depth bounds;
- :mod:`repro.analysis.subsumption` -- sound syntactic subsumption between
  dependencies (the IMPLIES pre-pass);
- :mod:`repro.analysis.static` -- the lint driver producing structured
  :class:`~repro.analysis.static.AnalysisReport` objects (``repro lint``).
"""

from repro.analysis.properties import (
    check_admits_universal_solutions,
    check_closed_under_target_homomorphisms,
    check_core_is_universal,
    PropertyReport,
)
from repro.analysis.characterization import (
    ModularityReport,
    check_closed_under_union,
    check_n_modular,
    glav_modularity_bound,
)
from repro.analysis.termination import (
    TerminationReport,
    clear_termination_cache,
    position_graph,
    termination_report,
)
from repro.analysis.subsumption import (
    alpha_equivalent,
    subsumes,
    trivially_implied,
)
from repro.analysis.static import (
    AnalysisReport,
    Finding,
    LINT_CATALOG,
    analyze,
)

__all__ = [
    "check_admits_universal_solutions",
    "check_closed_under_target_homomorphisms",
    "check_core_is_universal",
    "PropertyReport",
    "check_closed_under_union",
    "check_n_modular",
    "ModularityReport",
    "glav_modularity_bound",
    "TerminationReport",
    "clear_termination_cache",
    "position_graph",
    "termination_report",
    "alpha_equivalent",
    "subsumes",
    "trivially_implied",
    "AnalysisReport",
    "Finding",
    "LINT_CATALOG",
    "analyze",
]
