"""Structural-property verifiers for schema mappings.

Section 2 and 4.1 of the paper rest on two structural properties that nested
GLAV mappings (and plain SO tgds) enjoy: *admitting universal solutions* and
*closure under target homomorphisms*.  This subpackage provides executable
verifiers for them -- exhaustive where feasible, sampling-based otherwise --
used both as test oracles and as analysis tools for user-supplied mappings.
"""

from repro.analysis.properties import (
    check_admits_universal_solutions,
    check_closed_under_target_homomorphisms,
    check_core_is_universal,
    PropertyReport,
)
from repro.analysis.characterization import (
    ModularityReport,
    check_closed_under_union,
    check_n_modular,
    glav_modularity_bound,
)

__all__ = [
    "check_admits_universal_solutions",
    "check_closed_under_target_homomorphisms",
    "check_core_is_universal",
    "PropertyReport",
    "check_closed_under_union",
    "check_n_modular",
    "ModularityReport",
    "glav_modularity_bound",
]
