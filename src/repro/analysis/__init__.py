"""Analysis of schema mappings: structural properties and static checks.

Section 2 and 4.1 of the paper rest on two structural properties that nested
GLAV mappings (and plain SO tgds) enjoy: *admitting universal solutions* and
*closure under target homomorphisms*.  This subpackage provides executable
verifiers for them -- exhaustive where feasible, sampling-based otherwise --
used both as test oracles and as analysis tools for user-supplied mappings.

It also hosts the *static analyzer* over dependency programs:

- :mod:`repro.analysis.termination` -- the shared dependency-graph IR,
  position graphs, the weak-acyclicity test, and chase depth bounds;
- :mod:`repro.analysis.acyclicity` -- the termination hierarchy (joint /
  super-weak / model-faithful acyclicity) as a lattice verdict;
- :mod:`repro.analysis.cost` -- the static cost model (chase-size degree
  bounds and IMPLIES sweep budgets);
- :mod:`repro.analysis.frontier` -- the decidability-frontier analyzer
  (triangular guardedness, per-relation degree witnesses, and the
  PTIME/EXPTIME/2-EXPTIME/non-elementary complexity tiers that gate the
  engines);
- :mod:`repro.analysis.subsumption` -- sound syntactic subsumption between
  dependencies (the IMPLIES pre-pass);
- :mod:`repro.analysis.static` -- the lint driver producing structured
  :class:`~repro.analysis.static.AnalysisReport` objects (``repro lint``);
- :mod:`repro.analysis.sarif` -- SARIF 2.1.0 serialization of lint reports;
- :mod:`repro.analysis.containment` -- certified mapping containment
  ``Sigma <= Sigma'`` (Cali-Torlone) with machine-checkable witnesses,
  powering the MC001/MC002 lints, ``repro contain``, and
  ``optimize(semantic=True)``.
"""

from repro.analysis.properties import (
    check_admits_universal_solutions,
    check_closed_under_target_homomorphisms,
    check_core_is_universal,
    PropertyReport,
)
from repro.analysis.characterization import (
    ModularityReport,
    check_closed_under_union,
    check_n_modular,
    glav_modularity_bound,
)
from repro.analysis.termination import (
    DependencyGraphIR,
    TerminationReport,
    clear_termination_cache,
    dependency_graph_ir,
    position_graph,
    termination_report,
)
from repro.analysis.acyclicity import (
    TerminationClass,
    TerminationVerdict,
    classify_termination,
    clear_acyclicity_cache,
)
from repro.analysis.cost import (
    ChaseCostEstimate,
    SweepCostEstimate,
    chase_budget,
    chase_cost,
    sweep_cost,
)
from repro.analysis.frontier import (
    ComplexityTier,
    FrontierReport,
    TierReport,
    TriangularGuardReport,
    clear_frontier_cache,
    frontier_report,
    tier_report,
    triangular_guard_report,
)
from repro.analysis.subsumption import (
    alpha_equivalent,
    subsumes,
    trivially_implied,
)
from repro.analysis.static import (
    AnalysisReport,
    Finding,
    LINT_CATALOG,
    analyze,
    apply_baseline,
    baseline_fingerprints,
)
from repro.analysis.sarif import sarif_json, sarif_report
from repro.analysis.containment import (
    ContainmentReport,
    ContainmentWitness,
    DependencyVerdict,
    EquivalenceCertificate,
    check_containment,
    check_equivalence,
    contains,
    eliminate_redundant,
    redundancy_report,
    verify_witness,
)

__all__ = [
    "check_admits_universal_solutions",
    "check_closed_under_target_homomorphisms",
    "check_core_is_universal",
    "PropertyReport",
    "check_closed_under_union",
    "check_n_modular",
    "ModularityReport",
    "glav_modularity_bound",
    "DependencyGraphIR",
    "TerminationReport",
    "clear_termination_cache",
    "dependency_graph_ir",
    "position_graph",
    "termination_report",
    "TerminationClass",
    "TerminationVerdict",
    "classify_termination",
    "clear_acyclicity_cache",
    "ChaseCostEstimate",
    "SweepCostEstimate",
    "chase_budget",
    "chase_cost",
    "sweep_cost",
    "ComplexityTier",
    "FrontierReport",
    "TierReport",
    "TriangularGuardReport",
    "clear_frontier_cache",
    "frontier_report",
    "tier_report",
    "triangular_guard_report",
    "alpha_equivalent",
    "subsumes",
    "trivially_implied",
    "AnalysisReport",
    "Finding",
    "LINT_CATALOG",
    "analyze",
    "apply_baseline",
    "baseline_fingerprints",
    "sarif_json",
    "sarif_report",
    "ContainmentReport",
    "ContainmentWitness",
    "DependencyVerdict",
    "EquivalenceCertificate",
    "check_containment",
    "check_equivalence",
    "contains",
    "eliminate_redundant",
    "redundancy_report",
    "verify_witness",
]
