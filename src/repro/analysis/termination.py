"""Chase-termination analysis: position graphs, weak acyclicity, depth bounds.

The decision procedures of the paper chase canonical instances, and the
engine's fixpoint chase (:mod:`repro.engine.fixpoint_chase`) iterates
dependencies over their own output.  Whether those chases terminate is
undecidable in general, but the classic *weak acyclicity* test of Fagin,
Kolaitis, Miller, and Popa (the position/dependency graph with special
edges) gives a broad decidable sufficient condition, and this module
implements it for every formalism of the library.

Every dependency is first Skolemized (s-t tgds via
:meth:`repro.logic.tgds.STTgd.skolem_head`, nested tgds via
:meth:`repro.logic.nested.NestedTgd.skolemize`, SO tgds clause-wise), so one
uniform clause shape ``body atoms -> head atoms over terms`` feeds the graph
construction.  The *position graph* has a node ``(R, i)`` for every position
of every relation and, for each clause and each universal variable ``x``
occurring at body position ``p``:

- a **regular** edge ``p -> q`` for every head position ``q`` where ``x``
  itself occurs (the value is copied), and
- a **special** edge ``p -> q`` for every head position ``q`` holding a
  Skolem term over ``x`` (a fresh null is created from the value).

A set of dependencies is *weakly acyclic* iff no cycle of the position graph
contains a special edge.  When it is, every position has a finite *rank*
(the maximum number of special edges on any path into it), and the oblivious
chase only ever creates nulls whose Skolem-term nesting depth is at most the
maximum rank -- the ``depth_bound`` reported here and verified by the tests
against :func:`repro.engine.fixpoint_chase.fixpoint_chase`.

    >>> from repro.logic.parser import parse_tgd
    >>> termination_report([parse_tgd("S(x,y) -> R(x,y)")]).weakly_acyclic
    True
    >>> report = termination_report([parse_tgd("E(x,y) -> E(y,z)")])
    >>> report.weakly_acyclic
    False
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import networkx as nx

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.terms import FuncTerm, term_variables
from repro.logic.tgds import STTgd
from repro.logic.values import Variable

#: A position is a (relation name, 0-based argument index) pair.
Position = tuple[str, int]


def format_position(position: Position) -> str:
    """Render a position as ``R.i`` for messages and JSON reports."""
    relation, index = position
    return f"{relation}.{index}"


# ----------------------------------------------------- dependency-graph IR

#: The shared intermediate representation of a dependency set: one
#: :class:`ClauseIR` per Skolemized clause, with every variable/position
#: relationship the static analyses need precomputed.  The weak-acyclicity
#: position graph (this module), the joint/super-weak acyclicity tests
#: (:mod:`repro.analysis.acyclicity`), and the cost model
#: (:mod:`repro.analysis.cost`) are all views of this IR.


@dataclass(frozen=True)
class SkolemIR:
    """One null-creating Skolem function of a clause.

    ``args`` are the variables the function ranges over (the engine's
    Skolemization passes all universals in scope, so these are exactly the
    values a fresh null is keyed by), and ``head_positions`` are the
    positions where a term *rooted* at the function occurs in the head.
    """

    function: str
    args: tuple[Variable, ...]
    head_positions: tuple[Position, ...]


@dataclass(frozen=True)
class ClauseIR:
    """A Skolemized clause ``body -> head`` with its position indexes.

    ``body_positions`` / ``head_positions`` map each universal variable to
    its *top-level* occurrences (positions where the value itself sits, not
    buried inside a Skolem term) -- top-level occurrences are exactly where
    a value is copied verbatim by a chase step.
    """

    label: str
    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    body_positions: dict[Variable, tuple[Position, ...]] = field(hash=False)
    head_positions: dict[Variable, tuple[Position, ...]] = field(hash=False)
    skolems: tuple[SkolemIR, ...] = ()


@dataclass(frozen=True)
class DependencyGraphIR:
    """The shared IR of a dependency set: clauses plus the position universe.

    ``positions`` includes positions contributed by egds (which create no
    edges but belong to the schema of the analyzed program).
    """

    clauses: tuple[ClauseIR, ...]
    positions: frozenset[Position]

    @property
    def skolem_functions(self) -> tuple[SkolemIR, ...]:
        """All Skolem functions of all clauses (paired with their clauses)."""
        return tuple(sk for clause in self.clauses for sk in clause.skolems)

    @property
    def max_skolem_arity(self) -> int:
        """The largest number of variables any Skolem function ranges over."""
        return max((len(sk.args) for sk in self.skolem_functions), default=0)

    @property
    def relations(self) -> frozenset[str]:
        """All relation names of the analyzed program."""
        return frozenset(relation for relation, _ in self.positions)


def _positions_of(atoms: Iterable[Atom]) -> dict[Variable, tuple[Position, ...]]:
    """Top-level variable occurrences of *atoms* as position tuples."""
    result: dict[Variable, list[Position]] = {}
    for atom in atoms:
        for i, arg in enumerate(atom.args):
            if isinstance(arg, Variable):
                result.setdefault(arg, []).append((atom.relation, i))
    return {var: tuple(positions) for var, positions in result.items()}


def _clause_ir(label: str, body: tuple[Atom, ...], head: tuple[Atom, ...]) -> ClauseIR:
    skolems: dict[str, tuple[tuple[Variable, ...], list[Position]]] = {}
    for atom in head:
        for i, term in enumerate(atom.args):
            if isinstance(term, FuncTerm):
                variables = tuple(dict.fromkeys(term_variables(term)))
                args, positions = skolems.setdefault(term.function, (variables, []))
                positions.append((atom.relation, i))
    return ClauseIR(
        label=label,
        body=body,
        head=head,
        body_positions=_positions_of(body),
        head_positions=_positions_of(head),
        skolems=tuple(
            SkolemIR(function=fn, args=args, head_positions=tuple(positions))
            for fn, (args, positions) in sorted(skolems.items())
        ),
    )


def dependency_graph_ir(dependencies: Iterable[object]) -> DependencyGraphIR:
    """Build the shared dependency-graph IR of a dependency set.

    Egds contribute positions only; tgds of every formalism are Skolemized
    into clauses exactly as :mod:`repro.engine.fixpoint_chase` runs them, so
    the analyses built on this IR are faithful to the engine's chase.
    """
    clauses: list[ClauseIR] = []
    positions: set[Position] = set()
    for index, dep in enumerate(dependencies):
        if isinstance(dep, Egd):
            for atom in dep.body:
                for i in range(atom.arity):
                    positions.add((atom.relation, i))
            continue
        for cid, (body, head) in enumerate(_skolem_clauses(dep, index)):
            clauses.append(_clause_ir(f"d{index}.{cid}", body, head))
    for clause in clauses:
        for atom in clause.body + clause.head:
            for i in range(atom.arity):
                positions.add((atom.relation, i))
    return DependencyGraphIR(clauses=tuple(clauses), positions=frozenset(positions))


@dataclass(frozen=True)
class TerminationReport:
    """The verdict of the weak-acyclicity analysis over a dependency set.

    ``max_rank`` and ``depth_bound`` are ``None`` when the set is not weakly
    acyclic; otherwise ``depth_bound`` bounds the nesting depth of every
    Skolem-term null the oblivious chase can create (0 for full tgds, which
    create no nulls at all).  ``witness_cycle`` is a position cycle through a
    special edge proving non-termination risk.
    """

    weakly_acyclic: bool
    position_count: int
    edge_count: int
    special_edge_count: int
    max_rank: int | None = None
    depth_bound: int | None = None
    witness_cycle: tuple[Position, ...] | None = None

    def __bool__(self) -> bool:
        return self.weakly_acyclic

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the verdict."""
        return {
            "weakly_acyclic": self.weakly_acyclic,
            "position_count": self.position_count,
            "edge_count": self.edge_count,
            "special_edge_count": self.special_edge_count,
            "max_rank": self.max_rank,
            "depth_bound": self.depth_bound,
            "witness_cycle": (
                None
                if self.witness_cycle is None
                else [format_position(p) for p in self.witness_cycle]
            ),
        }


def _skolem_clauses(dep: object, index: int) -> list[tuple[tuple[Atom, ...], tuple[Atom, ...]]]:
    """Normalize one dependency into Skolemized ``(body, head)`` clauses.

    s-t tgds are Skolemized directly (they may legally share source and
    target relations -- that is what makes divergence expressible); nested
    tgds and SO tgds contribute one clause per part/clause.
    """
    if isinstance(dep, STTgd):
        return [(dep.body, dep.skolem_head(lambda var: f"d{index}_f_{var.name}"))]
    if isinstance(dep, NestedTgd):
        skolemized = dep.skolemize(function_prefix=f"d{index}_")
        return [(clause.body, clause.head) for clause in skolemized.clauses]
    if isinstance(dep, SOTgd):
        return [(clause.body, clause.head) for clause in dep.clauses]
    raise DependencyError(f"cannot analyze termination of dependency {dep!r}")


def position_graph_of_ir(ir: DependencyGraphIR) -> "nx.DiGraph":
    """The weak-acyclicity position graph, derived from the shared IR.

    Nodes are :data:`Position` pairs; each edge carries a boolean ``special``
    attribute (a parallel regular+special pair collapses to one edge with
    ``special=True``).  Egds contribute positions but no edges: they create
    no nulls, and weak acyclicity of the tgds is the standard sufficient
    condition for termination of the combined tgd+egd chase.
    """
    graph = nx.DiGraph()
    # Sorted insertion keeps node (and hence adjacency/SCC) iteration order
    # independent of PYTHONHASHSEED, so witness cycles are reproducible
    # across processes.
    graph.add_nodes_from(sorted(ir.positions))

    def add_edge(source: Position, target: Position, special: bool) -> None:
        if graph.has_edge(source, target):
            graph[source][target]["special"] |= special
        else:
            graph.add_edge(source, target, special=special)

    for clause in ir.clauses:
        for var, sources in clause.body_positions.items():
            for target in clause.head_positions.get(var, ()):
                for source in sources:
                    add_edge(source, target, special=False)
        for skolem in clause.skolems:
            for var in skolem.args:
                for target in skolem.head_positions:
                    for source in clause.body_positions.get(var, ()):
                        add_edge(source, target, special=True)
    return graph


def position_graph(dependencies: Iterable[object]) -> "nx.DiGraph":
    """Build the position graph of a dependency set (see :func:`position_graph_of_ir`)."""
    return position_graph_of_ir(dependency_graph_ir(dependencies))


def position_ranks(graph: "nx.DiGraph") -> dict[Position, int] | None:
    """Rank every position of a weakly acyclic position graph; None otherwise.

    The rank of a position is the maximum number of special edges on any
    path into it -- the DP along the condensation DAG that both the
    ``depth_bound`` of :func:`termination_report` and the degree bounds of
    :mod:`repro.analysis.cost` are computed from.
    """
    components = list(nx.strongly_connected_components(graph))
    for component in components:
        if any(
            graph[u][v]["special"] for u, v in graph.subgraph(component).edges()
        ):
            return None
    condensation = nx.condensation(graph, components)
    component_rank: dict[int, int] = {}
    for node in nx.topological_sort(condensation):
        best = 0
        members = condensation.nodes[node]["members"]
        for member in members:
            for pred in graph.predecessors(member):
                if pred in members:
                    continue
                pred_component = condensation.graph["mapping"][pred]
                weight = 1 if graph[pred][member]["special"] else 0
                best = max(best, component_rank[pred_component] + weight)
        component_rank[node] = best
    return {
        position: component_rank[condensation.graph["mapping"][position]]
        for position in graph.nodes
    }


def _witness_cycle(graph: "nx.DiGraph", component: set[Position]) -> tuple[Position, ...]:
    """A cycle through a special edge inside a strongly connected component.

    The lexicographically smallest special edge is chosen so the witness is
    canonical: the same program yields the same cycle in every process.
    """
    subgraph = graph.subgraph(component)
    special_edges = sorted(
        (source, target)
        for source, target, special in subgraph.edges(data="special")
        if special
    )
    if not special_edges:
        raise AssertionError("component has no special edge")  # pragma: no cover
    source, target = special_edges[0]
    path: list[Position] = nx.shortest_path(subgraph, target, source)
    return tuple([source] + path)


def termination_report(dependencies: object) -> TerminationReport:
    """Decide weak acyclicity of a dependency set and bound the chase depth.

    *dependencies* may be a single dependency or an iterable mixing s-t
    tgds, nested tgds, SO tgds, and egds.

        >>> from repro.logic.parser import parse_so_tgd
        >>> report = termination_report([parse_so_tgd("S(x,y) -> R(f(x), f(y))")])
        >>> report.weakly_acyclic, report.depth_bound
        (True, 1)
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    cached = _cached_report(tuple(repr(dep) for dep in deps))
    if cached is not None:
        return cached

    graph = position_graph(deps)
    special_edges = sum(1 for *_, special in graph.edges(data="special") if special)
    base = dict(
        position_count=graph.number_of_nodes(),
        edge_count=graph.number_of_edges(),
        special_edge_count=special_edges,
    )

    ranks = position_ranks(graph)
    if ranks is None:
        for component in nx.strongly_connected_components(graph):
            if any(
                graph[u][v]["special"]
                for u, v in graph.subgraph(component).edges()
            ):
                report = TerminationReport(
                    weakly_acyclic=False,
                    witness_cycle=_witness_cycle(graph, component),
                    **base,
                )
                _store_report(tuple(repr(dep) for dep in deps), report)
                return report
        raise AssertionError("unrankable graph has a special cycle")  # pragma: no cover

    max_rank = max(ranks.values(), default=0)
    report = TerminationReport(
        weakly_acyclic=True, max_rank=max_rank, depth_bound=max_rank, **base
    )
    _store_report(tuple(repr(dep) for dep in deps), report)
    return report


# ------------------------------------------------------------- verdict cache

#: Memoized verdicts keyed by the dependency reprs (reprs are total and
#: stable, see ``_sigma_fingerprint`` in :mod:`repro.core.implication`).
_REPORT_CACHE: dict[tuple[str, ...], TerminationReport] = {}
_REPORT_CACHE_LIMIT = 256


def _cached_report(key: tuple[str, ...]) -> TerminationReport | None:
    return _REPORT_CACHE.get(key)


def _store_report(key: tuple[str, ...], report: TerminationReport) -> None:
    if len(_REPORT_CACHE) >= _REPORT_CACHE_LIMIT:
        _REPORT_CACHE.clear()
    _REPORT_CACHE[key] = report


def clear_termination_cache() -> None:
    """Drop all memoized termination verdicts (used by benchmarks)."""
    _REPORT_CACHE.clear()


__all__ = [
    "ClauseIR",
    "DependencyGraphIR",
    "Position",
    "SkolemIR",
    "TerminationReport",
    "clear_termination_cache",
    "dependency_graph_ir",
    "format_position",
    "position_graph",
    "position_graph_of_ir",
    "position_ranks",
    "termination_report",
]
