"""Chase-termination analysis: position graphs, weak acyclicity, depth bounds.

The decision procedures of the paper chase canonical instances, and the
engine's fixpoint chase (:mod:`repro.engine.fixpoint_chase`) iterates
dependencies over their own output.  Whether those chases terminate is
undecidable in general, but the classic *weak acyclicity* test of Fagin,
Kolaitis, Miller, and Popa (the position/dependency graph with special
edges) gives a broad decidable sufficient condition, and this module
implements it for every formalism of the library.

Every dependency is first Skolemized (s-t tgds via
:meth:`repro.logic.tgds.STTgd.skolem_head`, nested tgds via
:meth:`repro.logic.nested.NestedTgd.skolemize`, SO tgds clause-wise), so one
uniform clause shape ``body atoms -> head atoms over terms`` feeds the graph
construction.  The *position graph* has a node ``(R, i)`` for every position
of every relation and, for each clause and each universal variable ``x``
occurring at body position ``p``:

- a **regular** edge ``p -> q`` for every head position ``q`` where ``x``
  itself occurs (the value is copied), and
- a **special** edge ``p -> q`` for every head position ``q`` holding a
  Skolem term over ``x`` (a fresh null is created from the value).

A set of dependencies is *weakly acyclic* iff no cycle of the position graph
contains a special edge.  When it is, every position has a finite *rank*
(the maximum number of special edges on any path into it), and the oblivious
chase only ever creates nulls whose Skolem-term nesting depth is at most the
maximum rank -- the ``depth_bound`` reported here and verified by the tests
against :func:`repro.engine.fixpoint_chase.fixpoint_chase`.

    >>> from repro.logic.parser import parse_tgd
    >>> termination_report([parse_tgd("S(x,y) -> R(x,y)")]).weakly_acyclic
    True
    >>> report = termination_report([parse_tgd("E(x,y) -> E(y,z)")])
    >>> report.weakly_acyclic
    False
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import networkx as nx

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.terms import term_variables
from repro.logic.tgds import STTgd
from repro.logic.values import Variable

#: A position is a (relation name, 0-based argument index) pair.
Position = tuple[str, int]


def format_position(position: Position) -> str:
    """Render a position as ``R.i`` for messages and JSON reports."""
    relation, index = position
    return f"{relation}.{index}"


@dataclass(frozen=True)
class TerminationReport:
    """The verdict of the weak-acyclicity analysis over a dependency set.

    ``max_rank`` and ``depth_bound`` are ``None`` when the set is not weakly
    acyclic; otherwise ``depth_bound`` bounds the nesting depth of every
    Skolem-term null the oblivious chase can create (0 for full tgds, which
    create no nulls at all).  ``witness_cycle`` is a position cycle through a
    special edge proving non-termination risk.
    """

    weakly_acyclic: bool
    position_count: int
    edge_count: int
    special_edge_count: int
    max_rank: int | None = None
    depth_bound: int | None = None
    witness_cycle: tuple[Position, ...] | None = None

    def __bool__(self) -> bool:
        return self.weakly_acyclic

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the verdict."""
        return {
            "weakly_acyclic": self.weakly_acyclic,
            "position_count": self.position_count,
            "edge_count": self.edge_count,
            "special_edge_count": self.special_edge_count,
            "max_rank": self.max_rank,
            "depth_bound": self.depth_bound,
            "witness_cycle": (
                None
                if self.witness_cycle is None
                else [format_position(p) for p in self.witness_cycle]
            ),
        }


def _skolem_clauses(dep: object, index: int) -> list[tuple[tuple[Atom, ...], tuple[Atom, ...]]]:
    """Normalize one dependency into Skolemized ``(body, head)`` clauses.

    s-t tgds are Skolemized directly (they may legally share source and
    target relations -- that is what makes divergence expressible); nested
    tgds and SO tgds contribute one clause per part/clause.
    """
    if isinstance(dep, STTgd):
        return [(dep.body, dep.skolem_head(lambda var: f"d{index}_f_{var.name}"))]
    if isinstance(dep, NestedTgd):
        skolemized = dep.skolemize(function_prefix=f"d{index}_")
        return [(clause.body, clause.head) for clause in skolemized.clauses]
    if isinstance(dep, SOTgd):
        return [(clause.body, clause.head) for clause in dep.clauses]
    raise DependencyError(f"cannot analyze termination of dependency {dep!r}")


def position_graph(dependencies: Iterable[object]) -> "nx.DiGraph":
    """Build the position graph of a dependency set.

    Nodes are :data:`Position` pairs; each edge carries a boolean ``special``
    attribute (a parallel regular+special pair collapses to one edge with
    ``special=True``).  Egds contribute positions but no edges: they create
    no nulls, and weak acyclicity of the tgds is the standard sufficient
    condition for termination of the combined tgd+egd chase.
    """
    graph = nx.DiGraph()
    for index, dep in enumerate(dependencies):
        if isinstance(dep, Egd):
            for atom in dep.body:
                for i in range(atom.arity):
                    graph.add_node((atom.relation, i))
            continue
        for body, head in _skolem_clauses(dep, index):
            occurrences: dict[Variable, list[Position]] = {}
            for atom in body:
                for i, arg in enumerate(atom.args):
                    graph.add_node((atom.relation, i))
                    if isinstance(arg, Variable):
                        occurrences.setdefault(arg, []).append((atom.relation, i))
            for atom in head:
                for i, term in enumerate(atom.args):
                    target: Position = (atom.relation, i)
                    graph.add_node(target)
                    if isinstance(term, Variable):
                        special = False
                        variables: Iterable[Variable] = (term,)
                    else:
                        special = True
                        variables = term_variables(term)
                    for var in variables:
                        for source in occurrences.get(var, ()):
                            if graph.has_edge(source, target):
                                graph[source][target]["special"] |= special
                            else:
                                graph.add_edge(source, target, special=special)
    return graph


def _witness_cycle(graph: "nx.DiGraph", component: set[Position]) -> tuple[Position, ...]:
    """A cycle through a special edge inside a strongly connected component."""
    subgraph = graph.subgraph(component)
    for source, target, special in subgraph.edges(data="special"):
        if special:
            path: list[Position] = nx.shortest_path(subgraph, target, source)
            return tuple([source] + path)
    raise AssertionError("component has no special edge")  # pragma: no cover


def termination_report(dependencies: object) -> TerminationReport:
    """Decide weak acyclicity of a dependency set and bound the chase depth.

    *dependencies* may be a single dependency or an iterable mixing s-t
    tgds, nested tgds, SO tgds, and egds.

        >>> from repro.logic.parser import parse_so_tgd
        >>> report = termination_report([parse_so_tgd("S(x,y) -> R(f(x), f(y))")])
        >>> report.weakly_acyclic, report.depth_bound
        (True, 1)
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    cached = _cached_report(tuple(repr(dep) for dep in deps))
    if cached is not None:
        return cached

    graph = position_graph(deps)
    special_edges = sum(1 for *_, special in graph.edges(data="special") if special)
    base = dict(
        position_count=graph.number_of_nodes(),
        edge_count=graph.number_of_edges(),
        special_edge_count=special_edges,
    )

    components = list(nx.strongly_connected_components(graph))
    for component in components:
        if any(
            graph[u][v]["special"]
            for u, v in graph.subgraph(component).edges()
        ):
            report = TerminationReport(
                weakly_acyclic=False,
                witness_cycle=_witness_cycle(graph, component),
                **base,
            )
            _store_report(tuple(repr(dep) for dep in deps), report)
            return report

    # Weakly acyclic: rank every strongly connected component along the
    # condensation DAG, counting special edges (all intra-component edges are
    # regular here, so every node of a component shares one rank).
    condensation = nx.condensation(graph, components)
    rank: dict[int, int] = {}
    for node in nx.topological_sort(condensation):
        best = 0
        members = condensation.nodes[node]["members"]
        for member in members:
            for pred in graph.predecessors(member):
                if pred in members:
                    continue
                pred_component = condensation.graph["mapping"][pred]
                weight = 1 if graph[pred][member]["special"] else 0
                best = max(best, rank[pred_component] + weight)
        rank[node] = best
    max_rank = max(rank.values(), default=0)
    report = TerminationReport(
        weakly_acyclic=True, max_rank=max_rank, depth_bound=max_rank, **base
    )
    _store_report(tuple(repr(dep) for dep in deps), report)
    return report


# ------------------------------------------------------------- verdict cache

#: Memoized verdicts keyed by the dependency reprs (reprs are total and
#: stable, see ``_sigma_fingerprint`` in :mod:`repro.core.implication`).
_REPORT_CACHE: dict[tuple[str, ...], TerminationReport] = {}
_REPORT_CACHE_LIMIT = 256


def _cached_report(key: tuple[str, ...]) -> TerminationReport | None:
    return _REPORT_CACHE.get(key)


def _store_report(key: tuple[str, ...], report: TerminationReport) -> None:
    if len(_REPORT_CACHE) >= _REPORT_CACHE_LIMIT:
        _REPORT_CACHE.clear()
    _REPORT_CACHE[key] = report


def clear_termination_cache() -> None:
    """Drop all memoized termination verdicts (used by benchmarks)."""
    _REPORT_CACHE.clear()


__all__ = [
    "Position",
    "TerminationReport",
    "clear_termination_cache",
    "format_position",
    "position_graph",
    "termination_report",
]
