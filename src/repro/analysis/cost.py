"""Static cost model: chase-size degree bounds and IMPLIES sweep budgets.

The two engines this library runs in anger have cost that is *statically
predictable* from dependency structure alone:

- The oblivious :func:`~repro.engine.fixpoint_chase.fixpoint_chase` of a
  certified-terminating set creates nulls of Skolem-nesting depth at most
  ``D`` (the hierarchy verdict's ``depth_bound``).  Counting distinct values
  level by level gives the recurrence ``d_0 = n`` and
  ``d_r = d_{r-1} + F * d_{r-1}^w`` (``F`` Skolem functions of arity at most
  ``w``), so the chase result holds at most ``R * d_D^A`` facts over ``R``
  relations of arity at most ``A`` -- a polynomial in the instance size ``n``
  of degree ``A * w^D``.  The degree is *doubly* exponential-prone: ``w^D``
  alone can dwarf any practical budget, which is exactly what finding
  ``CC002`` warns about.
- The IMPLIES sweep of Theorem 3.1 checks one canonical instance per
  k-pattern, and ``|P_k(sigma)|`` follows the non-elementary recurrence of
  Proposition 3.5 (``prod (k+1) ** |P_k(child)|``).  Finding ``CC001`` warns
  when the predicted sweep exceeds the enumeration guard *before* a single
  pattern is built.

All arithmetic here saturates at :data:`SATURATION_CAP`: the exact pattern
count of a deep nesting is a number with ``10^10`` digits, and merely
*printing* it would be the blowup the analysis exists to prevent.

:func:`chase_budget` is the budget derivation the engines consult: it
prefers the per-relation degree witnesses of the complexity tier
(:mod:`repro.analysis.frontier`) over the saturating worst case above, so a
PTIME-certified program gets a polynomially tight budget instead of the
astronomical ``A * w^D`` bound.

    >>> from repro.logic.parser import parse_tgd
    >>> est = chase_cost([parse_tgd("S(x,y) -> exists z . R(x,z)")])
    >>> est.degree, est.fact_bound(10)   # f_z(x,y) has arity 2, rank depth 1
    (4, 24200)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import DependencyError
from repro.logic.egds import Egd
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.tgds import STTgd
from repro.analysis.acyclicity import TerminationVerdict, classify_termination
from repro.analysis.termination import DependencyGraphIR, dependency_graph_ir

#: All cost arithmetic saturates here (10^18): beyond this every budget has
#: been blown anyway, and exact values can themselves be astronomically large.
SATURATION_CAP = 10**18

#: A predicted k-pattern sweep above this gets a ``CC001`` finding (matches
#: the default ``max_patterns`` guard of the IMPLIES enumeration).
CC001_PATTERN_LIMIT = 1_000_000

#: A chase-size polynomial degree above this gets a ``CC002`` finding.
CC002_DEGREE_LIMIT = 8


# ------------------------------------------------------ saturating arithmetic


def saturating_add(left: int, right: int, cap: int = SATURATION_CAP) -> int:
    """``left + right``, clamped to *cap*."""
    return min(left + right, cap)


def saturating_mul(left: int, right: int, cap: int = SATURATION_CAP) -> int:
    """``left * right``, clamped to *cap* (without materializing huge products)."""
    if left == 0 or right == 0:
        return 0
    if left >= cap or right >= cap or left > cap // right:
        return cap
    return left * right


def saturating_pow(base: int, exponent: int, cap: int = SATURATION_CAP) -> int:
    """``base ** exponent``, clamped to *cap* (never computes a huge power)."""
    if exponent == 0:
        return 1
    if base <= 1:
        return base
    # cap < 2**63 here in practice; 63 squarings of base>=2 always saturate.
    if exponent > cap.bit_length():
        return cap
    result = 1
    for _ in range(exponent):
        result = saturating_mul(result, base, cap)
        if result >= cap:
            return cap
    return result


# ------------------------------------------------------------ chase cost model


@dataclass(frozen=True)
class ChaseCostEstimate:
    """Degree bounds on the size of a terminating oblivious chase.

    ``degree`` is the degree of the polynomial (in the instance size ``n``)
    bounding the number of facts the chase can produce, ``None`` when no
    hierarchy rung certified the set (the chase may diverge -- no polynomial
    exists).  ``saturated`` records that the degree itself hit
    :data:`SATURATION_CAP`, i.e. the bound is "astronomical", not merely big.
    """

    termination: TerminationVerdict
    relation_count: int
    max_arity: int
    skolem_function_count: int
    max_skolem_arity: int
    depth_bound: int | None
    degree: int | None
    saturated: bool

    @property
    def exponential(self) -> bool:
        """True when the predicted chase-size degree exceeds the CC002 limit."""
        return self.degree is None or self.degree > CC002_DEGREE_LIMIT

    def value_bound(self, n: int) -> int | None:
        """Bound the number of distinct values after chasing an n-value instance."""
        if self.depth_bound is None:
            return None
        values = max(n, 1)
        arity = max(self.max_skolem_arity, 1) if self.skolem_function_count else 0
        for _ in range(self.depth_bound):
            if self.skolem_function_count == 0:
                break
            created = saturating_mul(
                self.skolem_function_count, saturating_pow(values, arity)
            )
            values = saturating_add(values, created)
            if values >= SATURATION_CAP:
                return SATURATION_CAP
        return values

    def fact_bound(self, n: int) -> int | None:
        """Bound the number of facts after chasing an n-value instance.

        ``None`` when no rung certified termination (no finite bound exists
        that the static analysis can vouch for).
        """
        values = self.value_bound(n)
        if values is None:
            return None
        return saturating_mul(
            max(self.relation_count, 1), saturating_pow(values, self.max_arity)
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the estimate."""
        return {
            "termination_class": self.termination.cls.value,
            "relation_count": self.relation_count,
            "max_arity": self.max_arity,
            "skolem_function_count": self.skolem_function_count,
            "max_skolem_arity": self.max_skolem_arity,
            "depth_bound": self.depth_bound,
            "degree": self.degree,
            "saturated": self.saturated,
            "exponential": self.exponential,
        }


def chase_cost(
    dependencies: object,
    *,
    verdict: TerminationVerdict | None = None,
    ir: DependencyGraphIR | None = None,
) -> ChaseCostEstimate:
    """Statically bound the size of the oblivious chase of a dependency set.

    *verdict* / *ir* let callers that already classified the set or built
    the shared IR pass them in; both are recomputed (and memoized by their
    own modules) otherwise.
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    if verdict is None:
        verdict = classify_termination(deps)
    if ir is None:
        ir = dependency_graph_ir(deps)

    functions = {sk.function for sk in ir.skolem_functions}
    arities: dict[str, int] = {}
    for relation, index in ir.positions:
        arities[relation] = max(arities.get(relation, 0), index + 1)
    max_arity = max(arities.values(), default=0)
    skolem_arity = ir.max_skolem_arity
    depth = verdict.depth_bound

    degree: int | None
    saturated = False
    if depth is None:
        degree = None
    else:
        # Distinct values grow like d_r = d_{r-1} + F * d_{r-1}^w, so after D
        # levels the value degree is w^D (1 when w <= 1 or nothing is ever
        # created), and each relation of arity A contributes at most
        # values^A facts: degree = A * w^D.
        if not functions or depth == 0 or skolem_arity <= 1:
            value_degree = 1
        else:
            value_degree = saturating_pow(skolem_arity, depth)
        degree = saturating_mul(max(max_arity, 1), value_degree)
        saturated = degree >= SATURATION_CAP
    return ChaseCostEstimate(
        termination=verdict,
        relation_count=len(arities),
        max_arity=max_arity,
        skolem_function_count=len(functions),
        max_skolem_arity=skolem_arity,
        depth_bound=depth,
        degree=degree,
        saturated=saturated,
    )


def chase_budget(
    dependencies: object,
    n: int,
    *,
    verdict: TerminationVerdict | None = None,
    ir: DependencyGraphIR | None = None,
) -> int | None:
    """The tightest static fact budget for chasing an ``n``-value instance.

    Derives from the complexity tier of
    :func:`repro.analysis.frontier.frontier_report` when refined per-relation
    degree witnesses exist (the ``min`` of the refined and coarse bounds),
    falling back to the saturating worst case of :func:`chase_cost`
    otherwise; ``None`` when no hierarchy rung certifies termination.
    ``fixpoint_chase`` uses this to decide whether an explicit ``budget=``
    can be statically elided.

        >>> from repro.logic.parser import parse_tgd
        >>> deps = [parse_tgd(f"T{i}(x,y) -> exists z . T{i + 1}(y,z)")
        ...         for i in range(3)]
        >>> coarse = chase_cost(deps).fact_bound(4)
        >>> refined = chase_budget(deps, 4)
        >>> refined < coarse
        True
    """
    from repro.analysis.frontier import frontier_report

    report = frontier_report(dependencies, verdict=verdict, ir=ir)
    return report.fact_bound(n)


# ------------------------------------------------------------ sweep cost model


def count_k_patterns_saturating(
    tgd: NestedTgd, k: int, cap: int = SATURATION_CAP
) -> int:
    """``|P_k(sigma)|`` by the Proposition 3.5 recurrence, clamped to *cap*.

    The exact :func:`repro.core.patterns.count_k_patterns` computes the true
    (possibly non-elementary) integer; this variant never builds a number
    larger than *cap*, so it is safe to call on any nesting depth.
    """
    if k < 1:
        raise DependencyError("k must be at least 1")
    memo: dict[int, int] = {}

    def count(pid: int) -> int:
        cached = memo.get(pid)
        if cached is not None:
            return cached
        total = 1
        for child in tgd.children_of(pid):
            total = saturating_mul(total, saturating_pow(k + 1, count(child), cap), cap)
        memo[pid] = total
        return total

    return count(1)


@dataclass(frozen=True)
class SweepCostEstimate:
    """Predicted work of one IMPLIES k-pattern sweep.

    ``pattern_count`` is the (saturating) number of k-patterns to check and
    ``atoms_per_check`` the number of atoms of the right-hand side -- each
    check builds a canonical instance of roughly that many facts per pattern
    node and chases it.  ``cost_units`` is their product: a unitless but
    monotone proxy for sweep time, comparable against a caller's budget.
    """

    k: int
    pattern_count: int
    atoms_per_check: int
    saturated: bool

    @property
    def cost_units(self) -> int:
        return saturating_mul(self.pattern_count, max(self.atoms_per_check, 1))

    @property
    def non_elementary(self) -> bool:
        """True when the predicted sweep exceeds the CC001 enumeration guard."""
        return self.pattern_count > CC001_PATTERN_LIMIT

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the estimate."""
        return {
            "k": self.k,
            "pattern_count": self.pattern_count,
            "atoms_per_check": self.atoms_per_check,
            "cost_units": self.cost_units,
            "saturated": self.saturated,
            "non_elementary": self.non_elementary,
        }


def _max_universal_variables(dependencies: Sequence[object]) -> int:
    """The quantity ``w`` of IMPLIES, over any mix of formalisms."""
    best = 0
    for dep in dependencies:
        if isinstance(dep, NestedTgd):
            best = max(best, dep.universal_variable_count())
        elif isinstance(dep, STTgd):
            best = max(best, len(dep.universal_variables))
        elif isinstance(dep, SOTgd):
            best = max(best, dep.max_universal_variables())
    return best


def sweep_cost(
    sigma_set: object, sigma: object, *, k: int | None = None
) -> SweepCostEstimate:
    """Predict the cost of ``implies_tgd(sigma_set, sigma)`` without running it.

    With *k* omitted, the clone bound ``k = v * w + 1`` of line 4 of IMPLIES
    is computed exactly as :func:`repro.core.implication.implication_bound`
    does.  The estimate is *a priori*: nothing is enumerated or chased.

        >>> from repro.logic.parser import parse_nested_tgd, parse_tgd
        >>> s = parse_nested_tgd(
        ...     "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) "
        ...     "& (S3(x1,x3) -> R3(y1,x3) & (S4(x3,x4) -> exists y2 . R4(y2,x4))))")
        >>> est = sweep_cost([s], s)
        >>> est.k, est.non_elementary
        (9, True)
    """
    if isinstance(sigma_set, (STTgd, NestedTgd, SOTgd, Egd)):
        sigma_set = [sigma_set]
    deps = list(sigma_set)
    if isinstance(sigma, STTgd):
        # A flat tgd has a single part and hence exactly one k-pattern for
        # every k.  Computed directly: to_nested() would reject same-schema
        # tgds, which the fixpoint engine (and the linter) accept.
        if k is None:
            k = len(sigma.existential_variables) * _max_universal_variables(deps) + 1
        return SweepCostEstimate(
            k=k,
            pattern_count=1,
            atoms_per_check=len(sigma.body) + len(sigma.head),
            saturated=False,
        )
    if isinstance(sigma, NestedTgd):
        rhs = sigma
    else:
        raise DependencyError(
            f"sweep_cost needs an s-t or nested tgd right-hand side, got {sigma!r}"
        )
    if k is None:
        k = rhs.skolem_function_count() * _max_universal_variables(deps) + 1
    pattern_count = count_k_patterns_saturating(rhs, k)
    atoms = sum(
        len(rhs.part(pid).body) + len(rhs.part(pid).head) for pid in rhs.part_ids()
    )
    return SweepCostEstimate(
        k=k,
        pattern_count=pattern_count,
        atoms_per_check=atoms,
        saturated=pattern_count >= SATURATION_CAP,
    )


__all__ = [
    "CC001_PATTERN_LIMIT",
    "CC002_DEGREE_LIMIT",
    "SATURATION_CAP",
    "ChaseCostEstimate",
    "SweepCostEstimate",
    "chase_budget",
    "chase_cost",
    "count_k_patterns_saturating",
    "saturating_add",
    "saturating_mul",
    "saturating_pow",
    "sweep_cost",
]
