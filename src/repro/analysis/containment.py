"""Mapping containment: certified ``Sigma <= Sigma'`` queries (Cali-Torlone).

Two schema mappings over the same source schema are *containment*-ordered,
``Sigma <= Sigma'``, when every source instance's solution set under
``Sigma`` is included in its solution set under ``Sigma'`` (Cali & Torlone,
"Containment of Conjunctive Queries over Databases with Null Values" /
"Containment of schema mappings for data exchange").  For the mapping
languages of this library that semantic order coincides with logical
implication: ``Sol_Sigma(I) <= Sol_Sigma'(I)`` for every ``I`` iff every
model of ``Sigma`` is a model of ``Sigma'`` iff ``Sigma |= sigma'`` for each
``sigma' in Sigma'``.  Containment therefore decomposes per right-hand
dependency into the paper's IMPLIES procedure (Theorem 3.1 / 5.7): chase
each ``Sigma'``-relevant canonical source instance with the cached
``chase`` / ``find_homomorphism`` stack and look for an unmatched target
pattern.

What this module adds over raw :func:`repro.core.implication.implies_tgd`:

- **admissibility gating** through the decidability-frontier certificates of
  :mod:`repro.analysis.frontier`: a containment query over an uncertified
  dependency set (no termination rung) is *refused* rather than run, unless
  the caller supplies an explicit ``budget=``; certified-but-astronomical
  sets (the static chase bound of :func:`repro.analysis.cost.chase_budget`
  saturates) are refused the same way;
- a structured :class:`ContainmentReport` carrying either a per-dependency
  *proof map* (every ``sigma'`` implied, with its clone bound and sweep
  size) or a machine-checkable :class:`ContainmentWitness` (a counterexample
  source instance plus the unmatched target pattern) that
  :func:`verify_witness` re-checks from first principles;
- write-through caching of whole containment verdicts in the persistent
  store (:mod:`repro.cache`, space ``contain``), keyed by the fingerprints
  of the ``(Sigma, Sigma')`` pair;
- ``containment.*`` :mod:`repro.perf` counters;
- the semantic-redundancy primitives behind lint ``MC001``/``MC002`` and
  ``optimize(semantic=True)``: :func:`redundancy_report` (one diagnostic
  per dependency implied by the rest) and :func:`eliminate_redundant`
  (the greedy, frontier-gated minimization).

    >>> from repro.logic.parser import parse_tgd
    >>> strong = parse_tgd("S(x,y) -> R(x,y)")
    >>> weak = parse_tgd("S(x,y) -> exists z . R(x,z)")
    >>> check_containment([strong], [weak]).status
    'contained'
    >>> report = check_containment([weak], [strong])
    >>> report.holds, report.counterexample is not None
    (False, True)
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro import perf
from repro.cache import SPACE_CONTAIN, disk_get, disk_put
from repro.cache.fingerprint import fingerprint_texts
from repro.cache.store import get_store
from repro.errors import (
    BudgetExceeded,
    DependencyError,
    ResourceLimitExceeded,
    UndecidedError,
)
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.tgds import STTgd
from repro.analysis.cost import SATURATION_CAP, chase_budget, sweep_cost
from repro.analysis.frontier import frontier_report

#: Default guard on the total k-pattern sweep of one containment query
#: (matches the IMPLIES enumeration guard / the CC001 prediction limit).
CONTAINMENT_PATTERN_LIMIT = 1_000_000

#: The (much smaller) per-dependency sweep budget of the *lint* pass: the
#: MC001 semantic-redundancy check runs inside ``analyze()`` and must stay
#: interactive, so sweeps predicted beyond this are refused into ``MC002``.
LINT_PATTERN_LIMIT = 20_000


# ------------------------------------------------------------------ reports


@dataclass(frozen=True)
class ContainmentWitness:
    """A machine-checkable refutation of ``Sigma <= Sigma'``.

    ``source`` is a source instance ``I`` (the canonical instance of the
    failing k-pattern) and ``target`` the target pattern ``J`` that
    ``dependency`` (a member of ``Sigma'``) demands for ``I`` but that
    ``chase(I, Sigma)`` cannot absorb: ``J`` maps homomorphically into
    ``chase(I, [sigma'])`` but not into ``chase(I, Sigma)``.
    :func:`verify_witness` re-checks exactly that, independently of the
    sweep that produced the witness.
    """

    dependency: str
    pattern: str | None
    source: tuple[Atom, ...]
    target: tuple[Atom, ...]

    @property
    def source_instance(self) -> Instance:
        """The counterexample source ``I`` as an :class:`Instance`."""
        return Instance(self.source)

    @property
    def target_instance(self) -> Instance:
        """The unmatched target pattern ``J`` as an :class:`Instance`."""
        return Instance(self.target)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view (facts rendered in sorted repr order)."""
        return {
            "dependency": self.dependency,
            "pattern": self.pattern,
            "source": [str(fact) for fact in self.source],
            "target": [str(fact) for fact in self.target],
        }


@dataclass(frozen=True)
class DependencyVerdict:
    """The containment verdict for one right-hand dependency ``sigma'``.

    ``status`` is ``"implied"`` (``Sigma |= sigma'``; ``k`` and
    ``patterns_checked`` form the proof-map entry), ``"refuted"``
    (``witness`` carries the counterexample), or ``"refused"`` (the query
    was not run; ``reason`` says why -- frontier gate, budget, or an
    undecidable right-hand side).
    """

    dependency: str
    text: str
    status: str
    reason: str = ""
    k: int | None = None
    patterns_checked: int = 0
    witness: ContainmentWitness | None = None

    @property
    def holds(self) -> bool | None:
        """True / False / None for implied / refuted / refused."""
        if self.status == "implied":
            return True
        if self.status == "refuted":
            return False
        return None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view of the verdict."""
        return {
            "dependency": self.dependency,
            "text": self.text,
            "status": self.status,
            "reason": self.reason,
            "k": self.k,
            "patterns_checked": self.patterns_checked,
            "witness": None if self.witness is None else self.witness.to_dict(),
        }


@dataclass(frozen=True)
class ContainmentReport:
    """Everything one ``Sigma <= Sigma'`` query decided.

    ``holds`` is three-valued: ``True`` (every right-hand dependency
    implied: the ``verdicts`` are a per-dependency proof map), ``False``
    (some dependency refuted: a refutation is sound even when other
    dependencies were refused), or ``None`` (no refutation, at least one
    refusal -- the query is undecided at the current gate).  ``certified``
    and ``tier`` record the frontier certificate of the combined set;
    ``chase_fact_bound`` the static per-chase fact budget that admitted the
    query (:func:`repro.analysis.cost.chase_budget`, ``None`` when
    uncertified).
    """

    holds: bool | None
    status: str
    certified: bool
    tier: str
    chase_fact_bound: int | None
    budget: int | None
    lhs: tuple[str, ...]
    verdicts: tuple[DependencyVerdict, ...]

    def __bool__(self) -> bool:
        return self.holds is True

    @property
    def counterexample(self) -> ContainmentWitness | None:
        """The first refutation witness, or ``None``."""
        for verdict in self.verdicts:
            if verdict.witness is not None:
                return verdict.witness
        return None

    @property
    def refusals(self) -> tuple[DependencyVerdict, ...]:
        """The verdicts the admissibility gate refused to run."""
        return tuple(v for v in self.verdicts if v.status == "refused")

    def proof_map(self) -> dict[str, dict[str, int]]:
        """``label -> {k, patterns_checked}`` over the implied dependencies."""
        return {
            v.dependency: {"k": v.k or 0, "patterns_checked": v.patterns_checked}
            for v in self.verdicts
            if v.status == "implied"
        }

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view of the whole report."""
        return {
            "holds": self.holds,
            "status": self.status,
            "certified": self.certified,
            "tier": self.tier,
            "chase_fact_bound": self.chase_fact_bound,
            "budget": self.budget,
            "lhs": list(self.lhs),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON (sorted keys) -- the ``repro contain`` payload."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


@dataclass(frozen=True)
class EquivalenceCertificate:
    """Mutual containment: ``Sigma == Sigma'`` iff both directions hold.

    The certificate :func:`optimize <repro.core.normalization.optimize>`
    attaches to a semantic minimization: ``forward`` decides
    ``Sigma <= Sigma'`` and ``backward`` decides ``Sigma' <= Sigma``
    (Corollary 3.11 packaged as two containment reports).
    """

    forward: ContainmentReport
    backward: ContainmentReport

    @property
    def holds(self) -> bool | None:
        """Three-valued conjunction of the two directions."""
        if self.forward.holds is False or self.backward.holds is False:
            return False
        if self.forward.holds is True and self.backward.holds is True:
            return True
        return None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view of both directions."""
        return {
            "holds": self.holds,
            "forward": self.forward.to_dict(),
            "backward": self.backward.to_dict(),
        }


# ------------------------------------------------------------- normalization


def _as_list(mapping: object) -> list[Any]:
    if isinstance(mapping, (STTgd, NestedTgd, SOTgd)):
        return [mapping]
    if isinstance(mapping, Iterable):
        return list(mapping)
    raise DependencyError(f"cannot interpret {mapping!r} as a schema mapping")


def _dep_label(dep: object, index: int) -> str:
    name = getattr(dep, "name", None)
    return name if name else f"#{index + 1}"


def _sweep_estimate(lhs: Sequence[Any], dep: object) -> Any:
    """The per-dependency sweep prediction, ``None`` for undecidable sides."""
    if not isinstance(dep, (STTgd, NestedTgd)):
        return None
    try:
        return sweep_cost(lhs, dep)
    except DependencyError:
        return None


# ------------------------------------------------------ persistent verdicts


def _report_key(
    lhs: Sequence[Any],
    rhs: Sequence[Any],
    source_egds: Sequence[Egd],
    budget: int | None,
    max_patterns: int | None,
) -> str:
    """The disk key of one containment report.

    Keyed by the fingerprints of the ``(Sigma, Sigma')`` pair plus every
    input that can change the verdicts *or the refusal surface*: the source
    egds, the explicit budget, and the enumeration guard.  The leading
    component pins a format version and the component counts so that
    concatenated reprs cannot alias across the lhs/rhs/egd boundaries.
    """
    return fingerprint_texts((
        f"contain-v1:budget={budget}:max={max_patterns}:"
        f"lhs={len(lhs)}:rhs={len(rhs)}",
        *[repr(dep) for dep in lhs],
        *[repr(dep) for dep in rhs],
        *[repr(egd) for egd in source_egds],
    ))


def _witness_payload(witness: ContainmentWitness | None) -> tuple[Any, ...] | None:
    if witness is None:
        return None
    return (witness.dependency, witness.pattern, witness.source, witness.target)


def _witness_from_payload(payload: Any) -> ContainmentWitness | None:
    if payload is None:
        return None
    if not isinstance(payload, tuple) or len(payload) != 4:
        raise ValueError("malformed witness payload")
    dependency, pattern, source, target = payload
    if not isinstance(dependency, str):
        raise ValueError("malformed witness payload")
    return ContainmentWitness(
        dependency=dependency, pattern=pattern,
        source=tuple(source), target=tuple(target),
    )


def _disk_report_get(key: str) -> ContainmentReport | None:
    payload = disk_get(SPACE_CONTAIN, key)
    if not isinstance(payload, tuple) or len(payload) != 8:
        return None
    try:
        holds, status, certified, tier, bound, budget, lhs, verdicts = payload
        report = ContainmentReport(
            holds=holds,
            status=status,
            certified=certified,
            tier=tier,
            chase_fact_bound=bound,
            budget=budget,
            lhs=tuple(lhs),
            verdicts=tuple(
                DependencyVerdict(
                    dependency=dep, text=text, status=st, reason=reason,
                    k=k, patterns_checked=checked,
                    witness=_witness_from_payload(witness),
                )
                for dep, text, st, reason, k, checked, witness in verdicts
            ),
        )
    except (TypeError, ValueError):
        return None
    if not isinstance(report.status, str) or not isinstance(report.certified, bool):
        return None
    perf.incr("containment.verdict_disk_hits")
    return report


def _disk_report_put(key: str, report: ContainmentReport) -> None:
    disk_put(
        SPACE_CONTAIN,
        key,
        (
            report.holds,
            report.status,
            report.certified,
            report.tier,
            report.chase_fact_bound,
            report.budget,
            tuple(report.lhs),
            tuple(
                (v.dependency, v.text, v.status, v.reason, v.k,
                 v.patterns_checked, _witness_payload(v.witness))
                for v in report.verdicts
            ),
        ),
    )


# --------------------------------------------------------- the decision step


def _implies_verdict(
    lhs: Sequence[Any],
    dep: object,
    label: str,
    source_egds: Sequence[Egd],
    *,
    budget: int | None,
    max_patterns: int | None,
    parallel: int | None,
) -> DependencyVerdict:
    """Run one gated IMPLIES query and package the outcome."""
    from repro.core.implication import implies_tgd

    try:
        result = implies_tgd(
            lhs, dep, source_egds=list(source_egds), max_patterns=max_patterns,
            parallel=parallel, budget=budget,
        )
    except (BudgetExceeded, ResourceLimitExceeded, DependencyError) as exc:
        perf.incr("containment.refused")
        return DependencyVerdict(
            dependency=label, text=str(dep), status="refused", reason=str(exc),
        )
    perf.incr("containment.checks")
    if result.holds:
        return DependencyVerdict(
            dependency=label, text=str(dep), status="implied",
            reason="every k-pattern's canonical target embeds into the "
            "chased canonical source",
            k=result.k, patterns_checked=result.patterns_checked,
        )
    perf.incr("containment.refuted")
    witness = ContainmentWitness(
        dependency=label,
        pattern=None if result.failing_pattern is None
        else repr(result.failing_pattern),
        source=tuple(sorted(result.counterexample_source.facts, key=repr)),
        target=tuple(sorted(result.counterexample_target.facts, key=repr)),
    )
    return DependencyVerdict(
        dependency=label, text=str(dep), status="refuted",
        reason="a canonical source instance admits a solution under Sigma "
        "that the dependency rejects",
        k=result.k, patterns_checked=result.patterns_checked, witness=witness,
    )


def check_containment(
    sigma: object,
    sigma_prime: object,
    source_egds: Sequence[Egd] = (),
    *,
    budget: int | None = None,
    max_patterns: int | None = CONTAINMENT_PATTERN_LIMIT,
    parallel: int | None = None,
) -> ContainmentReport:
    """Decide ``Sigma <= Sigma'`` (solution-set inclusion for every source).

    Each right-hand dependency is checked by the cached IMPLIES sweep after
    an admissibility gate: the combined set's frontier certificate
    (:func:`repro.analysis.frontier.frontier_report`) must certify chase
    termination with a non-saturated static fact budget
    (:func:`repro.analysis.cost.chase_budget`), or the caller must supply an
    explicit ``budget=`` -- an uncertified, unbudgeted query is *refused*
    (``status == "undecided"``), never run.  Budgeted queries that exceed
    the budget's sweep-cost preflight are refused per dependency, not
    raised.

        >>> from repro.logic.parser import parse_tgd
        >>> copy = parse_tgd("S(x,y) -> R(x,y)")
        >>> weak = parse_tgd("S(x,y) -> exists z . R(x,z)")
        >>> check_containment([copy], [weak]).holds
        True
        >>> check_containment([weak], [copy]).holds
        False
    """
    perf.incr("containment.queries")
    lhs = _as_list(sigma)
    rhs = _as_list(sigma_prime)
    egds = list(source_egds)

    key: str | None = None
    if get_store() is not None:
        key = _report_key(lhs, rhs, egds, budget, max_patterns)
        cached = _disk_report_get(key)
        if cached is not None:
            return cached

    frontier = frontier_report(lhs + rhs + egds)
    certified = frontier.certified
    tier = frontier.tier.tier.value

    estimates = [_sweep_estimate(lhs, dep) for dep in rhs]
    # The canonical source of one k-pattern check has at most
    # ~k * atoms_per_check facts; chase_budget bounds the chase of such a
    # source statically (None when no rung certifies termination).
    n_hint = max(
        (est.k * est.atoms_per_check for est in estimates if est is not None),
        default=1,
    )
    fact_bound = chase_budget(lhs + rhs + egds, max(n_hint, 1))

    admitted = certified and (
        fact_bound is not None and fact_bound < SATURATION_CAP
    )
    verdicts: list[DependencyVerdict] = []
    for index, dep in enumerate(rhs):
        label = _dep_label(dep, index)
        if estimates[index] is None:
            perf.incr("containment.refused")
            verdicts.append(DependencyVerdict(
                dependency=label, text=str(dep), status="refused",
                reason="only s-t tgds and nested tgds are decidable "
                "right-hand sides of a containment query (implication of "
                "SO tgds is undecidable)",
            ))
            continue
        if not admitted and budget is None:
            perf.incr("containment.refused")
            why = (
                f"the combined set has no termination certificate "
                f"(tier {tier})"
                if not certified
                else "the static chase budget saturates "
                f"(chase_fact_bound >= {SATURATION_CAP})"
            )
            verdicts.append(DependencyVerdict(
                dependency=label, text=str(dep), status="refused",
                reason=f"outside the certified frontier: {why}; pass "
                "budget= to bound the sweep explicitly",
            ))
            continue
        verdicts.append(_implies_verdict(
            lhs, dep, label, egds,
            budget=budget, max_patterns=max_patterns, parallel=parallel,
        ))

    if any(v.status == "refuted" for v in verdicts):
        holds: bool | None = False
        status = "not-contained"
    elif all(v.status == "implied" for v in verdicts):
        holds = True
        status = "contained"
    else:
        holds = None
        status = "undecided"

    report = ContainmentReport(
        holds=holds,
        status=status,
        certified=certified,
        tier=tier,
        chase_fact_bound=fact_bound,
        budget=budget,
        lhs=tuple(str(dep) for dep in lhs),
        verdicts=tuple(verdicts),
    )
    if key is not None:
        _disk_report_put(key, report)
    return report


def contains(
    sigma: object,
    sigma_prime: object,
    source_egds: Sequence[Egd] = (),
    *,
    budget: int | None = None,
    max_patterns: int | None = CONTAINMENT_PATTERN_LIMIT,
    parallel: int | None = None,
) -> bool:
    """``Sigma <= Sigma'`` as a plain bool; undecided queries raise.

        >>> from repro.logic.parser import parse_tgd
        >>> contains([parse_tgd("S(x,y) -> R(x,y)")],
        ...          [parse_tgd("S(x,y) -> exists z . R(x,z)")])
        True
    """
    report = check_containment(
        sigma, sigma_prime, source_egds,
        budget=budget, max_patterns=max_patterns, parallel=parallel,
    )
    if report.holds is None:
        reasons = "; ".join(v.reason for v in report.refusals)
        raise UndecidedError(f"containment query refused: {reasons}")
    return report.holds


def check_equivalence(
    sigma: object,
    sigma_prime: object,
    source_egds: Sequence[Egd] = (),
    *,
    budget: int | None = None,
    max_patterns: int | None = CONTAINMENT_PATTERN_LIMIT,
    parallel: int | None = None,
) -> EquivalenceCertificate:
    """Decide ``Sigma == Sigma'`` as mutual containment (Corollary 3.11).

        >>> from repro.logic.parser import parse_tgd
        >>> a = [parse_tgd("S(x,y) & T(y,z) -> R(x,z)")]
        >>> b = [parse_tgd("T(y,z) & S(x,y) -> R(x,z)")]
        >>> check_equivalence(a, b).holds
        True
    """
    return EquivalenceCertificate(
        forward=check_containment(
            sigma, sigma_prime, source_egds,
            budget=budget, max_patterns=max_patterns, parallel=parallel,
        ),
        backward=check_containment(
            sigma_prime, sigma, source_egds,
            budget=budget, max_patterns=max_patterns, parallel=parallel,
        ),
    )


# --------------------------------------------------------- witness checking


def verify_witness(
    witness: ContainmentWitness,
    sigma: object,
    sigma_prime_dep: object,
    source_egds: Sequence[Egd] = (),
) -> bool:
    """Re-check a refutation witness from first principles.

    Valid iff (1) the witness source satisfies the source egds, (2) its
    target pattern is really demanded by ``sigma_prime_dep`` (it maps
    homomorphically into ``chase(I, [sigma'])``), and (3) ``chase(I,
    Sigma)`` -- a universal solution for ``I`` under ``Sigma`` -- cannot
    absorb it.  The three checks use only the chase and the homomorphism
    kernel, independently of the k-pattern sweep that found the witness.
    """
    from repro.engine.chase import chase
    from repro.engine.egd_chase import satisfies_egds
    from repro.engine.homomorphism import find_homomorphism

    source = witness.source_instance
    target = witness.target_instance
    if source_egds and not satisfies_egds(source, list(source_egds)):
        return False
    demanded = chase(source, _as_list(sigma_prime_dep))
    if find_homomorphism(target, demanded) is None:
        return False
    refuting = chase(source, _as_list(sigma))
    return find_homomorphism(target, refuting) is None


# ----------------------------------------------------- semantic redundancy


@dataclass(frozen=True)
class Redundancy:
    """One dependency's semantic-redundancy diagnostic (lint ``MC001``/``MC002``).

    ``status`` is ``"redundant"`` (the remaining dependencies imply this
    one: dropping it preserves the solution set of every source instance)
    or ``"refused"`` (the redundancy query was outside the lint gate --
    uncertified set, predicted sweep beyond the lint budget, or an
    undecidable right-hand side).  Non-redundant dependencies produce no
    entry.
    """

    index: int
    dependency: str
    text: str
    status: str
    reason: str = ""


def redundancy_report(
    dependencies: Sequence[Any],
    source_egds: Sequence[Egd] = (),
    *,
    max_patterns: int = LINT_PATTERN_LIMIT,
) -> tuple[Redundancy, ...]:
    """One-pass semantic-redundancy scan: which deps do the others imply?

    The scan is frontier-gated exactly like :func:`check_containment` --
    a dependency whose redundancy query cannot be certified and budgeted
    statically yields a ``"refused"`` entry instead of an unbounded sweep.

        >>> from repro.logic.parser import parse_tgd
        >>> deps = [parse_tgd("S(x,y) -> R(x,y)"),
        ...         parse_tgd("S(x,y) -> exists z . R(x,z)")]
        >>> [(r.index, r.status) for r in redundancy_report(deps)]
        [(1, 'redundant')]
    """
    from repro.core.implication import implies_tgd

    deps = list(dependencies)
    egds = list(source_egds)
    if len(deps) < 2:
        return ()
    frontier = frontier_report(deps + egds)
    certified = frontier.certified
    entries: list[Redundancy] = []
    for index, dep in enumerate(deps):
        rest = deps[:index] + deps[index + 1:]
        label = _dep_label(dep, index)
        estimate = _sweep_estimate(rest, dep)
        if estimate is None:
            continue  # an SO tgd can never be a decidable right-hand side
        if not certified:
            perf.incr("containment.refused")
            entries.append(Redundancy(
                index=index, dependency=label, text=str(dep), status="refused",
                reason="the set has no termination certificate, so its "
                "containment queries sit outside the certified frontier",
            ))
            continue
        if estimate.pattern_count > max_patterns:
            perf.incr("containment.refused")
            entries.append(Redundancy(
                index=index, dependency=label, text=str(dep), status="refused",
                reason=f"the redundancy check sweeps ~{estimate.pattern_count} "
                f"k-patterns (k={estimate.k}), beyond the lint budget "
                f"{max_patterns}",
            ))
            continue
        try:
            result = implies_tgd(
                rest, dep, source_egds=egds, max_patterns=max_patterns,
            )
        except (DependencyError, ResourceLimitExceeded) as exc:
            perf.incr("containment.refused")
            entries.append(Redundancy(
                index=index, dependency=label, text=str(dep), status="refused",
                reason=str(exc),
            ))
            continue
        perf.incr("containment.checks")
        if result.holds:
            perf.incr("containment.redundant")
            entries.append(Redundancy(
                index=index, dependency=label, text=str(dep),
                status="redundant",
                reason="the remaining dependencies imply it, so dropping it "
                "preserves every source instance's solution set",
            ))
    return tuple(entries)


def eliminate_redundant(
    dependencies: Sequence[Any],
    source_egds: Sequence[Egd] = (),
    *,
    budget: int | None = None,
    max_patterns: int | None = CONTAINMENT_PATTERN_LIMIT,
) -> tuple[list[Any], list[tuple[Any, str]]]:
    """Greedy, frontier-gated semantic minimization of a dependency set.

    Returns ``(kept, dropped)`` with ``dropped`` a list of ``(dependency,
    reason)`` pairs.  The containment admissibility gate applies to every
    query: on an uncertified set without an explicit ``budget=`` nothing is
    dropped (every check is refused), so the function is always safe to
    call.  The result is containment-equivalent to the input: each dropped
    dependency was implied by the dependencies kept at the time, and
    removal never weakens the remaining set's consequences.
    """
    from repro.core.implication import implies_tgd

    kept = list(dependencies)
    egds = list(source_egds)
    dropped: list[tuple[Any, str]] = []
    changed = True
    while changed and len(kept) > 1:
        changed = False
        frontier = frontier_report(kept + egds)
        for index, dep in enumerate(kept):
            rest = kept[:index] + kept[index + 1:]
            estimate = _sweep_estimate(rest, dep)
            if estimate is None:
                continue
            if not frontier.certified and budget is None:
                continue  # refused at the admissibility gate
            try:
                result = implies_tgd(
                    rest, dep, source_egds=egds, max_patterns=max_patterns,
                    budget=budget,
                )
            except (BudgetExceeded, ResourceLimitExceeded, DependencyError):
                perf.incr("containment.refused")
                continue
            perf.incr("containment.checks")
            if result.holds:
                perf.incr("containment.redundant")
                dropped.append((
                    dep,
                    "semantically redundant: the remaining dependencies "
                    "contain it (k="
                    f"{result.k}, {result.patterns_checked} pattern(s) "
                    "checked)",
                ))
                kept = rest
                changed = True
                break
    return kept, dropped


__all__ = [
    "CONTAINMENT_PATTERN_LIMIT",
    "LINT_PATTERN_LIMIT",
    "ContainmentReport",
    "ContainmentWitness",
    "DependencyVerdict",
    "EquivalenceCertificate",
    "Redundancy",
    "check_containment",
    "check_equivalence",
    "contains",
    "eliminate_redundant",
    "redundancy_report",
    "verify_witness",
]
