"""The chase-termination hierarchy: weak ⊂ joint ⊂ super-weak ⊂ MFA.

Weak acyclicity (:mod:`repro.analysis.termination`) is the classic but
coarsest decidable termination guarantee for the Skolem chase.  Following
the acyclicity hierarchy mapped out by Krötzsch/Rudolph, Marnette, and
Cuenca Grau et al. (and pushed further by "Chase Termination Beyond
Polynomial Time"), this module climbs three strictly wider rungs, all
computed over the shared :class:`~repro.analysis.termination.DependencyGraphIR`
so they are faithful to the exact Skolemized clauses
:mod:`repro.engine.fixpoint_chase` executes:

- **Joint acyclicity** (JA): instead of single position-graph edges, track
  the full *set* of positions each Skolem function's nulls can reach
  (``Mov``), requiring a variable's *every* body occurrence to be reachable
  before its null propagates.  The function-dependency graph has an edge
  ``f -> g`` when ``f``-nulls can feed an argument of ``g``; acyclicity of
  that graph bounds the nesting depth of every null.
- **Super-weak acyclicity** (SWA, Marnette): refine JA's position sets to
  *places* (atom occurrences) and filter propagation through first-order
  unification of head atoms against body atoms, so nulls only "move" along
  joins that can actually fire.  ``f`` *triggers* ``g`` when some argument
  variable of ``g`` has all of its body places reachable from ``f``'s
  output places; SWA holds when the trigger graph is acyclic.
- **Model-faithful acyclicity** (MFA, Cuenca Grau et al.): run the Skolem
  chase of the *critical instance* (every relation filled with the single
  constant ``*``) via :func:`repro.engine.fixpoint_chase.fixpoint_chase`,
  bounded, and certify termination if it reaches a fixpoint without ever
  deriving a *cyclic* term (a Skolem function nested below itself).  For
  the constant-free dependencies of this library every chase of every
  instance maps homomorphically into the critical chase, so the observed
  Skolem-nesting depth bounds the depth on all instances.

- **Stratified MFA**: when the monolithic bounded MFA chase is refuted or
  runs out of budget, partition the set into dependency-level strongly
  connected components (``d1 -> d2`` when a head relation of ``d1`` feeds a
  body of ``d2``) and certify every stratum by itself.  Strata only feed
  forward, so per-stratum universal-termination certificates compose: long
  certified pipelines whose *global* critical chase exhausts the MFA round
  or fact budget are decided stratum by stratum (:func:`stratified_mfa`).

:func:`classify_termination` returns the *widest* rung that certifies the
set as a :class:`TerminationClass` lattice verdict, which
``engine/fixpoint_chase.py`` consults to run unbounded and ``repro lint``
surfaces as the findings ``TD001`` (no rung) and ``TD002``-``TD004`` /
``TD007`` (which rung admitted the set).

    >>> from repro.logic.parser import parse_tgd
    >>> classify_termination([parse_tgd("S(x,y) -> R(x,y)")]).cls.name
    'WEAKLY_ACYCLIC'
    >>> classify_termination(
    ...     [parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)")]
    ... ).cls.name
    'JOINTLY_ACYCLIC'
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import networkx as nx

from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.terms import FuncTerm, Term
from repro.logic.tgds import STTgd
from repro.logic.values import Constant, Variable
from repro.analysis.termination import (
    DependencyGraphIR,
    Position,
    TerminationReport,
    dependency_graph_ir,
    termination_report,
)


class TerminationClass(enum.Enum):
    """The lattice of chase-termination certificates, widest rung last.

    The classes form a chain ``WEAKLY_ACYCLIC < JOINTLY_ACYCLIC <
    SUPER_WEAKLY_ACYCLIC < MODEL_FAITHFUL < STRATIFIED_MFA <
    NOT_GUARANTEED``: every set certified at a rung is also certified at
    every later rung, and ``NOT_GUARANTEED`` means no rung of the hierarchy
    admits the set.  ``STRATIFIED_MFA`` widens the *decided* frontier rather
    than the theoretical one: it certifies sets whose monolithic bounded
    critical chase blows the MFA budget but whose dependency-level strongly
    connected components each admit a per-stratum certificate.
    """

    WEAKLY_ACYCLIC = "weakly-acyclic"
    JOINTLY_ACYCLIC = "jointly-acyclic"
    SUPER_WEAKLY_ACYCLIC = "super-weakly-acyclic"
    MODEL_FAITHFUL = "model-faithful-acyclic"
    STRATIFIED_MFA = "stratified-mfa"
    NOT_GUARANTEED = "not-guaranteed"

    @property
    def rank(self) -> int:
        """Position in the chain (0 = weakly acyclic, 5 = not guaranteed)."""
        return list(TerminationClass).index(self)

    @property
    def guarantees_termination(self) -> bool:
        """True if the Skolem chase terminates on every instance."""
        return self is not TerminationClass.NOT_GUARANTEED

    def __le__(self, other: "TerminationClass") -> bool:
        return self.rank <= other.rank

    def __lt__(self, other: "TerminationClass") -> bool:
        return self.rank < other.rank


@dataclass(frozen=True)
class TerminationVerdict:
    """The hierarchy verdict for a dependency set.

    ``depth_bound`` bounds the Skolem-nesting depth of every null the
    chase can create whenever some rung certified the set (``None``
    otherwise).  The ``*_cycle`` witnesses name the Skolem functions on a
    cycle of the rung's dependency graph, proving why the narrower rung
    failed; ``mfa_cyclic_term`` renders the cyclic term that refuted MFA.
    ``mfa_conclusive`` is False when the bounded critical-instance chase
    ran out of budget before reaching either a fixpoint or a cyclic term.
    ``strata_count`` is the number of dependency-level strongly connected
    components the stratified-MFA pass partitioned the set into (``None``
    when the pass did not run or did not apply); on a stratified failure
    ``strata_witness`` names the first stratum no rung certifies.
    """

    cls: TerminationClass
    weak: TerminationReport
    depth_bound: int | None
    ja_cycle: tuple[str, ...] | None = None
    swa_cycle: tuple[str, ...] | None = None
    mfa_cyclic_term: str | None = None
    mfa_facts: int | None = None
    mfa_conclusive: bool = True
    strata_count: int | None = None
    strata_witness: tuple[str, ...] | None = None

    @property
    def guarantees_termination(self) -> bool:
        return self.cls.guarantees_termination

    def __bool__(self) -> bool:
        return self.guarantees_termination

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable summary of the verdict."""
        return {
            "class": self.cls.value,
            "guarantees_termination": self.guarantees_termination,
            "depth_bound": self.depth_bound,
            "weakly_acyclic": self.weak.weakly_acyclic,
            "ja_cycle": None if self.ja_cycle is None else list(self.ja_cycle),
            "swa_cycle": None if self.swa_cycle is None else list(self.swa_cycle),
            "mfa_cyclic_term": self.mfa_cyclic_term,
            "mfa_facts": self.mfa_facts,
            "mfa_conclusive": self.mfa_conclusive,
            "strata_count": self.strata_count,
            "strata_witness": None
            if self.strata_witness is None
            else list(self.strata_witness),
        }


# ------------------------------------------------------------ joint acyclicity


def _function_occurrences(
    ir: DependencyGraphIR,
) -> dict[str, list[tuple[int, tuple[Variable, ...], tuple[Position, ...]]]]:
    """Group Skolem functions by name across clauses (nested tgds repeat them).

    Each occurrence is a (clause index, argument variables, head positions)
    triple.
    """
    result: dict[str, list[tuple[int, tuple[Variable, ...], tuple[Position, ...]]]] = {}
    for ci, clause in enumerate(ir.clauses):
        for skolem in clause.skolems:
            result.setdefault(skolem.function, []).append(
                (ci, skolem.args, skolem.head_positions)
            )
    return result


def _ja_movement(ir: DependencyGraphIR, start: set[Position]) -> set[Position]:
    """``Mov``: all positions a null created at *start* positions can reach.

    A value propagates through a clause via a universal variable ``x`` only
    if *every* body position of ``x`` is already reachable (a single trigger
    binds ``x`` to one value, which must match at all occurrences); it then
    appears at every top-level head position of ``x``.
    """
    moved = set(start)
    changed = True
    while changed:
        changed = False
        for clause in ir.clauses:
            for var, head_positions in clause.head_positions.items():
                body_positions = clause.body_positions.get(var, ())
                if not body_positions:
                    continue
                if all(p in moved for p in body_positions):
                    for position in head_positions:
                        if position not in moved:
                            moved.add(position)
                            changed = True
    return moved


def _cycle_witness(graph: "nx.DiGraph") -> tuple[str, ...] | None:
    """A node cycle of *graph*, or None if it is acyclic."""
    try:
        cycle_edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return tuple(str(source) for source, _target in cycle_edges)


def _depth_from_dag(graph: "nx.DiGraph") -> int:
    """Skolem-nesting depth bound from an acyclic function-dependency graph.

    An edge ``f -> g`` means ``g``-terms can nest ``f``-terms one level
    deeper, so the depth is bounded by the longest path (in nodes).
    """
    if graph.number_of_nodes() == 0:
        return 0
    return nx.dag_longest_path_length(graph) + 1


def jointly_acyclic(
    ir: DependencyGraphIR,
) -> tuple[bool, tuple[str, ...] | None, int]:
    """Decide joint acyclicity; return (verdict, witness cycle, depth bound)."""
    functions = _function_occurrences(ir)
    movement = {
        fn: _ja_movement(
            ir, {p for _clause, _args, positions in occs for p in positions}
        )
        for fn, occs in functions.items()
    }
    graph = nx.DiGraph()
    graph.add_nodes_from(functions)
    for source, moved in movement.items():
        for target, occs in functions.items():
            for ci, args, _positions in occs:
                clause = ir.clauses[ci]
                if any(
                    clause.body_positions.get(x)
                    and all(p in moved for p in clause.body_positions[x])
                    for x in args
                ):
                    graph.add_edge(source, target)
                    break
    cycle = _cycle_witness(graph)
    if cycle is not None:
        return False, cycle, 0
    return True, None, _depth_from_dag(graph)


# ------------------------------------------------------- super-weak acyclicity

#: A place is (clause index, "B"/"H", atom index, argument index).
_Place = tuple[int, str, int, int]


def _unifiable(left: Sequence[Term], right: Sequence[Term]) -> bool:
    """First-order unifiability of two argument tuples (renamed apart by caller)."""
    substitution: dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in substitution:
            term = substitution[term]
        return term

    def occurs(var: Variable, term: Term) -> bool:
        term = resolve(term)
        if term == var:
            return True
        if isinstance(term, FuncTerm):
            return any(occurs(var, arg) for arg in term.args)
        return False

    def unify(a: Term, b: Term) -> bool:
        a, b = resolve(a), resolve(b)
        if a == b:
            return True
        if isinstance(a, Variable):
            if occurs(a, b):
                return False
            substitution[a] = b
            return True
        if isinstance(b, Variable):
            return unify(b, a)
        if isinstance(a, FuncTerm) and isinstance(b, FuncTerm):
            if a.function != b.function or len(a.args) != len(b.args):
                return False
            return all(unify(x, y) for x, y in zip(a.args, b.args))
        return False

    return all(unify(a, b) for a, b in zip(left, right))


def _rename_apart(atom: Atom, tag: int) -> tuple[Term, ...]:
    """The argument tuple of *atom* with variables tagged by clause index."""

    def rename(term: Term) -> Term:
        if isinstance(term, Variable):
            return Variable(f"c{tag}~{term.name}")
        if isinstance(term, FuncTerm):
            return FuncTerm(term.function, tuple(rename(arg) for arg in term.args))
        return term

    return tuple(rename(arg) for arg in atom.args)


class _PlaceGraph:
    """Precomputed place machinery shared by the per-function SWA closures."""

    def __init__(self, ir: DependencyGraphIR):
        self.ir = ir
        self.clauses = ir.clauses
        #: body places of each variable, per clause index.
        self.body_places: list[dict[Variable, list[_Place]]] = []
        #: top-level head places of each variable, per clause index.
        self.head_places: list[dict[Variable, list[_Place]]] = []
        for ci, clause in enumerate(self.clauses):
            body: dict[Variable, list[_Place]] = {}
            for ai, atom in enumerate(clause.body):
                for pi, arg in enumerate(atom.args):
                    if isinstance(arg, Variable):
                        body.setdefault(arg, []).append((ci, "B", ai, pi))
            head: dict[Variable, list[_Place]] = {}
            for ai, atom in enumerate(clause.head):
                for pi, arg in enumerate(atom.args):
                    if isinstance(arg, Variable):
                        head.setdefault(arg, []).append((ci, "H", ai, pi))
            self.body_places.append(body)
            self.head_places.append(head)
        self._unifiable_cache: dict[tuple[int, int, int, int], bool] = {}

    def _head_body_unifiable(self, ci: int, ai: int, cj: int, aj: int) -> bool:
        key = (ci, ai, cj, aj)
        cached = self._unifiable_cache.get(key)
        if cached is None:
            head_atom = self.clauses[ci].head[ai]
            body_atom = self.clauses[cj].body[aj]
            cached = head_atom.relation == body_atom.relation and _unifiable(
                _rename_apart(head_atom, ci), _rename_apart(body_atom, len(self.clauses) + cj)
            )
            self._unifiable_cache[key] = cached
        return cached

    def move(self, start: Iterable[_Place]) -> set[_Place]:
        """Marnette's ``Move``: all places a null at *start* places can reach."""
        moved: set[_Place] = set()
        queue = list(start)
        while queue:
            place = queue.pop()
            if place in moved:
                continue
            moved.add(place)
            ci, kind, ai, pi = place
            if kind == "H":
                # The null sits at a fact position; it can match any body atom
                # of any clause whose atom unifies with this head atom.
                for cj, clause in enumerate(self.clauses):
                    for aj, body_atom in enumerate(clause.body):
                        if pi < body_atom.arity and self._head_body_unifiable(
                            ci, ai, cj, aj
                        ):
                            queue.append((cj, "B", aj, pi))
            else:
                # A trigger binds the variable at this body place to a single
                # value, which must then occur at *every* body place of the
                # variable; only once all of them are reachable does the value
                # flow to the variable's top-level head places.
                var = self.clauses[ci].body[ai].args[pi]
                if isinstance(var, Variable):
                    in_places = self.body_places[ci].get(var, ())
                    if all(p in moved for p in in_places):
                        queue.extend(self.head_places[ci].get(var, ()))
        return moved

    def out_places(self, function: str) -> list[_Place]:
        """Head places where a term rooted at *function* occurs."""
        places = []
        for ci, clause in enumerate(self.clauses):
            for ai, atom in enumerate(clause.head):
                for pi, arg in enumerate(atom.args):
                    if isinstance(arg, FuncTerm) and arg.function == function:
                        places.append((ci, "H", ai, pi))
        return places


def super_weakly_acyclic(
    ir: DependencyGraphIR,
) -> tuple[bool, tuple[str, ...] | None, int]:
    """Decide super-weak acyclicity; return (verdict, witness cycle, depth bound)."""
    places = _PlaceGraph(ir)
    functions = _function_occurrences(ir)
    movement = {fn: places.move(places.out_places(fn)) for fn in functions}
    graph = nx.DiGraph()
    graph.add_nodes_from(functions)
    for source, moved in movement.items():
        for target, occs in functions.items():
            triggered = False
            for ci, args, _positions in occs:
                for x in args:
                    in_places = places.body_places[ci].get(x, ())
                    if in_places and all(p in moved for p in in_places):
                        triggered = True
                        break
                if triggered:
                    break
            if triggered:
                graph.add_edge(source, target)
    cycle = _cycle_witness(graph)
    if cycle is not None:
        return False, cycle, 0
    return True, None, _depth_from_dag(graph)


# ------------------------------------------------- model-faithful acyclicity

#: The single constant of the critical instance.
_STAR = Constant("*")


class _CyclicTermFound(Exception):
    def __init__(self, term: FuncTerm):
        self.term = term
        super().__init__(str(term))


class _MFABudgetExhausted(Exception):
    pass


def _term_depth(term: Term) -> int:
    if isinstance(term, FuncTerm):
        return 1 + max((_term_depth(arg) for arg in term.args), default=0)
    return 0


def _cyclic_subterm(term: Term, seen: tuple[str, ...] = ()) -> FuncTerm | None:
    """The outermost subterm whose Skolem function recurs below itself, if any."""
    if not isinstance(term, FuncTerm):
        return None
    if term.function in seen:
        return term
    nested = seen + (term.function,)
    for arg in term.args:
        found = _cyclic_subterm(arg, nested)
        if found is not None:
            # Report the whole enclosing term so the witness exhibits the
            # function nested below itself, not just the inner recurrence.
            return term if not seen else found
    return None


def critical_instance(ir: DependencyGraphIR) -> Instance:
    """The critical instance: every relation filled with ``*`` everywhere."""
    arities: dict[str, int] = {}
    for relation, index in ir.positions:
        arities[relation] = max(arities.get(relation, 0), index + 1)
    return Instance(
        Atom(relation, (_STAR,) * arity) for relation, arity in sorted(arities.items())
    )


def model_faithful_acyclic(
    dependencies: Sequence[object],
    ir: DependencyGraphIR,
    *,
    max_rounds: int = 32,
    max_facts: int = 50_000,
) -> tuple[bool | None, str | None, int | None, int | None]:
    """The bounded critical-instance chase deciding MFA.

    Returns ``(verdict, cyclic term, depth, facts)``: verdict True certifies
    MFA (with the observed Skolem depth bounding every chase), False means a
    cyclic term was derived, and None means the budget ran out first
    (inconclusive -- the caller must treat the set as not certified).
    """
    from repro.engine.fixpoint_chase import fixpoint_chase

    tgds = [dep for dep in dependencies if not isinstance(dep, Egd)]
    if not tgds:
        return True, None, 0, 0
    counter = {"facts": 0}

    def hook(fact: Atom) -> None:
        counter["facts"] += 1
        if counter["facts"] > max_facts:
            raise _MFABudgetExhausted
        for arg in fact.args:
            cyclic = _cyclic_subterm(arg)
            if cyclic is not None:
                raise _CyclicTermFound(cyclic)

    try:
        result = fixpoint_chase(
            critical_instance(ir), tgds, max_rounds=max_rounds, fact_hook=hook
        )
    except _CyclicTermFound as found:
        return False, str(found.term), None, counter["facts"]
    except _MFABudgetExhausted:
        return None, None, None, counter["facts"]
    if not result.reached_fixpoint:
        return None, None, None, counter["facts"]
    depth = max(
        (_term_depth(arg) for fact in result.instance for arg in fact.args),
        default=0,
    )
    return True, None, depth, counter["facts"]


# --------------------------------------------------------------- stratified MFA


def _dep_relations(dep: object) -> tuple[set[str], set[str]]:
    """The (body relations, head relations) a dependency reads and writes."""
    bodies: set[str] = set()
    heads: set[str] = set()
    if isinstance(dep, STTgd):
        parts: Iterable[tuple[Sequence[Atom], Sequence[Atom]]] = [
            (dep.body, dep.head)
        ]
    elif isinstance(dep, NestedTgd):
        parts = [
            (dep.part(pid).body, dep.part(pid).head) for pid in dep.part_ids()
        ]
    elif isinstance(dep, SOTgd):
        parts = [(clause.body, clause.head) for clause in dep.clauses]
    else:
        return bodies, heads
    for body, head in parts:
        bodies.update(atom.relation for atom in body)
        heads.update(atom.relation for atom in head)
    return bodies, heads


def _dep_label_of(dep: object, index: int) -> str:
    name = getattr(dep, "name", None)
    return name if name else f"#{index + 1}"


def stratified_mfa(
    dependencies: Sequence[object],
    *,
    mfa_max_rounds: int = 32,
    mfa_max_facts: int = 50_000,
) -> tuple[bool, int, int | None, tuple[str, ...] | None] | None:
    """Per-stratum certification over the dependency-level SCC condensation.

    Build the graph with an edge ``d1 -> d2`` whenever a head relation of
    ``d1`` occurs in a body of ``d2``, condense it into strongly connected
    components, and classify every component on the hierarchy *by itself*
    (recursively through :func:`classify_termination`, so a stratum may be
    admitted by any rung, each with its own MFA budget).  Because strata
    only feed forward, the oblivious Skolem chase of the whole set is the
    strata chased to completion in topological order; if every stratum's
    chase terminates on all instances, so does the whole set, with the
    Skolem-nesting depth bounded by the sum of the per-stratum depth bounds.

    This certifies sets the *monolithic* bounded MFA chase cannot decide:
    its round and fact budgets are global, so long certified pipelines
    exhaust them even though every component is small.

    Returns ``(certified, strata count, depth bound, failing-stratum
    labels)``, or ``None`` when the partition is trivial (fewer than two
    strata -- the monolithic MFA verdict already covers that case).
    """
    tgds = [dep for dep in dependencies if not isinstance(dep, Egd)]
    if len(tgds) < 2:
        return None
    relations = [_dep_relations(dep) for dep in tgds]
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(tgds)))
    for i, (_bodies_i, heads_i) in enumerate(relations):
        for j, (bodies_j, _heads_j) in enumerate(relations):
            if heads_i & bodies_j:
                graph.add_edge(i, j)
    components = [sorted(scc) for scc in nx.strongly_connected_components(graph)]
    if len(components) < 2:
        return None
    components.sort()  # deterministic stratum order for witnesses
    depth = 0
    for members in components:
        stratum = [tgds[i] for i in members]
        verdict = classify_termination(
            stratum,
            mfa_max_rounds=mfa_max_rounds,
            mfa_max_facts=mfa_max_facts,
        )
        if not verdict.guarantees_termination or verdict.depth_bound is None:
            witness = tuple(_dep_label_of(tgds[i], i) for i in members)
            return False, len(components), None, witness
        depth += verdict.depth_bound
    return True, len(components), depth, None


# ------------------------------------------------------------- classification


def classify_termination(
    dependencies: object,
    *,
    weak: TerminationReport | None = None,
    mfa_max_rounds: int = 32,
    mfa_max_facts: int = 50_000,
) -> TerminationVerdict:
    """Classify a dependency set on the termination hierarchy.

    Tries the rungs narrowest-first (each is strictly cheaper than the next)
    and stops at the first certificate; *weak* lets callers that already ran
    the weak-acyclicity test pass its report in.

        >>> from repro.logic.parser import parse_tgd
        >>> classify_termination([parse_tgd("E(x,y) -> exists z . E(y,z)")]).cls.name
        'NOT_GUARANTEED'
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    key = tuple(repr(dep) for dep in deps)
    cached = _VERDICT_CACHE.get(key)
    if cached is not None:
        return cached

    report = weak if weak is not None else termination_report(deps)
    if report.weakly_acyclic:
        verdict = TerminationVerdict(
            cls=TerminationClass.WEAKLY_ACYCLIC,
            weak=report,
            depth_bound=report.depth_bound,
        )
        return _store_verdict(key, verdict)

    ir = dependency_graph_ir(deps)
    ja, ja_cycle, ja_depth = jointly_acyclic(ir)
    if ja:
        verdict = TerminationVerdict(
            cls=TerminationClass.JOINTLY_ACYCLIC,
            weak=report,
            depth_bound=ja_depth,
        )
        return _store_verdict(key, verdict)

    swa, swa_cycle, swa_depth = super_weakly_acyclic(ir)
    if swa:
        verdict = TerminationVerdict(
            cls=TerminationClass.SUPER_WEAKLY_ACYCLIC,
            weak=report,
            depth_bound=swa_depth,
            ja_cycle=ja_cycle,
        )
        return _store_verdict(key, verdict)

    mfa, cyclic_term, mfa_depth, mfa_facts = model_faithful_acyclic(
        deps, ir, max_rounds=mfa_max_rounds, max_facts=mfa_max_facts
    )
    if mfa:
        verdict = TerminationVerdict(
            cls=TerminationClass.MODEL_FAITHFUL,
            weak=report,
            depth_bound=mfa_depth,
            ja_cycle=ja_cycle,
            swa_cycle=swa_cycle,
            mfa_facts=mfa_facts,
        )
        return _store_verdict(key, verdict)

    # The monolithic MFA chase refuted or exhausted its budget: partition the
    # set into dependency-level strongly connected components and certify
    # each stratum by itself (each with its own budget).
    strata = stratified_mfa(
        deps, mfa_max_rounds=mfa_max_rounds, mfa_max_facts=mfa_max_facts
    )
    if strata is not None:
        certified, strata_count, strata_depth, strata_witness = strata
        if certified:
            verdict = TerminationVerdict(
                cls=TerminationClass.STRATIFIED_MFA,
                weak=report,
                depth_bound=strata_depth,
                ja_cycle=ja_cycle,
                swa_cycle=swa_cycle,
                mfa_cyclic_term=cyclic_term,
                mfa_facts=mfa_facts,
                mfa_conclusive=mfa is not None,
                strata_count=strata_count,
            )
            return _store_verdict(key, verdict)
        verdict = TerminationVerdict(
            cls=TerminationClass.NOT_GUARANTEED,
            weak=report,
            depth_bound=None,
            ja_cycle=ja_cycle,
            swa_cycle=swa_cycle,
            mfa_cyclic_term=cyclic_term,
            mfa_facts=mfa_facts,
            mfa_conclusive=mfa is not None,
            strata_count=strata_count,
            strata_witness=strata_witness,
        )
        return _store_verdict(key, verdict)

    verdict = TerminationVerdict(
        cls=TerminationClass.NOT_GUARANTEED,
        weak=report,
        depth_bound=None,
        ja_cycle=ja_cycle,
        swa_cycle=swa_cycle,
        mfa_cyclic_term=cyclic_term,
        mfa_facts=mfa_facts,
        mfa_conclusive=mfa is not None,
    )
    return _store_verdict(key, verdict)


# ------------------------------------------------------------- verdict cache

_VERDICT_CACHE: dict[tuple[str, ...], TerminationVerdict] = {}
_VERDICT_CACHE_LIMIT = 256


def _store_verdict(key: tuple[str, ...], verdict: TerminationVerdict) -> TerminationVerdict:
    if len(_VERDICT_CACHE) >= _VERDICT_CACHE_LIMIT:
        _VERDICT_CACHE.clear()
    _VERDICT_CACHE[key] = verdict
    return verdict


def clear_acyclicity_cache() -> None:
    """Drop all memoized hierarchy verdicts (used by benchmarks)."""
    _VERDICT_CACHE.clear()


__all__ = [
    "TerminationClass",
    "TerminationVerdict",
    "classify_termination",
    "clear_acyclicity_cache",
    "critical_instance",
    "jointly_acyclic",
    "model_faithful_acyclic",
    "stratified_mfa",
    "super_weakly_acyclic",
]
