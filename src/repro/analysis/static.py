"""Static analysis of dependency programs: termination verdicts and lints.

:func:`analyze` takes a set of dependencies (s-t tgds, nested tgds, SO tgds,
egds) and produces an :class:`AnalysisReport` of :class:`Finding` records
with stable codes, severities, locations, and fix hints -- JSON-serializable
for tooling (``repro lint --json``, the CI self-check artifact) and
renderable as text (``repro lint``).

Pass 1 -- **termination** (:mod:`repro.analysis.termination` and the
hierarchy of :mod:`repro.analysis.acyclicity`): the position graph with
special edges decides weak acyclicity and bounds the chase depth; a
non-weakly-acyclic program is classified further on the termination
hierarchy, reporting which rung admitted it (``TD002``-``TD004``) or the
error ``TD001`` with a witness cycle when *no* rung certifies termination.

Pass 2 -- **frontier** (:mod:`repro.analysis.frontier`): the triangular-
guardedness certificate (``TD005`` when reasoning stays decidable despite a
diverging chase) and the termination-complexity tier refining every
certified verdict (``TD006`` reports tiers above PTIME; the tier also
steers the ``CC00x`` cost findings below).

Pass 3 -- **cost** (:mod:`repro.analysis.cost`): the static cost model
predicts the IMPLIES k-pattern sweep per dependency (``CC001`` when it is
non-elementary) and the chase-size polynomial degree of the whole set --
``CC002`` when it is beyond any practical budget *and* the tier's
per-relation degree witnesses do not rescue it (``CC003`` when they do;
``CC004`` when a small coarse degree is not backed by witnesses).

Pass 4 -- **structural lints** over the parts of each (nested) tgd, the
clauses of each SO tgd, and each egd.

Pass 5 -- **containment** (:mod:`repro.analysis.containment`): for sets of
two or more tgds, the frontier-gated semantic-redundancy scan reports every
dependency that the remaining ones *imply* (``MC001`` -- dropping it
preserves the solution set of every source instance, beyond the syntactic
``NT009`` subsumption) and every redundancy query refused at the
admissibility gate (``MC002``):

=======  ========  ====================================================
code     severity  meaning
=======  ========  ====================================================
NT001    info      universal variable used exactly once (pure guard)
NT002    warning   declared existential variable never used in any head
NT003    warning   part body is disconnected (cartesian product)
NT004    warning   duplicate atom in a body or head
NT005    warning   body atom subsumed by another one (pattern-redundant)
NT006    warning   part with no head atoms and no children
NT007    warning   child part whose body only repeats ancestor atoms
NT008    warning   constant inside a head term (dependencies are
                   constant-free in the paper)
NT009    info      dependency subsumed by another one in the set
NT010    info      existential variable used only in descendant parts
TD001    error     no termination-hierarchy rung certifies the set
TD002    info      set is jointly but not weakly acyclic
TD003    info      set is super-weakly but not jointly acyclic
TD004    warning   set is MFA-certified only (critical-instance chase)
TD005    warning   triangularly guarded only: BCQ reasoning decidable,
                   chase termination not certified
TD006    info      termination-complexity tier above PTIME
TD007    warning   set is certified only by stratified MFA (per-SCC
                   critical-instance chases)
CC001    warning   predicted IMPLIES sweep is non-elementary
CC002    warning   predicted chase-size bound is exponential
CC003    info      per-relation degree witnesses certify a PTIME chase
                   (demotes the coarse CC002 estimate)
CC004    warning   coarse degree looks polynomial but no per-relation
                   witnesses exist at the certified rung (tier downgrade)
EG001    info      egd equates a variable with itself (trivial)
EG002    warning   egd body is disconnected
MC001    info      dependency semantically redundant under containment
                   (the remaining dependencies imply it -- auto-fixable
                   via ``repro optimize --semantic``)
MC002    info      semantic-redundancy containment query outside the
                   certified frontier (refused, not run)
=======  ========  ====================================================

    >>> from repro.logic.parser import parse_tgd
    >>> report = analyze([parse_tgd("S(x,y) -> R(y,y)")])
    >>> [f.code for f in report.findings]
    ['NT001']
    >>> report.ok
    True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.terms import FuncTerm, term_variables
from repro.logic.tgds import STTgd
from repro.logic.values import Constant, Variable
from repro.analysis.acyclicity import TerminationClass, TerminationVerdict, classify_termination
from repro.analysis.cost import ChaseCostEstimate, chase_cost, sweep_cost
from repro.analysis.frontier import FrontierReport, frontier_report
from repro.analysis.subsumption import subsumes
from repro.analysis.termination import TerminationReport, format_position, termination_report

#: severity -> sort weight (errors first in reports).
_SEVERITIES = {"error": 0, "warning": 1, "info": 2}

#: The stable lint catalog: code -> (severity, one-line description).
LINT_CATALOG: dict[str, tuple[str, str]] = {
    "NT001": ("info", "universal variable used exactly once (pure guard)"),
    "NT002": ("warning", "declared existential variable never used in any head"),
    "NT003": ("warning", "part body is disconnected (cartesian product)"),
    "NT004": ("warning", "duplicate atom in a body or head"),
    "NT005": ("warning", "body atom subsumed by another one (pattern-redundant)"),
    "NT006": ("warning", "part with no head atoms and no children"),
    "NT007": ("warning", "child part whose body only repeats ancestor atoms"),
    "NT008": ("warning", "constant inside a head term"),
    "NT009": ("info", "dependency subsumed by another one in the set"),
    "NT010": ("info", "existential variable used only in descendant parts"),
    "TD001": ("error", "no termination-hierarchy rung certifies the set"),
    "TD002": ("info", "set is jointly but not weakly acyclic"),
    "TD003": ("info", "set is super-weakly but not jointly acyclic"),
    "TD004": ("warning", "set is certified only by MFA (critical-instance chase)"),
    "TD005": (
        "warning",
        "triangularly guarded only: BCQ reasoning is decidable although "
        "chase termination is not certified",
    ),
    "TD006": ("info", "termination-complexity tier above PTIME"),
    "TD007": (
        "warning",
        "set is certified only by stratified MFA (per-SCC critical-instance "
        "chases)",
    ),
    "CC001": ("warning", "predicted IMPLIES k-pattern sweep is non-elementary"),
    "CC002": ("warning", "predicted chase-size bound is exponential"),
    "CC003": (
        "info",
        "per-relation degree witnesses certify a PTIME chase (demotes the "
        "coarse CC002 estimate)",
    ),
    "CC004": (
        "warning",
        "coarse degree looks polynomial but the certified rung provides no "
        "per-relation witnesses (tier downgrade)",
    ),
    "EG001": ("info", "egd equates a variable with itself (trivial)"),
    "EG002": ("warning", "egd body is disconnected"),
    "MC001": (
        "info",
        "dependency is semantically redundant under mapping containment "
        "(the remaining dependencies imply it)",
    ),
    "MC002": (
        "info",
        "semantic-redundancy containment query is outside the certified "
        "frontier (refused, not run)",
    ),
}

#: The hierarchy rung -> the finding code reporting it (weak acyclicity
#: needs no finding; NOT_GUARANTEED is the error TD001).
_HIERARCHY_CODES = {
    TerminationClass.JOINTLY_ACYCLIC: "TD002",
    TerminationClass.SUPER_WEAKLY_ACYCLIC: "TD003",
    TerminationClass.MODEL_FAITHFUL: "TD004",
    TerminationClass.STRATIFIED_MFA: "TD007",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a stable code, severity, location, message, fix hint."""

    code: str
    severity: str
    dependency: str
    location: str
    message: str
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """A stable content hash of the finding, for ``--baseline`` suppression.

        sha256 over the identifying fields (not Python's per-process
        ``hash()``), so the same finding fingerprints identically across
        runs, interpreters, and machines.
        """
        payload = "\x1f".join(
            (self.code, self.dependency, self.location, self.message)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, str]:
        """A JSON-serializable view of the finding."""
        return {
            "code": self.code,
            "severity": self.severity,
            "dependency": self.dependency,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class AnalysisReport:
    """The full output of :func:`analyze`: findings plus the static verdicts.

    ``termination`` is the weak-acyclicity report, ``hierarchy`` the full
    lattice verdict of :func:`repro.analysis.acyclicity.classify_termination`,
    ``cost`` the chase-size estimate of
    :func:`repro.analysis.cost.chase_cost`, and ``frontier`` the
    triangular-guardedness certificate plus complexity tier of
    :func:`repro.analysis.frontier.frontier_report` (each ``None`` when its
    pass was skipped).
    """

    findings: tuple[Finding, ...]
    termination: TerminationReport | None
    dependency_count: int
    hierarchy: TerminationVerdict | None = None
    cost: ChaseCostEstimate | None = None
    frontier: FrontierReport | None = None

    @property
    def errors(self) -> tuple[Finding, ...]:
        """The findings with severity ``error``."""
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[Finding, ...]:
        """The findings with severity ``warning``."""
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def ok(self) -> bool:
        """True if no error-severity finding was reported (the sanitizer gate)."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view of the whole report."""
        return {
            "dependency_count": self.dependency_count,
            "ok": self.ok,
            "termination": None if self.termination is None else self.termination.to_dict(),
            "hierarchy": None if self.hierarchy is None else self.hierarchy.to_dict(),
            "cost": None if self.cost is None else self.cost.to_dict(),
            "frontier": None if self.frontier is None else self.frontier.to_dict(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document (``repro lint --json``)."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """The report as human-readable text (``repro lint``)."""
        lines: list[str] = []
        if self.termination is not None:
            t = self.termination
            if t.weakly_acyclic:
                lines.append(
                    f"termination: weakly acyclic (max rank {t.max_rank}, "
                    f"chase depth bound {t.depth_bound})"
                )
            elif self.hierarchy is not None and self.hierarchy.guarantees_termination:
                lines.append(
                    f"termination: NOT weakly acyclic, but {self.hierarchy.cls.value} "
                    f"(chase depth bound {self.hierarchy.depth_bound})"
                )
            else:
                lines.append("termination: NOT weakly acyclic -- the chase may diverge")
        if self.frontier is not None:
            tier = self.frontier.tier
            lines.append(f"complexity tier: {tier.tier.value} ({tier.reason})")
        for finding in self.findings:
            where = f" ({finding.location})" if finding.location else ""
            lines.append(
                f"{finding.severity:<7} {finding.code} {finding.dependency}{where}: "
                f"{finding.message}"
            )
            if finding.hint:
                lines.append(f"        hint: {finding.hint}")
        lines.append(
            f"{self.dependency_count} dependencies: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.findings) - len(self.errors) - len(self.warnings)} info"
        )
        return "\n".join(lines)


# ----------------------------------------------------------- part-level view


@dataclass(frozen=True)
class _PartView:
    """A uniform view of one tgd part / SO clause for the lint passes."""

    location: str
    own_universal: tuple[Variable, ...]
    inherited: frozenset[Variable]
    body: tuple[Atom, ...]
    exist_vars: tuple[Variable, ...]
    head: tuple[Atom, ...]
    child_count: int
    ancestor_body: tuple[Atom, ...] = ()
    #: heads of this part and all descendants (scope of its existentials).
    scope_heads: tuple[Atom, ...] = ()
    #: bodies of all descendants (descendants may reuse our universals).
    scope_bodies: tuple[Atom, ...] = ()
    is_child: bool = False


def _atom_var_occurrences(atoms: Iterable[Atom]) -> dict[Variable, int]:
    counts: dict[Variable, int] = {}
    for atom in atoms:
        for arg in atom.args:
            if isinstance(arg, Variable):
                counts[arg] = counts.get(arg, 0) + 1
            elif isinstance(arg, FuncTerm):
                for var in term_variables(arg):
                    counts[var] = counts.get(var, 0) + 1
    return counts


def _part_views(dep: STTgd | NestedTgd | SOTgd) -> Iterator[_PartView]:
    if isinstance(dep, STTgd):
        yield _PartView(
            location="",
            own_universal=dep.universal_variables,
            inherited=frozenset(),
            body=dep.body,
            exist_vars=dep.existential_variables,
            head=dep.head,
            child_count=0,
            scope_heads=dep.head,
        )
        return
    if isinstance(dep, SOTgd):
        for index, clause in enumerate(dep.clauses, start=1):
            yield _PartView(
                location=f"clause {index}" if len(dep.clauses) > 1 else "",
                own_universal=clause.universal_variables,
                inherited=frozenset(),
                body=clause.body,
                exist_vars=(),
                head=clause.head,
                child_count=0,
                scope_heads=clause.head,
            )
        return
    for pid in dep.part_ids():
        part = dep.part(pid)
        ancestor_body = tuple(
            atom for anc in dep.ancestors(pid) for atom in dep.part(anc).body
        )
        descendants = dep.descendants(pid)
        yield _PartView(
            location=f"part {pid}" if dep.part_count > 1 else "",
            own_universal=part.universal_vars,
            inherited=frozenset(dep.inherited_universal_vars(pid))
            | {v for anc in dep.ancestors(pid) for v in dep.part(anc).exist_vars},
            body=part.body,
            exist_vars=part.exist_vars,
            head=part.head,
            child_count=len(dep.children_of(pid)),
            ancestor_body=ancestor_body,
            scope_heads=part.head
            + tuple(atom for d in descendants for atom in dep.part(d).head),
            scope_bodies=tuple(atom for d in descendants for atom in dep.part(d).body),
            is_child=dep.parent(pid) is not None,
        )


# ----------------------------------------------------------------- the lints


def _finding(code: str, dependency: str, location: str, message: str, hint: str = "") -> Finding:
    severity, _ = LINT_CATALOG[code]
    return Finding(
        code=code, severity=severity, dependency=dependency,
        location=location, message=message, hint=hint,
    )


def _connected_components(atoms: Sequence[Atom], anchors: frozenset[Variable]) -> int:
    """Count variable-sharing components; atoms touching *anchors* fuse into one."""
    if not atoms:
        return 0
    parent = list(range(len(atoms) + 1))  # index len(atoms) is the anchor node

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    seen: dict[Variable, int] = {}
    for index, atom in enumerate(atoms):
        for var in atom.variables():
            if var in anchors:
                union(index, len(atoms))
            elif var in seen:
                union(index, seen[var])
            else:
                seen[var] = index
    return len({find(i) for i in range(len(atoms))})


def _atom_subsumed(beta: Atom, alpha: Atom, free: frozenset[Variable]) -> bool:
    """True if *beta* maps onto *alpha* by binding only its *free* variables."""
    if beta.relation != alpha.relation or beta.arity != alpha.arity:
        return False
    binding: dict[Variable, object] = {}
    for b, a in zip(beta.args, alpha.args):
        if b == a:
            continue
        if b not in free:
            return False
        seen = binding.get(b)
        if seen is None:
            binding[b] = a
        elif seen != a:
            return False
    return True


def _lint_part(view: _PartView, label: str) -> Iterator[Finding]:
    # Every place a variable of this part can legally occur: its own body and
    # head, descendant bodies and heads (scope_heads includes the own head),
    # plus ancestor bodies (for inherited variables used here).
    occurrences = _atom_var_occurrences(
        view.ancestor_body + view.body + view.scope_bodies + view.scope_heads
    )

    # NT001: universal variable occurring exactly once in its whole scope.
    for var in view.own_universal:
        if occurrences.get(var, 0) == 1:
            yield _finding(
                "NT001", label, view.location,
                f"universal variable {var} is used exactly once -- it only "
                "guards the trigger",
                hint="intended? a single-use variable never constrains a join "
                "and never reaches the head",
            )

    # NT002 / NT010: existential variables never used, or used only deeper.
    head_vars = {v for atom in view.head for v in atom.variables()}
    scope_head_vars = {v for atom in view.scope_heads for v in atom.variables()}
    for var in view.exist_vars:
        if var not in scope_head_vars:
            yield _finding(
                "NT002", label, view.location,
                f"existential variable {var} is declared but never used in a head",
                hint="drop the quantifier (it asserts nothing)",
            )
        elif var not in head_vars:
            yield _finding(
                "NT010", label, view.location,
                f"existential variable {var} is used only in descendant parts",
                hint="if one witness per inner trigger is intended, declare it "
                "at the part that uses it (note: that weakens the dependency)",
            )

    # NT003: disconnected body.
    if len(view.body) > 1:
        components = _connected_components(view.body, view.inherited)
        if components > 1:
            yield _finding(
                "NT003", label, view.location,
                f"body falls into {components} unconnected groups of atoms -- "
                "the trigger is a cartesian product",
                hint="intended? unconnected atom groups multiply the number of "
                "triggers",
            )

    # NT004: duplicate atoms.
    for what, atoms in (("body", view.body), ("head", view.head)):
        seen: set[Atom] = set()
        for atom in atoms:
            if atom in seen:
                yield _finding(
                    "NT004", label, view.location,
                    f"duplicate {what} atom {atom}",
                    hint="remove the repeated atom",
                )
                break
            seen.add(atom)

    # NT005: body atom subsumed by another via its otherwise-unused variables.
    subsumers: dict[int, list[int]] = {}
    for bi, beta in enumerate(view.body):
        free = frozenset(
            v for v in beta.variables()
            if occurrences.get(v, 0) == sum(1 for a in beta.args if a == v)
        )
        if not free:
            continue
        found = [ai for ai, alpha in enumerate(view.body)
                 if ai != bi and _atom_subsumed(beta, alpha, free)]
        if found:
            subsumers[bi] = found
    for bi, found in subsumers.items():
        # For mutually-subsuming pairs report only the later atom, so a pair
        # of interchangeable atoms yields one finding, not two.
        if not any(ai < bi or ai not in subsumers for ai in found):
            continue
        yield _finding(
            "NT005", label, view.location,
            f"body atom {view.body[bi]} is subsumed by another body atom "
            "(its extra variables are used nowhere else)",
            hint="drop the atom; `repro optimize` performs the exact "
            "(implication-checked) minimization",
        )

    # NT006: part asserting nothing.
    if not view.head and view.child_count == 0:
        yield _finding(
            "NT006", label, view.location,
            "part has no head atoms and no children -- it asserts nothing",
            hint="remove the part",
        )

    # NT007: child body only repeats ancestor atoms.
    if view.is_child and view.body and set(view.body) <= set(view.ancestor_body):
        yield _finding(
            "NT007", label, view.location,
            "child part's body only repeats atoms of its ancestors -- it fires "
            "exactly when its parent does",
            hint="merge the part into its parent",
        )

    # NT008: constants inside head terms.
    for atom in view.head:
        for term in atom.args:
            constants = _term_constants(term)
            if constants:
                yield _finding(
                    "NT008", label, view.location,
                    f"head atom {atom} contains constant(s) "
                    f"{', '.join(sorted(map(str, constants)))}",
                    hint="dependencies in the paper are constant-free; move the "
                    "constant into the source instance",
                )
                break


def _term_constants(term: object) -> set[Constant]:
    if isinstance(term, Constant):
        return {term}
    if isinstance(term, FuncTerm):
        result: set[Constant] = set()
        for arg in term.args:
            result |= _term_constants(arg)
        return result
    return set()


def _lint_egd(egd: Egd, label: str) -> Iterator[Finding]:
    if egd.left == egd.right:
        yield _finding(
            "EG001", label, "",
            f"egd equates {egd.left} with itself -- it is always satisfied",
            hint="remove the egd",
        )
    if len(egd.body) > 1 and _connected_components(egd.body, frozenset()) > 1:
        yield _finding(
            "EG002", label, "",
            "egd body falls into unconnected groups of atoms",
            hint="intended? the equality then links values across unrelated "
            "triggers",
        )


def _dep_label(dep: object, index: int) -> str:
    name = getattr(dep, "name", None)
    return name if name else f"#{index + 1}"


def analyze(
    dependencies: object,
    source_egds: Sequence[Egd] = (),
    *,
    check_termination: bool = True,
    check_subsumption: bool = True,
    check_cost: bool = True,
    check_containment: bool = True,
) -> AnalysisReport:
    """Statically analyze a dependency program; return an :class:`AnalysisReport`.

    *dependencies* may be a single dependency or an iterable mixing s-t
    tgds, nested tgds, SO tgds, and egds (egds may also be passed separately
    via *source_egds*).  ``check_termination=False`` skips the
    position-graph, hierarchy, and frontier passes;
    ``check_subsumption=False`` skips the quadratic NT009 pass;
    ``check_cost=False`` skips the CC001-CC004 cost model;
    ``check_containment=False`` skips the MC001/MC002 semantic-redundancy
    scan (the only pass that actually runs gated IMPLIES sweeps).
    """
    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd, Egd)):
        dependencies = [dependencies]
    deps = list(dependencies)
    egds = [dep for dep in deps if isinstance(dep, Egd)] + list(source_egds)
    tgds = [dep for dep in deps if not isinstance(dep, Egd)]
    for dep in tgds:
        if not isinstance(dep, (STTgd, NestedTgd, SOTgd)):
            raise DependencyError(f"cannot analyze dependency {dep!r}")

    findings: list[Finding] = []
    termination: TerminationReport | None = None
    hierarchy: TerminationVerdict | None = None
    if check_termination:
        termination = termination_report(tgds + egds)
        hierarchy = classify_termination(tgds + egds, weak=termination)
        if not termination.weakly_acyclic:
            cycle = termination.witness_cycle or ()
            rendered = " -> ".join(format_position(p) for p in cycle)
            code = _HIERARCHY_CODES.get(hierarchy.cls)
            if code is not None:
                findings.append(_finding(
                    code, "*", "position graph",
                    f"the dependency set is not weakly acyclic (cycle {rendered} "
                    "passes through a special edge) but is "
                    f"{hierarchy.cls.value}: the chase terminates with Skolem "
                    f"depth at most {hierarchy.depth_bound}",
                    hint="fixpoint_chase runs this set unbounded; the weaker "
                    "certificate gives a coarser depth bound than weak "
                    "acyclicity would",
                ))
            else:
                mfa_note = (
                    f"; MFA derived the cyclic term {hierarchy.mfa_cyclic_term}"
                    if hierarchy.mfa_cyclic_term is not None
                    else "; the bounded MFA chase was inconclusive"
                    if not hierarchy.mfa_conclusive
                    else ""
                )
                findings.append(_finding(
                    "TD001", "*", "position graph",
                    f"the dependency set is not weakly acyclic: cycle {rendered} "
                    "passes through a special (null-creating) edge, and no "
                    f"wider hierarchy rung certifies it{mfa_note}",
                    hint="the chase may diverge; fixpoint_chase refuses to run "
                    "without an explicit max_rounds bound",
                ))

    frontier: FrontierReport | None = None
    if check_termination and hierarchy is not None:
        frontier = frontier_report(tgds + egds, verdict=hierarchy)
        if frontier.triangular.guarded and not hierarchy.guarantees_termination:
            findings.append(_finding(
                "TD005", "*", "triangular guard",
                "the set is triangularly guarded (every frontier-variable "
                "pair shares a body atom): BCQ entailment stays decidable "
                "although no rung certifies chase termination",
                hint="certain-answer reasoning over this set is decidable "
                "(arXiv:1804.05997); the fixpoint chase itself still needs "
                "an explicit max_rounds bound",
            ))
        if hierarchy.guarantees_termination and not frontier.tier.tier.polynomial:
            findings.append(_finding(
                "TD006", "*", "complexity tier",
                f"the certified chase sits in the {frontier.tier.tier.value} "
                f"tier: {frontier.tier.reason}",
                hint="`repro analyze` prints the full tier report with "
                "per-relation degree witnesses where available",
            ))

    cost: ChaseCostEstimate | None = None
    if check_cost:
        cost = chase_cost(
            tgds + egds,
            verdict=hierarchy
            if hierarchy is not None
            else classify_termination(tgds + egds),
        )
        tier = None if frontier is None else frontier.tier
        if cost.degree is not None and cost.exponential:
            if tier is not None and tier.tier.polynomial:
                degrees = ", ".join(
                    f"{relation}: n^{degree}"
                    for relation, degree in tier.relation_degrees or ()
                )
                findings.append(_finding(
                    "CC003", "*", "cost model",
                    f"the coarse chase-size bound ~n^{cost.degree} is demoted "
                    "to PTIME by per-relation degree witnesses "
                    f"({degrees}; maximum degree {tier.max_degree})",
                    hint="budgets derived from the tier's fact bound are "
                    "polynomial; the coarse CC002 estimate is safely ignored",
                ))
            else:
                rendered_degree = (
                    "astronomical" if cost.saturated else f"~n^{cost.degree}"
                )
                findings.append(_finding(
                    "CC002", "*", "cost model",
                    f"the chase-size bound is {rendered_degree} in the instance "
                    f"size ({cost.skolem_function_count} Skolem function(s) of "
                    f"arity up to {cost.max_skolem_arity}, depth bound "
                    f"{cost.depth_bound})",
                    hint="pass budget= to fixpoint_chase to fail fast instead of "
                    "grinding through an exponential blowup",
                ))
        elif (
            tier is not None
            and cost.degree is not None
            and not cost.exponential
            and hierarchy is not None
            and hierarchy.guarantees_termination
            and not tier.tier.polynomial
        ):
            findings.append(_finding(
                "CC004", "*", "cost model",
                f"the coarse degree ~n^{cost.degree} looks polynomial but the "
                f"{hierarchy.cls.value} rung provides no per-relation degree "
                f"witnesses -- the complexity tier stays {tier.tier.value}",
                hint="treat the coarse degree as optimistic: derive budgets "
                "from the tier, not from the coarse estimate",
            ))
        for index, dep in enumerate(tgds):
            if not isinstance(dep, (STTgd, NestedTgd)):
                continue  # IMPLIES right-hand sides are (s-t or nested) tgds
            estimate = sweep_cost(tgds, dep)
            if estimate.non_elementary:
                rendered_count = (
                    "non-elementarily many"
                    if estimate.saturated
                    else f"~{estimate.pattern_count}"
                )
                findings.append(_finding(
                    "CC001", _dep_label(dep, index), "cost model",
                    f"checking implication of this dependency sweeps "
                    f"{rendered_count} k-patterns (k={estimate.k})",
                    hint="implies_tgd refuses such sweeps under budget=; the "
                    "subsumption pre-pass may still answer trivial cases "
                    "without enumerating",
                ))

    for index, dep in enumerate(tgds):
        label = _dep_label(dep, index)
        for view in _part_views(dep):
            findings.extend(_lint_part(view, label))

    if check_subsumption:
        for i, weaker in enumerate(tgds):
            for j, stronger in enumerate(tgds):
                if i != j and subsumes(stronger, weaker):
                    if subsumes(weaker, stronger) and i < j:
                        continue  # report mutual subsumption once, on the later dep
                    findings.append(_finding(
                        "NT009", _dep_label(weaker, i), "",
                        "dependency is implied by "
                        f"{_dep_label(stronger, j)} (syntactic subsumption)",
                        hint="remove it, or run `repro optimize` for the exact "
                        "minimization",
                    ))
                    break

    if check_containment and len([d for d in tgds if not isinstance(d, SOTgd)]) >= 2:
        from repro.analysis.containment import redundancy_report

        for entry in redundancy_report(tgds, egds):
            if entry.status == "redundant":
                findings.append(_finding(
                    "MC001", entry.dependency, "containment",
                    f"dependency is semantically redundant: {entry.reason}",
                    hint="`repro optimize --semantic` drops it and certifies "
                    "the equivalence in both directions",
                ))
            else:
                findings.append(_finding(
                    "MC002", entry.dependency, "containment",
                    f"semantic-redundancy check refused: {entry.reason}",
                    hint="decide it off-line with `repro contain` and an "
                    "explicit --budget",
                ))

    for index, egd in enumerate(egds):
        findings.extend(_lint_egd(egd, _dep_label(egd, index)))

    # A *total* deterministic order (message and hint included): two runs
    # over the same input must produce byte-identical reports for --baseline
    # fingerprinting and artifact diffing.
    findings.sort(key=lambda f: (
        _SEVERITIES[f.severity], f.code, f.dependency, f.location, f.message, f.hint,
    ))
    return AnalysisReport(
        findings=tuple(findings),
        termination=termination,
        dependency_count=len(deps) + len(list(source_egds)),
        hierarchy=hierarchy,
        cost=cost,
        frontier=frontier,
    )


# ------------------------------------------------------------------ baselines


def baseline_fingerprints(report: AnalysisReport) -> list[str]:
    """The sorted fingerprints of a report's findings (a ``--baseline`` file).

    A baseline file is a JSON document ``{"fingerprints": [...]}``; findings
    whose fingerprint appears in it are suppressed by
    :func:`apply_baseline` (the `repro lint --baseline` workflow: record
    today's findings, fail only on new ones).
    """
    return sorted({finding.fingerprint for finding in report.findings})


def apply_baseline(report: AnalysisReport, fingerprints: Iterable[str]) -> AnalysisReport:
    """Drop every finding whose fingerprint appears in *fingerprints*."""
    suppressed = frozenset(fingerprints)
    return replace(
        report,
        findings=tuple(
            f for f in report.findings if f.fingerprint not in suppressed
        ),
    )


__all__ = [
    "AnalysisReport",
    "Finding",
    "LINT_CATALOG",
    "analyze",
    "apply_baseline",
    "baseline_fingerprints",
]
