"""Executable verifiers for the structural properties of Section 2 / 4.1.

- *Admits universal solutions*: for every source instance, the chase result
  is a solution that homomorphically maps into every other solution.
- *Closed under target homomorphisms*: if J is a solution and ``J -> J'``
  (constants fixed), then J' is a solution.  Plain SO tgds -- hence nested
  GLAV mappings -- have this property; SO tgds with equalities generally do
  not (the self-manager example).
- *Core is a universal solution*: for mappings with the closure property,
  ``core(chase(I))`` is itself a (smallest) universal solution.

The verifiers run over a supplied batch of source instances and candidate
targets; a ``PropertyReport`` records any counterexample found.  They are
refuters, not provers: ``holds=True`` means "no counterexample in the batch".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.logic.instances import Instance
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.homomorphism import has_homomorphism
from repro.engine.model_check import satisfies


@dataclass
class PropertyReport:
    """Outcome of a property check over a batch of instances."""

    property_name: str
    holds: bool
    checked: int
    counterexample: tuple | None = None

    def __bool__(self) -> bool:
        return self.holds


def _normalize(dependencies) -> list:
    from repro.mappings.mapping import SchemaMapping

    if isinstance(dependencies, SchemaMapping):
        return list(dependencies.dependencies)
    try:
        return list(dependencies)
    except TypeError:
        return [dependencies]


def check_admits_universal_solutions(
    dependencies,
    sources: Iterable[Instance],
    candidate_targets: Sequence[Instance] = (),
) -> PropertyReport:
    """Check that the chase yields universal solutions on the given sources.

    For each source I: chase(I) must be a solution, and must map
    homomorphically into every candidate target that is a solution for I.
    """
    deps = _normalize(dependencies)
    checked = 0
    for source in sources:
        canonical = chase(source, deps)
        checked += 1
        if not satisfies(source, canonical, deps):
            return PropertyReport(
                "admits_universal_solutions", False, checked, (source, canonical)
            )
        for target in candidate_targets:
            if satisfies(source, target, deps) and not has_homomorphism(
                canonical, target
            ):
                return PropertyReport(
                    "admits_universal_solutions", False, checked, (source, target)
                )
    return PropertyReport("admits_universal_solutions", True, checked)


def check_closed_under_target_homomorphisms(
    dependencies,
    sources: Iterable[Instance],
    candidate_targets: Sequence[Instance] = (),
) -> PropertyReport:
    """Refute closure under target homomorphisms on the given batch.

    For each source I and each pair (J, J') of candidate targets with J a
    solution and ``J -> J'``, J' must be a solution too.  The chase result of
    each source is automatically included among the candidates.
    """
    deps = _normalize(dependencies)
    checked = 0
    for source in sources:
        pool = list(candidate_targets) + [chase(source, deps)]
        solutions = [t for t in pool if satisfies(source, t, deps)]
        for left in solutions:
            for right in pool:
                checked += 1
                if has_homomorphism(left, right) and not satisfies(
                    source, right, deps
                ):
                    return PropertyReport(
                        "closed_under_target_homomorphisms",
                        False,
                        checked,
                        (source, left, right),
                    )
    return PropertyReport("closed_under_target_homomorphisms", True, checked)


def check_core_is_universal(
    dependencies,
    sources: Iterable[Instance],
) -> PropertyReport:
    """Check that core(chase(I)) is still a solution (Section 4.1).

    True for every mapping closed under target homomorphisms, in particular
    nested GLAV mappings and plain SO tgds.
    """
    deps = _normalize(dependencies)
    checked = 0
    for source in sources:
        solution_core = core(chase(source, deps))
        checked += 1
        if not satisfies(source, solution_core, deps):
            return PropertyReport(
                "core_is_universal", False, checked, (source, solution_core)
            )
    return PropertyReport("core_is_universal", True, checked)


__all__ = [
    "PropertyReport",
    "check_admits_universal_solutions",
    "check_closed_under_target_homomorphisms",
    "check_core_is_universal",
]
