"""SARIF 2.1.0 serialization of lint reports (``repro lint --sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS standard) is the
lingua franca of static-analysis tooling: code-scanning UIs, CI annotation
bots, and baseline diffing tools all consume it.  This module renders an
:class:`~repro.analysis.static.AnalysisReport` as a single-run SARIF log:

- every catalog code becomes a ``rule`` of the tool driver (stable
  ``ruleIndex`` order: sorted by code), with the lint severity mapped onto
  SARIF levels (``error``/``warning`` stay themselves, ``info`` becomes
  ``note``);
- every finding becomes a ``result`` with a logical location (dependency
  label plus part/clause) and the finding's content-hash fingerprint under
  ``partialFingerprints`` -- the key baseline-aware SARIF viewers match on;
- the run's ``properties`` carry the termination/hierarchy/cost verdicts, so
  the artifact is self-describing without the JSON report next to it.

The output is deterministic: two runs over the same input are byte-identical
(finding order is total, rules are sorted, no timestamps).

    >>> from repro.logic.parser import parse_tgd
    >>> from repro.analysis.static import analyze
    >>> log = sarif_report(analyze([parse_tgd("S(x,y) -> R(y,y)")]))
    >>> log["version"], log["runs"][0]["results"][0]["ruleId"]
    ('2.1.0', 'NT001')
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.static import LINT_CATALOG, AnalysisReport, Finding

#: SARIF schema location (pinned to 2.1.0).
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: lint severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

#: Stable rule order: catalog codes sorted lexicographically.
_RULE_ORDER = sorted(LINT_CATALOG)


def _rules() -> list[dict[str, Any]]:
    rules = []
    for code in _RULE_ORDER:
        severity, description = LINT_CATALOG[code]
        rules.append({
            "id": code,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": _LEVELS[severity]},
        })
    return rules


def _result(finding: Finding) -> dict[str, Any]:
    qualified = finding.dependency
    if finding.location:
        qualified = f"{finding.dependency}/{finding.location}"
    message = finding.message
    if finding.hint:
        message = f"{message}  Hint: {finding.hint}"
    return {
        "ruleId": finding.code,
        "ruleIndex": _RULE_ORDER.index(finding.code),
        "level": _LEVELS[finding.severity],
        "message": {"text": message},
        "locations": [{
            "logicalLocations": [{
                "fullyQualifiedName": qualified,
                "kind": "declaration",
            }],
        }],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }


def sarif_report(report: AnalysisReport, *, tool_name: str = "repro-lint") -> dict[str, Any]:
    """Render an :class:`AnalysisReport` as a SARIF 2.1.0 log ``dict``."""
    properties: dict[str, Any] = {"dependencyCount": report.dependency_count}
    if report.termination is not None:
        properties["termination"] = report.termination.to_dict()
    if report.hierarchy is not None:
        properties["hierarchy"] = report.hierarchy.to_dict()
    if report.cost is not None:
        properties["cost"] = report.cost.to_dict()
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": "1.0.0",
                    "rules": _rules(),
                },
            },
            "results": [_result(finding) for finding in report.findings],
            "properties": properties,
            "columnKind": "unicodeCodePoints",
        }],
    }


def sarif_json(report: AnalysisReport, *, indent: int = 2) -> str:
    """The SARIF log as a JSON document (byte-identical across runs)."""
    return json.dumps(sarif_report(report), indent=indent, sort_keys=True)


__all__ = ["SARIF_SCHEMA", "sarif_json", "sarif_report"]
