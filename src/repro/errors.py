"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so client
code can catch library failures with a single ``except`` clause while still
distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation symbol was used inconsistently with its declared arity or schema."""


class DependencyError(ReproError):
    """A dependency (tgd, nested tgd, SO tgd, or egd) violates a well-formedness rule.

    Examples: a universally quantified variable that does not occur in any body
    atom (safety), a source atom in the conclusion of an s-t tgd, or a nested
    term in a dependency declared plain.
    """


class ParseError(ReproError):
    """The textual syntax of a dependency or instance could not be parsed.

    Carries the error location for tooling: ``position`` is the 0-based
    character offset of the offending token in ``text``, ``line`` and
    ``column`` are the 1-based coordinates derived from it, and ``token`` is
    the offending token itself (``None`` at end of input).
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        text: str | None = None,
        token: str | None = None,
    ):
        self.position = position
        self.text = text
        self.token = token
        self.line: int | None = None
        self.column: int | None = None
        if position is not None and text is not None:
            prefix = text[:position]
            self.line = prefix.count("\n") + 1
            self.column = position - (prefix.rfind("\n") + 1) + 1
            snippet = text[max(0, position - 20):position + 20]
            where = f"at line {self.line}, column {self.column}, position {position}"
            message = f"{message} ({where}: ...{snippet!r}...)"
        super().__init__(message)


class ChaseError(ReproError):
    """The chase could not be carried out."""


class EgdViolation(ChaseError):
    """An egd chase step attempted to equate two distinct rigid constants."""

    def __init__(self, left: object, right: object):
        self.left = left
        self.right = right
        super().__init__(f"egd chase would equate distinct constants {left!r} and {right!r}")


class ResourceLimitExceeded(ReproError):
    """A decision procedure exceeded a user-supplied resource limit.

    The pattern machinery of the paper is non-elementary in the nesting depth
    of the input dependencies (Sections 3 and 6 of the paper).  Rather than
    silently truncating an enumeration - which would make an answer unsound -
    procedures raise this exception when a limit is hit.
    """

    def __init__(self, what: str, limit: int):
        self.what = what
        self.limit = limit
        super().__init__(f"resource limit exceeded: more than {limit} {what}")


class BudgetExceeded(ReproError):
    """An engine's predicted or actual cost exceeded a caller-supplied budget.

    Raised by :func:`repro.core.implication.implies_tgd` when the statically
    predicted k-pattern sweep is larger than ``budget=`` (before a single
    pattern is enumerated -- lint finding ``CC001`` predicts the same blowup),
    and by :func:`repro.engine.fixpoint_chase.fixpoint_chase` the moment the
    chase derives more facts than its ``budget=`` allows (lint finding
    ``CC002`` predicts the chase-size bound).  ``predicted`` carries the
    static estimate when one was the trigger.
    """

    def __init__(self, what: str, budget: int, predicted: int | None = None, hint: str = ""):
        self.what = what
        self.budget = budget
        self.predicted = predicted
        message = f"budget exceeded: {what} needs more than budget={budget}"
        if predicted is not None:
            message = (
                f"budget exceeded: {what} is statically predicted to need "
                f"~{predicted} units, more than budget={budget}"
            )
        if hint:
            message = f"{message}.  {hint}"
        super().__init__(message)


class UndecidedError(ReproError):
    """A semi-decision procedure could not reach a verdict within its budget."""
