"""repro.cache -- the persistence layer behind the in-memory cache tiers.

Warm-start performance used to die with the process: the IMPLIES chase
cache, the core fold memo, and the interned term universe were all
process-local, and fork-pool workers re-pickled their inputs per task.
This package makes the warm state survive restarts and fork boundaries:

- :mod:`repro.cache.fingerprint` -- content-derived SHA-256 keys
  (injective length-prefixed encodings; independent of ``PYTHONHASHSEED``).
- :mod:`repro.cache.store` -- a schema-versioned, LRU-evicted,
  corruption-tolerant SQLite store, enabled by ``REPRO_CACHE_DIR`` or
  :func:`configure`; disabled by default, leaving hot paths untouched.
- :mod:`repro.cache.shm` -- one-shot shared-memory publication of sweep /
  prefold specs to fork workers, replacing per-task pickling.

This module is the facade: pickle-level :func:`disk_get` / :func:`disk_put`
used by the engine hook points, :func:`clear_all_caches` resetting every
tier together, and :func:`cache_stats` for the ``repro cache`` CLI.
"""

from __future__ import annotations

import pickle

from repro import perf
from repro.cache.store import (
    DiskStore,
    SCHEMA_VERSION,
    configure,
    get_store,
)

#: The persistent cache spaces (see ``store.SPACE_LIMITS`` for caps).
SPACE_CHASE = "chase"
SPACE_FOLD = "fold"
SPACE_IMPLIES = "implies"
SPACE_CONTAIN = "contain"


def disk_get(space: str, key: str) -> object | None:
    """Fetch and unpickle one entry; any failure degrades to a miss.

    A payload that fails to unpickle counts as ``cache.disk.corrupt`` and
    its row is deleted -- the caller recomputes and overwrites, which is the
    corruption-recovery contract of the store.
    """
    store = get_store()
    if store is None:
        return None
    raw = store.get(space, key)
    if raw is None:
        return None
    try:
        return pickle.loads(raw)
    except Exception:
        perf.incr("cache.disk.corrupt")
        store.delete(space, key)
        return None


def disk_put(space: str, key: str, value: object) -> None:
    """Pickle and write-through one entry (no-op when the store is off)."""
    store = get_store()
    if store is None or not store.enabled(space):
        return
    try:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return
    store.put(space, key, payload)


def clear_all_caches(*, disk: bool = True) -> None:
    """Reset every cache tier together: chase LRU, fold memo, intern stats,
    and (with ``disk=True``) the persistent store.

    This closes the historic reset asymmetry where ``clear_chase_cache()``
    left the fold memo warm (and vice versa), which made "cold" measurements
    and test isolation subtly wrong.  ``disk=False`` drops only the
    in-memory tiers -- exactly what a warm-restart benchmark needs to model
    a fresh process over a populated store.
    """
    from repro.core.implication import clear_chase_cache
    from repro.engine.core_instance import clear_fold_cache
    from repro.logic import intern

    clear_chase_cache()
    clear_fold_cache()
    intern.reset_stats()
    if disk:
        store = get_store()
        if store is not None:
            store.clear()


def cache_stats() -> dict[str, object]:
    """A JSON-serializable snapshot of the persistent store (CLI payload)."""
    store = get_store()
    if store is None:
        return {"enabled": False, "path": None}
    return store.stats()


__all__ = [
    "DiskStore",
    "SCHEMA_VERSION",
    "SPACE_CHASE",
    "SPACE_CONTAIN",
    "SPACE_FOLD",
    "SPACE_IMPLIES",
    "configure",
    "get_store",
    "disk_get",
    "disk_put",
    "clear_all_caches",
    "cache_stats",
]
