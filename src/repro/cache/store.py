"""Schema-versioned SQLite store behind the in-memory cache tiers.

One SQLite file (``repro-cache.sqlite`` inside the configured directory)
holds every persistent cache space in a single ``entries`` table keyed by
``(space, key)``; ``key`` is always a content-derived fingerprint from
:mod:`repro.cache.fingerprint`, so two processes -- regardless of hash seed
-- address the same rows.  Design points:

- **Disabled by default.**  The store only exists when a directory is
  configured, via the ``REPRO_CACHE_DIR`` environment variable or
  :func:`configure`; the in-memory tiers and every hot path are untouched
  otherwise.
- **Schema-versioned.**  ``meta['schema_version']`` is checked on open; a
  mismatch (older/newer writer) drops all entries rather than risk decoding
  payloads with different invariants.
- **LRU by access stamp.**  Every get/put bumps a monotone stamp; when a
  space exceeds its cap, the lowest-stamped rows are deleted.
- **Corruption-tolerant.**  Any ``sqlite3`` error degrades to a cache miss
  (counted as ``cache.disk.errors``); an unreadable database file is
  deleted and recreated on open.  Undecodable payloads are handled one
  level up (:func:`repro.cache.disk_get` deletes the row and the caller
  recomputes and overwrites).
- **Fork-safe.**  SQLite connections must not cross ``fork()``; every
  operation checks the owning pid and reopens in the child on mismatch,
  so sweep workers inherit the configuration but not the connection.
"""

from __future__ import annotations

import os
import sqlite3
from contextlib import suppress
from pathlib import Path

from repro import perf

SCHEMA_VERSION = 1
STORE_FILENAME = "repro-cache.sqlite"

#: Environment variable naming the cache directory (unset => disabled).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
#: Optional comma-separated list of enabled spaces (unset => all).
ENV_CACHE_SPACES = "REPRO_CACHE_SPACES"

#: Per-space entry caps (LRU-evicted beyond these).
SPACE_LIMITS: dict[str, int] = {
    "chase": 8192, "contain": 2048, "fold": 16384, "implies": 4096,
}
DEFAULT_SPACES = frozenset(SPACE_LIMITS)
_FALLBACK_LIMIT = 4096

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE IF NOT EXISTS entries (
    space TEXT NOT NULL,
    key TEXT NOT NULL,
    payload BLOB NOT NULL,
    stamp INTEGER NOT NULL,
    PRIMARY KEY (space, key)
);
CREATE INDEX IF NOT EXISTS idx_entries_space_stamp ON entries (space, stamp);
"""


class DiskStore:
    """The write-through on-disk tier: fingerprint-keyed blobs in SQLite."""

    def __init__(
        self,
        directory: str | os.PathLike[str],
        spaces: frozenset[str] = DEFAULT_SPACES,
        limits: dict[str, int] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.path = self.directory / STORE_FILENAME
        self.spaces = spaces
        self.limits = dict(SPACE_LIMITS if limits is None else limits)
        self._connection: sqlite3.Connection | None = None
        self._pid = -1
        self._stamp = 0
        self._open(recreate_on_error=True)

    # ------------------------------------------------------------ connection

    def _open(self, recreate_on_error: bool) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            connection = self._connect()
        except sqlite3.Error:
            if not recreate_on_error:
                raise
            # Unreadable/corrupt database file: drop it and start fresh.
            perf.incr("cache.disk.errors")
            for suffix in ("", "-wal", "-shm"):
                with suppress(OSError):
                    os.unlink(f"{self.path}{suffix}")
            connection = self._connect()
        self._connection = connection
        self._pid = os.getpid()
        row = connection.execute("SELECT COALESCE(MAX(stamp), 0) FROM entries").fetchone()
        self._stamp = int(row[0])

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(self.path, timeout=10.0)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.executescript(_SCHEMA)
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and row[0] != str(SCHEMA_VERSION):
            # A different schema version wrote this store: invalidate wholesale.
            connection.execute("DELETE FROM entries")
            connection.execute("DELETE FROM meta")
            row = None
        if row is None:
            connection.execute(
                "INSERT OR REPLACE INTO meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        connection.commit()
        return connection

    def _conn(self) -> sqlite3.Connection:
        if self._connection is None or self._pid != os.getpid():
            # Reopen after fork(): the parent's connection must not be used
            # in the child (its fds and internal locks are shared state).
            self._connection = None
            self._open(recreate_on_error=False)
        assert self._connection is not None
        return self._connection

    def close(self) -> None:
        if self._connection is not None and self._pid == os.getpid():
            with suppress(sqlite3.Error):
                self._connection.close()
        self._connection = None

    # ------------------------------------------------------------ operations

    def enabled(self, space: str) -> bool:
        return space in self.spaces

    def get(self, space: str, key: str) -> bytes | None:
        """Return the payload for (space, key), bumping its LRU stamp."""
        if space not in self.spaces:
            return None
        try:
            connection = self._conn()
            row = connection.execute(
                "SELECT payload FROM entries WHERE space = ? AND key = ?",
                (space, key),
            ).fetchone()
            if row is None:
                perf.incr("cache.disk.misses")
                self._bump_counter(connection, "misses")
                connection.commit()
                return None
            self._stamp += 1
            connection.execute(
                "UPDATE entries SET stamp = ? WHERE space = ? AND key = ?",
                (self._stamp, space, key),
            )
            self._bump_counter(connection, "hits")
            connection.commit()
        except sqlite3.Error:
            perf.incr("cache.disk.errors")
            return None
        payload = bytes(row[0])
        perf.incr("cache.disk.hits")
        perf.incr("cache.disk.read_bytes", len(payload))
        return payload

    def put(self, space: str, key: str, payload: bytes) -> None:
        """Write-through one entry, evicting the space's LRU overflow."""
        if space not in self.spaces:
            return
        try:
            connection = self._conn()
            self._stamp += 1
            connection.execute(
                "INSERT OR REPLACE INTO entries VALUES (?, ?, ?, ?)",
                (space, key, payload, self._stamp),
            )
            limit = self.limits.get(space, _FALLBACK_LIMIT)
            count = connection.execute(
                "SELECT COUNT(*) FROM entries WHERE space = ?", (space,)
            ).fetchone()[0]
            if count > limit:
                connection.execute(
                    "DELETE FROM entries WHERE space = ? AND key IN ("
                    "SELECT key FROM entries WHERE space = ? "
                    "ORDER BY stamp ASC LIMIT ?)",
                    (space, space, count - limit),
                )
                perf.incr("cache.disk.evictions", count - limit)
            connection.commit()
        except sqlite3.Error:
            perf.incr("cache.disk.errors")
            return
        perf.incr("cache.disk.writes")
        perf.incr("cache.disk.write_bytes", len(payload))

    def delete(self, space: str, key: str) -> None:
        """Drop one entry (used when its payload failed to decode)."""
        try:
            connection = self._conn()
            connection.execute(
                "DELETE FROM entries WHERE space = ? AND key = ?", (space, key)
            )
            connection.commit()
        except sqlite3.Error:
            perf.incr("cache.disk.errors")

    def _bump_counter(self, connection: sqlite3.Connection, name: str) -> None:
        connection.execute(
            "INSERT INTO meta VALUES (?, '1') ON CONFLICT(key) DO UPDATE "
            "SET value = CAST(value AS INTEGER) + 1",
            (f"counter_{name}",),
        )

    # ------------------------------------------------------------ inspection

    def keys(self) -> list[tuple[str, str]]:
        """All (space, key) pairs, sorted (byte-stability checks compare these)."""
        connection = self._conn()
        rows = connection.execute("SELECT space, key FROM entries").fetchall()
        return sorted((str(space), str(key)) for space, key in rows)

    def entry_counts(self) -> dict[str, int]:
        connection = self._conn()
        rows = connection.execute(
            "SELECT space, COUNT(*) FROM entries GROUP BY space"
        ).fetchall()
        return {str(space): int(count) for space, count in rows}

    def counters(self) -> dict[str, int]:
        """Persistent lifetime hit/miss counters (survive restarts, unlike perf)."""
        connection = self._conn()
        rows = connection.execute(
            "SELECT key, value FROM meta WHERE key LIKE 'counter_%'"
        ).fetchall()
        counters = {"hits": 0, "misses": 0}
        for key, value in rows:
            counters[str(key)[len("counter_"):]] = int(value)
        return counters

    def size_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            with suppress(OSError):
                total += os.path.getsize(f"{self.path}{suffix}")
        return total

    def stats(self) -> dict[str, object]:
        """A JSON-serializable snapshot (the ``repro cache stats`` payload)."""
        return {
            "enabled": True,
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "spaces": sorted(self.spaces),
            "entries": self.entry_counts(),
            "counters": self.counters(),
            "size_bytes": self.size_bytes(),
        }

    # ------------------------------------------------------------ maintenance

    def clear(self) -> None:
        """Drop every entry and reset the persistent counters."""
        try:
            connection = self._conn()
            connection.execute("DELETE FROM entries")
            connection.execute("DELETE FROM meta WHERE key LIKE 'counter_%'")
            connection.commit()
        except sqlite3.Error:
            perf.incr("cache.disk.errors")
        self._stamp = 0

    def vacuum(self) -> None:
        """Reclaim on-disk space after evictions/clears."""
        try:
            connection = self._conn()
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            connection.execute("VACUUM")
        except sqlite3.Error:
            perf.incr("cache.disk.errors")


# ----------------------------------------------------------- configuration

#: Sentinel distinguishing "configure() -- revert to env" from
#: "configure(None) -- force-disable regardless of env".
_UNSET = object()

_configured = False
_configured_dir: str | None = None
_configured_spaces: frozenset[str] | None = None

_store: DiskStore | None = None
_store_dir: str | None = None


def configure(
    cache_dir: object = _UNSET, *, spaces: frozenset[str] | None = None
) -> None:
    """Set (or reset) the process-wide disk-store configuration.

    ``configure(path)`` enables the store at *path*; ``configure(None)``
    force-disables it (overriding ``REPRO_CACHE_DIR`` -- what the test
    harness does); ``configure()`` with no arguments reverts to environment
    resolution.  *spaces* restricts which cache spaces persist.
    """
    global _configured, _configured_dir, _configured_spaces, _store, _store_dir
    if cache_dir is _UNSET:
        _configured = False
        _configured_dir = None
    else:
        _configured = True
        _configured_dir = os.fspath(cache_dir) if cache_dir is not None else None  # type: ignore[arg-type]
    _configured_spaces = spaces
    if _store is not None:
        _store.close()
    _store = None
    _store_dir = None


def _resolve_dir() -> str | None:
    if _configured:
        return _configured_dir
    value = os.environ.get(ENV_CACHE_DIR)
    return value if value else None


def _resolve_spaces() -> frozenset[str]:
    if _configured_spaces is not None:
        return _configured_spaces
    value = os.environ.get(ENV_CACHE_SPACES)
    if not value:
        return DEFAULT_SPACES
    return frozenset(name.strip() for name in value.split(",") if name.strip())


def get_store() -> DiskStore | None:
    """The configured process-wide store, or None when persistence is off.

    Opening failures disable the store for the failing call only (the next
    call retries), and always degrade to "no persistence", never to an
    exception on the caller's hot path.
    """
    global _store, _store_dir
    directory = _resolve_dir()
    if directory is None:
        if _store is not None:
            _store.close()
            _store = None
            _store_dir = None
        return None
    spaces = _resolve_spaces()
    if _store is not None and (_store_dir != directory or _store.spaces != spaces):
        _store.close()
        _store = None
        _store_dir = None
    if _store is None:
        try:
            _store = DiskStore(directory, spaces)
        except (sqlite3.Error, OSError):
            perf.incr("cache.disk.errors")
            return None
        _store_dir = directory
    return _store


__all__ = [
    "DiskStore",
    "SCHEMA_VERSION",
    "STORE_FILENAME",
    "ENV_CACHE_DIR",
    "ENV_CACHE_SPACES",
    "SPACE_LIMITS",
    "DEFAULT_SPACES",
    "configure",
    "get_store",
]
