"""Canonical content-derived fingerprints for cross-process cache keys.

The in-memory chase cache and fold memo key by interned objects -- pointer
identity, valid only within one process.  The on-disk tiers of
:mod:`repro.cache.store` need keys that are identical across processes and
across Python hash seeds, so fingerprints here are built purely from
*content*: every value and atom is rendered into an injective byte string
and hashed with SHA-256.  ``hash()`` is never consulted.

Injectivity uses the length-prefixed encoding idiom of
``repro.export.sql`` / ``engine.sql_backend``: each component is rendered
as ``<len>:<payload>`` behind a one-byte kind tag (``c`` constant, ``n``
null, ``v`` variable, ``f`` functional term, ``A`` atom), so no
concatenation of components can collide with a different decomposition --
adversarial names containing commas, parentheses, or digits cannot forge a
boundary.

Per-atom encodings are memoized in a :class:`~weakref.WeakKeyDictionary`
(atoms are interned, so one encoding serves every occurrence and dies with
the atom).
"""

from __future__ import annotations

import hashlib
from typing import Iterable
from weakref import WeakKeyDictionary

from repro.logic.atoms import Atom
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null, Variable

_ATOM_ENCODINGS: "WeakKeyDictionary[Atom, bytes]" = WeakKeyDictionary()


def _prefixed(payload: bytes) -> bytes:
    return b"%d:%s" % (len(payload), payload)


def encode_value(value: object) -> bytes:
    """Render one value/term into an injective, hash-seed-independent byte string.

    Leaf names go through ``repr`` (total and deterministic for the str /
    int / tuple names the library constructs) and are length-prefixed, so
    distinct names -- including names that embed other encodings -- yield
    distinct byte strings.
    """
    if isinstance(value, Constant):
        return b"c" + _prefixed(repr(value.name).encode())
    if isinstance(value, Null):
        return b"n" + _prefixed(repr(value.name).encode())
    if isinstance(value, Variable):
        return b"v" + _prefixed(repr(value.name).encode())
    if isinstance(value, FuncTerm):
        pieces = [b"f", _prefixed(value.function.encode())]
        for arg in value.args:
            pieces.append(_prefixed(encode_value(arg)))
        return b"".join(pieces)
    raise TypeError(f"cannot fingerprint value {value!r}")


def encode_atom(atom: Atom) -> bytes:
    """Render one atom injectively; memoized per interned atom."""
    cached = _ATOM_ENCODINGS.get(atom)
    if cached is None:
        pieces = [b"A", _prefixed(atom.relation.encode())]
        for arg in atom.args:
            pieces.append(_prefixed(encode_value(arg)))
        cached = b"".join(pieces)
        _ATOM_ENCODINGS[atom] = cached
    return cached


def encode_canonical_null(index: int) -> bytes:
    """The encoding of the canonical fold-memo null ``Null(("#", index))``.

    Lets the columnar core engine render a canonical block fingerprint from
    integer id tuples without constructing the interned ``Null`` object:
    the bytes are exactly ``encode_value(Null(("#", index)))``.
    """
    return b"n" + _prefixed(repr(("#", index)).encode())


def encode_atom_parts(relation: str, arg_encodings: Iterable[bytes]) -> bytes:
    """Assemble an atom encoding from pre-encoded argument byte strings.

    ``encode_atom_parts(a.relation, map(encode_value, a.args))`` equals
    ``encode_atom(a)`` byte for byte, so fingerprints built from id tuples
    (value encodings memoized per value id) share cache keys with
    fingerprints built from decoded atoms.
    """
    pieces = [b"A", _prefixed(relation.encode())]
    for encoding in arg_encodings:
        pieces.append(_prefixed(encoding))
    return b"".join(pieces)


def _digest(parts: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
    return digest.hexdigest()


def fingerprint_facts(facts: Iterable[Atom]) -> str:
    """Fingerprint an *unordered* fact set (chase-cache sources).

    Encodings are sorted before hashing, so any iteration order of the same
    set -- including a ``frozenset`` whose order varies with the hash seed --
    produces the same fingerprint.
    """
    return _digest(sorted(_prefixed(encode_atom(fact)) for fact in facts))


def fingerprint_fact_sequence(facts: Iterable[Atom]) -> str:
    """Fingerprint an *ordered* fact tuple (canonical fold-memo blocks)."""
    return _digest(_prefixed(encode_atom(fact)) for fact in facts)


def fingerprint_encoded_sequence(encodings: Iterable[bytes]) -> str:
    """Fingerprint an ordered sequence of pre-encoded atoms.

    Equals ``fingerprint_fact_sequence`` of the corresponding atoms when each
    element was built with :func:`encode_atom_parts`, so the columnar core
    engine's id-space fingerprints hit the same on-disk fold entries as the
    tuple engine's.
    """
    return _digest(_prefixed(encoding) for encoding in encodings)


def fingerprint_texts(texts: Iterable[str]) -> str:
    """Fingerprint an ordered sequence of strings (Sigma reprs, key components)."""
    return _digest(_prefixed(text.encode()) for text in texts)


def fingerprint_pattern(pattern: object) -> str:
    """Fingerprint a k-pattern via its canonical structural sort key.

    The sort key is a nested tuple of ints -- isomorphism-invariant and
    identical in every process -- so its repr is a canonical rendering.
    """
    return _digest([repr(pattern.sort_key()).encode()])  # type: ignore[attr-defined]


def combine_fingerprints(*fingerprints: str) -> str:
    """Combine component fingerprints into one key, order-sensitively."""
    return _digest(_prefixed(fp.encode()) for fp in fingerprints)


__all__ = [
    "encode_value",
    "encode_atom",
    "encode_atom_parts",
    "encode_canonical_null",
    "fingerprint_facts",
    "fingerprint_fact_sequence",
    "fingerprint_encoded_sequence",
    "fingerprint_texts",
    "fingerprint_pattern",
    "combine_fingerprints",
]
