"""Shared-memory publication of interned universes for fork-pool workers.

The parallel pattern sweep and parallel core prefolding fan work out to a
fork pool.  Before this module, the from-scratch sweep pickled every
pattern through the task queue and the prefolder pickled every canonical
block -- per task, per worker.  Here the parent serializes the whole spec
*once* into a ``multiprocessing.shared_memory`` segment; workers attach,
deserialize once (re-interning into their inherited tables, so every object
lands on its canonical identity), memoize the result, and from then on
receive plain integer indexes as tasks.

The segment is published before the pool forks and unlinked by the parent
when the pool is done.  :func:`publish` returns None when shared memory is
unavailable (platform, permissions, exhausted ``/dev/shm``); callers fall
back to their pre-shm path.  Traffic is measured by the ``cache.shm.*``
perf counters.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

from repro import perf

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - platform without shared memory
    shared_memory = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ShmHandle:
    """Name + payload size of a published segment (inherited by workers)."""

    name: str
    size: int


#: Segments this process created (owner must close *and* unlink them).
_OWNED: dict[str, object] = {}
#: Per-process memo of attached payloads: one deserialization per worker.
_ATTACHED: dict[str, object] = {}


def publish(payload: object) -> ShmHandle | None:
    """Serialize *payload* into a fresh shared-memory segment.

    Returns a handle consumable by :func:`attach` in forked children, or
    None when shared memory cannot be used (callers must keep a fallback).
    """
    if shared_memory is None:
        return None
    try:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shared_memory.SharedMemory(create=True, size=max(len(data), 1))
    except Exception:
        return None
    segment.buf[: len(data)] = data
    _OWNED[segment.name] = segment
    perf.incr("cache.shm.segments")
    perf.incr("cache.shm.bytes", len(data))
    return ShmHandle(segment.name, len(data))


def attach(handle: ShmHandle) -> object:
    """Deserialize the published payload, once per process.

    Unpickling routes every interned object through its constructor, so the
    attached universe coincides pointer-for-pointer with the fork-inherited
    intern tables.  The attach cost (one unpickle) is recorded in
    ``cache.shm.attach_ns`` and amortized over all tasks of the worker.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is None:
        assert shared_memory is not None
        start = time.perf_counter_ns()
        # Consumers are fork children sharing the parent's resource tracker,
        # so this attach-side registration is an idempotent set add and the
        # owning parent's unlink() remains the single deregistration.
        segment = shared_memory.SharedMemory(name=handle.name)
        try:
            cached = pickle.loads(bytes(segment.buf[: handle.size]))
        finally:
            segment.close()
        _ATTACHED[handle.name] = cached
        perf.incr("cache.shm.attaches")
        perf.incr("cache.shm.attach_ns", time.perf_counter_ns() - start)
    return cached


def unlink(handle: ShmHandle | None) -> None:
    """Release a published segment (owner side); safe to call with None."""
    if handle is None:
        return
    _ATTACHED.pop(handle.name, None)
    segment = _OWNED.pop(handle.name, None)
    if segment is not None:
        try:
            segment.close()  # type: ignore[attr-defined]
            segment.unlink()  # type: ignore[attr-defined]
        except Exception:
            pass


__all__ = ["ShmHandle", "publish", "attach", "unlink"]
