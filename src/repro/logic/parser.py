"""A textual syntax for dependencies and instances.

Conventions
-----------
- Relation names start with an upper-case letter: ``S``, ``R2``, ``Emp``.
- Variables and function symbols start with a lower-case letter: ``x1``, ``f``.
- In *instance* syntax, lower-case identifiers are constants and identifiers
  starting with ``_`` are labeled nulls.

Grammar (informal)
------------------
s-t tgd::

    S(x,y) & T(y,z) -> R(x,z) & P(z,w)          # w is existential (not in body)
    S(x,y) -> exists w . R(x,w)                 # explicit quantifier also allowed

nested tgd -- parenthesized implications in a conclusion open nested parts::

    S1(x1) -> exists y1 . ( R2(y1) & ( S3(x1,x3) -> R3(y1,x3) ) )

SO tgd -- clauses separated by ``;``, function terms and equalities allowed::

    Emp(e) -> Mgr(e, f(e)) ; Emp(e) & e = f(e) -> SelfMgr(e)

egd::

    S(x,y) & S(x,z) -> y = z

instance::

    S(a, b), S(b, c), R(a, _n1)
"""

from __future__ import annotations

import re
from repro.errors import ParseError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd, Part
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import FuncTerm
from repro.logic.tgds import STTgd
from repro.logic.values import Constant, Null, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<punct>[(),&;=.])
    """,
    re.VERBOSE,
)


class _Tokens:
    """A token stream with one-token lookahead over a dependency string."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: list[tuple[str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                raise ParseError(
                    f"unexpected character {text[pos]!r}", pos, text, token=text[pos]
                )
            if match.lastgroup != "ws":
                self.tokens.append((match.group(), match.start()))
            pos = match.end()
        self.index = 0

    def peek(self) -> str | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index][0]
        return None

    def position(self) -> int:
        if self.index < len(self.tokens):
            return self.tokens[self.index][1]
        return len(self.text)

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        pos = self.position()
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}", pos, self.text, token=got)

    def try_take(self, token: str) -> bool:
        if self.peek() == token:
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    def save(self) -> int:
        return self.index

    def restore(self, mark: int) -> None:
        self.index = mark


def _is_relation_name(token: str) -> bool:
    return token[0].isupper()


def _is_term_name(token: str) -> bool:
    return token[0].islower() or token[0] == "_"


def _parse_term(tokens: _Tokens):
    """Parse a variable or functional term (used in SO tgd heads/equalities)."""
    pos = tokens.position()
    name = tokens.next()
    if not _is_term_name(name):
        raise ParseError(f"expected a term, got {name!r}", pos, tokens.text, token=name)
    if tokens.try_take("("):
        args = [_parse_term(tokens)]
        while tokens.try_take(","):
            args.append(_parse_term(tokens))
        tokens.expect(")")
        return FuncTerm(name, tuple(args))
    return Variable(name)


def _parse_atom(tokens: _Tokens, allow_terms: bool) -> Atom:
    pos = tokens.position()
    name = tokens.next()
    if not _is_relation_name(name):
        raise ParseError(
            f"expected a relation name (upper-case), got {name!r}",
            pos,
            tokens.text,
            token=name,
        )
    tokens.expect("(")
    args: list = []
    if tokens.peek() != ")":
        args.append(_parse_term(tokens) if allow_terms else _parse_plain_variable(tokens))
        while tokens.try_take(","):
            args.append(_parse_term(tokens) if allow_terms else _parse_plain_variable(tokens))
    tokens.expect(")")
    return Atom(name, tuple(args))


def _parse_plain_variable(tokens: _Tokens) -> Variable:
    pos = tokens.position()
    name = tokens.next()
    if not _is_term_name(name):
        raise ParseError(f"expected a variable, got {name!r}", pos, tokens.text, token=name)
    if tokens.peek() == "(":
        raise ParseError(
            f"function term {name!r}(...) not allowed here", pos, tokens.text, token=name
        )
    return Variable(name)


def _parse_atom_conjunction(tokens: _Tokens, allow_terms: bool = False) -> list[Atom]:
    atoms = [_parse_atom(tokens, allow_terms)]
    while tokens.try_take("&"):
        atoms.append(_parse_atom(tokens, allow_terms))
    return atoms


def _skip_forall(tokens: _Tokens) -> None:
    """Accept and ignore an optional ``forall x y .`` prefix (universals are inferred)."""
    if tokens.peek() == "forall":
        tokens.next()
        while True:
            token = tokens.peek()
            if token is None or not _is_term_name(token):
                break
            tokens.next()
            tokens.try_take(",")
        tokens.expect(".")


def _parse_exists(tokens: _Tokens) -> list[Variable]:
    """Parse an optional ``exists y1, y2 .`` prefix; return the variables."""
    if tokens.peek() != "exists":
        return []
    tokens.next()
    names: list[Variable] = []
    while True:
        token = tokens.peek()
        if token is None or not _is_term_name(token):
            break
        names.append(Variable(tokens.next()))
        if not tokens.try_take(","):
            break
    tokens.expect(".")
    return names


# --------------------------------------------------------------------- atoms


def parse_atom(text: str) -> Atom:
    """Parse a single atom over variables, e.g. ``"S(x, y)"``."""
    tokens = _Tokens(text)
    atom = _parse_atom(tokens, allow_terms=False)
    if not tokens.at_end():
        raise ParseError("trailing input after atom", tokens.position(), text)
    return atom


# ------------------------------------------------------------------ s-t tgds


def parse_tgd(text: str, name: str | None = None) -> STTgd:
    """Parse an s-t tgd, e.g. ``"S(x,y) -> exists z . R(x,z)"``."""
    tokens = _Tokens(text)
    _skip_forall(tokens)
    body = _parse_atom_conjunction(tokens)
    tokens.expect("->")
    _parse_exists(tokens)  # explicit exists is allowed but redundant: inferred below
    tokens.try_take("(")
    head = _parse_atom_conjunction(tokens)
    tokens.try_take(")")
    if not tokens.at_end():
        raise ParseError("trailing input after tgd", tokens.position(), text)
    return STTgd(body=tuple(body), head=tuple(head), name=name)


# -------------------------------------------------------------- nested tgds


def _looks_like_implication(tokens: _Tokens) -> bool:
    """Heuristically check whether the upcoming parenthesized group is an implication.

    Scans ahead for a ``->`` before the matching close paren at depth 0.
    """
    depth = 0
    index = tokens.index
    while index < len(tokens.tokens):
        token = tokens.tokens[index][0]
        if token == "(":
            depth += 1
        elif token == ")":
            if depth == 0:
                return False
            depth -= 1
        elif token == "->" and depth == 0:
            return True
        index += 1
    return False


def _parse_part(tokens: _Tokens, scope: frozenset[Variable]) -> Part:
    """Parse one implication ``body -> conclusion`` into a :class:`Part`."""
    _skip_forall(tokens)
    body = _parse_atom_conjunction(tokens)
    tokens.expect("->")
    body_vars: dict[Variable, None] = {}
    for atom in body:
        for var in atom.variables():
            if var not in scope:
                body_vars.setdefault(var, None)
    universal = tuple(body_vars)
    inner_scope = scope | set(universal)

    exist_vars = tuple(_parse_exists(tokens))
    head_scope = inner_scope | set(exist_vars)

    head: list[Atom] = []
    children: list[Part] = []
    extra_exists: list[Variable] = []

    def parse_item() -> None:
        nonlocal head_scope
        if tokens.peek() == "(":
            if _looks_like_implication_after_paren(tokens):
                tokens.expect("(")
                children.append(_parse_part(tokens, frozenset(head_scope)))
                tokens.expect(")")
                return
            tokens.expect("(")
            parse_conjunct()
            tokens.expect(")")
            return
        atom = _parse_atom(tokens, allow_terms=False)
        for var in atom.variables():
            if var not in head_scope:
                extra_exists.append(var)
                head_scope = head_scope | {var}
        head.append(atom)

    def parse_conjunct() -> None:
        parse_item()
        while tokens.try_take("&"):
            parse_item()

    parse_conjunct()
    return Part(
        universal_vars=universal,
        body=tuple(body),
        exist_vars=exist_vars + tuple(dict.fromkeys(extra_exists)),
        head=tuple(head),
        children=tuple(children),
    )


def _looks_like_implication_after_paren(tokens: _Tokens) -> bool:
    mark = tokens.save()
    tokens.expect("(")
    result = _looks_like_implication(tokens)
    tokens.restore(mark)
    return result


def parse_nested_tgd(text: str, name: str | None = None) -> NestedTgd:
    """Parse a nested tgd.

    Nested parts are written as parenthesized implications inside a
    conclusion.  Universal variables are inferred per part: a variable of a
    part's body that is not bound by an enclosing part is universally
    quantified at that part.  Existential variables may be declared with
    ``exists y .`` or inferred (head variables not in scope).

        >>> s = parse_nested_tgd(
        ...     "S1(x1) -> exists y1 . ("
        ...     "  (S2(x2) -> R2(y1, x2))"
        ...     "  & (S3(x1, x3) -> R3(y1, x3) & (S4(x3, x4) -> exists y2 . R4(y2, x4)))"
        ...     ")"
        ... )
        >>> s.part_count
        4
    """
    tokens = _Tokens(text)
    root = _parse_part(tokens, frozenset())
    if not tokens.at_end():
        raise ParseError("trailing input after nested tgd", tokens.position(), text)
    return NestedTgd(root, name=name)


# ------------------------------------------------------------------- SO tgds


def _parse_so_clause(tokens: _Tokens) -> SOClause:
    _skip_forall(tokens)
    body: list[Atom] = []
    equalities: list[tuple] = []
    while True:
        token = tokens.peek()
        if token is None:
            raise ParseError("unexpected end of clause", tokens.position(), tokens.text)
        if _is_relation_name(token):
            body.append(_parse_atom(tokens, allow_terms=False))
        else:
            left = _parse_term(tokens)
            tokens.expect("=")
            right = _parse_term(tokens)
            equalities.append((left, right))
        if not tokens.try_take("&"):
            break
    tokens.expect("->")
    tokens.try_take("(")
    head = _parse_atom_conjunction(tokens, allow_terms=True)
    tokens.try_take(")")
    return SOClause(body=tuple(body), equalities=tuple(equalities), head=tuple(head))


def parse_so_tgd(text: str, name: str | None = None) -> SOTgd:
    """Parse an SO tgd; clauses are separated by ``;``.

        >>> s = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
        >>> s.functions
        ('f',)
    """
    tokens = _Tokens(text)
    clauses = [_parse_so_clause(tokens)]
    while tokens.try_take(";"):
        clauses.append(_parse_so_clause(tokens))
    if not tokens.at_end():
        raise ParseError("trailing input after SO tgd", tokens.position(), text)
    functions: set[str] = set()
    for clause in clauses:
        functions |= clause.function_symbols()
    return SOTgd(functions=tuple(sorted(functions)), clauses=tuple(clauses), name=name)


# ---------------------------------------------------------------------- egds


def parse_egd(text: str, name: str | None = None) -> Egd:
    """Parse an egd, e.g. ``"S(x,y) & S(x,z) -> y = z"``."""
    tokens = _Tokens(text)
    _skip_forall(tokens)
    body = _parse_atom_conjunction(tokens)
    tokens.expect("->")
    left = _parse_plain_variable(tokens)
    tokens.expect("=")
    right = _parse_plain_variable(tokens)
    if not tokens.at_end():
        raise ParseError("trailing input after egd", tokens.position(), text)
    return Egd(body=tuple(body), left=left, right=right, name=name)


# ----------------------------------------------------------------- instances


def _parse_value(tokens: _Tokens):
    name = tokens.next()
    if name.startswith("_"):
        return Null(name[1:] or name)
    return Constant(name)


def parse_instance(text: str) -> Instance:
    """Parse an instance: comma-separated facts with constant/null arguments.

        >>> inst = parse_instance("S(a, b), R(a, _n1)")
        >>> len(inst)
        2
    """
    tokens = _Tokens(text)
    facts: list[Atom] = []
    if tokens.at_end():
        return Instance()
    while True:
        pos = tokens.position()
        name = tokens.next()
        if not _is_relation_name(name):
            raise ParseError(
                f"expected a relation name, got {name!r}", pos, text, token=name
            )
        tokens.expect("(")
        args: list = []
        if tokens.peek() != ")":
            args.append(_parse_value(tokens))
            while tokens.try_take(","):
                args.append(_parse_value(tokens))
        tokens.expect(")")
        facts.append(Atom(name, tuple(args)))
        if not tokens.try_take(","):
            break
    if not tokens.at_end():
        raise ParseError("trailing input after instance", tokens.position(), text)
    return Instance(facts)


__all__ = [
    "parse_atom",
    "parse_tgd",
    "parse_nested_tgd",
    "parse_so_tgd",
    "parse_egd",
    "parse_instance",
]
