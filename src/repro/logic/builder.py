"""A fluent programmatic construction API for dependencies.

The text parser is convenient for literals; this builder is convenient when
dependencies are constructed by code (generators, reductions, tests):

    >>> from repro.logic.builder import Rel, variables
    >>> x, y, z = variables("x y z")
    >>> S, R = Rel("S"), Rel("R")
    >>> tgd = make_tgd([S(x, y)], [R(x, z)])
    >>> tgd.existential_variables
    (?z,)

Nested tgds are built from :func:`part` trees:

    >>> sigma = make_nested(
    ...     part([S(x, y)], exists=[z], head=[R(z, y)],
    ...          children=[part([S(x, var("w"))], head=[R(z, var("w"))])]))
    >>> sigma.part_count
    2
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.nested import NestedTgd, Part
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import FuncTerm
from repro.logic.tgds import STTgd
from repro.logic.values import Variable


def var(name: str) -> Variable:
    """A single variable."""
    return Variable(name)


def variables(names: str) -> tuple[Variable, ...]:
    """Variables from a space-separated name list: ``variables("x y z")``."""
    return tuple(Variable(name) for name in names.split())


class Rel:
    """A relation-name handle: calling it builds an atom.

        >>> Rel("S")(Variable("x"), Variable("y"))
        S(?x, ?y)
    """

    def __init__(self, name: str):
        if not name or not name[0].isupper():
            raise DependencyError(
                f"relation names start with an upper-case letter, got {name!r}"
            )
        self.name = name

    def __call__(self, *args) -> Atom:
        return Atom(self.name, tuple(args))

    def __repr__(self) -> str:
        return f"Rel({self.name!r})"


class Fun:
    """A function-symbol handle for SO tgd terms: calling it builds a term.

        >>> Fun("f")(Variable("x"))
        f(?x)
    """

    def __init__(self, name: str):
        if not name or not (name[0].islower() or name[0] == "_"):
            raise DependencyError(
                f"function names start with a lower-case letter, got {name!r}"
            )
        self.name = name

    def __call__(self, *args) -> FuncTerm:
        return FuncTerm(self.name, tuple(args))

    def __repr__(self) -> str:
        return f"Fun({self.name!r})"


def make_tgd(body: Iterable[Atom], head: Iterable[Atom], name: str | None = None) -> STTgd:
    """Build an s-t tgd; existential variables are inferred from the head."""
    return STTgd(body=tuple(body), head=tuple(head), name=name)


def part(
    body: Iterable[Atom],
    head: Iterable[Atom] = (),
    exists: Iterable[Variable] = (),
    children: Iterable[Part] = (),
    scope: Iterable[Variable] = (),
) -> Part:
    """Build one nested-tgd part.

    Universal variables are inferred: the body variables not listed in
    *scope* (the variables bound by enclosing parts).  When building a tree
    bottom-up, pass each part's inherited variables via *scope*; when in
    doubt, the enclosing :func:`make_nested` re-infers scoping from the tree
    structure, so *scope* only matters for variables deliberately shared with
    an ancestor.
    """
    body = tuple(body)
    scope_set = set(scope)
    seen: dict[Variable, None] = {}
    for atom in body:
        for variable in atom.variables():
            if variable not in scope_set:
                seen.setdefault(variable, None)
    return Part(
        universal_vars=tuple(seen),
        body=body,
        exist_vars=tuple(exists),
        head=tuple(head),
        children=tuple(children),
    )


def make_nested(root: Part, name: str | None = None) -> NestedTgd:
    """Build a nested tgd from a part tree, re-inferring per-part scoping.

    Variables bound by an ancestor part are removed from each descendant's
    universal list (so :func:`part` can be used without threading *scope*).
    """

    def rescope(node: Part, bound: frozenset[Variable]) -> Part:
        universal = tuple(v for v in node.universal_vars if v not in bound)
        new_bound = bound | set(universal) | set(node.exist_vars)
        return Part(
            universal_vars=universal,
            body=node.body,
            exist_vars=node.exist_vars,
            head=node.head,
            children=tuple(rescope(child, new_bound) for child in node.children),
        )

    return NestedTgd(rescope(root, frozenset()), name=name)


def make_so_tgd(
    clauses: Sequence[tuple],
    name: str | None = None,
) -> SOTgd:
    """Build an SO tgd from ``(body, head)`` or ``(body, equalities, head)`` tuples.

        >>> x, y = variables("x y")
        >>> S, R, f = Rel("S"), Rel("R"), Fun("f")
        >>> so = make_so_tgd([([S(x, y)], [R(f(x), f(y))])])
        >>> so.is_plain()
        True
    """
    built: list[SOClause] = []
    functions: set[str] = set()
    for item in clauses:
        if len(item) == 2:
            body, head = item
            equalities: tuple = ()
        elif len(item) == 3:
            body, equalities, head = item
        else:
            raise DependencyError(
                "each clause is (body, head) or (body, equalities, head)"
            )
        clause = SOClause(
            body=tuple(body), equalities=tuple(equalities), head=tuple(head)
        )
        built.append(clause)
        functions |= clause.function_symbols()
    return SOTgd(functions=tuple(sorted(functions)), clauses=tuple(built), name=name)


__all__ = [
    "var",
    "variables",
    "Rel",
    "Fun",
    "make_tgd",
    "part",
    "make_nested",
    "make_so_tgd",
]
