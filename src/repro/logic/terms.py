"""Function (Skolem) terms.

Terms are defined recursively as in Section 2 of the paper: every variable is
a term, and if ``f`` is a k-ary function symbol and ``t1 ... tk`` are terms,
then ``f(t1, ..., tk)`` is a term.  In this library, terms may also contain
constants and nulls so that *ground* terms (no variables) can serve as the
null labels produced by the chase.

A term is *nested* when a functional term has another functional term among
its arguments.  Plain SO tgds forbid nested terms (Section 2).

:class:`FuncTerm` is hash-consed (see :mod:`repro.logic.intern`): structurally
equal terms are the same object, and the hash is computed once at intern time.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.logic import intern
from repro.logic.values import Variable

_TERMS = intern.new_table()


class FuncTerm:
    """A functional term ``function(*args)``.

    ``args`` may contain :class:`Variable` (in dependencies) or values
    (constants / nulls / ground FuncTerms, in chase results).  Ground
    functional terms are hashable and act as labeled nulls.
    """

    __slots__ = ("function", "args", "_hash", "_dense_id", "__weakref__")

    function: str
    args: tuple

    def __new__(cls, function: str, args: tuple) -> "FuncTerm":
        if not isinstance(args, tuple):
            args = tuple(args)
        key = (function, args)
        existing = _TERMS.get(key)
        if existing is not None:
            intern.note_hit()
            return existing
        candidate = object.__new__(cls)
        object.__setattr__(candidate, "function", function)
        object.__setattr__(candidate, "args", args)
        object.__setattr__(candidate, "_hash", hash(key))
        object.__setattr__(candidate, "_dense_id", intern.next_dense_id("FuncTerm"))
        return intern.intern_into(_TERMS, key, candidate)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("FuncTerm is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("FuncTerm is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        return (FuncTerm, (self.function, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def dense_id(self) -> int:
        """The per-kind dense intern id (see :func:`repro.logic.intern.next_dense_id`)."""
        return self._dense_id

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.function}({inner})"


Term = Any  # Variable | Constant | Null | FuncTerm


def is_ground(term: Term) -> bool:
    """Return True if *term* contains no variables."""
    if isinstance(term, Variable):
        return False
    if isinstance(term, FuncTerm):
        return all(is_ground(arg) for arg in term.args)
    return True


def is_nested(term: Term) -> bool:
    """Return True if *term* is a functional term with a functional argument."""
    return isinstance(term, FuncTerm) and any(isinstance(a, FuncTerm) for a in term.args)


def term_variables(term: Term) -> Iterator[Variable]:
    """Yield the variables of *term* in left-to-right order (with repetition)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, FuncTerm):
        for arg in term.args:
            yield from term_variables(arg)


def term_functions(term: Term) -> Iterator[str]:
    """Yield the function symbols of *term* in outside-in order (with repetition)."""
    if isinstance(term, FuncTerm):
        yield term.function
        for arg in term.args:
            yield from term_functions(arg)


def substitute_term(term: Term, assignment: dict) -> Term:
    """Replace variables in *term* according to *assignment* (a Variable -> value map).

    Variables missing from the assignment are left in place, so the result of a
    partial substitution is again a term.
    """
    if isinstance(term, Variable):
        return assignment.get(term, term)
    if isinstance(term, FuncTerm):
        return FuncTerm(term.function, tuple(substitute_term(a, assignment) for a in term.args))
    return term


def rename_term_functions(term: Term, renaming: dict) -> Term:
    """Rename function symbols in *term* according to *renaming* (str -> str map)."""
    if isinstance(term, FuncTerm):
        new_args = tuple(rename_term_functions(a, renaming) for a in term.args)
        return FuncTerm(renaming.get(term.function, term.function), new_args)
    return term


__all__ = [
    "FuncTerm",
    "Term",
    "is_ground",
    "is_nested",
    "term_variables",
    "term_functions",
    "substitute_term",
    "rename_term_functions",
]
