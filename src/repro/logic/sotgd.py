"""Second-order tuple-generating dependencies (SO tgds) and plain SO tgds.

An SO tgd (Section 2 of the paper) has the form

    exists f ( (forall x1 (phi_1 -> psi_1)) & ... & (forall xn (phi_n -> psi_n)) )

where each ``phi_i`` is a conjunction of source atoms over variables plus
equalities between terms, and each ``psi_i`` is a conjunction of target atoms
whose arguments are terms over the variables and the function symbols ``f``.

A *plain* SO tgd contains no nested terms (no functional term with a
functional argument) and no equalities.  Every Skolemized nested tgd is a
plain SO tgd; every plain SO tgd is an SO tgd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DependencyError
from repro.logic.atoms import Atom, atoms_variables
from repro.logic.schema import Schema, infer_schema
from repro.logic.terms import (
    FuncTerm,
    is_nested,
    term_functions,
    term_variables,
)
from repro.logic.values import Variable


@dataclass(frozen=True)
class SOClause:
    """One implication ``forall x (body & equalities -> head)`` of an SO tgd.

    ``body`` atoms are source atoms over variables only.  ``equalities`` is a
    tuple of ``(term, term)`` pairs.  ``head`` atoms are target atoms whose
    arguments are terms (variables or functional terms).
    """

    body: tuple[Atom, ...]
    equalities: tuple[tuple, ...]
    head: tuple[Atom, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "equalities", tuple(tuple(e) for e in self.equalities))
        object.__setattr__(self, "head", tuple(self.head))
        if not self.body:
            raise DependencyError("an SO tgd clause needs at least one body atom")
        for atom in self.body:
            for arg in atom.args:
                if not isinstance(arg, Variable):
                    raise DependencyError(
                        f"body atom {atom!r} must have variable arguments, got {arg!r}"
                    )
        universal = atoms_variables(self.body)
        for atom in self.head:
            for var in atom.variables():
                if var not in universal:
                    raise DependencyError(
                        f"head atom {atom!r} uses variable {var!r} not occurring in the body"
                    )
        for left, right in self.equalities:
            for term in (left, right):
                for var in term_variables(term):
                    if var not in universal:
                        raise DependencyError(
                            f"equality term {term!r} uses variable {var!r} "
                            "not occurring in the body"
                        )

    @property
    def universal_variables(self) -> tuple[Variable, ...]:
        """The clause's variables, in order of first body occurrence."""
        seen: dict[Variable, None] = {}
        for atom in self.body:
            for var in atom.variables():
                seen.setdefault(var, None)
        return tuple(seen)

    def terms(self) -> Iterator:
        """Yield every term occurring in the head or an equality."""
        for atom in self.head:
            yield from atom.args
        for left, right in self.equalities:
            yield left
            yield right

    def function_symbols(self) -> frozenset[str]:
        """The function symbols used in this clause."""
        result: set[str] = set()
        for term in self.terms():
            result.update(term_functions(term))
        return frozenset(result)

    def has_nested_terms(self) -> bool:
        """True if some head/equality term is a functional term with functional argument."""
        return any(is_nested(t) for t in self.terms())


class SOTgd:
    """A second-order tgd: existential function symbols plus a set of clauses.

        >>> from repro.logic.parser import parse_so_tgd
        >>> s = parse_so_tgd("S(x, y) -> R(f(x), f(y))")
        >>> s.is_plain()
        True
    """

    def __init__(
        self,
        functions: Iterable[str],
        clauses: Iterable[SOClause],
        name: str | None = None,
    ):
        self.name = name
        self._functions = tuple(functions)
        self._clauses = tuple(clauses)
        if not self._clauses:
            raise DependencyError("an SO tgd needs at least one clause")
        declared = set(self._functions)
        used: set[str] = set()
        arities: dict[str, int] = {}
        for clause in self._clauses:
            used |= clause.function_symbols()
            for term in clause.terms():
                self._collect_arities(term, arities)
        undeclared = used - declared
        if undeclared:
            raise DependencyError(f"function symbols used but not quantified: {undeclared}")
        self._arities = arities
        body_rels = {a.relation for c in self._clauses for a in c.body}
        head_rels = {a.relation for c in self._clauses for a in c.head}
        if body_rels & head_rels:
            raise DependencyError(
                f"source and target schemas must be disjoint; shared: {body_rels & head_rels}"
            )

    @staticmethod
    def _collect_arities(term, arities: dict[str, int]) -> None:
        if isinstance(term, FuncTerm):
            existing = arities.get(term.function)
            if existing is not None and existing != term.arity:
                raise DependencyError(
                    f"function {term.function!r} used with arities {existing} and {term.arity}"
                )
            arities[term.function] = term.arity
            for arg in term.args:
                SOTgd._collect_arities(arg, arities)

    # ---------------------------------------------------------------- structure

    @property
    def functions(self) -> tuple[str, ...]:
        return self._functions

    @property
    def clauses(self) -> tuple[SOClause, ...]:
        return self._clauses

    def function_arity(self, name: str) -> int:
        """The arity of the existentially quantified function *name*."""
        return self._arities[name]

    def is_plain(self) -> bool:
        """True if the SO tgd has no equalities and no nested terms (Section 2)."""
        return all(
            not clause.equalities and not clause.has_nested_terms() for clause in self._clauses
        )

    def max_universal_variables(self) -> int:
        """The maximum number of universal variables in any clause."""
        return max(len(c.universal_variables) for c in self._clauses)

    def source_schema(self) -> Schema:
        """The schema inferred from all clause bodies."""
        return infer_schema(a for c in self._clauses for a in c.body)

    def target_schema(self) -> Schema:
        """The schema inferred from all clause heads."""
        return infer_schema(a for c in self._clauses for a in c.head)

    # ----------------------------------------------------------------- dunders

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SOTgd):
            return NotImplemented
        return self._functions == other._functions and self._clauses == other._clauses

    def __hash__(self) -> int:
        return hash((self._functions, self._clauses))

    def __repr__(self) -> str:
        from repro.logic.printer import format_so_tgd

        return format_so_tgd(self)


__all__ = ["SOClause", "SOTgd"]
