"""Equality-generating dependencies (egds) and key dependencies.

An egd is a first-order sentence ``forall x ( phi(x) -> x_i = x_j )`` where
``phi`` is a conjunction of atoms over a single schema and ``x_i, x_j`` occur
in ``phi``.  Section 5 of the paper studies schema mappings whose *source*
schema carries egds (in particular key dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import DependencyError
from repro.logic.atoms import Atom, atoms_variables
from repro.logic.values import Variable


@dataclass(frozen=True)
class Egd:
    """An egd ``body -> left = right`` with ``left``/``right`` body variables."""

    body: tuple[Atom, ...]
    left: Variable
    right: Variable
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise DependencyError("an egd needs at least one body atom")
        for atom in self.body:
            for arg in atom.args:
                if not isinstance(arg, Variable):
                    raise DependencyError(
                        f"egd body atom {atom!r} has non-variable argument {arg!r}"
                    )
        body_vars = atoms_variables(self.body)
        for var in (self.left, self.right):
            if var not in body_vars:
                raise DependencyError(
                    f"egd equality variable {var!r} does not occur in the body"
                )

    def __repr__(self) -> str:
        from repro.logic.printer import format_egd

        return format_egd(self)


def key_dependency(relation: str, arity: int, key_positions: Iterable[int]) -> list[Egd]:
    """Build the egds expressing that *key_positions* form a key of *relation*.

    One egd per non-key position: two tuples agreeing on the key positions
    must agree everywhere.

        >>> egds = key_dependency("S", 2, [1])
        >>> len(egds)  # position 0 is determined by position 1
        1
    """
    key_positions = sorted(set(key_positions))
    for pos in key_positions:
        if not 0 <= pos < arity:
            raise DependencyError(f"key position {pos} out of range for arity {arity}")
    xs = tuple(Variable(f"x{i}") for i in range(arity))
    ys = tuple(
        xs[i] if i in key_positions else Variable(f"y{i}") for i in range(arity)
    )
    atom_x = Atom(relation, xs)
    atom_y = Atom(relation, ys)
    egds: list[Egd] = []
    for i in range(arity):
        if i in key_positions:
            continue
        egds.append(
            Egd(
                body=(atom_x, atom_y),
                left=xs[i],
                right=ys[i],
                name=f"key_{relation}_{i}",
            )
        )
    return egds


class KeyDependency:
    """A key constraint on a relation, materialized as a set of egds.

    The paper's Theorem 5.1 uses a single source key dependency stating that
    "each element has a unique predecessor" in the successor relation ``S``;
    that is ``KeyDependency("S", 2, key=[1])``.
    """

    def __init__(self, relation: str, arity: int, key: Iterable[int]):
        self.relation = relation
        self.arity = arity
        self.key = tuple(sorted(set(key)))
        self.egds = tuple(key_dependency(relation, arity, self.key))

    def __iter__(self):
        return iter(self.egds)

    def __repr__(self) -> str:
        return f"KeyDependency({self.relation}/{self.arity}, key={list(self.key)})"


__all__ = ["Egd", "KeyDependency", "key_dependency"]
