"""Constants, labeled nulls, and first-order variables.

Following Section 2 of the paper, the active domain of a source instance
consists of *constants* only, while target instances may additionally contain
*(labeled) nulls*.  Dependencies are written with *variables*.

A fourth kind of domain element, the ground Skolem term (:class:`FuncTerm`
from :mod:`repro.logic.terms` with value arguments only), also acts as a null:
the chase instantiates existential variables with Skolem terms and "Skolem
terms are considered as null labels" (Section 3).  The predicate
:func:`is_null` therefore treats everything that is not a :class:`Constant`
as a null.

All three classes are hash-consed through :mod:`repro.logic.intern`:
``Constant("a") is Constant("a")``, equality is pointer identity, and the
structural hash is computed once at intern time.  Pickling re-interns.
"""

from __future__ import annotations

from typing import Any

from repro.logic import intern

_CONSTANTS = intern.new_table()
_NULLS = intern.new_table()
_VARIABLES = intern.new_table()


class _InternedLeaf:
    """Shared machinery of the three interned single-field value classes."""

    __slots__ = ("name", "_hash", "_dense_id", "__weakref__")

    name: Any
    _hash: int
    _dense_id: int

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        return (type(self), (self.name,))

    @property
    def dense_id(self) -> int:
        """The per-kind dense intern id (see :func:`repro.logic.intern.next_dense_id`)."""
        return self._dense_id


def _intern_leaf(cls: type, table: Any, name: object) -> Any:
    existing = table.get(name)
    if existing is not None:
        intern.note_hit()
        return existing
    candidate = object.__new__(cls)
    object.__setattr__(candidate, "name", name)
    object.__setattr__(candidate, "_hash", hash((name,)))
    object.__setattr__(candidate, "_dense_id", intern.next_dense_id(cls.__name__))
    return intern.intern_into(table, name, candidate)


class Constant(_InternedLeaf):
    """A rigid constant.  Homomorphisms are the identity on constants."""

    __slots__ = ()

    def __new__(cls, name: object) -> "Constant":
        return _intern_leaf(cls, _CONSTANTS, name)

    def __repr__(self) -> str:
        return f"{self.name}"


class Null(_InternedLeaf):
    """A labeled null, i.e. an existential placeholder in a target instance."""

    __slots__ = ()

    def __new__(cls, name: object) -> "Null":
        return _intern_leaf(cls, _NULLS, name)

    def __repr__(self) -> str:
        return f"_{self.name}"


class Variable(_InternedLeaf):
    """A first-order variable occurring in a dependency (never in an instance)."""

    __slots__ = ()

    def __new__(cls, name: str) -> "Variable":
        return _intern_leaf(cls, _VARIABLES, name)

    def __repr__(self) -> str:
        return f"?{self.name}"


#: ``(Null, FuncTerm)``, cached on first use -- :mod:`repro.logic.terms`
#: imports this module, so the pair cannot be built at import time, and
#: re-importing inside :func:`is_null` (one of the hottest predicates in the
#: engine) costs more than the isinstance check itself.
_NULL_KINDS: tuple[type, ...] | None = None


def _null_kinds() -> tuple[type, ...]:
    global _NULL_KINDS
    if _NULL_KINDS is None:
        from repro.logic.terms import FuncTerm

        _NULL_KINDS = (Null, FuncTerm)
    return _NULL_KINDS


def is_value(obj: Any) -> bool:
    """Return True if *obj* may appear in an instance (constant, null, or ground term)."""
    from repro.logic.terms import is_ground

    if isinstance(obj, (Constant, Null)):
        return True
    return isinstance(obj, _null_kinds()[1]) and is_ground(obj)


def is_null(obj: Any) -> bool:
    """Return True if *obj* acts as a null (anything in an instance that is not a constant).

    Both :class:`Null` objects and ground Skolem terms qualify; homomorphisms
    may move them, whereas constants are fixed.
    """
    kinds = _NULL_KINDS
    return isinstance(obj, kinds if kinds is not None else _null_kinds())


class FreshValueFactory:
    """Deterministic factory for fresh constants and nulls.

    Every construction in the library that needs "fresh" domain elements
    (canonical instances of patterns, chase steps, workload generators) draws
    them from a factory so that runs are reproducible and independent
    constructions never collide by accident.
    """

    def __init__(self, constant_prefix: str = "a", null_prefix: str = "n"):
        self._constant_prefix = constant_prefix
        self._null_prefix = null_prefix
        self._constant_counter = 0
        self._null_counter = 0

    def constant(self) -> Constant:
        """Return a fresh constant, distinct from all previously returned ones."""
        self._constant_counter += 1
        return Constant(f"{self._constant_prefix}{self._constant_counter}")

    def null(self) -> Null:
        """Return a fresh labeled null, distinct from all previously returned ones."""
        self._null_counter += 1
        return Null(f"{self._null_prefix}{self._null_counter}")

    def clone(self) -> "FreshValueFactory":
        """Return an independent factory that continues this one's numbering.

        The incremental IMPLIES sweep branches a pattern's canonical-instance
        state into several children; each child clones the factory so sibling
        extensions draw the same (deterministic) fresh names without sharing
        mutable state.
        """
        twin = FreshValueFactory(self._constant_prefix, self._null_prefix)
        twin._constant_counter = self._constant_counter
        twin._null_counter = self._null_counter
        return twin
