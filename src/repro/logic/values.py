"""Constants, labeled nulls, and first-order variables.

Following Section 2 of the paper, the active domain of a source instance
consists of *constants* only, while target instances may additionally contain
*(labeled) nulls*.  Dependencies are written with *variables*.

A fourth kind of domain element, the ground Skolem term (:class:`FuncTerm`
from :mod:`repro.logic.terms` with value arguments only), also acts as a null:
the chase instantiates existential variables with Skolem terms and "Skolem
terms are considered as null labels" (Section 3).  The predicate
:func:`is_null` therefore treats everything that is not a :class:`Constant`
as a null.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Constant:
    """A rigid constant.  Homomorphisms are the identity on constants."""

    name: object

    def __repr__(self) -> str:
        return f"{self.name}"


@dataclass(frozen=True, slots=True)
class Null:
    """A labeled null, i.e. an existential placeholder in a target instance."""

    name: object

    def __repr__(self) -> str:
        return f"_{self.name}"


@dataclass(frozen=True, slots=True)
class Variable:
    """A first-order variable occurring in a dependency (never in an instance)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


def is_value(obj: Any) -> bool:
    """Return True if *obj* may appear in an instance (constant, null, or ground term)."""
    from repro.logic.terms import FuncTerm, is_ground

    if isinstance(obj, (Constant, Null)):
        return True
    return isinstance(obj, FuncTerm) and is_ground(obj)


def is_null(obj: Any) -> bool:
    """Return True if *obj* acts as a null (anything in an instance that is not a constant).

    Both :class:`Null` objects and ground Skolem terms qualify; homomorphisms
    may move them, whereas constants are fixed.
    """
    from repro.logic.terms import FuncTerm

    return isinstance(obj, (Null, FuncTerm))


class FreshValueFactory:
    """Deterministic factory for fresh constants and nulls.

    Every construction in the library that needs "fresh" domain elements
    (canonical instances of patterns, chase steps, workload generators) draws
    them from a factory so that runs are reproducible and independent
    constructions never collide by accident.
    """

    def __init__(self, constant_prefix: str = "a", null_prefix: str = "n"):
        self._constant_prefix = constant_prefix
        self._null_prefix = null_prefix
        self._constant_counter = 0
        self._null_counter = 0

    def constant(self) -> Constant:
        """Return a fresh constant, distinct from all previously returned ones."""
        self._constant_counter += 1
        return Constant(f"{self._constant_prefix}{self._constant_counter}")

    def null(self) -> Null:
        """Return a fresh labeled null, distinct from all previously returned ones."""
        self._null_counter += 1
        return Null(f"{self._null_prefix}{self._null_counter}")
