"""Finite relational instances.

An instance is a finite set of facts (Section 2).  :class:`Instance` stores
the facts in a frozen set and maintains three indexes used throughout the
engine:

- a per-relation index (``facts_of``), used by conjunctive-query matching and
  the chase;
- a per-(relation, position, value) index (``facts_with``), used to seed
  backtracking joins;
- a per-value reverse index (``facts_containing``), used by the core engine
  to exclude the facts of a null being eliminated without rebuilding the
  instance.

Both indexes store (and return) *tuples*: callers receive the index entries
themselves, and immutability guarantees they cannot corrupt them.

Instances are immutable: all "modifying" operations return new instances.
The mutable companion used by the chase engines to grow instances
incrementally is :class:`repro.engine.builder.InstanceBuilder`; it maintains
the same indexes under insertion and freezes into an :class:`Instance`
without re-indexing.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Iterable, Iterator, Mapping

from repro.logic.atoms import Atom
from repro.logic.schema import Schema, infer_schema
from repro.logic.values import Constant, is_null

_EMPTY: tuple = ()


class Instance:
    """An immutable finite set of facts with lookup indexes."""

    __slots__ = (
        "_facts", "_by_relation", "_by_position", "_by_value", "_nulls",
        "_constants", "_hash",
    )

    def __init__(self, facts: Iterable[Atom] = ()):
        self._facts: frozenset[Atom] = frozenset(facts)
        by_relation: dict[str, list[Atom]] = defaultdict(list)
        by_position: dict[tuple, list[Atom]] = defaultdict(list)
        by_value: dict[object, list[Atom]] = defaultdict(list)
        nulls: set = set()
        constants: set = set()
        for fact in self._facts:
            by_relation[fact.relation].append(fact)
            seen_args: set = set()
            for pos, value in enumerate(fact.args):
                by_position[(fact.relation, pos, value)].append(fact)
                if value not in seen_args:
                    seen_args.add(value)
                    by_value[value].append(fact)
                if isinstance(value, Constant):
                    constants.add(value)
                else:
                    nulls.add(value)
        self._by_relation = {rel: tuple(fs) for rel, fs in by_relation.items()}
        self._by_position = {key: tuple(fs) for key, fs in by_position.items()}
        self._by_value = {val: tuple(fs) for val, fs in by_value.items()}
        self._nulls = frozenset(nulls)
        self._constants = frozenset(constants)
        self._hash: int | None = None

    @classmethod
    def _from_indexes(
        cls,
        facts: frozenset[Atom],
        by_relation: dict[str, tuple[Atom, ...]],
        by_position: dict[tuple, tuple[Atom, ...]],
        by_value: dict[object, tuple[Atom, ...]],
        nulls: frozenset,
        constants: frozenset,
    ) -> "Instance":
        """Adopt pre-built indexes without re-indexing (InstanceBuilder.freeze).

        The caller is responsible for consistency; the indexes are adopted,
        not copied.
        """
        instance = cls.__new__(cls)
        instance._facts = facts
        instance._by_relation = by_relation
        instance._by_position = by_position
        instance._by_value = by_value
        instance._nulls = nulls
        instance._constants = constants
        instance._hash = None
        return instance

    # ------------------------------------------------------------------ basics

    @property
    def facts(self) -> frozenset[Atom]:
        return self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._facts)
        return self._hash

    def __repr__(self) -> str:
        shown = sorted(self._facts, key=repr)
        if len(shown) <= 8:
            inner = ", ".join(repr(f) for f in shown)
        else:
            inner = ", ".join(repr(f) for f in shown[:8]) + f", ... ({len(shown)} facts)"
        return f"Instance{{{inner}}}"

    def __le__(self, other: "Instance") -> bool:
        """Subinstance test: every fact of self is a fact of *other*."""
        return self._facts <= other._facts

    # ------------------------------------------------------------------ lookups

    def relations(self) -> frozenset[str]:
        """Return the names of relations with at least one fact."""
        return frozenset(self._by_relation)

    def facts_of(self, relation: str) -> tuple[Atom, ...]:
        """Return the facts of *relation* (empty tuple if none)."""
        return self._by_relation.get(relation, _EMPTY)

    def facts_with(self, relation: str, position: int, value) -> tuple[Atom, ...]:
        """Return the facts of *relation* whose argument at *position* is *value*."""
        return self._by_position.get((relation, position, value), _EMPTY)

    def facts_containing(self, value) -> tuple[Atom, ...]:
        """Return the facts with *value* as a (top-level) argument, each once."""
        return self._by_value.get(value, _EMPTY)

    def active_domain(self) -> frozenset:
        """Return all values occurring in some fact."""
        return self._constants | self._nulls

    def constants(self) -> frozenset[Constant]:
        """Return the constants occurring in some fact."""
        return self._constants

    def nulls(self) -> frozenset:
        """Return the nulls (labeled nulls and ground Skolem terms) occurring in some fact."""
        return self._nulls

    def schema(self) -> Schema:
        """Return the schema inferred from the facts present."""
        return infer_schema(self._facts)

    def is_ground(self) -> bool:
        """Return True if the instance contains no nulls."""
        return not self._nulls

    # ------------------------------------------------------------- construction

    def union(self, other: "Instance | Iterable[Atom]") -> "Instance":
        """Return the union of this instance with *other*."""
        other_facts = other.facts if isinstance(other, Instance) else frozenset(other)
        return Instance(self._facts | other_facts)

    def difference(self, other: "Instance | Iterable[Atom]") -> "Instance":
        """Return this instance minus the facts of *other*."""
        other_facts = other.facts if isinstance(other, Instance) else frozenset(other)
        return Instance(self._facts - other_facts)

    def restrict(self, predicate: Callable[[Atom], bool]) -> "Instance":
        """Return the subinstance of facts satisfying *predicate*."""
        return Instance(f for f in self._facts if predicate(f))

    def restrict_to_relations(self, names: Iterable[str]) -> "Instance":
        """Return the subinstance over the given relation names."""
        names = set(names)
        return Instance(f for f in self._facts if f.relation in names)

    def map_values(self, mapping: Mapping) -> "Instance":
        """Apply a value -> value map to all facts (identity outside the map's domain).

        This is how a homomorphism ``h`` is applied to an instance: the result
        is ``h(J)``.
        """
        return Instance(f.rename_values(dict(mapping)) for f in self._facts)

    # -------------------------------------------------------------- comparisons

    def _degree_profiles(self) -> dict:
        """Map each value to its occurrence profile: a multiset of (relation, position).

        Any isomorphism preserves profiles, so they both prune obviously
        non-isomorphic pairs early and restrict bijection candidates.
        """
        profiles: dict[object, Counter] = defaultdict(Counter)
        for (relation, pos, value), facts in self._by_position.items():
            profiles[value][(relation, pos)] += len(facts)
        return {value: frozenset(c.items()) for value, c in profiles.items()}

    def isomorphic(self, other: "Instance", *, rename_constants: bool = False) -> bool:
        """Decide whether this instance is isomorphic to *other*.

        With ``rename_constants=False`` (the default), the bijection must be
        the identity on constants and only renames nulls.  With
        ``rename_constants=True``, constants may be renamed to constants as
        well -- this is the "unique up to renaming of constants" notion used
        for canonical instances of patterns (Definition 3.7).
        """
        if len(self) != len(other):
            return False
        if sorted((f.relation, f.arity) for f in self) != sorted(
            (f.relation, f.arity) for f in other
        ):
            return False
        if not rename_constants and self._constants != other._constants:
            return False

        # Degree-profile pruning: a bijection maps each value to a value with
        # the same (relation, position) occurrence profile, so mismatched
        # profile multisets reject without any search, and candidate lists
        # shrink to profile-equal values.
        self_profiles = self._degree_profiles()
        other_profiles = other._degree_profiles()
        if Counter(self_profiles[v] for v in self._nulls) != Counter(
            other_profiles[v] for v in other._nulls
        ):
            return False
        if rename_constants:
            if Counter(self_profiles[v] for v in self._constants) != Counter(
                other_profiles[v] for v in other._constants
            ):
                return False
        elif any(self_profiles[c] != other_profiles[c] for c in self._constants):
            return False

        self_vals = sorted(self.active_domain(), key=repr)
        if not rename_constants:
            self_vals = [v for v in self_vals if is_null(v)]

        other_nulls = sorted(other.nulls(), key=repr)
        other_consts = sorted(other.constants(), key=repr)

        def candidates(value) -> list:
            profile = self_profiles[value]
            if is_null(value):
                return [v for v in other_nulls if other_profiles[v] == profile]
            if rename_constants:
                return [v for v in other_consts if other_profiles[v] == profile]
            return [value]

        other_facts = other.facts

        def extend(index: int, mapping: dict, used: set) -> bool:
            if index == len(self_vals):
                image = {f.rename_values(mapping) for f in self._facts}
                return image == other_facts
            value = self_vals[index]
            for cand in candidates(value):
                if cand in used:
                    continue
                mapping[value] = cand
                used.add(cand)
                if extend(index + 1, mapping, used):
                    return True
                used.discard(cand)
                del mapping[value]
            return False

        return extend(0, {}, set())


def union_all(instances: Iterable[Instance]) -> Instance:
    """Return the union of all given instances."""
    facts: set[Atom] = set()
    for inst in instances:
        facts.update(inst.facts)
    return Instance(facts)


__all__ = ["Instance", "union_all"]
