"""Relational atoms.

An atom ``R(t1, ..., tn)`` pairs a relation name with a tuple of arguments.
In a dependency, arguments are variables, constants, or (for SO tgds) function
terms; in an instance, arguments are values (constants, nulls, ground terms),
in which case the atom is a *fact*.

:class:`Atom` is hash-consed (see :mod:`repro.logic.intern`): structurally
equal atoms are the same object, so fact-set membership and join equality
checks in the engine reduce to pointer comparisons.  The variable set of an
atom is computed once per interned atom and cached.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.logic import intern
from repro.logic.terms import FuncTerm, is_ground, substitute_term, term_variables
from repro.logic.values import Constant, Null, Variable

_ATOMS = intern.new_table()


class Atom:
    """An atom ``relation(*args)``; immutable, hashable, and interned."""

    __slots__ = ("relation", "args", "_hash", "_varset", "_dense_id", "__weakref__")

    relation: str
    args: tuple

    def __new__(cls, relation: str, args: tuple) -> "Atom":
        if not isinstance(args, tuple):
            args = tuple(args)
        key = (relation, args)
        existing = _ATOMS.get(key)
        if existing is not None:
            intern.note_hit()
            return existing
        candidate = object.__new__(cls)
        object.__setattr__(candidate, "relation", relation)
        object.__setattr__(candidate, "args", args)
        object.__setattr__(candidate, "_hash", hash(key))
        object.__setattr__(candidate, "_varset", None)
        object.__setattr__(candidate, "_dense_id", intern.next_dense_id("Atom"))
        return intern.intern_into(_ATOMS, key, candidate)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("Atom is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("Atom is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        return (Atom, (self.relation, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def dense_id(self) -> int:
        """The per-kind dense intern id (see :func:`repro.logic.intern.next_dense_id`)."""
        return self._dense_id

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.relation}({inner})"

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom in left-to-right order (with repetition)."""
        for arg in self.args:
            yield from term_variables(arg)

    def variable_set(self) -> frozenset[Variable]:
        """Return the set of variables occurring in the atom (cached per atom)."""
        cached: Optional[frozenset[Variable]] = self._varset
        if cached is None:
            cached = frozenset(self.variables())
            object.__setattr__(self, "_varset", cached)
        return cached

    def nulls(self) -> Iterator:
        """Yield the null values of a fact (labeled nulls and ground function terms)."""
        for arg in self.args:
            if isinstance(arg, (Null, FuncTerm)):
                yield arg

    def constants(self) -> Iterator[Constant]:
        """Yield the constants of the atom (top-level arguments only)."""
        for arg in self.args:
            if isinstance(arg, Constant):
                yield arg

    def is_fact(self) -> bool:
        """Return True if every argument is a value (no variables anywhere)."""
        return all(not isinstance(a, Variable) and is_ground(a) for a in self.args)

    def substitute(self, assignment: dict) -> "Atom":
        """Apply a Variable -> value/term assignment to all arguments."""
        return Atom(self.relation, tuple(substitute_term(a, assignment) for a in self.args))

    def rename_values(self, renaming: dict) -> "Atom":
        """Replace top-level argument values according to *renaming* (value -> value)."""
        return Atom(self.relation, tuple(renaming.get(a, a) for a in self.args))


def atoms_variables(atoms) -> frozenset[Variable]:
    """Return the set of variables occurring in an iterable of atoms."""
    result: set[Variable] = set()
    for atom in atoms:
        result.update(atom.variables())
    return frozenset(result)


__all__ = ["Atom", "atoms_variables"]
