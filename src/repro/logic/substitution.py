"""Variable assignments (substitutions) and their application.

A :class:`Substitution` maps variables to values or terms.  It is a thin
immutable wrapper over a dict with convenience operations used by the
matching engine and the chase.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.logic.atoms import Atom
from repro.logic.terms import substitute_term
from repro.logic.values import Variable


class Substitution(Mapping):
    """An immutable mapping from :class:`Variable` to values/terms."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Mapping | Iterable[tuple] = ()):
        self._map: dict = dict(mapping)

    def __getitem__(self, var: Variable):
        return self._map[var]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(self._map.items(), key=repr))
        return f"Substitution({{{inner}}})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._map == other._map
        if isinstance(other, Mapping):
            return self._map == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def extend(self, more: Mapping | Iterable[tuple]) -> "Substitution":
        """Return a new substitution with additional bindings (later wins)."""
        merged = dict(self._map)
        merged.update(dict(more))
        return Substitution(merged)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Return the restriction of this substitution to the given variables."""
        keep = set(variables)
        return Substitution({v: x for v, x in self._map.items() if v in keep})

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to all arguments of *atom*."""
        return atom.substitute(self._map)

    def apply_atoms(self, atoms: Iterable[Atom]) -> tuple[Atom, ...]:
        """Apply the substitution to each atom in *atoms*."""
        return tuple(atom.substitute(self._map) for atom in atoms)

    def apply_term(self, term):
        """Apply the substitution to a term."""
        return substitute_term(term, self._map)

    def as_dict(self) -> dict:
        """Return a mutable copy of the underlying dict."""
        return dict(self._map)


__all__ = ["Substitution"]
