"""Pretty-printers for dependencies -- the inverse of :mod:`repro.logic.parser`.

Each formatter produces text that parses back to an equal object, which the
test suite verifies as a round-trip property.
"""

from __future__ import annotations

from repro.logic.atoms import Atom
from repro.logic.terms import FuncTerm
from repro.logic.values import Variable


def format_term(term) -> str:
    """Format a variable, constant, or functional term."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, FuncTerm):
        inner = ", ".join(format_term(a) for a in term.args)
        return f"{term.function}({inner})"
    return repr(term)


def format_atom(atom: Atom) -> str:
    """Format a single atom, e.g. ``S(x, y)``."""
    inner = ", ".join(format_term(a) for a in atom.args)
    return f"{atom.relation}({inner})"


def format_conjunction(atoms) -> str:
    """Format atoms joined with ``&``."""
    return " & ".join(format_atom(a) for a in atoms)


def format_tgd(tgd) -> str:
    """Format an :class:`~repro.logic.tgds.STTgd`."""
    body = format_conjunction(tgd.body)
    head = format_conjunction(tgd.head)
    existential = tgd.existential_variables
    if existential:
        names = ", ".join(v.name for v in existential)
        return f"{body} -> exists {names} . ({head})"
    return f"{body} -> {head}"


def format_nested_tgd(tgd) -> str:
    """Format a :class:`~repro.logic.nested.NestedTgd` with nested parentheses."""

    def format_part(pid: int) -> str:
        part = tgd.part(pid)
        body = format_conjunction(part.body)
        pieces = [format_atom(a) for a in part.head]
        pieces.extend(f"({format_part(child)})" for child in tgd.children_of(pid))
        conclusion = " & ".join(pieces) if pieces else "T()"
        if len(pieces) > 1:
            conclusion = f"({conclusion})"
        if part.exist_vars:
            names = ", ".join(v.name for v in part.exist_vars)
            if len(pieces) == 1:
                conclusion = f"({conclusion})"
            return f"{body} -> exists {names} . {conclusion}"
        return f"{body} -> {conclusion}"

    return format_part(1)


def format_so_tgd(so_tgd) -> str:
    """Format an :class:`~repro.logic.sotgd.SOTgd` with ``;``-separated clauses."""
    clause_texts: list[str] = []
    for clause in so_tgd.clauses:
        body_parts = [format_atom(a) for a in clause.body]
        body_parts.extend(
            f"{format_term(left)} = {format_term(right)}" for left, right in clause.equalities
        )
        head = format_conjunction(clause.head)
        clause_texts.append(f"{' & '.join(body_parts)} -> {head}")
    return " ; ".join(clause_texts)


def format_egd(egd) -> str:
    """Format an :class:`~repro.logic.egds.Egd`."""
    body = format_conjunction(egd.body)
    return f"{body} -> {egd.left.name} = {egd.right.name}"


def format_instance(instance) -> str:
    """Format an :class:`~repro.logic.instances.Instance` as comma-separated facts."""
    from repro.logic.values import Constant, Null

    def format_value(value) -> str:
        if isinstance(value, Constant):
            return str(value.name)
        if isinstance(value, Null):
            return f"_{value.name}"
        return repr(value)

    parts = []
    for fact in sorted(instance.facts, key=repr):
        inner = ", ".join(format_value(a) for a in fact.args)
        parts.append(f"{fact.relation}({inner})")
    return ", ".join(parts)


__all__ = [
    "format_term",
    "format_atom",
    "format_conjunction",
    "format_tgd",
    "format_nested_tgd",
    "format_so_tgd",
    "format_egd",
    "format_instance",
]
