"""Logical substrate: values, terms, schemas, atoms, instances, and dependencies.

This subpackage contains everything from Section 2 of the paper ("Preliminaries"):

- :mod:`repro.logic.values` -- constants, labeled nulls and first-order variables;
- :mod:`repro.logic.terms` -- function (Skolem) terms over variables or values;
- :mod:`repro.logic.schema` -- relation symbols and schemas;
- :mod:`repro.logic.atoms` -- relational atoms and conjunctions;
- :mod:`repro.logic.instances` -- finite relational instances with indexes;
- :mod:`repro.logic.substitution` -- variable assignments and their application;
- :mod:`repro.logic.tgds` -- source-to-target tgds (GLAV constraints);
- :mod:`repro.logic.nested` -- nested tgds and their parts;
- :mod:`repro.logic.sotgd` -- (plain) second-order tgds;
- :mod:`repro.logic.egds` -- equality-generating dependencies and keys;
- :mod:`repro.logic.parser` -- a text syntax for all of the above;
- :mod:`repro.logic.printer` -- pretty-printers (inverse of the parser).
"""

from repro.logic.values import Constant, Null, Variable, is_null, is_value
from repro.logic.terms import FuncTerm, is_ground
from repro.logic.schema import RelationSymbol, Schema
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.substitution import Substitution
from repro.logic.tgds import STTgd
from repro.logic.nested import NestedTgd, Part
from repro.logic.sotgd import SOTgd, SOClause
from repro.logic.egds import Egd, KeyDependency
from repro.logic.parser import (
    parse_atom,
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)

__all__ = [
    "Constant",
    "Null",
    "Variable",
    "FuncTerm",
    "RelationSymbol",
    "Schema",
    "Atom",
    "Instance",
    "Substitution",
    "STTgd",
    "NestedTgd",
    "Part",
    "SOTgd",
    "SOClause",
    "Egd",
    "KeyDependency",
    "is_null",
    "is_value",
    "is_ground",
    "parse_atom",
    "parse_egd",
    "parse_instance",
    "parse_nested_tgd",
    "parse_so_tgd",
    "parse_tgd",
]
