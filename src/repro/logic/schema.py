"""Schemas and relation symbols.

A schema is a finite sequence of relation symbols, each with a fixed arity
(Section 2 of the paper).  Source and target schemas of a schema mapping must
have no relation symbols in common.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError


@dataclass(frozen=True, slots=True)
class RelationSymbol:
    """A relation symbol with a fixed arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise SchemaError(f"relation {self.name!r} has negative arity {self.arity}")

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """A finite sequence of relation symbols with distinct names.

    Construct from :class:`RelationSymbol` objects or ``(name, arity)`` pairs::

        >>> s = Schema([("S", 2), ("Q", 1)])
        >>> s.arity("S")
        2
        >>> "Q" in s
        True
    """

    def __init__(self, relations: Iterable[RelationSymbol | tuple[str, int]] = ()):
        self._relations: dict[str, RelationSymbol] = {}
        for rel in relations:
            if isinstance(rel, tuple):
                rel = RelationSymbol(*rel)
            if rel.name in self._relations:
                existing = self._relations[rel.name]
                if existing.arity != rel.arity:
                    raise SchemaError(
                        f"relation {rel.name!r} declared with arities "
                        f"{existing.arity} and {rel.arity}"
                    )
                continue
            self._relations[rel.name] = rel

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        inner = ", ".join(repr(r) for r in self)
        return f"Schema({inner})"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def arity(self, name: str) -> int:
        """Return the arity of the relation *name*; raise SchemaError if unknown."""
        try:
            return self._relations[name].arity
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def symbol(self, name: str) -> RelationSymbol:
        """Return the :class:`RelationSymbol` named *name*."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def disjoint_from(self, other: "Schema") -> bool:
        """Return True if this schema shares no relation names with *other*."""
        return not set(self.names) & set(other.names)

    def union(self, other: "Schema") -> "Schema":
        """Return the union schema; arities of shared names must agree."""
        return Schema(list(self) + list(other))


def infer_schema(atoms) -> Schema:
    """Infer a schema from an iterable of atoms (name and arity per relation)."""
    return Schema((atom.relation, len(atom.args)) for atom in atoms)


__all__ = ["RelationSymbol", "Schema", "infer_schema"]
