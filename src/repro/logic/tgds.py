"""Source-to-target tuple-generating dependencies (s-t tgds / GLAV constraints).

An s-t tgd is a first-order sentence of the form

    forall x ( phi(x) -> exists y psi(x, y) )

where ``phi`` is a conjunction of atoms over the source schema, each variable
of ``x`` occurs in at least one atom of ``phi``, and ``psi`` is a conjunction
of atoms over the target schema with variables among ``x`` and ``y``
(Section 2 of the paper).  Following the paper, dependencies contain no
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import DependencyError
from repro.logic.atoms import Atom, atoms_variables
from repro.logic.schema import Schema
from repro.logic.terms import FuncTerm
from repro.logic.values import Variable


def _ordered_variables(atoms: Iterable[Atom]) -> tuple[Variable, ...]:
    """Return the variables of *atoms* in order of first occurrence."""
    seen: dict[Variable, None] = {}
    for atom in atoms:
        for var in atom.variables():
            seen.setdefault(var, None)
    return tuple(seen)


def _check_variables_only(atoms: Iterable[Atom], where: str) -> None:
    for atom in atoms:
        for arg in atom.args:
            if not isinstance(arg, Variable):
                raise DependencyError(
                    f"{where} atom {atom!r} contains non-variable argument {arg!r}; "
                    "dependencies in this library are constant-free (as in the paper)"
                )


@dataclass(frozen=True)
class STTgd:
    """An s-t tgd given by its body (source) and head (target) conjunctions.

    The universally quantified variables are exactly the variables of the
    body; head variables not occurring in the body are existentially
    quantified.

        >>> from repro.logic.parser import parse_tgd
        >>> t = parse_tgd("S(x, y) -> R(x, z)")
        >>> t.existential_variables
        (?z,)
    """

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "head", tuple(self.head))
        if not self.body:
            raise DependencyError("an s-t tgd needs at least one body atom")
        if not self.head:
            raise DependencyError("an s-t tgd needs at least one head atom")
        _check_variables_only(self.body, "body")
        _check_variables_only(self.head, "head")

    # ------------------------------------------------------------------ structure

    @property
    def universal_variables(self) -> tuple[Variable, ...]:
        """The universally quantified variables, in order of first body occurrence."""
        return _ordered_variables(self.body)

    @property
    def existential_variables(self) -> tuple[Variable, ...]:
        """The existentially quantified variables, in order of first head occurrence."""
        universal = set(self.universal_variables)
        return tuple(v for v in _ordered_variables(self.head) if v not in universal)

    def variables(self) -> frozenset[Variable]:
        """All variables of the tgd."""
        return atoms_variables(self.body) | atoms_variables(self.head)

    def source_schema(self) -> Schema:
        """The schema inferred from the body atoms."""
        from repro.logic.schema import infer_schema

        return infer_schema(self.body)

    def target_schema(self) -> Schema:
        """The schema inferred from the head atoms."""
        from repro.logic.schema import infer_schema

        return infer_schema(self.head)

    def validate_against(self, source: Schema, target: Schema) -> None:
        """Check body atoms against *source* and head atoms against *target*."""
        for atom in self.body:
            if atom.relation not in source or source.arity(atom.relation) != atom.arity:
                raise DependencyError(f"body atom {atom!r} does not fit source schema {source!r}")
        for atom in self.head:
            if atom.relation not in target or target.arity(atom.relation) != atom.arity:
                raise DependencyError(f"head atom {atom!r} does not fit target schema {target!r}")

    # -------------------------------------------------------------- conversions

    def skolem_head(self, function_namer=None) -> tuple[Atom, ...]:
        """Return the head with each existential variable replaced by a Skolem term.

        The Skolem term for existential variable ``y`` is ``f_y(x1, ..., xn)``
        over all universally quantified variables, matching the oblivious
        chase (one fresh null per body match).  *function_namer* maps an
        existential variable to a function name; the default derives one from
        the variable name.
        """
        universal = self.universal_variables
        if function_namer is None:
            prefix = f"{self.name}_" if self.name else "f_"

            def function_namer(var: Variable) -> str:
                return f"{prefix}{var.name}"

        assignment = {
            y: FuncTerm(function_namer(y), universal) for y in self.existential_variables
        }
        return tuple(atom.substitute(assignment) for atom in self.head)

    def to_nested(self) -> "NestedTgd":
        """View this s-t tgd as a nested tgd with a single part."""
        from repro.logic.nested import NestedTgd, Part

        part = Part(
            universal_vars=self.universal_variables,
            body=self.body,
            exist_vars=self.existential_variables,
            head=self.head,
            children=(),
        )
        return NestedTgd(part, name=self.name)

    def to_so_tgd(self) -> "SOTgd":
        """Return the logically equivalent plain SO tgd (Skolemization)."""
        return self.to_nested().skolemize()

    def __repr__(self) -> str:
        from repro.logic.printer import format_tgd

        return format_tgd(self)


__all__ = ["STTgd"]
