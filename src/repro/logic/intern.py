"""Process-wide hash-consing (interning) tables for the logic layer.

Every structural value of the logic stack -- :class:`~repro.logic.values.Constant`,
:class:`~repro.logic.values.Null`, :class:`~repro.logic.values.Variable`,
:class:`~repro.logic.terms.FuncTerm`, :class:`~repro.logic.atoms.Atom`, and
:class:`~repro.core.patterns.Pattern` -- is *interned*: the constructor
consults a process-wide table keyed by the structural identity and returns
the one canonical object for it.  Two structurally equal objects are
therefore the *same* object (``a == b`` iff ``a is b``), which turns the
engine's innermost operations -- set membership, dict lookups, equality
checks during matching and homomorphism search -- into pointer comparisons,
and lets every derived quantity (hash, sort key, node count, variable set)
be computed once at intern time and shared by all users.

The tables hold weak references: an interned object lives exactly as long
as something outside the table references it, so long-running processes do
not accumulate every value ever constructed.

Pickling round-trips through the constructor (``__reduce__`` on each
interned class), so objects received from a worker process re-intern on
arrival and the identity invariant holds across process boundaries.

Table traffic is counted locally (two plain integers -- no per-construction
dict update on the hot path) and published to :mod:`repro.perf` as
``intern.hits`` / ``intern.misses`` by :func:`publish_stats`.

Beyond the tables, every interned object receives a **dense id**: a small
per-kind integer assigned at intern time (0, 1, 2, ... in interning order).
Dense ids are per-process -- the same term interned in two processes may get
different ids -- but within a process they give every canonical object a
compact, stable address, which is what the shared-memory universe publisher
(:mod:`repro.cache.shm`) and columnar layouts index by.  Cross-process cache
keys never use dense ids (or ``hash()``, which is seed-dependent); they use
the content-derived fingerprints of :mod:`repro.cache.fingerprint`.
"""

from __future__ import annotations

from typing import TypeVar
from weakref import WeakValueDictionary

_T = TypeVar("_T")

#: Locally accumulated table traffic (never reset; see :func:`publish_stats`).
_hits = 0
_misses = 0
_published_hits = 0
_published_misses = 0

#: Next dense id per interned kind (class name -> next id).  Dense ids are
#: never recycled: a weakly-collected object's id stays burned, so live ids
#: are unique for the lifetime of the process.
_dense_next: dict[str, int] = {}


def new_table() -> "WeakValueDictionary[object, object]":
    """Return a fresh weak intern table (one per interned class)."""
    return WeakValueDictionary()


def intern_into(table: "WeakValueDictionary[object, _T]", key: object, candidate: _T) -> _T:
    """Intern *candidate* under *key*; return the canonical object.

    ``setdefault`` keeps the invariant under concurrent construction: if two
    callers race, both receive whichever object landed in the table.
    """
    global _hits, _misses
    canon = table.setdefault(key, candidate)
    if canon is candidate:
        _misses += 1
    else:
        _hits += 1
    return canon


def note_hit() -> None:
    """Record a fast-path table hit (the candidate was never constructed)."""
    global _hits
    _hits += 1


def next_dense_id(kind: str) -> int:
    """Assign and return the next dense integer id for interned *kind*.

    Called once per interned object, on the constructor miss path just before
    the candidate enters its table.  Ids count up from 0 per kind; under a
    (rare) concurrent-construction race both candidates draw an id but only
    the table winner's id stays observable, so ids remain unique though not
    perfectly gapless.
    """
    value = _dense_next.get(kind, 0)
    _dense_next[kind] = value + 1
    return value


def dense_counts() -> dict[str, int]:
    """Return the number of dense ids assigned so far, per interned kind."""
    return dict(_dense_next)


def stats() -> dict[str, int]:
    """Return the cumulative intern-table traffic of this process."""
    return {"hits": _hits, "misses": _misses}


def reset_stats() -> None:
    """Zero the local traffic counters and the publish watermark.

    Part of :func:`repro.cache.clear_all_caches`: after a reset, the next
    :func:`publish_stats` flushes only traffic accrued after the reset, so
    tests and benchmarks measure their own interning and nothing earlier.
    Dense-id assignment is *not* reset -- ids of live objects must stay
    unique for the lifetime of the process.
    """
    global _hits, _misses, _published_hits, _published_misses
    _hits = 0
    _misses = 0
    _published_hits = 0
    _published_misses = 0


def publish_stats() -> dict[str, int]:
    """Flush the traffic accrued since the last publish into :mod:`repro.perf`.

    The interning fast path deliberately does not touch the perf counters
    (one dict update per object construction would be the innermost loop);
    callers that want ``intern.hits`` / ``intern.misses`` in a perf snapshot
    call this once at measurement boundaries.
    """
    global _published_hits, _published_misses
    from repro import perf

    delta_hits = _hits - _published_hits
    delta_misses = _misses - _published_misses
    if delta_hits:
        perf.incr("intern.hits", delta_hits)
    if delta_misses:
        perf.incr("intern.misses", delta_misses)
    _published_hits = _hits
    _published_misses = _misses
    return {"hits": delta_hits, "misses": delta_misses}


__all__ = [
    "new_table",
    "intern_into",
    "note_hit",
    "next_dense_id",
    "dense_counts",
    "stats",
    "reset_stats",
    "publish_stats",
]
