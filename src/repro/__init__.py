"""repro: a full reproduction of "Nested Dependencies: Structure and Reasoning"
(Kolaitis, Pichler, Sallinger, Savenkov, PODS 2014).

The library implements the complete data-exchange substrate (schemas,
instances, s-t tgds, nested tgds, SO tgds, egds, chase variants,
homomorphisms, cores, Gaifman graphs) and, on top of it, the paper's
contributions:

- the decision procedure IMPLIES for implication and logical equivalence of
  nested tgds, with and without source egds (Theorems 3.1, 5.7);
- the analysis of cores of universal solutions: effective threshold and
  bounded anchor for f-block size, and the decision procedure for
  equivalence of a nested GLAV mapping to a GLAV mapping (Theorems 4.2, 5.6);
- the separation tools between plain SO tgds and nested GLAV mappings:
  f-degree (Theorem 4.12) and null-graph path length (Theorem 4.16);
- the Turing-machine reduction behind the undecidability results with source
  key dependencies (Theorems 5.1, 5.2), operationalized in :mod:`repro.turing`.

Quickstart::

    from repro import parse_nested_tgd, parse_instance, SchemaMapping

    sigma = parse_nested_tgd(
        "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
    mapping = SchemaMapping([sigma])
    J = mapping.core_solution(parse_instance("S(a,b), S(a,c)"))
"""

from repro.errors import (
    ChaseError,
    DependencyError,
    EgdViolation,
    ParseError,
    ReproError,
    ResourceLimitExceeded,
    SchemaError,
    UndecidedError,
)
from repro.logic import (
    Atom,
    Constant,
    Egd,
    FuncTerm,
    Instance,
    KeyDependency,
    NestedTgd,
    Null,
    Part,
    RelationSymbol,
    Schema,
    SOClause,
    SOTgd,
    STTgd,
    Substitution,
    Variable,
    parse_atom,
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)
from repro.engine import (
    InstanceBuilder,
    ChaseForest,
    ChaseTree,
    FixpointChaseResult,
    Triggering,
    chase,
    chase_egds,
    chase_nested,
    fact_block_size,
    fact_blocks,
    fblock_degree,
    find_homomorphism,
    fixpoint_chase,
    has_homomorphism,
    homomorphically_equivalent,
    null_path_length,
    satisfies,
)
from repro.analysis import (
    AnalysisReport,
    ChaseCostEstimate,
    ContainmentReport,
    ContainmentWitness,
    EquivalenceCertificate,
    Finding,
    LINT_CATALOG,
    SweepCostEstimate,
    TerminationClass,
    TerminationReport,
    TerminationVerdict,
    analyze,
    apply_baseline,
    baseline_fingerprints,
    chase_cost,
    check_containment,
    check_equivalence,
    classify_termination,
    contains,
    sarif_json,
    sarif_report,
    subsumes,
    sweep_cost,
    termination_report,
    verify_witness,
)
# The paper-core subpackage is ``repro.core``; the core-of-an-instance
# function therefore lives at the top level under the name ``compute_core``
# (it is also available as ``repro.engine.core``).
from repro.engine.core_instance import core as compute_core
from repro.mappings import SchemaMapping
from repro.mappings.composition import compose
from repro.queries import certain_answers, parse_query
from repro.core.cq_equivalence import cq_equivalent
from repro.core.normalization import OptimizeReport, optimize, optimize_report
from repro.core import (
    CanonicalInstances,
    FBlockProfile,
    FBlockVerdict,
    Pattern,
    bounded_anchor_witness,
    canonical_instances,
    count_k_patterns,
    decide_bounded_fblock_size,
    enumerate_k_patterns,
    equivalent,
    fblock_profile,
    fblock_threshold,
    clear_chase_cache,
    implies,
    implies_tgd,
    is_equivalent_to_glav,
    legal_canonical_instances,
    nested_expressibility_report,
    one_patterns,
    path_length_bound,
)
from repro.cache import cache_stats, clear_all_caches

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "SchemaError", "DependencyError", "ParseError", "ChaseError",
    "EgdViolation", "ResourceLimitExceeded", "UndecidedError",
    # logic
    "Constant", "Null", "Variable", "FuncTerm", "RelationSymbol", "Schema",
    "Atom", "Instance", "Substitution", "STTgd", "NestedTgd", "Part",
    "SOTgd", "SOClause", "Egd", "KeyDependency",
    "parse_atom", "parse_egd", "parse_instance", "parse_nested_tgd",
    "parse_so_tgd", "parse_tgd",
    # engine
    "chase", "chase_nested", "chase_egds", "compute_core", "satisfies",
    "InstanceBuilder",
    "find_homomorphism", "has_homomorphism", "homomorphically_equivalent",
    "fact_blocks", "fact_block_size", "fblock_degree", "null_path_length",
    "ChaseForest", "ChaseTree", "Triggering",
    "FixpointChaseResult", "fixpoint_chase",
    # static analysis
    "AnalysisReport", "Finding", "LINT_CATALOG", "TerminationReport",
    "analyze", "subsumes", "termination_report",
    "TerminationClass", "TerminationVerdict", "classify_termination",
    "ChaseCostEstimate", "SweepCostEstimate", "chase_cost", "sweep_cost",
    "apply_baseline", "baseline_fingerprints", "sarif_json", "sarif_report",
    "ContainmentReport", "ContainmentWitness", "EquivalenceCertificate",
    "check_containment", "check_equivalence", "contains", "verify_witness",
    # mappings
    "SchemaMapping",
    # paper core
    "Pattern", "enumerate_k_patterns", "count_k_patterns", "one_patterns",
    "CanonicalInstances", "canonical_instances", "legal_canonical_instances",
    "implies", "implies_tgd", "equivalent", "clear_chase_cache",
    "FBlockVerdict", "fblock_threshold", "bounded_anchor_witness",
    "decide_bounded_fblock_size", "is_equivalent_to_glav",
    "FBlockProfile", "fblock_profile", "nested_expressibility_report",
    "path_length_bound",
    # extensions
    "compose", "certain_answers", "parse_query", "cq_equivalent", "optimize",
    "OptimizeReport", "optimize_report",
    # persistence (repro.cache)
    "clear_all_caches", "cache_stats",
]
