"""Conjunctive queries and certain answers over schema mappings.

Schema mappings are used for data integration by answering queries over the
target schema with *certain answers*: the tuples present in **every**
solution.  For unions of conjunctive queries and mappings that admit
universal solutions -- all formalisms in this library -- the certain answers
are obtained by evaluating the query over any universal solution (e.g. the
chase) and keeping the null-free answer tuples (Fagin-Kolaitis-Miller-Popa,
reference [5] of the paper).
"""

from repro.queries.cq import ConjunctiveQuery, parse_query
from repro.queries.certain import certain_answers, evaluate, naive_evaluation
from repro.queries.containment import (
    equivalent_queries,
    is_contained_in,
    minimize_query,
)

__all__ = [
    "ConjunctiveQuery",
    "parse_query",
    "evaluate",
    "naive_evaluation",
    "certain_answers",
    "is_contained_in",
    "equivalent_queries",
    "minimize_query",
]
