"""Certain answers over schema mappings.

``certain(q, I, M)`` is the set of tuples in ``q(J)`` for *every* solution J
of I w.r.t. M.  For (unions of) conjunctive queries and mappings admitting
universal solutions, the classic result of [FKMP, reference 5 of the paper]
applies:

    certain(q, I, M) = the null-free tuples of q(J*) for any universal
    solution J* (naive evaluation)

because q is preserved under the homomorphisms into every other solution.
All of GLAV, nested GLAV, and (plain) SO tgd mappings admit universal
solutions via their chases, so certain answers here are exact, not an
approximation.
"""

from __future__ import annotations

from repro.logic.instances import Instance
from repro.logic.values import is_null
from repro.queries.cq import ConjunctiveQuery


def evaluate(query: ConjunctiveQuery, instance: Instance) -> set[tuple]:
    """Evaluate *query* over *instance*; answers may contain nulls."""
    return query.evaluate(instance)


def naive_evaluation(query: ConjunctiveQuery, instance: Instance) -> set[tuple]:
    """Naive-tables evaluation: evaluate, then drop tuples containing nulls."""
    return {
        answer
        for answer in query.evaluate(instance)
        if not any(is_null(value) for value in answer)
    }


def certain_answers(query: ConjunctiveQuery, source: Instance, mapping) -> set[tuple]:
    """The certain answers of *query* on *source* w.r.t. *mapping*.

    *mapping* is a :class:`~repro.mappings.mapping.SchemaMapping` or an
    iterable of dependencies; the chase provides the universal solution.

        >>> from repro.logic.parser import parse_instance, parse_tgd
        >>> from repro.queries.cq import parse_query
        >>> q = parse_query("q(x) :- R(x, y)")
        >>> answers = certain_answers(
        ...     q, parse_instance("S(a, b)"), [parse_tgd("S(x,y) -> R(x,z)")])
        >>> sorted(repr(t[0]) for t in answers)
        ['a']
    """
    from repro.engine.chase import chase
    from repro.mappings.mapping import SchemaMapping

    if isinstance(mapping, SchemaMapping):
        universal = mapping.chase(source)
    else:
        universal = chase(source, list(mapping))
    return naive_evaluation(query, universal)


def certain_answers_boolean(query: ConjunctiveQuery, source: Instance, mapping) -> bool:
    """Certain answer of a Boolean query: True iff it holds in every solution."""
    from repro.engine.chase import chase
    from repro.mappings.mapping import SchemaMapping

    if isinstance(mapping, SchemaMapping):
        universal = mapping.chase(source)
    else:
        universal = chase(source, list(mapping))
    # a Boolean CQ holds certainly iff it matches the universal solution
    # with *any* assignment (homomorphisms preserve its truth)
    return bool(query.evaluate(universal))


__all__ = [
    "evaluate",
    "naive_evaluation",
    "certain_answers",
    "certain_answers_boolean",
]
