"""Conjunctive queries.

A conjunctive query ``q(x1, ..., xn) :- A1, ..., Am`` has a head of
*distinguished* variables and a body of atoms; non-distinguished body
variables are existentially quantified.  Evaluation over an instance returns
the set of assignments of the head variables (as tuples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DependencyError, ParseError
from repro.logic.atoms import Atom, atoms_variables
from repro.logic.instances import Instance
from repro.logic.values import Variable
from repro.engine.matching import find_matches


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query with distinguished (head) variables.

        >>> q = parse_query("q(x) :- R(x, y)")
        >>> q.head
        (?x,)
    """

    head: tuple[Variable, ...]
    body: tuple[Atom, ...]
    name: str = field(default="q", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise DependencyError("a conjunctive query needs at least one body atom")
        body_vars = atoms_variables(self.body)
        for var in self.head:
            if var not in body_vars:
                raise DependencyError(
                    f"distinguished variable {var!r} does not occur in the body (unsafe)"
                )

    @property
    def arity(self) -> int:
        return len(self.head)

    def existential_variables(self) -> frozenset[Variable]:
        """The non-distinguished body variables."""
        return atoms_variables(self.body) - frozenset(self.head)

    def evaluate(self, instance: Instance) -> set[tuple]:
        """Return the set of answer tuples over *instance* (nulls included)."""
        answers: set[tuple] = set()
        for match in find_matches(self.body, instance):
            answers.add(tuple(match[var] for var in self.head))
        return answers

    def answer_tuples(self, instance: Instance) -> Iterator[tuple]:
        """Yield answer tuples lazily (possibly with duplicates removed)."""
        yield from self.evaluate(instance)

    def is_boolean(self) -> bool:
        return not self.head

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = " & ".join(
            f"{a.relation}({', '.join(arg.name for arg in a.args)})" for a in self.body
        )
        return f"{self.name}({head}) :- {body}"


def parse_query(text: str, name: str | None = None) -> ConjunctiveQuery:
    """Parse a conjunctive query in ``q(x, y) :- R(x, z) & S(z, y)`` syntax.

        >>> parse_query("q(x, y) :- R(x, z) & S(z, y)").arity
        2
    """
    if ":-" not in text:
        raise ParseError("a conjunctive query needs a ':-' separator", None, text)
    head_text, body_text = text.split(":-", 1)
    head_text = head_text.strip()
    if "(" not in head_text or not head_text.endswith(")"):
        raise ParseError("malformed query head", None, text)
    qname, args_text = head_text.split("(", 1)
    qname = qname.strip() or "q"
    args_text = args_text[:-1].strip()
    head_vars: list[Variable] = []
    if args_text:
        for piece in args_text.split(","):
            piece = piece.strip()
            if not piece or not (piece[0].islower() or piece[0] == "_"):
                raise ParseError(f"bad head variable {piece!r}", None, text)
            head_vars.append(Variable(piece))

    from repro.logic.parser import _parse_atom_conjunction, _Tokens

    tokens = _Tokens(body_text.strip())
    body = _parse_atom_conjunction(tokens)
    if not tokens.at_end():
        raise ParseError("trailing input after query body", tokens.position(), text)
    return ConjunctiveQuery(
        head=tuple(head_vars), body=tuple(body), name=name or qname
    )


__all__ = ["ConjunctiveQuery", "parse_query"]
