"""Containment and equivalence of conjunctive queries (Chandra-Merlin).

``q1`` is contained in ``q2`` when every instance gives ``q1(I) ⊆ q2(I)``.
By the classical theorem this holds iff there is a *containment mapping*
(a homomorphism) from ``q2`` to ``q1``: body atoms of ``q2`` map into body
atoms of ``q1`` and head variables map to the corresponding head variables.

This is the query-side analogue of the paper's mapping-side reasoning: the
canonical ("frozen") instance of a query plays the role the canonical
instances of patterns play in IMPLIES, and minimization by cores mirrors the
core analysis of Section 4.
"""

from __future__ import annotations

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Constant, Null, Variable
from repro.queries.cq import ConjunctiveQuery
from repro.engine.core_instance import core
from repro.engine.matching import find_matches


def freeze(query: ConjunctiveQuery) -> tuple[Instance, tuple]:
    """The canonical instance of a query: head variables frozen to constants,
    existential variables to nulls.  Returns ``(instance, frozen head tuple)``.
    """
    assignment: dict[Variable, object] = {}
    for var in query.head:
        assignment[var] = Constant(("q", var.name))
    for var in query.existential_variables():
        assignment[var] = Null(("q", var.name))
    facts = [atom.substitute(assignment) for atom in query.body]
    head = tuple(assignment[var] for var in query.head)
    return Instance(facts), head


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``q1 ⊆ q2`` via a containment mapping from *q2* into *q1*.

        >>> from repro.queries.cq import parse_query
        >>> path2 = parse_query("q(x, z) :- R(x, y) & R(y, z)")
        >>> anything = parse_query("q(x, z) :- R(x, u) & R(v, z)")
        >>> is_contained_in(path2, anything)
        True
        >>> is_contained_in(anything, path2)
        False
    """
    if q1.arity != q2.arity:
        return False
    frozen, frozen_head = freeze(q1)
    partial = dict(zip(q2.head, frozen_head))
    # q2's head variables must land on q1's frozen head, consistently
    if len(partial) != len(set(q2.head)):
        # repeated head variables in q2: all occurrences must agree
        partial = {}
        for var, value in zip(q2.head, frozen_head):
            if var in partial and partial[var] != value:
                return False
            partial[var] = value
    return next(find_matches(q2.body, frozen, partial=partial), None) is not None


def equivalent_queries(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide CQ equivalence: containment both ways."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)


def minimize_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of a conjunctive query: drop redundant body atoms.

    Freezes the query, computes the instance core keeping head constants
    fixed, and reads the query back; the result is the unique (up to
    renaming) minimal equivalent query.

        >>> from repro.queries.cq import parse_query
        >>> q = parse_query("q(x) :- R(x, y) & R(x, z)")
        >>> len(minimize_query(q).body)
        1
    """
    frozen, frozen_head = freeze(query)
    minimal = core(frozen)

    back: dict[object, Variable] = {}
    counter = [0]

    def variable_for(value) -> Variable:
        if value not in back:
            if isinstance(value, Constant) and isinstance(value.name, tuple):
                back[value] = Variable(value.name[1])
            elif isinstance(value, Null) and isinstance(value.name, tuple):
                back[value] = Variable(value.name[1])
            else:
                counter[0] += 1
                back[value] = Variable(f"m{counter[0]}")
        return back[value]

    body = tuple(
        Atom(fact.relation, tuple(variable_for(arg) for arg in fact.args))
        for fact in sorted(minimal.facts, key=repr)
    )
    head = tuple(variable_for(value) for value in frozen_head)
    result = ConjunctiveQuery(head=head, body=body, name=query.name)
    return result


__all__ = ["freeze", "is_contained_in", "equivalent_queries", "minimize_query"]
