"""Lightweight engine statistics: counters populated by the hot paths.

The chase engines, the homomorphism search, and the IMPLIES procedure record
what they do -- fixpoint rounds, delta sizes, triggers fired, cache hits,
backtracks -- into a process-global :class:`PerfStats` object.  The counters
make performance claims *measurable*: ``benchmarks/report.py`` prints them
after each workload, the scaling benchmarks record them in ``BENCH_*.json``
artifacts, and tests can assert on them (e.g. "the second sweep hits the
chase cache").

Counter names are dotted strings, grouped by subsystem:

========================  =====================================================
``chase.rounds``          fixpoint rounds run by the egd chase
``chase.delta_facts``     facts in the deltas matched by semi-naive rounds
``chase.triggers``        triggers fired (standard chase) / triggerings
                          created (nested chase)
``chase.facts``           facts emitted by the oblivious chase engines
``chase.fixpoint_rounds``  rounds run by ``engine.fixpoint_chase``
``match.memo_hits``       nested-chase child-match memoization hits
``hom.backtracks``        value choices undone during homomorphism search
                          (kernel) / candidate facts rejected (legacy
                          backtracker)
``hom.kernel_calls``      calls into the indexed homomorphism kernel
``hom.ac3_revisions``     per-fact candidate revisions during AC-3
                          propagation
``hom.ac3_wipeouts``      searches refuted by propagation alone (an emptied
                          domain or candidate list)
``hom.search_nodes``      nodes visited by the most-constrained-null search
``hom.columnar.kernel_calls``  calls into the id-space (columnar) hom kernel;
                          the remaining ``hom.columnar.*`` counters mirror
                          their ``hom.*`` twins (``ac3_revisions``,
                          ``ac3_wipeouts``, ``search_nodes``, ``backtracks``)
                          for the integer-domain kernel
``core.blocks``           null-containing f-blocks seen by ``core``
``core.iso_folds``        duplicate blocks dropped as isomorphic copies
``core.memo_hits``        block folds answered by the canonical-form cache
``core.memo_misses``      block folds computed and cached
``core.eliminations``     eliminating retractions applied
``core.rigid_blocks``     blocks proven rigid (no eliminable null)
``core.parallel_blocks``  block folds dispatched to the worker pool
``core.columnar.blocks``  f-blocks seen by the id-space core engine; its
                          ``iso_folds`` / ``memo_hits`` / ``memo_misses`` /
                          ``eliminations`` / ``rigid_blocks`` twins mirror
                          the ``core.*`` meanings for
                          ``core(backend="columnar")``
``core.sql.blocks``       f-blocks seen by the SQL core pushdown
``core.sql.queries``      eliminating-homomorphism SELECT joins executed
``core.sql.eliminations``  eliminating retractions applied via SQL DELETEs
``core.sql.rigid_blocks``  blocks every SELECT proved rigid
``core.sql.duckdb_sessions``  core sessions run on a DuckDB connection
``implies.patterns``      k-patterns checked by ``implies_tgd``
``implies.cache_hits``    chase-cache hits inside ``implies_tgd``
``implies.cache_misses``  chase-cache misses inside ``implies_tgd``
``implies.parallel_chunks``  pattern chunks dispatched to the worker pool
``implies.subsumption_checks``  syntactic-subsumption pre-passes attempted
``implies.subsumption_skips``   pattern sweeps skipped: the rhs was
                          trivially implied (``analysis.subsumption``)
``implies.sweep.incremental_hits``  patterns whose chase was extended from
                          the parent pattern's cached chase by the new
                          leaf's delta (DAG-incremental sweep), instead of
                          being re-chased from scratch
``implies.verdict_disk_hits``  whole IMPLIES verdicts answered by the
                          persistent verdict store (``repro.cache``)
``cache.disk.hits``       persistent-store lookups that found a row
``cache.disk.misses``     persistent-store lookups that found nothing
``cache.disk.writes``     entries written through to the persistent store
``cache.disk.read_bytes``   payload bytes read from the persistent store
``cache.disk.write_bytes``  payload bytes written to the persistent store
``cache.disk.evictions``  rows LRU-evicted past a space's entry cap
``cache.disk.errors``     sqlite-level failures degraded to cache misses
``cache.disk.corrupt``    payloads that failed to unpickle (row deleted,
                          value recomputed and overwritten)
``cache.shm.segments``    shared-memory segments published to fork workers
``cache.shm.bytes``       serialized bytes published into shared memory
``cache.shm.attaches``    worker-side attach+deserialize operations (once
                          per worker per segment)
``cache.shm.attach_ns``   nanoseconds spent attaching, summed over workers
``intern.hits``           hash-consing table hits (an equal object already
                          existed); accumulated locally and flushed by
                          ``logic.intern.publish_stats`` at measurement
                          boundaries (``implies_tgd`` flushes on return)
``intern.misses``         hash-consing table misses (a new canonical object
                          was interned)
``backend.sql.statements``  SQL statements executed by the pushdown backend
                          (DDL, loads, compiled INSERT...SELECTs, delta moves)
``backend.sql.encoded_rows``  facts encoded into SQL rows (loads into SQLite)
``backend.sql.decoded_rows``  SQL rows decoded back into interned facts
``backend.columnar.joins``  index-seeded per-atom joins performed by the
                          columnar matcher; accumulated locally and flushed
                          at engine exit
``backend.columnar.encoded_rows``  facts encoded into columnar id rows
``backend.columnar.decoded_rows``  columnar rows decoded back into facts
``backend.columnar.probe_hits``  ``facts_of`` / ``facts_with`` probes
                          answered by the per-group decode memo without
                          re-materializing an atom list
``containment.queries``   ``Sigma <= Sigma'`` queries answered by
                          ``analysis.containment.check_containment``
``containment.checks``    gated IMPLIES sweeps actually run by the
                          containment / redundancy analyses
``containment.refuted``   right-hand dependencies refuted with a witness
``containment.refused``   queries refused at the admissibility gate
                          (uncertified frontier, budget, undecidable rhs)
``containment.redundant``  dependencies found semantically redundant
                          (lint MC001 / ``optimize(semantic=True)``)
``containment.verdict_disk_hits``  whole containment reports answered by
                          the persistent ``contain`` store (``repro.cache``)
========================  =====================================================

The overhead is one dict update per recorded event; events are recorded at
round/trigger granularity (never per candidate inside the innermost loops --
those are accumulated locally and flushed once).
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterator


class PerfStats:
    """A named bag of monotonically increasing counters."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the current counter values."""
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()

    def merge(self, other: "PerfStats | dict[str, int]") -> None:
        """Add another stats object's counters into this one (used to fold
        worker-process counters back into the parent after a parallel sweep)."""
        items = other.counters if isinstance(other, PerfStats) else other
        self.counters.update(items)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"PerfStats({inner})"


#: The process-global stats object every engine records into.
STATS = PerfStats()


def incr(name: str, amount: int = 1) -> None:
    """Record *amount* events named *name* on the global stats object."""
    STATS.counters[name] += amount


def get(name: str) -> int:
    """Return the current value of counter *name* (0 if never recorded)."""
    return STATS.get(name)


def snapshot() -> dict[str, int]:
    """Return a copy of all global counters."""
    return STATS.snapshot()


def reset() -> None:
    """Zero all global counters."""
    STATS.reset()


@contextmanager
def measuring() -> Iterator[PerfStats]:
    """Run a block against fresh counters; restore (and keep) the old ones after.

        >>> from repro import perf
        >>> with perf.measuring() as stats:
        ...     perf.incr("chase.rounds")
        >>> stats.get("chase.rounds")
        1
    """
    global STATS
    saved = STATS
    STATS = PerfStats()
    try:
        yield STATS
    finally:
        fresh = STATS
        STATS = saved
        STATS.merge(fresh)


__all__ = ["PerfStats", "STATS", "incr", "get", "snapshot", "reset", "measuring"]
