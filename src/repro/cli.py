"""Command-line interface:  python -m repro.cli <command> ...

Commands
--------
chase       chase a source instance with dependencies (optionally the core)
core        compute the core of an instance with a backend report (JSON)
exchange    run a data exchange with a backend report (tuple/columnar/sql/auto)
implies     run the IMPLIES decision procedure
equivalent  decide logical equivalence of two dependency sets
glav        decide equivalence to a GLAV mapping; print one if it exists
patterns    enumerate the k-patterns of a nested tgd
profile     f-block / f-degree / path-length profile along a family
optimize    redundancy removal + tgd normalization (--semantic, --json)
lint        static analysis: termination verdict + structural lints
analyze     decidability-frontier certificate (tier + guards) as JSON
contain     decide mapping containment Sigma <= Sigma' as JSON
cache       inspect / clear / vacuum the persistent cache store as JSON

Dependencies are given as text (see repro/logic/parser.py); s-t tgds and
nested tgds are auto-detected, SO tgds are recognized by function terms or
``;``-separated clauses.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import DependencyError, ParseError, ReproError
from repro.logic.parser import (
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)


def parse_dependency(text: str):
    """Parse a dependency, auto-detecting nested tgd vs SO tgd syntax.

    A flat tgd whose source and target relations overlap is rejected by the
    nested-tgd validator but is a legal s-t tgd (and is exactly what the
    termination analyzer exists to vet), so fall back to :func:`parse_tgd`.

    When *every* grammar rejects the text, re-raise the :class:`ParseError`
    that got the furthest: the SO-tgd parser bails at the first function-free
    token, so its (shallow) error would otherwise mask the nested parser's
    line/column-corrected location of the actual typo.
    """
    errors: list[ParseError] = []
    try:
        return parse_nested_tgd(text)
    except ParseError as exc:
        errors.append(exc)
    except DependencyError:
        return parse_tgd(text)
    try:
        return parse_so_tgd(text)
    except ParseError as exc:
        errors.append(exc)
    raise max(
        errors, key=lambda exc: -1 if exc.position is None else exc.position
    )


def _add_dependency_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dep",
        action="append",
        default=[],
        metavar="TEXT",
        help="a dependency (repeatable)",
    )
    parser.add_argument(
        "--egd",
        action="append",
        default=[],
        metavar="TEXT",
        help="a source egd (repeatable)",
    )


def _dependencies(args) -> list:
    if not args.dep:
        raise SystemExit("at least one --dep is required")
    return [parse_dependency(text) for text in args.dep]


def _egds(args) -> list:
    return [parse_egd(text) for text in args.egd]


def _run_exchange_backend(args):
    """Run the source-to-target chase on the selected backend.

    Returns ``(source, result, choice)``; every backend produces the exact
    fact set of ``chase(source, deps)`` (same ground-Skolem-term nulls).
    """
    from repro.engine.chase import chase, compile_clause_program
    from repro.engine.dispatch import choose_backend

    deps = _dependencies(args)
    source = parse_instance(args.instance)
    clauses = compile_clause_program(deps)
    choice = choose_backend(
        args.backend, input_size=len(source), clauses=clauses, certified=True
    )
    if choice.backend == "sql":
        from repro.engine.sql_backend import (
            check_sql_backend_supported,
            sql_execute_exchange,
        )

        check_sql_backend_supported(clauses, what="exchange")
        result = sql_execute_exchange(source, clauses)
    elif choice.backend == "columnar":
        from repro.engine.columnar import columnar_execute_exchange

        result = columnar_execute_exchange(source, clauses)
    else:
        result = chase(source, deps)
    return source, result, choice


def _backend_banner(source, result, choice) -> str:
    picked = choice.backend
    if choice.was_auto:
        picked += f" (auto: {choice.reason})"
    return (
        f"-- backend: {picked}; "
        f"{len(source)} source row(s) -> {len(result)} target row(s)"
    )


def cmd_chase(args) -> int:
    from repro.engine.core_instance import core

    source, result, choice = _run_exchange_backend(args)
    if args.core:
        result = core(result)
    if args.backend != "tuple":
        print(_backend_banner(source, result, choice))
    for fact in sorted(result, key=repr):
        print(fact)
    return 0


def cmd_core(args) -> int:
    """Compute the core of an instance; print a deterministic JSON report.

    The report carries the backend actually used (with the dispatch reason
    when ``--backend auto`` decided), input/core sizes, and the engine's
    block/fold counters.  Core *size* is deterministic across backends (the
    core is unique up to isomorphism); the fact listing is only printed under
    ``--facts`` because different engines may keep different-but-isomorphic
    representatives.
    """
    import json

    from repro import perf
    from repro.engine.core_instance import core
    from repro.engine.dispatch import CORE_SQL_AUTO_THRESHOLD, choose_core_backend

    instance = parse_instance(args.instance)
    if args.dep:
        from repro.engine.chase import chase

        instance = chase(instance, [parse_dependency(text) for text in args.dep])
    size = len(instance)
    sql_supported = False
    if args.backend == "sql" or (
        args.backend == "auto" and size >= CORE_SQL_AUTO_THRESHOLD
    ):
        from repro.engine.sql_backend import sql_core_supported

        sql_supported = sql_core_supported(instance)
    choice = choose_core_backend(
        args.backend, input_size=size, sql_supported=sql_supported
    )
    with perf.measuring() as stats:
        result = core(instance, backend=choice.backend)
    prefix = {"tuple": "core.", "columnar": "core.columnar.", "sql": "core.sql."}[
        choice.backend
    ]
    report: dict = {
        "backend": choice.backend,
        "requested": args.backend,
        "reason": choice.reason,
        "input_facts": size,
        "core_facts": len(result),
        "blocks": stats.get(prefix + "blocks"),
        "eliminations": stats.get(prefix + "eliminations"),
        "rigid_blocks": stats.get(prefix + "rigid_blocks"),
        "fold_memo_hits": stats.get(prefix + "memo_hits"),
        "fold_disk_hits": stats.get("cache.disk.hits"),
        "sql_queries": stats.get("core.sql.queries"),
    }
    if args.facts:
        report["facts"] = sorted(str(fact) for fact in result)
    print(json.dumps(report, sort_keys=True, indent=2))
    return 0


def cmd_exchange(args) -> int:
    source, result, choice = _run_exchange_backend(args)
    print(_backend_banner(source, result, choice))
    for relation in sorted(result.relations()):
        print(f"--   {relation}: {len(result.facts_of(relation))} row(s)")
    if not args.counts_only:
        for fact in sorted(result, key=repr):
            print(fact)
    return 0


def cmd_implies(args) -> int:
    from repro.core.implication import implies_tgd

    lhs = [parse_dependency(text) for text in args.lhs]
    rhs = parse_dependency(args.rhs)
    result = implies_tgd(lhs, rhs, source_egds=_egds(args))
    print(f"implies: {result.holds}   (k = {result.k}, "
          f"patterns checked = {result.patterns_checked})")
    if not result.holds:
        print(f"refuting pattern: {result.failing_pattern}")
        print(f"counterexample source: {result.counterexample_source}")
    return 0 if result.holds else 1


def cmd_equivalent(args) -> int:
    from repro.core.implication import equivalent

    left = [parse_dependency(text) for text in args.left]
    right = [parse_dependency(text) for text in args.right]
    verdict = equivalent(left, right, source_egds=_egds(args))
    print(f"equivalent: {verdict}")
    return 0 if verdict else 1


def cmd_glav(args) -> int:
    from repro.core.glav_equivalence import glav_distance_report

    report = glav_distance_report(_dependencies(args), source_egds=_egds(args))
    print(f"bounded f-block size: {report['bounded_fblock_size']}")
    if report["bounded_fblock_size"]:
        print(f"f-block bound: {report['fblock_bound']}")
        if report["equivalent_glav"]:
            print("equivalent GLAV mapping:")
            for tgd in report["equivalent_glav"]:
                print(f"  {tgd}")
        return 0
    print(f"f-block growth under cloning: {report['growth']}")
    print(f"witness pattern: {report['witness_pattern']}")
    print("not equivalent to any GLAV mapping (Theorem 4.1/4.2)")
    return 1


def cmd_patterns(args) -> int:
    from repro.core.patterns import count_k_patterns, enumerate_k_patterns

    tgd = parse_nested_tgd(args.dep[0]) if args.dep else None
    if tgd is None:
        raise SystemExit("one --dep is required")
    count = count_k_patterns(tgd, args.k)
    print(f"|P_{args.k}| = {count}")
    if count <= args.limit:
        for pattern in enumerate_k_patterns(tgd, args.k, max_patterns=args.limit):
            print(f"  {pattern}")
    else:
        print(f"  (more than --limit {args.limit}; not enumerating)")
    return 0


def cmd_profile(args) -> int:
    from repro.core.separation import fblock_profile, nested_expressibility_report
    from repro.workloads.families import (
        CYCLE_FAMILY,
        SUCCESSOR_FAMILY,
        SUCCESSOR_Q_FAMILY,
    )

    families = {
        "successor": SUCCESSOR_FAMILY,
        "successor+Q": SUCCESSOR_Q_FAMILY,
        "odd-cycle": CYCLE_FAMILY,
    }
    family = families[args.family]
    sizes = [int(piece) for piece in args.sizes.split(",")]
    deps = _dependencies(args)
    print(f"{'n':>5} {'fblock':>7} {'fdegree':>8} {'path':>5} {'facts':>6}")
    for profile in fblock_profile(deps, family, sizes):
        print(
            f"{profile.size:>5} {profile.fblock_size:>7} "
            f"{profile.fdegree:>8} {profile.path_length:>5} {profile.core_facts:>6}"
        )
    report = nested_expressibility_report(deps, family, sizes)
    print(f"verdict: {report.reason}")
    return 0


def cmd_sql(args) -> int:
    from repro.export.sql import compile_mapping_to_sql, schema_ddl
    from repro.logic.nested import nested_tgds_from
    from repro.logic.schema import Schema

    deps = nested_tgds_from(_dependencies(args))
    source_schema, target_schema = Schema(), Schema()
    for tgd in deps:
        source_schema = source_schema.union(tgd.source_schema())
        target_schema = target_schema.union(tgd.target_schema())
    print("-- source schema")
    for statement in schema_ddl(source_schema):
        print(f"{statement};")
    print("-- target schema")
    for statement in schema_ddl(target_schema):
        print(f"{statement};")
    print("-- transformation")
    for statement in compile_mapping_to_sql(deps):
        print(f"{statement};")
    return 0


def cmd_certain(args) -> int:
    from repro.queries import certain_answers, parse_query

    deps = _dependencies(args)
    query = parse_query(args.query)
    source = parse_instance(args.instance)
    answers = certain_answers(query, source, deps)
    for answer in sorted(answers, key=repr):
        print(", ".join(str(value.name) for value in answer))
    print(f"-- {len(answers)} certain answer(s)")
    return 0


def cmd_lint(args) -> int:
    import json

    from repro.analysis.sarif import sarif_json
    from repro.analysis.static import analyze, apply_baseline, baseline_fingerprints

    deps = _dependencies(args)
    report = analyze(deps, source_egds=_egds(args))
    if args.write_baseline:
        fingerprints = baseline_fingerprints(report)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump({"fingerprints": fingerprints}, handle, indent=2)
            handle.write("\n")
        print(f"baseline: {len(fingerprints)} fingerprint(s) -> {args.write_baseline}")
        return 0
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        report = apply_baseline(report, baseline.get("fingerprints", ()))
    if args.sarif:
        print(sarif_json(report))
    elif args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_analyze(args) -> int:
    from repro.analysis.frontier import describe_witnesses, frontier_report

    report = frontier_report(_dependencies(args) + _egds(args))
    if args.witnesses:
        tier = report.tier
        print(f"certified: {report.certified}")
        print(f"decidable reasoning: {report.decidable_reasoning}")
        print(f"tier: {tier.tier.value} (basis {tier.basis.value}): {tier.reason}")
        for line in describe_witnesses(report):
            print(line)
    else:
        print(report.to_json())
    return 0 if report.certified else 1


def cmd_cache(args) -> int:
    """Inspect or maintain the persistent cache store (repro.cache).

    Output is deterministic JSON (sorted keys, stable shape): the store
    path, schema version, enabled spaces, per-space entry counts, lifetime
    hit/miss counters, and on-disk size.  ``clear`` drops every entry;
    ``vacuum`` reclaims file space after evictions.  Without a configured
    store (no ``REPRO_CACHE_DIR`` and no ``--dir``), ``stats`` reports
    ``enabled: false`` and the maintenance actions exit 1.
    """
    import json

    from repro.cache import cache_stats, configure, get_store

    if args.dir:
        configure(args.dir)
    if args.action != "stats":
        store = get_store()
        if store is None:
            print(json.dumps({"enabled": False, "path": None}, sort_keys=True, indent=2))
            return 1
        if args.action == "clear":
            store.clear()
        else:
            store.vacuum()
    print(json.dumps(cache_stats(), sort_keys=True, indent=2))
    return 0


def cmd_optimize(args) -> int:
    from repro.core.normalization import optimize_report

    deps = _dependencies(args)
    report = optimize_report(
        deps, source_egds=_egds(args), semantic=args.semantic, budget=args.budget,
    )
    if args.json:
        print(report.to_json())
        return 0
    print(f"{len(deps)} dependencies -> {len(report.kept)}")
    for dep in report.kept:
        print(f"  {dep}")
    return 0


def cmd_contain(args) -> int:
    from repro.analysis.containment import check_containment

    lhs = [parse_dependency(text) for text in args.lhs]
    rhs = [parse_dependency(text) for text in args.rhs]
    report = check_containment(lhs, rhs, _egds(args), budget=args.budget)
    if args.witnesses and not args.json:
        print(f"containment: {report.status}")
        print(f"certified: {report.certified} (tier {report.tier})")
        witness = report.counterexample
        if witness is not None:
            print(f"refuted dependency: {witness.dependency}")
            print(f"counterexample source: "
                  f"{', '.join(str(f) for f in witness.source)}")
            print(f"unmatched target pattern: "
                  f"{', '.join(str(f) for f in witness.target)}")
        for verdict in report.refusals:
            print(f"refused {verdict.dependency}: {verdict.reason}")
    else:
        print(report.to_json())
    return 0 if report.holds else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nested dependencies: structure and reasoning (PODS 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    backend_choices = ["tuple", "columnar", "sql", "auto"]

    chase_parser = sub.add_parser("chase", help="chase a source instance")
    _add_dependency_arguments(chase_parser)
    chase_parser.add_argument("--instance", required=True, help="source instance text")
    chase_parser.add_argument("--core", action="store_true", help="return the core")
    chase_parser.add_argument(
        "--backend", choices=backend_choices, default="tuple",
        help="execution backend (default: tuple)",
    )
    chase_parser.set_defaults(func=cmd_chase)

    core_parser = sub.add_parser(
        "core", help="compute the core of an instance with a backend report (JSON)"
    )
    core_parser.add_argument("--instance", required=True, help="instance text")
    core_parser.add_argument(
        "--dep", action="append", default=[], metavar="TEXT",
        help="chase the instance with these dependencies first (repeatable)",
    )
    core_parser.add_argument(
        "--backend", choices=backend_choices, default="auto",
        help="core engine (default: auto)",
    )
    core_parser.add_argument(
        "--facts", action="store_true",
        help="include the core's fact listing in the JSON report",
    )
    core_parser.set_defaults(func=cmd_core)

    exchange_parser = sub.add_parser(
        "exchange", help="run a data exchange (chase) with a backend report"
    )
    _add_dependency_arguments(exchange_parser)
    exchange_parser.add_argument(
        "--instance", required=True, help="source instance text"
    )
    exchange_parser.add_argument(
        "--backend", choices=backend_choices, default="auto",
        help="execution backend (default: auto)",
    )
    exchange_parser.add_argument(
        "--counts-only", action="store_true",
        help="print only the backend report and per-relation row counts",
    )
    exchange_parser.set_defaults(func=cmd_exchange)

    implies_parser = sub.add_parser("implies", help="run the IMPLIES procedure")
    implies_parser.add_argument("--lhs", action="append", default=[], required=True)
    implies_parser.add_argument("--rhs", required=True)
    implies_parser.add_argument("--egd", action="append", default=[])
    implies_parser.set_defaults(func=cmd_implies)

    equivalent_parser = sub.add_parser("equivalent", help="decide logical equivalence")
    equivalent_parser.add_argument("--left", action="append", default=[], required=True)
    equivalent_parser.add_argument("--right", action="append", default=[], required=True)
    equivalent_parser.add_argument("--egd", action="append", default=[])
    equivalent_parser.set_defaults(func=cmd_equivalent)

    glav_parser = sub.add_parser("glav", help="decide equivalence to a GLAV mapping")
    _add_dependency_arguments(glav_parser)
    glav_parser.set_defaults(func=cmd_glav)

    patterns_parser = sub.add_parser("patterns", help="enumerate k-patterns")
    _add_dependency_arguments(patterns_parser)
    patterns_parser.add_argument("--k", type=int, default=1)
    patterns_parser.add_argument("--limit", type=int, default=1000)
    patterns_parser.set_defaults(func=cmd_patterns)

    profile_parser = sub.add_parser("profile", help="f-block profile along a family")
    _add_dependency_arguments(profile_parser)
    profile_parser.add_argument(
        "--family", choices=["successor", "successor+Q", "odd-cycle"],
        default="successor",
    )
    profile_parser.add_argument("--sizes", default="2,4,6,8")
    profile_parser.set_defaults(func=cmd_profile)

    lint_parser = sub.add_parser(
        "lint", help="static analysis: termination verdict + structural lints"
    )
    _add_dependency_arguments(lint_parser)
    lint_format = lint_parser.add_mutually_exclusive_group()
    lint_format.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    lint_format.add_argument(
        "--sarif", action="store_true", help="emit the report as SARIF 2.1.0"
    )
    lint_parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings whose fingerprints appear in this baseline file",
    )
    lint_parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record the current findings' fingerprints to FILE and exit 0",
    )
    lint_parser.set_defaults(func=cmd_lint)

    analyze_parser = sub.add_parser(
        "analyze",
        help="decidability-frontier certificate: complexity tier, triangular "
        "guardedness, and degree witnesses (JSON; exit 1 when uncertified)",
    )
    _add_dependency_arguments(analyze_parser)
    analyze_parser.add_argument(
        "--witnesses", action="store_true",
        help="print human-readable witness lines instead of JSON",
    )
    analyze_parser.set_defaults(func=cmd_analyze)

    optimize_parser = sub.add_parser("optimize", help="minimize a mapping")
    _add_dependency_arguments(optimize_parser)
    optimize_parser.add_argument(
        "--semantic", action="store_true",
        help="drop semantically redundant dependencies via the certified "
        "containment analysis (attaches an equivalence certificate)",
    )
    optimize_parser.add_argument(
        "--json", action="store_true",
        help="emit kept/dropped dependencies (and the certificate) as "
        "deterministic JSON",
    )
    optimize_parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="explicit IMPLIES sweep budget for uncertified sets (--semantic)",
    )
    optimize_parser.set_defaults(func=cmd_optimize)

    contain_parser = sub.add_parser(
        "contain",
        help="decide mapping containment Sigma <= Sigma' (solution-set "
        "inclusion; JSON; exit 1 unless containment holds)",
    )
    contain_parser.add_argument(
        "--lhs", action="append", default=[], required=True,
        help="a dependency of the contained mapping Sigma (repeatable)",
    )
    contain_parser.add_argument(
        "--rhs", action="append", default=[], required=True,
        help="a dependency of the containing mapping Sigma' (repeatable)",
    )
    contain_parser.add_argument("--egd", action="append", default=[])
    contain_parser.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="explicit sweep budget admitting queries outside the certified "
        "frontier",
    )
    contain_parser.add_argument(
        "--witnesses", action="store_true",
        help="print human-readable witness/refusal lines instead of JSON",
    )
    contain_parser.add_argument(
        "--json", action="store_true",
        help="force deterministic JSON output (the default; wins over "
        "--witnesses)",
    )
    contain_parser.set_defaults(func=cmd_contain)

    cache_parser = sub.add_parser(
        "cache", help="inspect or maintain the persistent cache store"
    )
    cache_parser.add_argument(
        "action",
        choices=["stats", "clear", "vacuum"],
        help="stats: print store statistics; clear: drop all entries; "
        "vacuum: reclaim on-disk space",
    )
    cache_parser.add_argument(
        "--dir",
        help="cache directory (defaults to the REPRO_CACHE_DIR environment variable)",
    )
    cache_parser.set_defaults(func=cmd_cache)

    sql_parser = sub.add_parser("sql", help="compile a nested GLAV mapping to SQL")
    _add_dependency_arguments(sql_parser)
    sql_parser.set_defaults(func=cmd_sql)

    certain_parser = sub.add_parser("certain", help="certain answers of a CQ")
    _add_dependency_arguments(certain_parser)
    certain_parser.add_argument("--instance", required=True, help="source instance")
    certain_parser.add_argument(
        "--query", required=True, help='a CQ, e.g. "q(x) :- R(x, y)"'
    )
    certain_parser.set_defaults(func=cmd_certain)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
