"""Exporters: compiling schema mappings to executable SQL.

The paper's introduction recalls the Clio argument for nested GLAV mappings:
"since they are specified in first-order logic, nested GLAV mappings give
rise to transformations that, like those arising from GLAV mappings, can be
implemented using SQL queries".  :mod:`repro.export.sql` reproduces that
claim executably: it compiles a nested GLAV mapping to ``INSERT ... SELECT``
statements (Skolem terms become string-concatenation expressions) and can run
them on an in-memory SQLite database, producing exactly the oblivious chase.
"""

from repro.export.sql import compile_mapping_to_sql, execute_exchange, schema_ddl

__all__ = ["compile_mapping_to_sql", "execute_exchange", "schema_ddl"]
