"""Compile nested GLAV mappings to SQL and execute them (Clio-style).

Every nested tgd flattens (via Skolemization, Section 2 of the paper) into
clauses ``body_atoms -> head_atom`` whose head arguments are variables or
Skolem terms.  Each clause compiles to one statement::

    INSERT INTO T
    SELECT DISTINCT a0.c1,
           'f_y(' || length(a0.c0) || ':' || a0.c0 || ',' || ... || ')'
    FROM S AS a0, S AS a1
    WHERE a0.c0 = a1.c0

- body atoms become table aliases; repeated variables become join/selection
  predicates;
- Skolem terms become string-concatenation expressions with **length-prefixed
  components** (``3:a,b`` vs ``1:a``), so the generated labeled nulls are in
  bijection with the ground Skolem terms of the oblivious chase even when
  constants themselves contain ``,``/``(``/``)`` -- naive concatenation
  would collide ``f(Constant("a,b"))`` with ``f(a, b)``;
- all columns are TEXT (``c0, c1, ...``).

:func:`execute_exchange` is the *executable* counterpart: it runs the
mapping through one of the interchangeable chase backends
(:mod:`repro.engine.sql_backend` by default, which compiles the exact
clause program of :func:`repro.engine.chase.compile_clause_program` and
decodes results back through the intern tables) and returns an
:class:`Instance` whose facts equal ``chase(I, M)`` **exactly** -- same
constants, same ground-Skolem-term nulls -- verified by the test suite
against the chase engine.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.nested import nested_tgds_from
from repro.logic.schema import Schema
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Null, Variable


_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def _check_identifier(name: str) -> str:
    if not _IDENTIFIER.match(name):
        raise DependencyError(f"{name!r} is not usable as an SQL identifier")
    return name


def schema_ddl(schema: Schema) -> list[str]:
    """CREATE TABLE statements for a schema (all columns TEXT).

        >>> schema_ddl(Schema([("S", 2)]))
        ['CREATE TABLE S (c0 TEXT, c1 TEXT)']
    """
    statements = []
    for relation in schema:
        _check_identifier(relation.name)
        columns = ", ".join(f"c{i} TEXT" for i in range(relation.arity))
        statements.append(f"CREATE TABLE {relation.name} ({columns})")
    return statements


def _sql_literal(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class _ClauseCompiler:
    """Compile one flattened clause (body atoms -> one head atom) to SQL."""

    def __init__(self, body: Sequence[Atom]):
        self.aliases: list[tuple[str, Atom]] = [
            (f"a{i}", atom) for i, atom in enumerate(body)
        ]
        self.variable_columns: dict[Variable, str] = {}
        self.conditions: list[str] = []
        for alias, atom in self.aliases:
            _check_identifier(atom.relation)
            for position, arg in enumerate(atom.args):
                column = f"{alias}.c{position}"
                if not isinstance(arg, Variable):
                    raise DependencyError(f"non-variable body argument {arg!r}")
                if arg in self.variable_columns:
                    self.conditions.append(f"{column} = {self.variable_columns[arg]}")
                else:
                    self.variable_columns[arg] = column

    def expression(self, term) -> str:
        """The SQL expression computing a head argument."""
        if isinstance(term, Variable):
            try:
                return self.variable_columns[term]
            except KeyError:
                raise DependencyError(f"head variable {term!r} unbound in the body")
        if isinstance(term, FuncTerm):
            # Length-prefix every component: a constant containing `,`/`(`/`)`
            # can no longer produce the same label as a different trigger
            # (the prefixes make the rendering injective).
            pieces = [_sql_literal(f"{term.function}(")]
            for index, arg in enumerate(term.args):
                if index:
                    pieces.append(_sql_literal(","))
                inner = self.expression(arg)
                pieces.append(f"length({inner}) || ':' || {inner}")
            pieces.append(_sql_literal(")"))
            return " || ".join(pieces)
        raise DependencyError(f"cannot compile head term {term!r}")

    def insert_statement(self, head_atom: Atom) -> str:
        _check_identifier(head_atom.relation)
        select_list = ", ".join(self.expression(arg) for arg in head_atom.args)
        from_clause = ", ".join(f"{atom.relation} AS {alias}" for alias, atom in self.aliases)
        statement = (
            f"INSERT INTO {head_atom.relation} "
            f"SELECT DISTINCT {select_list} FROM {from_clause}"
        )
        if self.conditions:
            statement += " WHERE " + " AND ".join(self.conditions)
        return statement


def compile_mapping_to_sql(dependencies) -> list[str]:
    """Compile a nested GLAV mapping to a list of INSERT ... SELECT statements.

        >>> from repro.logic.parser import parse_tgd
        >>> compile_mapping_to_sql([parse_tgd("S(x,y) -> R(y,x)")])
        ['INSERT INTO R SELECT DISTINCT a0.c1, a0.c0 FROM S AS a0']
    """
    statements: list[str] = []
    for index, tgd in enumerate(nested_tgds_from(dependencies)):
        so = tgd.skolemize(function_prefix=f"d{index}_")
        for clause in so.clauses:
            compiler = _ClauseCompiler(clause.body)
            for head_atom in clause.head:
                statements.append(compiler.insert_statement(head_atom))
    return statements


def _render_value(value) -> str:
    """Render an instance value exactly as the SQL expressions build it."""
    if isinstance(value, Constant):
        return str(value.name)
    if isinstance(value, FuncTerm):
        inner = ",".join(
            f"{len(rendered)}:{rendered}"
            for rendered in (_render_value(arg) for arg in value.args)
        )
        return f"{value.function}({inner})"
    if isinstance(value, Null):
        return f"_{value.name}"
    raise DependencyError(f"cannot render value {value!r}")


def render_instance_values(instance: Instance) -> Instance:
    """Rewrite an instance's values into the SQL textual rendering.

    Ground Skolem-term nulls become :class:`Null` values labeled with the
    rendered text, so a chase result becomes directly comparable with the
    output of :func:`compile_mapping_to_sql` statements.
    """
    def convert(value):
        if isinstance(value, Constant):
            return value
        return Null(_render_value(value))

    return Instance(
        Atom(fact.relation, tuple(convert(arg) for arg in fact.args))
        for fact in instance
    )


def execute_exchange(source: Instance, dependencies, *, backend: str = "sql") -> Instance:
    """Execute the data exchange and return the produced target instance.

    The result equals ``chase(source, dependencies)`` **exactly** -- the
    same constants and the same ground-Skolem-term nulls -- whichever
    backend runs it:

    - ``"sql"`` (default): the clause program of
      :func:`repro.engine.chase.compile_clause_program` compiled to SQLite
      ``INSERT ... SELECT`` statements, values crossing the boundary through
      the injective tagged encoding of
      :mod:`repro.engine.sql_backend` and re-interned on the way out;
    - ``"columnar"``: the integer-array engine of
      :mod:`repro.engine.columnar`;
    - ``"tuple"``: the reference :func:`repro.engine.chase.chase`;
    - ``"auto"``: :func:`repro.engine.dispatch.choose_backend` picks by
      source size (single-pass exchanges always terminate, so certification
      is not a concern).
    """
    from repro.engine.chase import chase, compile_clause_program
    from repro.engine.dispatch import choose_backend

    clauses = compile_clause_program(dependencies)
    choice = choose_backend(
        backend, input_size=len(source), clauses=clauses, certified=True
    )
    if choice.backend == "sql":
        from repro.engine.sql_backend import (
            check_sql_backend_supported,
            sql_execute_exchange,
        )

        check_sql_backend_supported(clauses, what="exchange")
        return sql_execute_exchange(source, clauses)
    if choice.backend == "columnar":
        from repro.engine.columnar import columnar_execute_exchange

        return columnar_execute_exchange(source, clauses)
    return chase(source, dependencies)


__all__ = [
    "schema_ddl",
    "compile_mapping_to_sql",
    "render_instance_values",
    "execute_exchange",
]
