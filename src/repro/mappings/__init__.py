"""Schema mappings: the user-facing facade over dependencies and the engine."""

from repro.mappings.mapping import SchemaMapping

__all__ = ["SchemaMapping"]
