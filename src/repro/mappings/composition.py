"""Composition of schema mappings: GLAV ∘ GLAV → SO tgd.

SO tgds were introduced (reference [8] of the paper, Fagin-Kolaitis-Popa-Tan)
exactly because they are the language needed to express the composition of
GLAV mappings, and the paper positions nested tgds strictly below them.  This
module implements the composition algorithm:

1. Skolemize the first mapping ``Sigma_12``: every s-t tgd
   ``phi(x) -> exists y psi(x, y)`` becomes a set of *rules*
   ``T(t_1, ..., t_k) <- phi(x)`` with Skolem terms for the ``y``.
2. For every (Skolemized) tgd of ``Sigma_23`` and every way of resolving each
   of its intermediate-schema body atoms against a rule from step 1 (rules
   renamed apart per use), emit one SO tgd clause: the bodies of the chosen
   rules become the source-side body; matching the atom arguments against the
   rule-head terms yields a substitution for the tgd's variables where
   possible and *equalities between terms* where a variable is matched twice;
   the head is the tgd's head under that substitution.  Skolem terms of
   ``Sigma_23`` applied to substituted terms create *nested terms* -- the
   reason full SO tgds (not plain ones) are the composition language.

The result is an SO tgd whose chase agrees with the two-step chase
(``chase(chase(I, Sigma_12), Sigma_23)``) up to homomorphic equivalence,
which the test suite verifies.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.errors import DependencyError
from repro.logic.atoms import Atom
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import substitute_term
from repro.logic.tgds import STTgd
from repro.logic.values import Variable


class _Rule:
    """A Skolemized head atom of Sigma_12 with its body: ``head <- body``."""

    def __init__(self, head: Atom, body: tuple[Atom, ...], index: int):
        self.head = head
        self.body = body
        self.index = index

    def renamed_apart(self, use: int) -> "_Rule":
        """Return a copy with all variables renamed with a per-use suffix."""
        renaming = {
            var: Variable(f"{var.name}_r{self.index}u{use}")
            for atom in self.body
            for var in atom.variables()
        }
        head_args = tuple(substitute_term(arg, renaming) for arg in self.head.args)
        body = tuple(atom.substitute(renaming) for atom in self.body)
        return _Rule(Atom(self.head.relation, head_args), body, self.index)


def _rules_from(mapping_tgds: Sequence[STTgd]) -> list[_Rule]:
    rules: list[_Rule] = []
    for index, tgd in enumerate(mapping_tgds):
        head = tgd.skolem_head(
            function_namer=lambda var, index=index: f"c{index}_{var.name}"
        )
        for atom in head:
            rules.append(_Rule(atom, tgd.body, index))
    return rules


def _as_st_tgds(dependencies: Iterable, which: str) -> list[STTgd]:
    result: list[STTgd] = []
    for dep in dependencies:
        if isinstance(dep, STTgd):
            result.append(dep)
        elif isinstance(dep, NestedTgd) and dep.is_flat():
            result.append(dep.to_st_tgd())
        else:
            raise DependencyError(
                f"composition requires GLAV mappings; {which} contains {dep!r}"
            )
    return result


def compose(sigma_12, sigma_23, name: str | None = None) -> SOTgd:
    """Compose two GLAV mappings into an SO tgd.

    *sigma_12* maps schema S1 to S2 and *sigma_23* maps S2 to S3; both are
    iterables of s-t tgds (or single-part nested tgds).  The result is an SO
    tgd from S1 to S3 defining exactly the composition
    ``{(I1, I3) | exists I2 : (I1,I2) |= Sigma_12 and (I2,I3) |= Sigma_23}``.

        >>> from repro.logic.parser import parse_tgd
        >>> takes = [parse_tgd("Takes(n, co) -> Takes1(n, co)")]
        >>> student = [parse_tgd("Takes1(n, co) -> exists s . Enrolled(n, s)")]
        >>> composed = compose(takes, student)
        >>> len(composed.clauses)
        1
    """
    from repro.mappings.mapping import SchemaMapping

    if isinstance(sigma_12, SchemaMapping):
        sigma_12 = sigma_12.dependencies
    if isinstance(sigma_23, SchemaMapping):
        sigma_23 = sigma_23.dependencies
    first = _as_st_tgds(sigma_12, "the first mapping")
    second = _as_st_tgds(sigma_23, "the second mapping")

    middle_schema = set()
    for tgd in first:
        middle_schema.update(a.relation for a in tgd.head)

    rules = _rules_from(first)
    rules_by_relation: dict[str, list[_Rule]] = {}
    for rule in rules:
        rules_by_relation.setdefault(rule.head.relation, []).append(rule)

    clauses: list[SOClause] = []
    functions: set[str] = set()
    for tgd_index, tgd in enumerate(second):
        for atom in tgd.body:
            if atom.relation not in middle_schema:
                raise DependencyError(
                    f"body atom {atom!r} of the second mapping is not over the "
                    "intermediate schema produced by the first mapping"
                )
        skolem_head = tgd.skolem_head(
            function_namer=lambda var, tgd_index=tgd_index: f"d{tgd_index}_{var.name}"
        )
        options = [rules_by_relation.get(a.relation, []) for a in tgd.body]
        if any(not opts for opts in options):
            continue  # an unresolvable atom: the tgd can never fire
        for use, choice in enumerate(product(*options)):
            chosen = [rule.renamed_apart(f"{use}_{pos}") for pos, rule in enumerate(choice)]
            substitution: dict[Variable, object] = {}
            equalities: list[tuple] = []
            for atom, rule in zip(tgd.body, chosen):
                for var, term in zip(atom.args, rule.head.args):
                    if var in substitution:
                        left = substitution[var]
                        if left != term:
                            equalities.append((left, term))
                    else:
                        substitution[var] = term
            body_atoms: list[Atom] = []
            for rule in chosen:
                body_atoms.extend(rule.body)
            head_atoms = tuple(
                Atom(a.relation, tuple(substitute_term(t, substitution) for t in a.args))
                for a in skolem_head
            )
            clause = SOClause(
                body=tuple(body_atoms),
                equalities=tuple(equalities),
                head=head_atoms,
            )
            clauses.append(clause)
            functions |= clause.function_symbols()

    if not clauses:
        raise DependencyError(
            "the composition is vacuous: no tgd of the second mapping can be "
            "resolved against the first mapping's heads"
        )
    return SOTgd(functions=tuple(sorted(functions)), clauses=tuple(clauses), name=name)


def compose_chase(source, sigma_12, sigma_23):
    """The two-step chase ``chase(chase(I, Sigma_12), Sigma_23)``.

    By the composition theorem, this is a universal solution for the
    composition; it is homomorphically equivalent to ``chase(I, compose(...))``
    (verified by the test suite).
    """
    from repro.engine.chase import chase

    return chase(chase(source, list(sigma_12)), list(sigma_23))


__all__ = ["compose", "compose_chase"]
