"""The :class:`SchemaMapping` facade.

A schema mapping is a triple ``M = (S, T, Sigma)`` of a source schema, a
target schema and a set of constraints (Section 2 of the paper); this library
additionally allows a set of egds on the source schema (Section 5).  The
class bundles the chase, solution checking, universal solutions, and core
solutions behind one object, inferring schemas from the dependencies when
they are not given explicitly.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import DependencyError, SchemaError
from repro.logic.egds import Egd, KeyDependency
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.schema import Schema
from repro.logic.sotgd import SOTgd
from repro.logic.tgds import STTgd
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.egd_chase import satisfies_egds
from repro.engine.homomorphism import has_homomorphism
from repro.engine.model_check import satisfies


def _normalize_egds(egds) -> tuple[Egd, ...]:
    result: list[Egd] = []
    for item in egds:
        if isinstance(item, KeyDependency):
            result.extend(item.egds)
        elif isinstance(item, Egd):
            result.append(item)
        else:
            raise DependencyError(f"expected an egd or key dependency, got {item!r}")
    return tuple(result)


class SchemaMapping:
    """A schema mapping specified by s-t tgds, nested tgds, and/or SO tgds.

        >>> from repro.logic.parser import parse_instance, parse_nested_tgd
        >>> M = SchemaMapping([parse_nested_tgd(
        ...     "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")])
        >>> J = M.chase(parse_instance("S(a,b), S(a,c)"))
        >>> len(J)
        4
    """

    def __init__(
        self,
        dependencies: Iterable,
        source_egds: Iterable = (),
        source_schema: Schema | None = None,
        target_schema: Schema | None = None,
        name: str | None = None,
    ):
        self.name = name
        self.dependencies: tuple = tuple(dependencies)
        if not self.dependencies:
            raise DependencyError("a schema mapping needs at least one dependency")
        for dep in self.dependencies:
            if not isinstance(dep, (STTgd, NestedTgd, SOTgd)):
                raise DependencyError(f"unsupported dependency {dep!r}")
        self.source_egds: tuple[Egd, ...] = _normalize_egds(source_egds)
        self.source_schema = source_schema or self._infer_source_schema()
        self.target_schema = target_schema or self._infer_target_schema()
        if not self.source_schema.disjoint_from(self.target_schema):
            raise SchemaError("source and target schemas must be disjoint")

    def _infer_source_schema(self) -> Schema:
        schema = Schema()
        for dep in self.dependencies:
            schema = schema.union(dep.source_schema())
        for egd in self.source_egds:
            from repro.logic.schema import infer_schema

            schema = schema.union(infer_schema(egd.body))
        return schema

    def _infer_target_schema(self) -> Schema:
        schema = Schema()
        for dep in self.dependencies:
            schema = schema.union(dep.target_schema())
        return schema

    # ------------------------------------------------------------- properties

    def is_glav(self) -> bool:
        """True if every dependency is (syntactically) an s-t tgd."""
        return all(
            isinstance(d, STTgd) or (isinstance(d, NestedTgd) and d.is_flat())
            for d in self.dependencies
        )

    def is_nested_glav(self) -> bool:
        """True if every dependency is an s-t tgd or a nested tgd."""
        return all(isinstance(d, (STTgd, NestedTgd)) for d in self.dependencies)

    def nested_dependencies(self) -> tuple[NestedTgd, ...]:
        """The dependencies, each converted to a nested tgd (fails for SO tgds)."""
        from repro.logic.nested import nested_tgds_from

        return tuple(nested_tgds_from(self.dependencies))

    # --------------------------------------------------------------- semantics

    def source_satisfies_egds(self, source: Instance) -> bool:
        """Check the source instance against the mapping's source egds."""
        return satisfies_egds(source, self.source_egds)

    def is_solution(self, source: Instance, target: Instance) -> bool:
        """Return True if ``(source, target) |= Sigma`` (egds included)."""
        if not self.source_satisfies_egds(source):
            return False
        return satisfies(source, target, self.dependencies)

    def chase(self, source: Instance) -> Instance:
        """Return the canonical universal solution ``chase(I, M)``."""
        return chase(source, self.dependencies)

    def universal_solution(self, source: Instance) -> Instance:
        """Alias for :meth:`chase` (the chase yields a universal solution)."""
        return self.chase(source)

    def core_solution(self, source: Instance) -> Instance:
        """Return ``core(chase(I, M))``.

        For nested GLAV mappings (and plain SO tgds in general) this is the
        smallest universal solution (Section 4.1 of the paper).
        """
        return core(self.chase(source))

    def is_universal_solution(self, source: Instance, target: Instance) -> bool:
        """Check that *target* is a solution that maps into the chase and back."""
        if not self.is_solution(source, target):
            return False
        canonical = self.chase(source)
        return has_homomorphism(target, canonical) and has_homomorphism(canonical, target)

    def __repr__(self) -> str:
        label = self.name or "SchemaMapping"
        return (
            f"<{label}: {len(self.dependencies)} dependencies, "
            f"{len(self.source_egds)} source egds>"
        )


__all__ = ["SchemaMapping"]
