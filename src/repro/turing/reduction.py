"""The plain SO tgd gadget of Theorem 5.1, and the Figure 8 enumeration.

Given a Turing machine M, :func:`build_reduction` constructs a plain SO tgd
(plus the single source key dependency "each element of ``S`` has a unique
predecessor") that materializes the triangular enumeration of M's
configurations shown in Figure 8 of the paper.  The two clause schemas are
exactly the paper's displayed SO tgds:

    check_good[x, y] & S(y, y')             -> N(f(x, y'), f(x, y))     (<- step)
    check_good[x', x'] & S(x, x') & Z(y)    -> N(f(x, y), f(x', x'))    (\\ step)

where ``check_good[x, y]`` is the local-correctness test of the configuration
cell (time x, tape y), which we concretize from the machine's transition
table as a family of conjunctive queries (one SO tgd clause per local case).
The paper leaves ``check`` abstract ("a complex definition that does not give
major insights"); our concretization covers symbol persistence, head writes,
and head arrivals, which is complete on the intended run encodings of
:mod:`repro.turing.encoding` (see the substitution notes in DESIGN.md: the
full guard/trap machinery for adversarial sources is beyond the proof
sketch).

The paper's dichotomy is then observable:

- if M halts in h steps, the enumeration stops after row h, so the f-block
  connected to the origin null ``f(e0, e0)`` has size O(h^2) *independent of
  the successor-relation length n* -- bounded f-block size;
- if M loops, the enumeration keeps growing with n -- unbounded f-block size,
  yet with f-degree at most 4, which by Theorem 4.12 also rules out
  equivalence to any nested GLAV mapping (Theorem 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.sotgd import SOClause, SOTgd
from repro.logic.terms import FuncTerm
from repro.logic.values import Constant, Variable
from repro.engine.gaifman import fact_block_of, fact_block_size

from repro.turing.encoding import (
    NO_HEAD_RELATION,
    SUCCESSOR_RELATION,
    ZERO_RELATION,
    head_relation,
    symbol_relation,
)
from repro.turing.machine import LEFT, RIGHT, STAY, TuringMachine

ENUMERATION_RELATION = "N"
ENUMERATION_FUNCTION = "f"

_X0 = Variable("x0")
_X = Variable("x")
_XP = Variable("xp")
_Y = Variable("y")
_YM1 = Variable("ym1")
_YP1 = Variable("yp1")
_YNEXT = Variable("ynext")
_Z = Variable("z")


def _s(a: Variable, b: Variable) -> Atom:
    return Atom(SUCCESSOR_RELATION, (a, b))


def _sym(symbol: str, t: Variable, p: Variable) -> Atom:
    return Atom(symbol_relation(symbol), (t, p))


def _head(state: str, t: Variable, p: Variable) -> Atom:
    return Atom(head_relation(state), (t, p))


def _nohead(t: Variable, p: Variable) -> Atom:
    return Atom(NO_HEAD_RELATION, (t, p))


def _check_variants(machine: TuringMachine) -> Iterator[list[Atom]]:
    """Yield the conjunctive local-correctness cases ``check_good[x, y]``.

    Each variant is a list of body atoms over the variables ``x0`` (previous
    time), ``x`` (current time), ``y`` (current cell) and, where needed, the
    cell neighbours ``ym1``/``yp1``.  Time-0 cells are accepted as given
    (variant with ``Z(x)``): the initial configuration is the input.
    """
    transitions = list(machine.transitions.values())
    alphabet = machine.alphabet()

    # Time 0: the represented initial configuration is taken at face value.
    for symbol in alphabet:
        yield [Atom(ZERO_RELATION, (_X,)), _sym(symbol, _X, _Y)]

    for symbol in alphabet:
        # C1 -- persistence, no head before or now.
        yield [
            _s(_X0, _X),
            _nohead(_X0, _Y), _sym(symbol, _X0, _Y),
            _sym(symbol, _X, _Y), _nohead(_X, _Y),
        ]
        for tr in transitions:
            next_state = tr.next_state
            if tr.move == RIGHT:
                # C2 -- persistence with the head arriving from the left.
                yield [
                    _s(_X0, _X), _s(_YM1, _Y),
                    _nohead(_X0, _Y), _sym(symbol, _X0, _Y),
                    _head(tr.state, _X0, _YM1), _sym(tr.read, _X0, _YM1),
                    _sym(symbol, _X, _Y), _head(next_state, _X, _Y),
                ]
            elif tr.move == LEFT:
                # C3 -- persistence with the head arriving from the right.
                yield [
                    _s(_X0, _X), _s(_Y, _YP1),
                    _nohead(_X0, _Y), _sym(symbol, _X0, _Y),
                    _head(tr.state, _X0, _YP1), _sym(tr.read, _X0, _YP1),
                    _sym(symbol, _X, _Y), _head(next_state, _X, _Y),
                ]

    for tr in transitions:
        # C4 -- the head was here: it writes and leaves (or stays).
        status = (
            _head(tr.next_state, _X, _Y) if tr.move == STAY else _nohead(_X, _Y)
        )
        yield [
            _s(_X0, _X),
            _head(tr.state, _X0, _Y), _sym(tr.read, _X0, _Y),
            _sym(tr.write, _X, _Y), status,
        ]


def _diagonal_variants(machine: TuringMachine) -> Iterator[list[Atom]]:
    """Local-correctness cases ``check_good[x', x']`` for a fresh diagonal cell.

    The cell (x', x') does not exist at time x (the triangle has cells
    0 .. x at time x), so its content is the *initial* tape content at
    position x' -- which the triangle does not represent, so the checks
    accept any symbol there (blank for machines started on an empty tape,
    the input symbol otherwise; exact on the intended encodings of
    :mod:`repro.turing.encoding`).  The head is on the fresh diagonal iff it
    raced in from the previous diagonal cell (x, x).  All variants are over
    ``x`` (previous time) and ``xp`` (current time = current cell).
    """
    alphabet = machine.alphabet()
    for symbol in alphabet:
        for tr in machine.transitions.values():
            if tr.move == RIGHT:
                # The head arrives on the fresh diagonal cell.
                yield [
                    _s(_X, _XP),
                    _head(tr.state, _X, _X), _sym(tr.read, _X, _X),
                    _sym(symbol, _XP, _XP), _head(tr.next_state, _XP, _XP),
                ]
        # No head on the previous diagonal: the fresh cell is headless.
        yield [
            _s(_X, _XP),
            _nohead(_X, _X),
            _sym(symbol, _XP, _XP), _nohead(_XP, _XP),
        ]
        for tr in machine.transitions.values():
            if tr.move != RIGHT:
                # Head on the previous diagonal but it does not move right.
                yield [
                    _s(_X, _XP),
                    _head(tr.state, _X, _X), _sym(tr.read, _X, _X),
                    _sym(symbol, _XP, _XP), _nohead(_XP, _XP),
                ]


@dataclass
class TuringReduction:
    """The constructed gadget: the plain SO tgd and the source key dependency."""

    machine: TuringMachine
    so_tgd: SOTgd
    key_dependency: Egd

    def origin_null(self) -> FuncTerm:
        """The null at the origin of the enumeration (the square node of Figure 8)."""
        zero = Constant("e0")
        return FuncTerm(ENUMERATION_FUNCTION, (zero, zero))


def build_reduction(machine: TuringMachine) -> TuringReduction:
    """Construct the Theorem 5.1 gadget for *machine*.

        >>> from repro.turing.machine import halting_machine
        >>> reduction = build_reduction(halting_machine(2))
        >>> reduction.so_tgd.is_plain()
        True
    """
    clauses: list[SOClause] = []
    f = ENUMERATION_FUNCTION

    for variant in _check_variants(machine):
        # <- step:  check_good[x, y] & S(y, ynext) -> N(f(x, ynext), f(x, y))
        body = tuple(variant) + (_s(_Y, _YNEXT),)
        head = (
            Atom(
                ENUMERATION_RELATION,
                (FuncTerm(f, (_X, _YNEXT)), FuncTerm(f, (_X, _Y))),
            ),
        )
        clauses.append(SOClause(body=body, equalities=(), head=head))

    for variant in _diagonal_variants(machine):
        # \\ step:  check_good[x', x'] & S(x, x') & Z(z) -> N(f(x, z), f(x', x'))
        body = tuple(variant) + (Atom(ZERO_RELATION, (_Z,)),)
        head = (
            Atom(
                ENUMERATION_RELATION,
                (FuncTerm(f, (_X, _Z)), FuncTerm(f, (_XP, _XP))),
            ),
        )
        clauses.append(SOClause(body=body, equalities=(), head=head))

    so_tgd = SOTgd(functions=(f,), clauses=tuple(clauses), name="turing_reduction")

    # The single key dependency: each element has a unique predecessor in S.
    key = Egd(
        body=(
            Atom(SUCCESSOR_RELATION, (Variable("p1"), Variable("q"))),
            Atom(SUCCESSOR_RELATION, (Variable("p2"), Variable("q"))),
        ),
        left=Variable("p1"),
        right=Variable("p2"),
        name="unique_predecessor",
    )
    return TuringReduction(machine=machine, so_tgd=so_tgd, key_dependency=key)


def enumeration_chain_length(reduction: TuringReduction, target: Instance) -> int:
    """The size of the f-block connected to the origin null in *target*.

    This is the quantity the paper's construction controls: parts of the
    enumeration not connected to the origin collapse in the core (via the
    guard/trap gadgets the proof sketch alludes to), so the origin-connected
    block is what decides bounded versus unbounded f-block size.
    """
    origin = reduction.origin_null()
    for fact in target:
        if origin in fact.args:
            return len(fact_block_of(target, fact))
    return 0


def enumeration_fblock_size(target: Instance) -> int:
    """The global f-block size of the chased enumeration target."""
    return fact_block_size(target)


__all__ = [
    "ENUMERATION_RELATION",
    "ENUMERATION_FUNCTION",
    "TuringReduction",
    "build_reduction",
    "enumeration_chain_length",
    "enumeration_fblock_size",
]
