"""Encoding a Turing machine run into a source instance (Theorem 5.1).

The reduction of Theorem 5.1 represents "a run of a Turing machine (state and
tape configurations) together with a successor relation in the source
instance".  We use the following source schema, parameterized by the machine:

- ``S(x, y)``      -- the successor relation (y = x + 1);
- ``Z(x)``         -- the initial element ("zero");
- ``Sym_s(t, p)``  -- at time t, tape cell p holds symbol s (one relation per
  tape symbol);
- ``Head_q(t, p)`` -- at time t, the head is at cell p in state q (one
  relation per state);
- ``NoHead(t, p)`` -- at time t, the head is *not* at cell p (the complement,
  materialized so that local-correctness checks are conjunctive queries).

Only the triangular part of the (time x tape) matrix is represented: at time
t, cells 0 .. t (Figure 8: "a Turing machine can in, e.g., 4 steps in time at
most reach the 4th tape cell").
"""

from __future__ import annotations

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.values import Constant

from repro.turing.machine import RunResult, TuringMachine, run_machine


def symbol_relation(symbol: str) -> str:
    """The relation name encoding tape symbol *symbol* (must parse as a relation)."""
    return f"Sym_{_safe(symbol)}"


def head_relation(state: str) -> str:
    """The relation name encoding head presence in *state*."""
    return f"Head_{_safe(state)}"


NO_HEAD_RELATION = "NoHead"
SUCCESSOR_RELATION = "S"
ZERO_RELATION = "Z"


def _safe(token: str) -> str:
    """Map arbitrary symbols to identifier-safe fragments."""
    replacements = {"_": "blank", " ": "sp"}
    if token in replacements:
        return replacements[token]
    return "".join(ch if ch.isalnum() else f"c{ord(ch)}" for ch in token)


def _time_constant(t: int) -> Constant:
    return Constant(f"e{t}")


def encode_run(result: RunResult, length: int | None = None) -> Instance:
    """Encode the configurations of a bounded run as a source instance.

    *length* is the length of the successor relation (defaults to the number
    of steps actually run).  Each configuration at time t contributes the
    triangular slice of cells ``0 .. min(t, length)``; a halted machine's
    final configuration is *not* repeated, so the encoded run simply stops --
    which is exactly the "missing information" situation the enumeration of
    Figure 8 detects by terminating.
    """
    machine = result.machine
    steps = result.steps
    if length is None:
        length = steps
    facts: list[Atom] = [Atom(ZERO_RELATION, (_time_constant(0),))]
    for i in range(length):
        facts.append(Atom(SUCCESSOR_RELATION, (_time_constant(i), _time_constant(i + 1))))

    for config in result.configurations:
        t = config.time
        if t > length:
            break
        for p in range(min(t, length) + 1):
            time_c, pos_c = _time_constant(t), _time_constant(p)
            facts.append(Atom(symbol_relation(config.symbol(p, machine.blank)),
                              (time_c, pos_c)))
            if config.head == p:
                facts.append(Atom(head_relation(config.state), (time_c, pos_c)))
            else:
                facts.append(Atom(NO_HEAD_RELATION, (time_c, pos_c)))
    return Instance(facts)


def run_source_instance(
    machine: TuringMachine,
    input_word: str,
    max_steps: int,
    length: int | None = None,
) -> Instance:
    """Simulate *machine* and encode the run; convenience over :func:`encode_run`.

        >>> from repro.turing.machine import halting_machine
        >>> inst = run_source_instance(halting_machine(2), "", max_steps=10)
        >>> "S" in inst.relations()
        True
    """
    result = run_machine(machine, input_word, max_steps)
    return encode_run(result, length=length)


__all__ = [
    "SUCCESSOR_RELATION",
    "ZERO_RELATION",
    "NO_HEAD_RELATION",
    "symbol_relation",
    "head_relation",
    "encode_run",
    "run_source_instance",
]
