"""The undecidability frontier, operationally (Theorems 5.1 and 5.2).

The reduction ties the halting problem to f-block boundedness: an algorithm
deciding whether the gadget SO tgd (with its key dependency) has bounded
f-block size would decide halting.  :func:`halting_via_boundedness` runs this
connection forward as a *semi-decision* procedure: it grows the successor
relation and watches the origin-connected f-block; a plateau sustained for
``patience`` consecutive sizes reports HALTS (with the halt-time bound), and
reaching the budget with monotone growth reports the budget-bounded verdict
LOOPS_UP_TO.  Exactly as undecidability demands, no finite budget can turn
the latter into a proof -- which the docstring of the verdict records.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.engine.chase import chase_so_tgd
from repro.turing.encoding import run_source_instance
from repro.turing.machine import TuringMachine
from repro.turing.reduction import TuringReduction, build_reduction, enumeration_chain_length


class Verdict(Enum):
    """Outcome of the boundedness probe."""

    HALTS = "halts"
    LOOPS_UP_TO_BUDGET = "loops-up-to-budget"


@dataclass
class FrontierReport:
    """The probe's trace: chain lengths per successor length, and the verdict.

    ``HALTS`` is a genuine proof (the enumeration provably cannot restart
    once the represented run ends).  ``LOOPS_UP_TO_BUDGET`` is *not* a proof
    of looping -- no finite budget can provide one; that gap is precisely the
    undecidability of Theorem 5.1.
    """

    machine: TuringMachine
    reduction: TuringReduction
    lengths: dict[int, int]
    verdict: Verdict
    plateau_value: int | None = None


def halting_via_boundedness(
    machine: TuringMachine,
    input_word: str = "",
    budget: int = 20,
    patience: int = 3,
    start: int = 2,
) -> FrontierReport:
    """Probe halting through the f-block size of the Theorem 5.1 gadget.

        >>> from repro.turing.machine import halting_machine, looping_machine
        >>> halting_via_boundedness(halting_machine(2)).verdict
        <Verdict.HALTS: 'halts'>
        >>> halting_via_boundedness(looping_machine(), budget=10).verdict
        <Verdict.LOOPS_UP_TO_BUDGET: 'loops-up-to-budget'>
    """
    reduction = build_reduction(machine)
    lengths: dict[int, int] = {}
    plateau_run = 0
    previous: int | None = None
    for n in range(start, start + budget):
        source = run_source_instance(machine, input_word, max_steps=n, length=n)
        target = chase_so_tgd(source, reduction.so_tgd)
        chain = enumeration_chain_length(reduction, target)
        lengths[n] = chain
        if previous is not None and chain == previous:
            plateau_run += 1
            if plateau_run >= patience:
                return FrontierReport(
                    machine=machine,
                    reduction=reduction,
                    lengths=lengths,
                    verdict=Verdict.HALTS,
                    plateau_value=chain,
                )
        else:
            plateau_run = 0
        previous = chain
    return FrontierReport(
        machine=machine,
        reduction=reduction,
        lengths=lengths,
        verdict=Verdict.LOOPS_UP_TO_BUDGET,
    )


__all__ = ["Verdict", "FrontierReport", "halting_via_boundedness"]
