"""The Turing-machine reduction behind Theorems 5.1 and 5.2.

Section 5 of the paper proves that, in the presence of a single source key
dependency, it is undecidable whether a plain SO tgd is equivalent to a GLAV
mapping (Theorem 5.1) or to a nested GLAV mapping (Theorem 5.2).  The proof
constructs, from a Turing machine M, a plain SO tgd that "simulates" M: the
source instance carries a successor relation and an alleged run of M, and the
SO tgd materializes the triangular enumeration of Figure 8 in the target --
one ``N``-chain fact per locally correct configuration cell.  The enumeration
(and hence the origin-connected f-block) is bounded iff M halts.

- :mod:`repro.turing.machine` -- a deterministic Turing machine simulator;
- :mod:`repro.turing.encoding` -- encoding a run into a source instance;
- :mod:`repro.turing.reduction` -- the plain SO tgd + key dependency gadget
  and the f-block measurement that exhibits the paper's dichotomy.
"""

from repro.turing.machine import TuringMachine, Transition, run_machine
from repro.turing.encoding import encode_run, run_source_instance
from repro.turing.reduction import (
    TuringReduction,
    build_reduction,
    enumeration_chain_length,
)

__all__ = [
    "TuringMachine",
    "Transition",
    "run_machine",
    "encode_run",
    "run_source_instance",
    "TuringReduction",
    "build_reduction",
    "enumeration_chain_length",
]
