"""A deterministic single-tape Turing machine simulator.

The machine model matches the reduction of Theorem 5.1: a right-infinite
tape, a single head starting at cell 0, and a transition function
``delta(state, symbol) -> (state', symbol', direction)``.  In ``t`` steps the
head reaches at most cell ``t``, which is why the paper's enumeration only
needs the triangular part of the (time x tape) configuration matrix
(Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ReproError


LEFT = "L"
RIGHT = "R"
STAY = "N"


class TuringMachineError(ReproError):
    """Ill-formed Turing machine or invalid simulation request."""


@dataclass(frozen=True)
class Transition:
    """One entry of the transition table."""

    state: str
    read: str
    next_state: str
    write: str
    move: str

    def __post_init__(self) -> None:
        if self.move not in (LEFT, RIGHT, STAY):
            raise TuringMachineError(f"invalid move {self.move!r} (use 'L', 'R' or 'N')")


@dataclass(frozen=True)
class Configuration:
    """A machine configuration: time step, state, head position, and tape prefix.

    ``tape`` holds cells ``0 .. time`` (the triangular representation: in
    ``t`` steps the head cannot have passed cell ``t``).
    """

    time: int
    state: str
    head: int
    tape: tuple[str, ...]

    def symbol(self, position: int, blank: str) -> str:
        if 0 <= position < len(self.tape):
            return self.tape[position]
        return blank


class TuringMachine:
    """A deterministic Turing machine.

        >>> bouncer = TuringMachine(
        ...     states=["q0", "halt"], blank="_",
        ...     transitions=[Transition("q0", "_", "halt", "_", "N")],
        ...     initial_state="q0", halting_states=["halt"])
        >>> result = run_machine(bouncer, "", max_steps=5)
        >>> result.halted
        True
    """

    def __init__(
        self,
        states: Iterable[str],
        blank: str,
        transitions: Iterable[Transition],
        initial_state: str,
        halting_states: Iterable[str],
    ):
        self.states = tuple(states)
        self.blank = blank
        self.initial_state = initial_state
        self.halting_states = frozenset(halting_states)
        self.transitions: dict[tuple[str, str], Transition] = {}
        for transition in transitions:
            key = (transition.state, transition.read)
            if key in self.transitions:
                raise TuringMachineError(f"nondeterministic transition for {key}")
            self.transitions[key] = transition
        if initial_state not in self.states:
            raise TuringMachineError(f"initial state {initial_state!r} not declared")
        for halting in self.halting_states:
            if halting not in self.states:
                raise TuringMachineError(f"halting state {halting!r} not declared")

    def alphabet(self) -> tuple[str, ...]:
        """The tape symbols mentioned by the transition table, plus the blank."""
        symbols = {self.blank}
        for transition in self.transitions.values():
            symbols.add(transition.read)
            symbols.add(transition.write)
        return tuple(sorted(symbols))

    def step(self, config: Configuration) -> Configuration | None:
        """Perform one step; return None if the machine has halted or is stuck."""
        if config.state in self.halting_states:
            return None
        symbol = config.symbol(config.head, self.blank)
        transition = self.transitions.get((config.state, symbol))
        if transition is None:
            return None
        new_time = config.time + 1
        tape = list(config.tape) + [self.blank] * (new_time + 1 - len(config.tape))
        tape[config.head] = transition.write
        head = config.head
        if transition.move == RIGHT:
            head += 1
        elif transition.move == LEFT:
            head = max(0, head - 1)
        return Configuration(
            time=new_time, state=transition.next_state, head=head, tape=tuple(tape)
        )

    def initial_configuration(self, input_word: str) -> Configuration:
        tape = tuple(input_word) if input_word else (self.blank,)
        return Configuration(time=0, state=self.initial_state, head=0, tape=tape)


@dataclass
class RunResult:
    """The outcome of a bounded simulation."""

    machine: TuringMachine
    configurations: list[Configuration]
    halted: bool

    @property
    def steps(self) -> int:
        return len(self.configurations) - 1

    @property
    def final(self) -> Configuration:
        return self.configurations[-1]


def run_machine(machine: TuringMachine, input_word: str, max_steps: int) -> RunResult:
    """Simulate *machine* on *input_word* for at most *max_steps* steps."""
    configurations = [machine.initial_configuration(input_word)]
    for __ in range(max_steps):
        next_config = machine.step(configurations[-1])
        if next_config is None:
            return RunResult(machine, configurations, halted=True)
        configurations.append(next_config)
    halted = machine.step(configurations[-1]) is None
    return RunResult(machine, configurations, halted=halted)


# ----------------------------------------------------------- stock machines


def halting_machine(steps: int = 3) -> TuringMachine:
    """A machine that writes ``steps`` marks and halts (bounded enumeration case)."""
    states = [f"q{i}" for i in range(steps)] + ["halt"]
    transitions = [
        Transition(f"q{i}", "_", "halt" if i + 1 == steps else f"q{i + 1}", "1", RIGHT)
        for i in range(steps)
    ]
    return TuringMachine(
        states=states,
        blank="_",
        transitions=transitions,
        initial_state="q0",
        halting_states=["halt"],
    )


def looping_machine() -> TuringMachine:
    """A machine that runs right forever (unbounded enumeration case)."""
    return TuringMachine(
        states=["q0"],
        blank="_",
        transitions=[Transition("q0", "_", "q0", "1", RIGHT),
                     Transition("q0", "1", "q0", "1", RIGHT)],
        initial_state="q0",
        halting_states=[],
    )


def bouncer_machine(width: int = 2) -> TuringMachine:
    """A machine bouncing forever between cell 0 and cell *width*.

    Exercises both head directions (the C2 *and* C3 arrival cases of the
    reduction's local-correctness checks) while never halting.
    """
    states = (
        [f"r{i}" for i in range(width)]       # moving right, i = position
        + [f"l{i}" for i in range(1, width + 1)]  # moving left
    )
    transitions: list[Transition] = []
    for i in range(width):
        next_state = f"l{width}" if i + 1 == width else f"r{i + 1}"
        for symbol in ("_", "1"):
            transitions.append(Transition(f"r{i}", symbol, next_state, "1", RIGHT))
    for i in range(width, 0, -1):
        next_state = "r0" if i - 1 == 0 else f"l{i - 1}"
        for symbol in ("_", "1"):
            transitions.append(Transition(f"l{i}", symbol, next_state, "1", LEFT))
    return TuringMachine(
        states=states,
        blank="_",
        transitions=transitions,
        initial_state="r0",
        halting_states=[],
    )


def write_and_return_machine(width: int = 2) -> TuringMachine:
    """A halting machine that walks right *width* cells, then returns and halts.

    A halting machine with LEFT moves, for the bounded direction of the
    reduction with non-trivial head dynamics.
    """
    states = (
        [f"r{i}" for i in range(width)]
        + [f"l{i}" for i in range(1, width + 1)]
        + ["halt"]
    )
    transitions: list[Transition] = []
    for i in range(width):
        next_state = f"l{width}" if i + 1 == width else f"r{i + 1}"
        transitions.append(Transition(f"r{i}", "_", next_state, "1", RIGHT))
    for i in range(width, 0, -1):
        next_state = "halt" if i - 1 == 0 else f"l{i - 1}"
        for symbol in ("_", "1"):
            transitions.append(Transition(f"l{i}", symbol, next_state, symbol, LEFT))
    return TuringMachine(
        states=states,
        blank="_",
        transitions=transitions,
        initial_state="r0",
        halting_states=["halt"],
    )


def unary_doubler_machine() -> TuringMachine:
    """A machine that scans a unary input word and halts at its end.

    Halting time depends on the input word: with input ``1^k`` it halts
    after k + 1 steps.  Used to test input-dependent bounded enumerations.
    """
    return TuringMachine(
        states=["scan", "halt"],
        blank="_",
        transitions=[
            Transition("scan", "1", "scan", "1", RIGHT),
            Transition("scan", "_", "halt", "_", STAY),
        ],
        initial_state="scan",
        halting_states=["halt"],
    )


__all__ = [
    "LEFT",
    "RIGHT",
    "STAY",
    "TuringMachineError",
    "Transition",
    "Configuration",
    "TuringMachine",
    "RunResult",
    "run_machine",
    "halting_machine",
    "looping_machine",
    "bouncer_machine",
    "write_and_return_machine",
    "unary_doubler_machine",
]
