"""F-block size analysis: effective threshold, bounded anchor, and the
boundedness decision (Theorems 4.4, 4.9, 4.10, 4.11 and 5.5 of the paper).

A schema mapping M has *bounded f-block size* if there is an integer b such
that for every source instance I the f-block size of ``core(chase(I, M))``
is at most b.  By Theorem 4.1 (from [FKNP08]), a mapping specified by a
plain SO tgd -- in particular a nested GLAV mapping -- is logically
equivalent to a GLAV mapping iff it has bounded f-block size.

Two procedures are provided:

- :func:`decide_bounded_fblock_size` -- the *pattern-cloning growth test*,
  which operationalizes the proof of Theorem 4.4: a nested GLAV mapping has
  unbounded f-block size iff cloning some subtree of some pattern makes the
  maximal f-block of the core of the chase of the canonical source instance
  grow, and keep growing past the pigeonhole bound ``k = v * w + 1`` of
  Section 3 (beyond that bound, the paper's extension argument shows the
  growth continues forever).  This is the practical decision procedure.
- :func:`decide_bounded_fblock_size_exhaustive` -- the literal procedure of
  Theorem 4.10: test all source instances up to the anchor-derived size
  bound.  Feasible only for toy bounds; exposed for completeness and tested
  on such bounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ResourceLimitExceeded
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd, nested_tgds_from
from repro.logic.schema import Schema
from repro.logic.values import Constant
from repro.core.canonical import canonical_instances, legal_canonical_instances
from repro.core.implication import cached_chase
from repro.core.patterns import Pattern, one_patterns
from repro.engine.core_instance import core
from repro.engine.egd_chase import satisfies_egds
from repro.engine.gaifman import fact_block_size


@dataclass
class FBlockVerdict:
    """The outcome of the f-block boundedness analysis.

    When ``bounded`` is False, ``witness_pattern`` / ``witness_path`` name the
    pattern subtree whose cloning grows the core's maximal f-block without
    bound, and ``growth`` records the observed f-block sizes at increasing
    clone counts.  When ``bounded`` is True, ``bound`` is an effective bound
    on the f-block size (the threshold of Theorem 4.4 / 5.5).
    """

    bounded: bool
    bound: int | None = None
    witness_tgd: NestedTgd | None = None
    witness_pattern: Pattern | None = None
    witness_path: tuple[int, ...] | None = None
    growth: list[int] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.bounded


def _self_bound(tgd: NestedTgd) -> int:
    """The pigeonhole bound ``k = v * w + 1`` of IMPLIES, applied to the tgd itself."""
    return tgd.skolem_function_count() * tgd.universal_variable_count() + 1


def _core_fblock_size(
    source: Instance,
    dependencies: Sequence,
    parallel: int | None = None,
    backend: str = "tuple",
) -> int:
    """``fact_block_size(core(chase(source, M)))`` -- the growth-test probe.

    The chase goes through the IMPLIES chase cache (clone rounds re-derive
    the same canonical sources constantly) and the core computation can fan
    block folding out over *parallel* worker processes or run on another
    *backend* (the f-block size multiset is isomorphism-invariant, so the
    probe is backend-independent).
    """
    chased = cached_chase(source, list(dependencies))
    return fact_block_size(core(chased, parallel=parallel, backend=backend))


def _paths_of(pattern: Pattern) -> Iterator[tuple[int, ...]]:
    """Yield the non-root node paths of *pattern* (candidate cloning targets)."""

    def visit(node: Pattern, path: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
        for index, child in enumerate(node.children):
            child_path = path + (index,)
            yield child_path
            yield from visit(child, child_path)

    yield from visit(pattern, ())


def _subtree_at(pattern: Pattern, path: tuple[int, ...]) -> Pattern:
    """Return the subtree of *pattern* at the given child-index path."""
    node = pattern
    for index in path:
        node = node.children[index]
    return node


def _canonical_source(
    pattern: Pattern, tgd: NestedTgd, source_egds: Sequence[Egd]
) -> Instance:
    if source_egds:
        return legal_canonical_instances(pattern, tgd, source_egds).source
    return canonical_instances(pattern, tgd).source


def decide_bounded_fblock_size(
    dependencies,
    source_egds: Sequence[Egd] = (),
    clone_limit: int | None = None,
    max_patterns: int | None = 100_000,
    parallel: int | None = None,
    backend: str = "tuple",
) -> FBlockVerdict:
    """Decide whether a nested GLAV mapping has bounded f-block size.

    For every nested tgd of the mapping, every 1-pattern, and every subtree of
    the pattern, the subtree is cloned ``1, 2, ..., C`` times (``C`` defaults
    to the tgd's pigeonhole bound ``v * w + 2``) and the maximal f-block size
    of ``core(chase(I_p, M))`` is measured on the (legal) canonical source
    instance of the cloned pattern.  Strictly monotone growth through the
    whole range witnesses unboundedness (the extension argument of Theorem
    4.4); otherwise the maximum observed size is an effective bound.

    ``parallel=N`` fans the core computation's block folding out over N
    worker processes; ``backend=`` selects the core engine.  The verdict is
    identical in every configuration.

        >>> from repro.logic.parser import parse_nested_tgd, parse_tgd
        >>> decide_bounded_fblock_size([parse_tgd("S(x,y) -> R(x,z)")]).bounded
        True
        >>> decide_bounded_fblock_size([parse_nested_tgd(
        ...     "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")]).bounded
        False
    """
    from repro.mappings.mapping import SchemaMapping

    if isinstance(dependencies, SchemaMapping):
        source_egds = source_egds or dependencies.source_egds
        dependencies = dependencies.dependencies
    nested = nested_tgds_from(dependencies)
    all_deps = list(nested)
    best_bound = 0

    for tgd in nested:
        limit = clone_limit if clone_limit is not None else _self_bound(tgd) + 1
        for pattern in one_patterns(tgd, max_patterns=max_patterns):
            base_size = _core_fblock_size(
                _canonical_source(pattern, tgd, source_egds), all_deps, parallel,
                backend,
            )
            best_bound = max(best_bound, base_size)
            tried_subtrees: set[tuple] = set()
            for path in _paths_of(pattern):
                subtree_key = _subtree_at(pattern, path).sort_key()
                parent_key = path[:-1]
                if (parent_key, subtree_key) in tried_subtrees:
                    continue  # cloning an isomorphic sibling subtree is the same test
                tried_subtrees.add((parent_key, subtree_key))
                sizes = [base_size]
                stalled = 0
                for copies in range(1, limit + 1):
                    cloned = pattern.with_clones(path, copies)
                    size = _core_fblock_size(
                        _canonical_source(cloned, tgd, source_egds), all_deps,
                        parallel, backend,
                    )
                    sizes.append(size)
                    best_bound = max(best_bound, size)
                    if size <= sizes[-2]:
                        stalled += 1
                        if stalled >= 2:
                            break  # growth genuinely stopped; clones fold in the core
                    else:
                        stalled = 0
                # Unbounded iff the block is still growing at the end of the
                # pigeonhole range: past k = v * w + 1 clones, the paper's
                # extension argument makes the growth persist forever.
                if len(sizes) == limit + 1 and sizes[-1] > sizes[-2]:
                    return FBlockVerdict(
                        bounded=False,
                        witness_tgd=tgd,
                        witness_pattern=pattern,
                        witness_path=path,
                        growth=sizes,
                    )
    return FBlockVerdict(bounded=True, bound=best_bound)


def fblock_threshold(dependencies, source_egds: Sequence[Egd] = ()) -> int:
    """The effective threshold for f-block size (Theorems 4.4 and 5.5).

    Returns an integer ``b`` such that the mapping either has f-block size at
    most ``b`` or unbounded f-block size.  Computed by the growth analysis of
    :func:`decide_bounded_fblock_size`; when that analysis finds unbounded
    growth, the largest size observed before divergence is still a valid
    threshold (any value is, for an unbounded mapping), so the maximum over
    the analysis is returned in both cases.
    """
    verdict = decide_bounded_fblock_size(dependencies, source_egds=source_egds)
    if verdict.bounded:
        return verdict.bound
    return max(verdict.growth)


# ------------------------------------------------------------- bounded anchor


def max_pattern_body_atoms(tgd: NestedTgd) -> int:
    """The maximum number of body atoms contributed by a single pattern node."""
    return max(len(tgd.part(pid).body) for pid in tgd.part_ids())


def bounded_anchor_witness(dependencies) -> int:
    """A witness ``a`` for the effective bounded anchor (Theorem 4.9).

    The proof of Theorem 4.9 constructs, for a connected ``J`` inside the core
    of a chase, a source instance ``I'`` that is the canonical source instance
    of a k-pattern with suitably cloned subtrees; each target fact of ``J``
    is produced by one triggering, each triggering corresponds to one pattern
    node, and each pattern node contributes at most ``max_pattern_body_atoms``
    source atoms plus its ancestors' -- at most ``depth`` many nodes.  Hence
    ``|I'| <= depth * max_body_atoms * |J|`` and

        a(M) = max over nested tgds of (depth(sigma) * max_body_atoms(sigma) * (k + 1))

    is a recursive witness (the ``k + 1`` factor accounts for the extra clone
    the anchor construction appends).
    """
    nested = nested_tgds_from(dependencies)
    best = 1
    for tgd in nested:
        k = _self_bound(tgd)
        best = max(best, tgd.depth() * max_pattern_body_atoms(tgd) * (k + 1))
    return best


# ------------------------------------------- exhaustive decision (Theorem 4.10)


def enumerate_source_instances(
    schema: Schema,
    max_facts: int,
    max_constants: int,
) -> Iterator[Instance]:
    """Enumerate source instances with at most *max_facts* facts over at most
    *max_constants* constants, one representative per isomorphism type.

    The enumeration is brute force (it is only used by the literal procedure
    of Theorem 4.10, on toy bounds): all non-empty subsets of the set of
    possible facts, deduplicated up to constant renaming via a canonical form.
    """
    constants = [Constant(f"u{i}") for i in range(max_constants)]
    possible_facts: list[Atom] = []
    for rel in schema:
        for args in itertools.product(constants, repeat=rel.arity):
            possible_facts.append(Atom(rel.name, args))
    seen: set[frozenset] = set()
    for size in range(1, max_facts + 1):
        for subset in itertools.combinations(possible_facts, size):
            instance = Instance(subset)
            form = _canonical_form(instance)
            if form in seen:
                continue
            seen.add(form)
            yield instance


def _canonical_form(instance: Instance) -> frozenset:
    """A constant-renaming-invariant canonical form (cheap, not perfectly tight).

    Constants are relabeled by a deterministic ordering of their "signatures"
    (multiset of (relation, position) occurrences); ties are broken by trying
    all orders among tied constants and picking the lexicographically least
    fact set.  Exact up to isomorphism for the small instances it is used on.
    """
    constants = sorted(instance.constants(), key=repr)
    signature: dict[Constant, tuple] = {}
    for constant in constants:
        occurrences = []
        for fact in instance:
            for pos, arg in enumerate(fact.args):
                if arg == constant:
                    occurrences.append((fact.relation, pos))
        signature[constant] = tuple(sorted(occurrences))
    groups: dict[tuple, list[Constant]] = {}
    for constant in constants:
        groups.setdefault(signature[constant], []).append(constant)
    ordered_groups = [groups[key] for key in sorted(groups)]

    best: frozenset | None = None
    group_orders = [list(itertools.permutations(group)) for group in ordered_groups]
    for arrangement in itertools.product(*group_orders):
        renaming: dict = {}
        index = 0
        for group in arrangement:
            for constant in group:
                renaming[constant] = Constant(f"#{index}")
                index += 1
        relabeled = frozenset(
            (fact.relation, tuple(repr(renaming[a]) for a in fact.args))
            for fact in instance
        )
        if best is None or sorted(relabeled) < sorted(best):
            best = relabeled
    assert best is not None
    return best


def decide_bounded_fblock_size_exhaustive(
    dependencies,
    bound: int,
    source_egds: Sequence[Egd] = (),
    anchor: int | None = None,
    max_constants: int | None = None,
    max_instances: int | None = 200_000,
) -> bool:
    """The literal procedure of Theorem 4.10: is the f-block size at most *bound*?

    Tests every source instance with at most ``a * (bound + 1)`` facts, where
    ``a`` is the anchor witness (or the supplied *anchor*).  Raises
    :class:`ResourceLimitExceeded` when more than *max_instances* instances
    would be inspected -- the procedure is exponential and only intended for
    toy bounds; use :func:`decide_bounded_fblock_size` in practice.
    """
    nested = nested_tgds_from(dependencies)
    a = anchor if anchor is not None else bounded_anchor_witness(nested)
    max_facts = a * (bound + 1)
    schema = Schema()
    for tgd in nested:
        schema = schema.union(tgd.source_schema())
    if max_constants is None:
        max_constants = max_facts * max(rel.arity for rel in schema)
    inspected = 0
    for instance in enumerate_source_instances(schema, max_facts, max_constants):
        inspected += 1
        if max_instances is not None and inspected > max_instances:
            raise ResourceLimitExceeded("source instances", max_instances)
        if source_egds and not satisfies_egds(instance, list(source_egds)):
            continue
        if _core_fblock_size(instance, nested) > bound:
            return False
    return True


__all__ = [
    "FBlockVerdict",
    "decide_bounded_fblock_size",
    "decide_bounded_fblock_size_exhaustive",
    "fblock_threshold",
    "bounded_anchor_witness",
    "enumerate_source_instances",
    "max_pattern_body_atoms",
]
