"""Canonical instances of patterns (Definition 3.7) and their legal variants
with source egds (Definition 5.4).

For each node of a pattern associated with part
``sigma_i : forall x (phi(x, x0) -> psi(x, x0))``, the canonical source
instance receives the atoms ``phi(a, a0)`` and the canonical target instance
the atoms ``psi(a, a0)``, where ``a`` assigns distinct fresh constants to the
part's own universal variables and ``a0`` is the assignment of the ancestor
nodes.  Existential variables are instantiated by their ground Skolem terms,
which act as nulls.

With source egds, the *legal* canonical source instance is obtained by
chasing with the egds (fresh constants may merge), and the legal canonical
target instance by applying the same equalities -- including inside the
ground Skolem terms, whose arguments are the merged constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.terms import FuncTerm
from repro.logic.values import FreshValueFactory
from repro.core.patterns import Pattern
from repro.engine.egd_chase import chase_egds


@dataclass
class CanonicalInstances:
    """The canonical source and target instances of a pattern, with provenance.

    ``assignments`` maps each pattern-node path (a tuple of child indexes,
    ``()`` for the root) to the full variable assignment used at that node.
    """

    pattern: Pattern
    tgd: NestedTgd
    source: Instance
    target: Instance
    assignments: dict[tuple[int, ...], dict]


def canonical_instances(
    pattern: Pattern,
    tgd: NestedTgd,
    factory: FreshValueFactory | None = None,
) -> CanonicalInstances:
    """Build the canonical source and target instances ``I_p`` and ``J_p``.

        >>> from repro.logic.parser import parse_nested_tgd
        >>> from repro.core.patterns import Pattern
        >>> s = parse_nested_tgd("S1(x1) -> (S2(x2) -> R(x1, x2))")
        >>> ci = canonical_instances(Pattern(1, (Pattern(2),)), s)
        >>> len(ci.source), len(ci.target)
        (2, 1)
    """
    pattern.validate_against(tgd)
    factory = factory or FreshValueFactory()
    source_facts: list[Atom] = []
    target_facts: list[Atom] = []
    assignments: dict[tuple[int, ...], dict] = {}

    def visit(node: Pattern, path: tuple[int, ...], inherited: dict) -> None:
        part = tgd.part(node.part_id)
        assignment = dict(inherited)
        for var in part.universal_vars:
            assignment[var] = factory.constant()
        assignments[path] = dict(assignment)
        source_facts.extend(atom.substitute(assignment) for atom in part.body)
        target_facts.extend(
            atom.substitute(assignment) for atom in tgd.skolemized_head(node.part_id)
        )
        for index, child in enumerate(node.children):
            visit(child, path + (index,), assignment)

    visit(pattern, (), {})
    return CanonicalInstances(
        pattern=pattern,
        tgd=tgd,
        source=Instance(source_facts),
        target=Instance(target_facts),
        assignments=assignments,
    )


def canonical_extension(
    tgd: NestedTgd,
    part_id: int,
    inherited: Mapping,
    factory: FreshValueFactory,
) -> tuple[dict, list[Atom], list[Atom]]:
    """The canonical-instance delta of attaching one leaf node for *part_id*.

    Returns ``(assignment, source_delta, target_delta)``: the node's full
    variable assignment (the ancestor assignment *inherited* extended with
    fresh constants for the part's own universal variables, drawn from
    *factory*), the part's body atoms under it (the source-instance delta),
    and the part's Skolemized head atoms under it (the target-instance
    delta).  Extending a pattern's canonical instances one leaf at a time
    with this function yields instances isomorphic to a from-scratch
    :func:`canonical_instances` build (Definition 3.7 determines them up to
    renaming of the fresh constants), which is what the incremental IMPLIES
    sweep relies on.
    """
    part = tgd.part(part_id)
    assignment = dict(inherited)
    for var in part.universal_vars:
        assignment[var] = factory.constant()
    source_delta = [atom.substitute(assignment) for atom in part.body]
    target_delta = [
        atom.substitute(assignment) for atom in tgd.skolemized_head(part_id)
    ]
    return assignment, source_delta, target_delta


def rename_values_deep(instance: Instance, mapping: Mapping) -> Instance:
    """Rename values in *instance*, including inside ground Skolem terms.

    ``Instance.map_values`` renames only top-level fact arguments; the legal
    canonical target instance also needs the equalities applied to the
    arguments of its ground Skolem terms (the nulls record which constants
    they were created from).
    """
    mapping = dict(mapping)

    def rename(value):
        if value in mapping:
            return mapping[value]
        if isinstance(value, FuncTerm):
            return FuncTerm(value.function, tuple(rename(a) for a in value.args))
        return value

    return Instance(
        Atom(fact.relation, tuple(rename(a) for a in fact.args)) for fact in instance
    )


def legal_canonical_instances(
    pattern: Pattern,
    tgd: NestedTgd,
    source_egds: Sequence[Egd],
    factory: FreshValueFactory | None = None,
) -> CanonicalInstances:
    """Build the *legal* canonical instances ``I_p^s`` and ``J_p^s`` (Definition 5.4).

    The canonical source instance is chased with the source egds (fresh
    constants are anonymous, so merges are allowed), and the equalities are
    replayed on the canonical target instance, including inside Skolem terms.
    """
    plain = canonical_instances(pattern, tgd, factory=factory)
    legal_source, equalities = chase_egds(
        plain.source, list(source_egds), allow_constant_merge=True
    )
    legal_target = rename_values_deep(plain.target, equalities)
    legal_assignments = {
        path: {var: equalities.get(value, value) for var, value in assignment.items()}
        for path, assignment in plain.assignments.items()
    }
    return CanonicalInstances(
        pattern=pattern,
        tgd=tgd,
        source=legal_source,
        target=legal_target,
        assignments=legal_assignments,
    )


__all__ = ["CanonicalInstances", "canonical_extension", "canonical_instances",
           "legal_canonical_instances", "rename_values_deep"]
