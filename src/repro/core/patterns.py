"""Patterns of nested tgds: Definitions 3.2 and 3.3 and Proposition 3.5.

A *pattern* of a nested tgd is a tree whose nodes are labeled by part
identifiers such that the parent-child relation of the tree matches the
nesting of the parts.  The pattern of a chase tree forgets the variable
assignments of its triggerings and keeps only the part identifiers.

A subtree ``t'`` is a *clone* of a subtree ``t`` when their roots are
siblings and the subtrees are isomorphic; a *k-pattern* has at most ``k``
copies of each subtree among any sibling group.  ``P_k(sigma)``, the set of
all k-patterns of ``sigma``, is enumerated exactly as in Proposition 3.5:

    P*_k(sigma_j) = { <sigma_j, union_a P_a^mu_a> | P_a subset of P*_k(sigma_ia),
                      mu_a : P_a -> 1..k }

The size of ``P_k(sigma)`` is non-elementary in the nesting depth (Section 3),
so the enumeration accepts explicit resource limits and there is a separate
:func:`count_k_patterns` that computes ``|P_k(sigma)|`` without enumerating
(saturating at ``analysis.cost.SATURATION_CAP`` -- the exact count of a deep
nesting has more digits than fit in memory).

:class:`Pattern` is hash-consed (see :mod:`repro.logic.intern`): two
isomorphic patterns are the *same* object, and the canonical sort key, node
count, and hash are each computed once at intern time.  Since children of an
interned pattern are already canonically sorted, rebuilding a tree bottom-up
(as :meth:`Pattern.with_extra_clone` does) never re-sorts untouched siblings.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import DependencyError, ResourceLimitExceeded
from repro.logic import intern
from repro.logic.nested import NestedTgd

_PATTERNS = intern.new_table()


class Pattern:
    """A pattern node: a part identifier plus child patterns.

    Children are kept in a canonical sorted order so that two isomorphic
    patterns compare (and hash) equal -- equality *is* isomorphism here,
    and by interning it is also pointer identity.
    """

    __slots__ = (
        "part_id", "children", "_hash", "_sort_key", "_node_count",
        "_dense_id", "__weakref__",
    )

    part_id: int
    children: tuple["Pattern", ...]

    def __new__(cls, part_id: int, children: tuple["Pattern", ...] = ()) -> "Pattern":
        if not isinstance(children, tuple):
            children = tuple(children)
        if any(child._sort_key > children[i + 1]._sort_key
               for i, child in enumerate(children[:-1])):
            children = tuple(sorted(children, key=lambda p: p._sort_key))
        key = (part_id, children)
        existing = _PATTERNS.get(key)
        if existing is not None:
            intern.note_hit()
            return existing
        candidate = object.__new__(cls)
        object.__setattr__(candidate, "part_id", part_id)
        object.__setattr__(candidate, "children", children)
        object.__setattr__(candidate, "_hash", hash(key))
        object.__setattr__(
            candidate,
            "_sort_key",
            (part_id, tuple(child._sort_key for child in children)),
        )
        object.__setattr__(
            candidate,
            "_node_count",
            1 + sum(child._node_count for child in children),
        )
        object.__setattr__(candidate, "_dense_id", intern.next_dense_id("Pattern"))
        return intern.intern_into(_PATTERNS, key, candidate)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("Pattern is immutable")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError("Pattern is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        return (Pattern, (self.part_id, self.children))

    def sort_key(self) -> tuple:
        """A canonical structural key (two patterns are isomorphic iff keys equal)."""
        return self._sort_key

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def dense_id(self) -> int:
        """The per-kind dense intern id (see :func:`repro.logic.intern.next_dense_id`)."""
        return self._dense_id

    def subtrees(self) -> Iterator["Pattern"]:
        """Yield every subtree (closed under the child relation), preorder."""
        yield self
        for child in self.children:
            yield from child.subtrees()

    def multiplicity(self, child: "Pattern") -> int:
        """How many copies of *child* occur among this node's children."""
        return sum(1 for c in self.children if c is child)

    def max_clone_count(self) -> int:
        """The largest sibling multiplicity of any subtree anywhere in the pattern."""
        best = 0
        for node in self.subtrees():
            seen: dict[Pattern, int] = {}
            for child in node.children:
                seen[child] = seen.get(child, 0) + 1
            if seen:
                best = max(best, max(seen.values()))
        return best

    def is_k_pattern(self, k: int) -> bool:
        """True if no subtree has more than *k* clones among its siblings."""
        return self.max_clone_count() <= k

    def with_extra_clone(self, path: tuple[int, ...]) -> "Pattern":
        """Return the pattern with one more clone of the subtree at *path* appended.

        *path* is a sequence of child indexes (into the canonically ordered
        ``children`` tuples) leading from the root to the subtree to clone;
        the empty path is rejected since the root has no siblings.
        """
        if not path:
            raise DependencyError("cannot clone the root of a pattern")

        def rebuild(node: Pattern, path: tuple[int, ...]) -> Pattern:
            index = path[0]
            if index >= len(node.children):
                raise DependencyError(f"invalid clone path {path!r}")
            if len(path) == 1:
                target = node.children[index]
                return Pattern(node.part_id, node.children + (target,))
            new_child = rebuild(node.children[index], path[1:])
            children = list(node.children)
            children[index] = new_child
            return Pattern(node.part_id, tuple(children))

        return rebuild(self, tuple(path))

    def with_clones(self, path: tuple[int, ...], copies: int) -> "Pattern":
        """Return the pattern with *copies* extra clones of the subtree at *path*."""
        result = self
        for __ in range(copies):
            result = result.with_extra_clone(path)
        return result

    def with_extra_child(self, path: tuple[int, ...], leaf_part_id: int) -> "Pattern":
        """Return the pattern with a new leaf labeled *leaf_part_id* under *path*.

        *path* addresses the node (the empty path is the root) that receives
        the new child.  This is the single-edge producer of the DAG-incremental
        sweep: every pattern with ``n > 1`` nodes arises from a pattern with
        ``n - 1`` nodes by one such leaf attachment.
        """
        if not path:
            return Pattern(self.part_id, self.children + (Pattern(leaf_part_id),))
        index = path[0]
        if index >= len(self.children):
            raise DependencyError(f"invalid attach path {path!r}")
        children = list(self.children)
        children[index] = self.children[index].with_extra_child(path[1:], leaf_part_id)
        return Pattern(self.part_id, tuple(children))

    def validate_against(self, tgd: NestedTgd) -> None:
        """Check that this pattern's labels respect the nesting structure of *tgd*."""
        if self.part_id != 1:
            raise DependencyError("the root of a pattern must be the top-level part (1)")

        def check(node: Pattern) -> None:
            allowed = set(tgd.children_of(node.part_id))
            for child in node.children:
                if child.part_id not in allowed:
                    raise DependencyError(
                        f"part {child.part_id} is not nested under part {node.part_id}"
                    )
                check(child)

        check(self)

    def __repr__(self) -> str:
        if not self.children:
            return f"[{self.part_id}]"
        inner = " ".join(repr(c) for c in self.children)
        return f"[{self.part_id} {inner}]"


class _Budget:
    """A mutable enumeration budget shared across the recursive construction."""

    def __init__(self, limit: int | None):
        self.limit = limit
        self.used = 0

    def charge(self, amount: int = 1) -> None:
        if self.limit is None:
            return
        self.used += amount
        if self.used > self.limit:
            raise ResourceLimitExceeded("patterns", self.limit)


def _multiplicity_choices(options: list[Pattern], k: int, budget: _Budget):
    """Yield all multisets over *options* with per-element multiplicity 0..k.

    Each yielded value is a tuple of (pattern, multiplicity > 0) pairs.
    """

    def recurse(index: int, chosen: list[tuple[Pattern, int]]):
        if index == len(options):
            yield tuple(chosen)
            return
        for multiplicity in range(k + 1):
            if multiplicity:
                chosen.append((options[index], multiplicity))
            yield from recurse(index + 1, chosen)
            if multiplicity:
                chosen.pop()

    yield from recurse(0, [])


def _patterns_for_part(
    tgd: NestedTgd, pid: int, k: int, budget: _Budget, memo: dict[int, list[Pattern]]
) -> list[Pattern]:
    """Materialize ``P*_k(sigma_pid)`` (Proposition 3.5), memoized per part."""
    if pid in memo:
        return memo[pid]
    child_ids = tgd.children_of(pid)
    if not child_ids:
        result = [Pattern(pid)]
    else:
        per_child_options = [
            _patterns_for_part(tgd, child, k, budget, memo) for child in child_ids
        ]
        result = []

        def combine(index: int, accumulated: tuple[Pattern, ...]):
            if index == len(per_child_options):
                budget.charge()
                result.append(Pattern(pid, accumulated))
                return
            for multiset in _multiplicity_choices(per_child_options[index], k, budget):
                extra: tuple[Pattern, ...] = ()
                for pattern, multiplicity in multiset:
                    extra = extra + (pattern,) * multiplicity
                combine(index + 1, accumulated + extra)

        combine(0, ())
    memo[pid] = result
    return result


def enumerate_k_patterns(
    tgd: NestedTgd, k: int, max_patterns: int | None = 1_000_000
) -> list[Pattern]:
    """Return ``P_k(sigma)``: all k-patterns of the nested tgd, smallest first.

    Raises :class:`ResourceLimitExceeded` when more than *max_patterns*
    patterns would be constructed (the set is non-elementary in the nesting
    depth; pass ``max_patterns=None`` to remove the guard).

        >>> from repro.logic.parser import parse_nested_tgd
        >>> s = parse_nested_tgd(
        ...     "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) "
        ...     "& (S3(x1,x3) -> R3(y1,x3) & (S4(x3,x4) -> exists y2 . R4(y2,x4))))")
        >>> len(enumerate_k_patterns(s, 1))   # Figure 1 of the paper
        8
    """
    if k < 1:
        raise DependencyError("k must be at least 1")
    budget = _Budget(max_patterns)
    patterns = _patterns_for_part(tgd, 1, k, budget, {})
    return sorted(patterns, key=lambda p: (p.node_count, p.sort_key()))


def one_patterns(tgd: NestedTgd, max_patterns: int | None = 1_000_000) -> list[Pattern]:
    """Return the 1-patterns of *tgd* (used by the f-block analysis of Section 4)."""
    return enumerate_k_patterns(tgd, 1, max_patterns=max_patterns)


def count_k_patterns(tgd: NestedTgd, k: int) -> int:
    """Return ``|P_k(sigma)|`` without enumerating, saturating at the cost cap.

    Uses the recurrence from Proposition 3.5:
    ``|P*_k(sigma_j)| = prod_a (k+1) ** |P*_k(sigma_ia)|`` over the child
    parts, with leaves contributing 1.  Grows non-elementarily in the depth,
    so the arithmetic clamps at :data:`repro.analysis.cost.SATURATION_CAP`
    (the same sentinel the static cost model reports) instead of silently
    materializing multi-gigabyte bigints.
    """
    from repro.analysis.cost import count_k_patterns_saturating

    return count_k_patterns_saturating(tgd, k)


def patterns_up_to_size(
    tgd: NestedTgd, max_nodes: int, max_patterns: int | None = 1_000_000
) -> list[Pattern]:
    """Enumerate all patterns of *tgd* with at most *max_nodes* nodes, smallest first.

    Unlike :func:`enumerate_k_patterns`, which bounds the number of sibling
    clones, this bounds the total node count -- the enumeration used when
    searching for an equivalent GLAV mapping by growing pattern tgds.
    """
    budget = _Budget(max_patterns)
    memo: dict[tuple[int, int], list[Pattern]] = {}

    def trees_for_part(pid: int, node_budget: int) -> list[Pattern]:
        """All trees rooted at part *pid* with at most *node_budget* nodes."""
        if node_budget < 1:
            return []
        key = (pid, node_budget)
        if key in memo:
            return memo[key]
        child_ids = tgd.children_of(pid)
        results: list[Pattern] = []

        def assign_children(index: int, remaining: int, acc: tuple[Pattern, ...]) -> None:
            if index == len(child_ids):
                budget.charge()
                results.append(Pattern(pid, acc))
                return
            options = trees_for_part(child_ids[index], remaining)

            def choose(option_index: int, left: int, acc2: tuple[Pattern, ...]) -> None:
                if option_index == len(options):
                    assign_children(index + 1, left, acc2)
                    return
                option = options[option_index]
                size = option.node_count
                copies = 0
                while copies * size <= left:
                    choose(
                        option_index + 1,
                        left - copies * size,
                        acc2 + (option,) * copies,
                    )
                    copies += 1

            choose(0, remaining, acc)

        assign_children(0, node_budget - 1, ())
        # Canonical child ordering may create duplicates across choice orders.
        deduped = list(dict.fromkeys(results))
        memo[key] = deduped
        return deduped

    patterns = trees_for_part(1, max_nodes)
    return sorted(patterns, key=lambda p: (p.node_count, p.sort_key()))


def full_pattern(tgd: NestedTgd) -> Pattern:
    """The pattern with exactly one node per part of *tgd* (its nesting skeleton)."""

    def build(pid: int) -> Pattern:
        return Pattern(pid, tuple(build(child) for child in tgd.children_of(pid)))

    return build(1)


__all__ = [
    "Pattern",
    "enumerate_k_patterns",
    "one_patterns",
    "count_k_patterns",
    "patterns_up_to_size",
    "full_pattern",
]
