"""The decision procedure IMPLIES for nested tgds (Theorems 3.1 and 5.7).

``implies(Sigma, sigma)`` decides whether every pair (I, J) satisfying the
finite set ``Sigma`` of dependencies also satisfies the nested tgd ``sigma``.
The procedure follows Section 3 of the paper verbatim:

1. Skolemize; let ``v`` be the number of distinct Skolem functions of
   ``sigma`` and ``w`` the maximum number of universally quantified variables
   in a dependency of ``Sigma``; set ``k = v * w + 1``.
2. For every k-pattern ``p`` of ``sigma``, build the canonical source and
   target instances ``I_p`` and ``J_p`` and check that a homomorphism
   ``J_p -> chase(I_p, Sigma)`` exists.  If some check fails, ``Sigma`` does
   not imply ``sigma`` -- and ``I_p`` is a counterexample source instance.

With source egds (Theorem 5.7) the *legal* canonical instances of
Definition 5.4 are used and ``I_p^s`` is chased instead.

``Sigma`` may contain s-t tgds and nested tgds (the paper's setting).  As an
extension, plain SO tgds are accepted on the left-hand side as well: the
correctness argument only needs that the left-hand side admits universal
solutions via a chase and is closed under target homomorphisms, which plain
SO tgds are (Section 4.1); the ``w`` bound likewise only counts universal
variables per clause.

Engine-level accelerations on top of the paper's procedure:

- a **DAG-incremental sweep** (the default): ``P_k(sigma)`` is enumerated as
  a frontier-ordered DAG in which every pattern with ``n > 1`` nodes is
  produced from a pattern with ``n - 1`` nodes by attaching one leaf (see
  ``docs/algorithms.md`` for why such a parent always exists), and each
  pattern's canonical instances and chase are *extended* from its parent's
  cached state by the delta the new leaf contributes, instead of being
  rebuilt and re-chased from scratch.  Patterns are swept smallest first
  (levels by node count, canonical order within a level -- exactly the
  enumeration order of ``enumerate_k_patterns``), so counterexamples
  short-circuit before the deep frontier is ever generated.
- a process-wide LRU **chase cache** keyed by (canonical source facts,
  Sigma fingerprint).  Chasing is deterministic, so two patterns (or two
  IMPLIES runs) whose canonical sources coincide share one chase.  Hits and
  misses are recorded in :mod:`repro.perf`; incremental extensions count as
  ``implies.sweep.incremental_hits``.
- an optional **parallel pattern sweep** (``parallel=N``): the per-pattern
  checks fan out over a ``multiprocessing`` fork pool in work-stealing index
  chunks.  Workers receive only integer ranges -- the sweep spec (pattern
  DAG or pattern list, Sigma, clause programs) is published once into a
  :mod:`repro.cache.shm` shared-memory segment that each worker attaches
  and deserializes once, so no pattern or instance is ever pickled per
  task.  Workers rebuild chase states from the spec on demand with
  worker-local memoization and return only (index, failed) flags.  The
  first failing pattern *in enumeration order* is reported, with
  diagnostics replayed deterministically in the parent, so the verdict,
  ``patterns_checked``, and the counterexample agree exactly with the
  serial sweep.
- optional **persistent tiers** (:mod:`repro.cache`, enabled by
  ``REPRO_CACHE_DIR`` or ``repro.cache.configure``): chase-cache misses
  consult a fingerprint-keyed on-disk store before chasing, every computed
  chase is written through, and whole IMPLIES verdicts (result, failing
  pattern, counterexamples) are stored under a fingerprint of
  (Sigma, sigma, source egds, k, sweep mode) -- a warm restart answers a
  repeated query without enumerating a single pattern.  Keys are
  content-derived (hash-seed independent), and the disk tiers sit strictly
  behind the in-memory ones, so the hot path is unchanged when disabled.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import perf
from repro.cache import SPACE_CHASE, SPACE_IMPLIES, disk_get, disk_put, get_store
from repro.cache import shm as cache_shm
from repro.cache.fingerprint import (
    combine_fingerprints,
    fingerprint_facts,
    fingerprint_texts,
)
from repro.errors import DependencyError, ResourceLimitExceeded
from repro.logic import intern
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.tgds import STTgd
from repro.logic.values import FreshValueFactory
from repro.core.canonical import (
    canonical_extension,
    canonical_instances,
    legal_canonical_instances,
)
from repro.core.patterns import Pattern, enumerate_k_patterns
from repro.engine.builder import InstanceBuilder
from repro.engine.chase import (
    chase,
    compile_clause_program,
    run_clause_program,
    run_clause_program_delta,
)
from repro.engine.homomorphism import find_homomorphism


@dataclass
class ImplicationResult:
    """The outcome of an IMPLIES run, with diagnostics.

    When ``holds`` is False, ``failing_pattern`` is the k-pattern whose check
    failed and ``counterexample_source`` is a source instance I with
    ``chase(I, sigma)`` not homomorphically embeddable in ``chase(I, Sigma)``
    -- i.e. a witness that ``Sigma`` does not imply ``sigma``.
    """

    holds: bool
    k: int
    patterns_checked: int
    failing_pattern: Pattern | None = None
    counterexample_source: Instance | None = None
    counterexample_target: Instance | None = None

    def __bool__(self) -> bool:
        return self.holds


def _normalize_lhs(dependencies: Iterable) -> list:
    result = []
    for dep in dependencies:
        if isinstance(dep, STTgd):
            result.append(dep.to_nested())
        elif isinstance(dep, NestedTgd):
            result.append(dep)
        elif isinstance(dep, SOTgd):
            if not dep.is_plain():
                raise DependencyError(
                    "IMPLIES accepts plain SO tgds on the left-hand side only; "
                    f"{dep!r} has equalities or nested terms"
                )
            result.append(dep)
        else:
            raise DependencyError(f"unsupported dependency {dep!r}")
    return result


def _normalize_rhs(dep) -> NestedTgd:
    if isinstance(dep, STTgd):
        return dep.to_nested()
    if isinstance(dep, NestedTgd):
        return dep
    raise DependencyError(
        "the right-hand side of IMPLIES must be an s-t tgd or a nested tgd, "
        f"got {dep!r} (implication of SO tgds is undecidable)"
    )


def _max_universal_variables(dependencies: Sequence) -> int:
    """The quantity ``w`` of the IMPLIES procedure."""
    best = 0
    for dep in dependencies:
        if isinstance(dep, NestedTgd):
            best = max(best, dep.universal_variable_count())
        elif isinstance(dep, SOTgd):
            best = max(best, dep.max_universal_variables())
    return best


def implication_bound(sigma_set: Sequence, sigma: NestedTgd) -> int:
    """The clone bound ``k = v_sigma * w_Sigma + 1`` from line 4 of IMPLIES."""
    v = sigma.skolem_function_count()
    w = _max_universal_variables(sigma_set)
    return v * w + 1


# --------------------------------------------------------------- chase cache

#: LRU cache of ``chase(I_p, Sigma)`` results, keyed by
#: (facts of the canonical source, Sigma fingerprint).  The chase is
#: deterministic, so equal keys yield identical results (including null
#: labels) and the cached instance can be shared freely.
_CHASE_CACHE: "OrderedDict[tuple, Instance]" = OrderedDict()
_CHASE_CACHE_LIMIT = 512
_CHASE_CACHE_LIMIT_DEFAULT = 512
_CHASE_CACHE_LIMIT_MAX = 8192


def _presize_chase_cache(predicted_patterns: int) -> None:
    """Grow the chase-cache LRU window toward a predicted sweep size.

    A sweep of ``n`` patterns touches at most ``n`` canonical sources; an
    LRU window smaller than that thrashes (every entry is evicted before its
    re-use).  Growth is clamped and never shrinks below the default.  The
    sweep that requested the pre-sizing restores the previous limit when it
    finishes (see ``implies_tgd``), so one ``budget=`` run does not pin an
    oversized cache for the rest of the process.
    """
    global _CHASE_CACHE_LIMIT
    _CHASE_CACHE_LIMIT = max(
        _CHASE_CACHE_LIMIT,
        min(max(predicted_patterns, _CHASE_CACHE_LIMIT_DEFAULT), _CHASE_CACHE_LIMIT_MAX),
    )


def _set_chase_cache_limit(limit: int) -> None:
    """Restore the LRU window to *limit*, evicting surplus entries (oldest first)."""
    global _CHASE_CACHE_LIMIT
    _CHASE_CACHE_LIMIT = limit
    while len(_CHASE_CACHE) > _CHASE_CACHE_LIMIT:
        _CHASE_CACHE.popitem(last=False)


def _sigma_fingerprint(lhs: Sequence) -> tuple[str, ...]:
    """A hashable identity for a normalized left-hand side (reprs are total)."""
    return tuple(repr(dep) for dep in lhs)


def clear_chase_cache() -> None:
    """Drop all cached chase results and reset the pre-sized capacity.

    Used by benchmarks for cold-start runs; also the recovery hatch after a
    ``budget=`` run pre-sized the LRU window (the window is restored at the
    end of the sweep regardless).
    """
    global _CHASE_CACHE_LIMIT
    _CHASE_CACHE.clear()
    _CHASE_CACHE_LIMIT = _CHASE_CACHE_LIMIT_DEFAULT


def _cache_store(key: tuple, result: Instance) -> None:
    _CHASE_CACHE[key] = result
    if len(_CHASE_CACHE) > _CHASE_CACHE_LIMIT:
        _CHASE_CACHE.popitem(last=False)


# Sigma fingerprints are repr tuples (hashable, process-local); the disk
# tiers need content digests.  Memoized because one sweep re-digests the
# same tuple at every cache-miss hook point.
_SIGMA_DIGESTS: dict[tuple[str, ...], str] = {}


def _sigma_digest(fingerprint: tuple[str, ...]) -> str:
    digest = _SIGMA_DIGESTS.get(fingerprint)
    if digest is None:
        if len(_SIGMA_DIGESTS) > 256:
            _SIGMA_DIGESTS.clear()
        digest = fingerprint_texts(fingerprint)
        _SIGMA_DIGESTS[fingerprint] = digest
    return digest


def _disk_chase_get(
    source_facts: Iterable[Atom], fingerprint: tuple[str, ...]
) -> Instance | None:
    """Look a chase result up in the persistent tier (behind the LRU miss)."""
    if get_store() is None:
        return None
    key = combine_fingerprints(fingerprint_facts(source_facts), _sigma_digest(fingerprint))
    payload = disk_get(SPACE_CHASE, key)
    if not isinstance(payload, tuple) or not all(
        isinstance(fact, Atom) for fact in payload
    ):
        return None
    return Instance(payload)


def _disk_chase_put(
    source_facts: Iterable[Atom], fingerprint: tuple[str, ...], result: Instance
) -> None:
    """Write one computed chase through to the persistent tier."""
    if get_store() is None:
        return
    key = combine_fingerprints(fingerprint_facts(source_facts), _sigma_digest(fingerprint))
    disk_put(SPACE_CHASE, key, tuple(sorted(result.facts, key=repr)))


def _cached_chase(source: Instance, lhs: Sequence, fingerprint: tuple[str, ...]) -> Instance:
    key = (source.facts, fingerprint)
    cached = _CHASE_CACHE.get(key)
    if cached is not None:
        _CHASE_CACHE.move_to_end(key)
        perf.incr("implies.cache_hits")
        return cached
    perf.incr("implies.cache_misses")
    result = _disk_chase_get(source.facts, fingerprint)
    if result is None:
        result = chase(source, lhs)
        _disk_chase_put(source.facts, fingerprint, result)
    _cache_store(key, result)
    return result


def cached_chase(source: Instance, dependencies: Sequence) -> Instance:
    """``chase(source, dependencies)`` through the process-wide LRU cache.

    Public entry point to the IMPLIES chase cache for the other Section-4
    procedures (``decide_bounded_fblock_size``, ``cq_refute``) that re-chase
    the same canonical sources across growth rounds or mapping pairs.  Sound
    because the chase is deterministic given (source, dependencies); the
    cache key uses the dependencies' reprs, which are total.
    """
    return _cached_chase(source, list(dependencies), _sigma_fingerprint(dependencies))


def _check_pattern(
    pattern: Pattern,
    lhs: Sequence,
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    fingerprint: tuple[str, ...],
) -> tuple[bool, Instance, Instance]:
    """Run one from-scratch k-pattern check; return (fails, I_p, J_p)."""
    if source_egds:
        canon = legal_canonical_instances(pattern, rhs, source_egds)
    else:
        canon = canonical_instances(pattern, rhs)
    chased = _cached_chase(canon.source, lhs, fingerprint)
    perf.incr("implies.patterns")
    fails = find_homomorphism(canon.target, chased) is None
    return fails, canon.source, canon.target


# ----------------------------------------------------- DAG-incremental sweep


class _MirrorNode:
    """A pattern node in attachment (insertion) order, with its assignment.

    The canonical :class:`Pattern` keeps children sorted, which reshuffles
    node positions as leaves are attached; the mirror tree preserves the
    attachment order so that spec entries can address nodes by a stable
    preorder index, and carries the per-node variable assignment the
    canonical-instance delta of a new leaf inherits.  The generation trees
    additionally cache each node's canonical subtree (``canon``) and parent
    link, so a candidate attachment rebuilds canonical patterns only along
    the root path instead of over the whole tree.
    """

    __slots__ = ("part_id", "assignment", "children", "parent", "canon")

    def __init__(self, part_id: int, assignment: dict | None, children: list):
        self.part_id = part_id
        self.assignment = assignment
        self.children = children
        self.parent: _MirrorNode | None = None
        self.canon: Pattern | None = None


def _copy_tree(node: _MirrorNode) -> _MirrorNode:
    return _MirrorNode(
        node.part_id, node.assignment, [_copy_tree(child) for child in node.children]
    )


def _preorder(node: _MirrorNode, out: list[_MirrorNode] | None = None) -> list[_MirrorNode]:
    if out is None:
        out = []
    out.append(node)
    for child in node.children:
        _preorder(child, out)
    return out


def _index_gen_tree(node: _MirrorNode, parent: _MirrorNode | None = None) -> None:
    """Set parent links and cache canonical subtrees bottom-up (generation trees)."""
    node.parent = parent
    for child in node.children:
        _index_gen_tree(child, node)
    node.canon = Pattern(node.part_id, tuple(child.canon for child in node.children))


def _copy_gen_tree(node: _MirrorNode, parent: _MirrorNode | None = None) -> _MirrorNode:
    """Copy a generation tree, carrying over parent links and canon caches.

    The copy's canons are identical to the original's; an attachment then
    refreshes only the canons along the attach node's root path.
    """
    clone = _MirrorNode(node.part_id, node.assignment, [])
    clone.parent = parent
    clone.canon = node.canon
    clone.children = [_copy_gen_tree(child, clone) for child in node.children]
    return clone


def _collect_attach_positions(
    node: _MirrorNode, index: int, out: list[tuple[int, _MirrorNode]]
) -> int:
    """Preorder (index, node) attach positions, skipping duplicate-canon siblings.

    Attaching a leaf anywhere inside a subtree isomorphic to an
    already-visited sibling subtree yields the same canonical pattern (swap
    the two siblings), so the whole duplicate subtree is skipped -- the
    preorder counter still advances past it, keeping indexes aligned with
    ``_preorder`` of the same tree.
    """
    out.append((index, node))
    next_index = index + 1
    seen: set[Pattern] = set()
    for child in node.children:
        if child.canon in seen:
            next_index += child.canon.node_count
            continue
        seen.add(child.canon)
        next_index = _collect_attach_positions(child, next_index, out)
    return next_index


def _attach_candidate(node: _MirrorNode, part_id: int, k: int) -> Pattern | None:
    """The canonical pattern after attaching a *part_id* leaf under *node*,
    or None when the attachment would break the clone bound *k*.

    Only the sibling groups along the root path change: the new leaf joins
    *node*'s children, and each ancestor sees exactly one child subtree
    replaced -- so checking those multiplicities *is* ``is_k_pattern(k)``
    (the parent pattern is a k-pattern already).  Canonical subtrees of
    untouched siblings come from the ``canon`` cache, so a candidate costs
    O(depth) interned constructions, not a full-tree rebuild.
    """
    leaf = Pattern(part_id)
    current = node
    current_pat = Pattern(node.part_id, tuple(c.canon for c in node.children) + (leaf,))
    if current_pat.multiplicity(leaf) > k:
        return None
    while current.parent is not None:
        parent = current.parent
        kids = tuple(
            current_pat if child is current else child.canon
            for child in parent.children
        )
        parent_pat = Pattern(parent.part_id, kids)
        if parent_pat.multiplicity(current_pat) > k:
            return None
        current, current_pat = parent, parent_pat
    return current_pat


@dataclass(frozen=True)
class _SpecEntry:
    """One pattern of the sweep DAG: its producing edge and canonical form.

    ``parent`` is the index of the (node_count - 1)-node pattern this one
    extends (-1 for the root), ``node_index`` the preorder position in the
    parent's mirror tree of the node that receives the new leaf, and ``part``
    the part identifier of the leaf.  Everything a worker needs to rebuild
    the chase state is these three integers plus the shared spec list.
    """

    index: int
    pattern: Pattern
    parent: int
    node_index: int
    part: int


def _iter_pattern_levels(rhs: NestedTgd, k: int):
    """Yield ``P_k(rhs)`` level by level as lists of :class:`_SpecEntry`.

    Level ``n`` holds the k-patterns with ``n`` nodes, each produced by one
    leaf attachment to a level ``n - 1`` pattern; within a level, entries are
    in canonical (sort-key) order.  The concatenation of the levels is
    exactly ``enumerate_k_patterns(rhs, k)``'s order.  Generation is lazy:
    a sweep that fails early never materializes the deeper frontier.

    Completeness: every k-pattern with ``n > 1`` nodes has a k-pattern parent
    with ``n - 1`` nodes -- remove a leaf reached by descending into a child
    of minimum node count at every step.  The modified subtree along that
    path ends up strictly smaller than every sibling, so it cannot collide
    with one and no sibling multiplicity ever rises (the correctness argument
    is spelled out in ``docs/algorithms.md``).
    """
    root_entry = _SpecEntry(0, Pattern(1), -1, 0, 1)
    yield [root_entry]
    root_tree = _MirrorNode(1, None, [])
    _index_gen_tree(root_tree)
    trees: dict[int, _MirrorNode] = {0: root_tree}
    level = [0]
    next_index = 1
    while level:
        candidates: dict[Pattern, tuple[int, int, int]] = {}
        for index in level:
            positions: list[tuple[int, _MirrorNode]] = []
            _collect_attach_positions(trees[index], 0, positions)
            for node_index, node in positions:
                for part in rhs.children_of(node.part_id):
                    child_pattern = _attach_candidate(node, part, k)
                    if child_pattern is None or child_pattern in candidates:
                        continue
                    candidates[child_pattern] = (index, node_index, part)
        entries: list[_SpecEntry] = []
        new_level: list[int] = []
        for pattern in sorted(candidates, key=lambda p: p.sort_key()):
            parent_index, node_index, part = candidates[pattern]
            tree = _copy_gen_tree(trees[parent_index])
            attach = _preorder(tree)[node_index]
            leaf = _MirrorNode(part, None, [])
            leaf.parent = attach
            leaf.canon = Pattern(part)
            attach.children.append(leaf)
            current: _MirrorNode | None = attach
            while current is not None:
                current.canon = Pattern(
                    current.part_id, tuple(c.canon for c in current.children)
                )
                current = current.parent
            trees[next_index] = tree
            entries.append(_SpecEntry(next_index, pattern, parent_index, node_index, part))
            new_level.append(next_index)
            next_index += 1
        for index in level:
            del trees[index]
        if not entries:
            return
        yield entries
        level = new_level


class _SweepState:
    """The incrementally maintained per-pattern state of the sweep.

    ``chase_builder`` is None when the chase came straight from the LRU
    cache; a child extension then re-indexes the cached instance once and
    shares the cost across all children of this state.
    """

    __slots__ = (
        "tree", "factory", "source_builder", "source_facts",
        "chased", "chase_builder", "targets",
    )

    def __init__(self, tree, factory, source_builder, source_facts,
                 chased, chase_builder, targets):
        self.tree = tree
        self.factory = factory
        self.source_builder = source_builder
        self.source_facts = source_facts
        self.chased = chased
        self.chase_builder = chase_builder
        self.targets = targets


def _root_sweep_state(
    rhs: NestedTgd, clauses, fingerprint: tuple[str, ...]
) -> _SweepState:
    """The state of the single-node root pattern (full chase or cache hit)."""
    factory = FreshValueFactory()
    assignment, source_delta, target_delta = canonical_extension(rhs, 1, {}, factory)
    tree = _MirrorNode(1, assignment, [])
    source_builder = InstanceBuilder(source_delta)
    source_facts = frozenset(source_builder)
    key = (source_facts, fingerprint)
    cached = _CHASE_CACHE.get(key)
    if cached is not None:
        _CHASE_CACHE.move_to_end(key)
        perf.incr("implies.cache_hits")
        chased, chase_builder = cached, None
    else:
        perf.incr("implies.cache_misses")
        disk_hit = _disk_chase_get(source_facts, fingerprint)
        if disk_hit is not None:
            chased, chase_builder = disk_hit, None
        else:
            chase_builder = InstanceBuilder()
            chase_builder.add_all(run_clause_program(clauses, source_builder))
            chased = chase_builder.freeze()
            _disk_chase_put(source_facts, fingerprint, chased)
        _cache_store(key, chased)
    return _SweepState(
        tree, factory, source_builder, source_facts, chased, chase_builder,
        tuple(target_delta),
    )


def _extend_sweep_state(
    parent: _SweepState,
    entry: _SpecEntry,
    rhs: NestedTgd,
    clauses,
    fingerprint: tuple[str, ...],
) -> _SweepState:
    """Extend *parent* by the one leaf *entry* attaches, chasing only the delta."""
    factory = parent.factory.clone()
    tree = _copy_tree(parent.tree)
    attach = _preorder(tree)[entry.node_index]
    assignment, source_delta, target_delta = canonical_extension(
        rhs, entry.part, attach.assignment, factory
    )
    attach.children.append(_MirrorNode(entry.part, assignment, []))
    source_builder = parent.source_builder.copy()
    delta = source_builder.add_all(source_delta)
    source_facts = frozenset(source_builder)
    targets = parent.targets + tuple(target_delta)
    key = (source_facts, fingerprint)
    cached = _CHASE_CACHE.get(key)
    if cached is not None:
        _CHASE_CACHE.move_to_end(key)
        perf.incr("implies.cache_hits")
        chased, chase_builder = cached, None
    else:
        perf.incr("implies.cache_misses")
        disk_hit = _disk_chase_get(source_facts, fingerprint)
        if disk_hit is not None:
            chased, chase_builder = disk_hit, None
        else:
            perf.incr("implies.sweep.incremental_hits")
            if parent.chase_builder is not None:
                chase_builder = parent.chase_builder.copy()
            else:
                chase_builder = InstanceBuilder(parent.chased)
            if delta:
                chase_builder.add_all(
                    run_clause_program_delta(clauses, source_builder, delta)
                )
            chased = chase_builder.freeze()
            _disk_chase_put(source_facts, fingerprint, chased)
        _cache_store(key, chased)
    return _SweepState(
        tree, factory, source_builder, source_facts, chased, chase_builder, targets
    )


def _sweep_incremental_serial(
    lhs: Sequence,
    rhs: NestedTgd,
    fingerprint: tuple[str, ...],
    k: int,
) -> ImplicationResult:
    """Sweep ``P_k(rhs)`` smallest first, extending chase states level by level."""
    clauses = compile_clause_program(lhs)
    checked = 0
    previous: dict[int, _SweepState] = {}
    for entries in _iter_pattern_levels(rhs, k):
        states: dict[int, _SweepState] = {}
        for entry in entries:
            if entry.parent < 0:
                state = _root_sweep_state(rhs, clauses, fingerprint)
            else:
                state = _extend_sweep_state(
                    previous[entry.parent], entry, rhs, clauses, fingerprint
                )
            checked += 1
            perf.incr("implies.patterns")
            if find_homomorphism(state.targets, state.chased) is None:
                return ImplicationResult(
                    holds=False,
                    k=k,
                    patterns_checked=checked,
                    failing_pattern=entry.pattern,
                    counterexample_source=Instance(state.source_facts),
                    counterexample_target=Instance(state.targets),
                )
            states[entry.index] = state
        previous = states
    return ImplicationResult(holds=True, k=k, patterns_checked=checked)


def _replay_state(
    index: int,
    entries: Sequence[_SpecEntry],
    rhs: NestedTgd,
    clauses,
    fingerprint: tuple[str, ...],
    memo: dict[int, _SweepState] | None = None,
) -> _SweepState:
    """Rebuild the sweep state of pattern *index* from its ancestor chain."""
    chain: list[int] = []
    current = index
    while current >= 0 and (memo is None or current not in memo):
        chain.append(current)
        current = entries[current].parent
    state = memo[current] if (memo is not None and current >= 0) else None
    for position in reversed(chain):
        entry = entries[position]
        if entry.parent < 0:
            state = _root_sweep_state(rhs, clauses, fingerprint)
        else:
            assert state is not None
            state = _extend_sweep_state(state, entry, rhs, clauses, fingerprint)
        if memo is not None:
            memo[position] = state
    assert state is not None
    return state


# ---------------------------------------------- parallel work-stealing sweep

#: The sweep spec shared with fork workers: (entries, rhs, clauses,
#: fingerprint).  The parent publishes it once into a shared-memory segment
#: (:mod:`repro.cache.shm`) before the pool forks; each worker attaches and
#: deserializes it once, re-interning onto the fork-inherited tables.  When
#: shared memory is unavailable the spec rides along as a plain module
#: global inherited by fork.  Either way, tasks and results stay plain
#: integers and booleans -- no pattern or instance is pickled per task.
_INCR_SPEC: tuple | None = None
_INCR_HANDLE: cache_shm.ShmHandle | None = None

#: Worker-local memo of rebuilt sweep states, keyed by spec index.
_WORKER_STATES: dict[int, _SweepState] = {}


def _init_incr_worker() -> None:
    global _WORKER_STATES
    _WORKER_STATES = {}


def _incr_spec() -> tuple:
    if _INCR_HANDLE is not None:
        spec = cache_shm.attach(_INCR_HANDLE)
        assert isinstance(spec, tuple)
        return spec
    assert _INCR_SPEC is not None
    return _INCR_SPEC


def _incr_worker(chunk: tuple[int, int]) -> tuple[int, list[bool]]:
    start, end = chunk
    entries, rhs, clauses, fingerprint = _incr_spec()
    fails: list[bool] = []
    for index in range(start, end):
        state = _replay_state(index, entries, rhs, clauses, fingerprint, _WORKER_STATES)
        fails.append(find_homomorphism(state.targets, state.chased) is None)
    return start, fails


def _sweep_incremental_parallel(
    lhs: Sequence,
    rhs: NestedTgd,
    fingerprint: tuple[str, ...],
    k: int,
    workers: int,
) -> ImplicationResult:
    """Fan the incremental sweep out over a fork pool in index chunks.

    Chunks are pulled by idle workers (``imap_unordered``), so load balances
    itself; the parent tracks the minimal failing index and stops as soon as
    every chunk before it has reported, which bounds the extra work past a
    failure to the in-flight chunks.  Verdict and diagnostics are identical
    to the serial sweep: the failing pattern is the enumeration-order first,
    and its counterexample instances are replayed deterministically.
    """
    global _INCR_SPEC, _INCR_HANDLE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: fall back to the serial sweep
        return _sweep_incremental_serial(lhs, rhs, fingerprint, k)
    clauses = compile_clause_program(lhs)
    entries = [entry for level in _iter_pattern_levels(rhs, k) for entry in level]
    total = len(entries)
    if total <= 1 or workers <= 1:
        return _sweep_incremental_serial(lhs, rhs, fingerprint, k)
    chunk_size = max(1, min(16, -(-total // (workers * 4))))
    chunks = [(start, min(start + chunk_size, total))
              for start in range(0, total, chunk_size)]
    fail_index: int | None = None
    arrived: set[int] = set()
    spec = (entries, rhs, clauses, fingerprint)
    handle = cache_shm.publish(spec)
    if handle is not None:
        _INCR_HANDLE = handle
    else:
        _INCR_SPEC = spec
    try:
        with context.Pool(processes=workers, initializer=_init_incr_worker) as pool:
            for start, fails in pool.imap_unordered(_incr_worker, chunks):
                arrived.add(start)
                perf.incr("implies.parallel_chunks")
                for offset, failed in enumerate(fails):
                    if failed:
                        position = start + offset
                        if fail_index is None or position < fail_index:
                            fail_index = position
                        break
                if fail_index is not None and all(
                    prefix in arrived for prefix in range(0, fail_index, chunk_size)
                ):
                    break
    finally:
        _INCR_SPEC = None
        _INCR_HANDLE = None
        cache_shm.unlink(handle)
    if fail_index is None:
        return ImplicationResult(holds=True, k=k, patterns_checked=total)
    state = _replay_state(fail_index, entries, rhs, clauses, fingerprint)
    return ImplicationResult(
        holds=False,
        k=k,
        patterns_checked=fail_index + 1,
        failing_pattern=entries[fail_index].pattern,
        counterexample_source=Instance(state.source_facts),
        counterexample_target=Instance(state.targets),
    )


# ------------------------------------------------------- from-scratch sweep

#: The from-scratch sweep spec: (patterns, lhs, rhs, source_egds,
#: fingerprint).  Published once into shared memory (or, when that is
#: unavailable, left in this fork-inherited global); workers receive plain
#: pattern indexes as tasks instead of pickled patterns.
_SCRATCH_SPEC: tuple | None = None
_SCRATCH_HANDLE: cache_shm.ShmHandle | None = None


def _scratch_spec() -> tuple:
    if _SCRATCH_HANDLE is not None:
        spec = cache_shm.attach(_SCRATCH_HANDLE)
        assert isinstance(spec, tuple)
        return spec
    assert _SCRATCH_SPEC is not None
    return _SCRATCH_SPEC


def _pattern_worker(index: int) -> tuple[bool, Instance | None, Instance | None]:
    patterns, lhs, rhs, source_egds, fingerprint = _scratch_spec()
    fails, source, target = _check_pattern(
        patterns[index], lhs, rhs, source_egds, fingerprint
    )
    if not fails:
        return False, None, None
    return True, source, target


def _sweep_parallel(
    patterns: Sequence[Pattern],
    lhs: Sequence,
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    fingerprint: tuple[str, ...],
    k: int,
    workers: int,
) -> ImplicationResult:
    """Check from-scratch patterns over a worker pool, chunked in enumeration order.

    Chunks are dispatched one at a time and scanned in order, so the first
    failing pattern (and the ``patterns_checked`` count up to it) is exactly
    the serial one; at most one chunk of extra work runs past a failure.
    """
    global _SCRATCH_SPEC, _SCRATCH_HANDLE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: fall back to the serial sweep
        return _sweep_serial(patterns, lhs, rhs, source_egds, fingerprint, k)
    chunk_size = max(1, 2 * workers)
    checked = 0
    spec = (tuple(patterns), list(lhs), rhs, list(source_egds), fingerprint)
    handle = cache_shm.publish(spec)
    if handle is not None:
        _SCRATCH_HANDLE = handle
    else:
        _SCRATCH_SPEC = spec
    try:
        with context.Pool(processes=workers) as pool:
            for start in range(0, len(patterns), chunk_size):
                batch = range(start, min(start + chunk_size, len(patterns)))
                perf.incr("implies.parallel_chunks")
                for offset, (fails, source, target) in enumerate(
                    pool.map(_pattern_worker, batch)
                ):
                    checked += 1
                    if fails:
                        return ImplicationResult(
                            holds=False,
                            k=k,
                            patterns_checked=checked,
                            failing_pattern=patterns[start + offset],
                            counterexample_source=source,
                            counterexample_target=target,
                        )
    finally:
        _SCRATCH_SPEC = None
        _SCRATCH_HANDLE = None
        cache_shm.unlink(handle)
    return ImplicationResult(holds=True, k=k, patterns_checked=checked)


def _sweep_serial(
    patterns: Sequence[Pattern],
    lhs: Sequence,
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    fingerprint: tuple[str, ...],
    k: int,
) -> ImplicationResult:
    checked = 0
    for pattern in patterns:
        fails, source, target = _check_pattern(pattern, lhs, rhs, source_egds, fingerprint)
        checked += 1
        if fails:
            return ImplicationResult(
                holds=False,
                k=k,
                patterns_checked=checked,
                failing_pattern=pattern,
                counterexample_source=source,
                counterexample_target=target,
            )
    return ImplicationResult(holds=True, k=k, patterns_checked=checked)


# ------------------------------------------------------ persistent verdicts

def _verdict_key(
    fingerprint: tuple[str, ...],
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    k: int,
    incremental: bool,
) -> str:
    """The disk key of one full IMPLIES verdict.

    Includes every input that can change the result *or its diagnostics*:
    Sigma (repr fingerprint), sigma, the source egds, the clone bound, and
    the sweep mode -- incremental and from-scratch sweeps agree on the
    verdict but may report different (equally valid) counterexamples, and a
    cached result must be indistinguishable from a recomputed one.  The
    leading component pins a format version and the component counts, so
    concatenated reprs cannot alias across the egd/lhs boundary.
    """
    mode = "incremental" if incremental else "scratch"
    return fingerprint_texts((
        f"implies-v1:k={k}:mode={mode}:lhs={len(fingerprint)}",
        *fingerprint,
        repr(rhs),
        *[repr(egd) for egd in source_egds],
    ))


def _facts_payload(instance: Instance | None) -> tuple[Atom, ...] | None:
    if instance is None:
        return None
    return tuple(sorted(instance.facts, key=repr))


def _disk_verdict_get(key: str) -> ImplicationResult | None:
    payload = disk_get(SPACE_IMPLIES, key)
    if not isinstance(payload, tuple) or len(payload) != 6:
        return None
    holds, k, checked, failing, source_facts, target_facts = payload
    if not isinstance(holds, bool) or not isinstance(k, int) or not isinstance(checked, int):
        return None
    perf.incr("implies.verdict_disk_hits")
    return ImplicationResult(
        holds=holds,
        k=k,
        patterns_checked=checked,
        failing_pattern=failing,
        counterexample_source=None if source_facts is None else Instance(source_facts),
        counterexample_target=None if target_facts is None else Instance(target_facts),
    )


def _disk_verdict_put(key: str, result: ImplicationResult) -> None:
    disk_put(
        SPACE_IMPLIES,
        key,
        (
            result.holds,
            result.k,
            result.patterns_checked,
            result.failing_pattern,
            _facts_payload(result.counterexample_source),
            _facts_payload(result.counterexample_target),
        ),
    )


def implies_tgd(
    sigma_set,
    sigma,
    source_egds: Sequence[Egd] = (),
    max_patterns: int | None = 1_000_000,
    *,
    parallel: int | None = None,
    subsumption: bool = True,
    budget: int | None = None,
    incremental: bool | None = None,
) -> ImplicationResult:
    """Run the procedure IMPLIES and return a result with diagnostics.

    By default the sweep is **DAG-incremental**: each pattern's canonical
    instances and chase are extended from its parent pattern's state by the
    delta one new leaf contributes (``incremental=False`` forces the
    from-scratch sweep; with *source_egds* the from-scratch sweep is always
    used, because egd merges are not monotone under source extension).

    With ``parallel=N > 1``, the per-pattern checks fan out over N worker
    processes; the result (verdict, pattern count, diagnostics) is identical
    to the serial sweep, and the sweep early-exits once a failing pattern is
    found.

    With ``budget=N``, the static cost model of
    :func:`repro.analysis.cost.sweep_cost` predicts the sweep size *before*
    enumerating anything; a predicted sweep above the budget raises
    :class:`~repro.errors.BudgetExceeded` immediately (lint finding ``CC001``
    makes the same prediction), and a predicted sweep that fits pre-sizes
    the chase cache so the sweep does not thrash it.  The previous cache
    capacity is restored when the run finishes.

    With ``subsumption=True`` (the default), a sound syntactic subsumption
    pre-pass (:mod:`repro.analysis.subsumption`) answers trivially implied
    right-hand sides -- alpha-renamed copies and flat weakenings of a
    left-hand-side member -- without enumerating a single pattern.  The
    pre-pass is verdict-preserving; ``implies.subsumption_checks`` and
    ``implies.subsumption_skips`` in :mod:`repro.perf` count its work.

        >>> from repro.logic.parser import parse_nested_tgd, parse_tgd
        >>> tau = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
        >>> bool(implies_tgd([parse_tgd("S2(x2) -> R(x2, z)")], tau))
        False
        >>> bool(implies_tgd([parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")], tau))
        True
    """
    lhs = _normalize_lhs(sigma_set if not isinstance(sigma_set, (STTgd, NestedTgd, SOTgd))
                         else [sigma_set])
    rhs = _normalize_rhs(sigma)
    k = implication_bound(lhs, rhs)
    if any(dep == rhs for dep in lhs):
        # Syntactic membership short-circuit: Sigma trivially implies its own
        # members, and the full k-pattern sweep can be non-elementary.
        return ImplicationResult(holds=True, k=k, patterns_checked=0)
    if subsumption:
        from repro.analysis.subsumption import trivially_implied

        perf.incr("implies.subsumption_checks")
        if trivially_implied(lhs, rhs):
            perf.incr("implies.subsumption_skips")
            return ImplicationResult(holds=True, k=k, patterns_checked=0)
    prior_cache_limit = _CHASE_CACHE_LIMIT
    presized = False
    if budget is not None:
        from repro.analysis.cost import sweep_cost

        estimate = sweep_cost(lhs, rhs, k=k)
        if estimate.cost_units > budget:
            from repro.errors import BudgetExceeded

            raise BudgetExceeded(
                "IMPLIES k-pattern sweep",
                budget,
                predicted=estimate.cost_units,
                hint=f"k={estimate.k} yields ~{estimate.pattern_count} patterns "
                "(lint finding CC001 predicts this).  Raise budget=, or prune "
                "the right-hand side's nesting depth.",
            )
        _presize_chase_cache(estimate.pattern_count)
        presized = True
    source_egds = list(source_egds)
    fingerprint = _sigma_fingerprint(lhs)
    if incremental is None:
        incremental = not source_egds
    elif incremental and source_egds:
        raise DependencyError(
            "the incremental sweep does not support source egds (egd merges "
            "are not monotone under source extension); pass incremental=False"
        )

    try:
        from repro.core.patterns import count_k_patterns

        # Persistent verdict tier: a warm process answers a repeated query
        # without enumerating a single pattern.  Consulted only after the
        # budget pre-flight (BudgetExceeded must still raise) and only when
        # the sweep would fit max_patterns (ResourceLimitExceeded must still
        # raise), so resource-limit semantics match the cache-off path.
        verdict_key: str | None = None
        store = get_store()
        if store is not None and store.enabled(SPACE_IMPLIES):
            if max_patterns is None or count_k_patterns(rhs, k) <= max_patterns:
                verdict_key = _verdict_key(fingerprint, rhs, source_egds, k, incremental)
                cached_verdict = _disk_verdict_get(verdict_key)
                if cached_verdict is not None:
                    return cached_verdict
        if incremental:
            if max_patterns is not None and count_k_patterns(rhs, k) > max_patterns:
                raise ResourceLimitExceeded("patterns", max_patterns)
            if parallel and parallel > 1:
                result = _sweep_incremental_parallel(lhs, rhs, fingerprint, k, parallel)
            else:
                result = _sweep_incremental_serial(lhs, rhs, fingerprint, k)
        else:
            patterns = enumerate_k_patterns(rhs, k, max_patterns=max_patterns)
            if parallel and parallel > 1 and len(patterns) > 1:
                result = _sweep_parallel(
                    patterns, lhs, rhs, source_egds, fingerprint, k, parallel
                )
            else:
                result = _sweep_serial(patterns, lhs, rhs, source_egds, fingerprint, k)
        if verdict_key is not None:
            _disk_verdict_put(verdict_key, result)
        return result
    finally:
        if presized:
            _set_chase_cache_limit(prior_cache_limit)
        intern.publish_stats()


def implies(
    sigma_set,
    sigma_prime_set,
    source_egds: Sequence[Egd] = (),
    max_patterns: int | None = 1_000_000,
    *,
    parallel: int | None = None,
    subsumption: bool = True,
    budget: int | None = None,
    incremental: bool | None = None,
) -> bool:
    """Decide ``Sigma |= Sigma'`` for finite sets of (nested) tgds.

    Both arguments may be a single dependency or an iterable.  With
    *source_egds*, implication is relative to sources satisfying the egds
    (Theorem 5.7).
    """
    if isinstance(sigma_prime_set, (STTgd, NestedTgd)):
        sigma_prime_set = [sigma_prime_set]
    return all(
        implies_tgd(
            sigma_set, sigma, source_egds=source_egds, max_patterns=max_patterns,
            parallel=parallel, subsumption=subsumption, budget=budget,
            incremental=incremental,
        ).holds
        for sigma in sigma_prime_set
    )


def equivalent(
    sigma_set,
    sigma_prime_set,
    source_egds: Sequence[Egd] = (),
    max_patterns: int | None = 1_000_000,
    *,
    parallel: int | None = None,
    subsumption: bool = True,
    budget: int | None = None,
    incremental: bool | None = None,
) -> bool:
    """Decide logical equivalence of two finite sets of nested tgds (Corollary 3.11)."""
    return implies(
        sigma_set, sigma_prime_set, source_egds=source_egds,
        max_patterns=max_patterns, parallel=parallel, subsumption=subsumption,
        budget=budget, incremental=incremental,
    ) and implies(
        sigma_prime_set, sigma_set, source_egds=source_egds,
        max_patterns=max_patterns, parallel=parallel, subsumption=subsumption,
        budget=budget, incremental=incremental,
    )


def implies_semantic_bounded(
    sigma_set,
    sigma,
    max_facts: int = 3,
    max_constants: int = 3,
    source_egds: Sequence[Egd] = (),
) -> bool:
    """Brute-force implication over all source instances up to a size bound.

    ``Sigma |= sigma`` holds iff for every source instance I,
    ``chase(I, sigma)`` maps homomorphically into ``chase(I, Sigma)`` (the
    closure-under-target-homomorphisms argument of Section 3).  This checker
    verifies exactly that over every source instance with at most *max_facts*
    facts over *max_constants* constants (up to isomorphism).

    It is exponential and exists as a differential-testing oracle for the
    pattern-based procedure :func:`implies_tgd`: sound refutations, and
    agreement on small instances is strong evidence of agreement everywhere
    (the k-pattern argument says small canonical instances suffice).
    """
    from repro.core.fblock_analysis import enumerate_source_instances
    from repro.engine.egd_chase import satisfies_egds

    lhs = _normalize_lhs(sigma_set if not isinstance(sigma_set, (STTgd, NestedTgd, SOTgd))
                         else [sigma_set])
    rhs = _normalize_rhs(sigma)
    schema = rhs.source_schema()
    for dep in lhs:
        schema = schema.union(dep.source_schema())
    for instance in enumerate_source_instances(schema, max_facts, max_constants):
        if source_egds and not satisfies_egds(instance, list(source_egds)):
            continue
        rhs_chase = chase(instance, [rhs])
        lhs_chase = chase(instance, lhs)
        if find_homomorphism(rhs_chase, lhs_chase) is None:
            return False
    return True


__all__ = [
    "ImplicationResult",
    "cached_chase",
    "clear_chase_cache",
    "implication_bound",
    "implies_tgd",
    "implies",
    "implies_semantic_bounded",
    "equivalent",
]
