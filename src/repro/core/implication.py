"""The decision procedure IMPLIES for nested tgds (Theorems 3.1 and 5.7).

``implies(Sigma, sigma)`` decides whether every pair (I, J) satisfying the
finite set ``Sigma`` of dependencies also satisfies the nested tgd ``sigma``.
The procedure follows Section 3 of the paper verbatim:

1. Skolemize; let ``v`` be the number of distinct Skolem functions of
   ``sigma`` and ``w`` the maximum number of universally quantified variables
   in a dependency of ``Sigma``; set ``k = v * w + 1``.
2. For every k-pattern ``p`` of ``sigma``, build the canonical source and
   target instances ``I_p`` and ``J_p`` and check that a homomorphism
   ``J_p -> chase(I_p, Sigma)`` exists.  If some check fails, ``Sigma`` does
   not imply ``sigma`` -- and ``I_p`` is a counterexample source instance.

With source egds (Theorem 5.7) the *legal* canonical instances of
Definition 5.4 are used and ``I_p^s`` is chased instead.

``Sigma`` may contain s-t tgds and nested tgds (the paper's setting).  As an
extension, plain SO tgds are accepted on the left-hand side as well: the
correctness argument only needs that the left-hand side admits universal
solutions via a chase and is closed under target homomorphisms, which plain
SO tgds are (Section 4.1); the ``w`` bound likewise only counts universal
variables per clause.

Two engine-level accelerations sit on top of the paper's procedure:

- a process-wide LRU **chase cache** keyed by (canonical source instance,
  Sigma fingerprint).  Chasing is deterministic, so two patterns (or two
  IMPLIES runs) whose canonical sources coincide share one chase.  Hits and
  misses are recorded in :mod:`repro.perf`.
- an optional **parallel pattern sweep** (``parallel=N``): the per-pattern
  checks are independent, so they fan out over a ``multiprocessing`` pool in
  enumeration-ordered chunks.  The first failing pattern *in enumeration
  order* is reported, so the verdict, ``patterns_checked``, and the
  counterexample diagnostics agree exactly with the serial sweep; the sweep
  stops as soon as a chunk contains a failure.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import perf
from repro.errors import DependencyError
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.sotgd import SOTgd
from repro.logic.tgds import STTgd
from repro.core.canonical import canonical_instances, legal_canonical_instances
from repro.core.patterns import Pattern, enumerate_k_patterns
from repro.engine.chase import chase
from repro.engine.homomorphism import find_homomorphism


@dataclass
class ImplicationResult:
    """The outcome of an IMPLIES run, with diagnostics.

    When ``holds`` is False, ``failing_pattern`` is the k-pattern whose check
    failed and ``counterexample_source`` is a source instance I with
    ``chase(I, sigma)`` not homomorphically embeddable in ``chase(I, Sigma)``
    -- i.e. a witness that ``Sigma`` does not imply ``sigma``.
    """

    holds: bool
    k: int
    patterns_checked: int
    failing_pattern: Pattern | None = None
    counterexample_source: Instance | None = None
    counterexample_target: Instance | None = None

    def __bool__(self) -> bool:
        return self.holds


def _normalize_lhs(dependencies: Iterable) -> list:
    result = []
    for dep in dependencies:
        if isinstance(dep, STTgd):
            result.append(dep.to_nested())
        elif isinstance(dep, NestedTgd):
            result.append(dep)
        elif isinstance(dep, SOTgd):
            if not dep.is_plain():
                raise DependencyError(
                    "IMPLIES accepts plain SO tgds on the left-hand side only; "
                    f"{dep!r} has equalities or nested terms"
                )
            result.append(dep)
        else:
            raise DependencyError(f"unsupported dependency {dep!r}")
    return result


def _normalize_rhs(dep) -> NestedTgd:
    if isinstance(dep, STTgd):
        return dep.to_nested()
    if isinstance(dep, NestedTgd):
        return dep
    raise DependencyError(
        "the right-hand side of IMPLIES must be an s-t tgd or a nested tgd, "
        f"got {dep!r} (implication of SO tgds is undecidable)"
    )


def _max_universal_variables(dependencies: Sequence) -> int:
    """The quantity ``w`` of the IMPLIES procedure."""
    best = 0
    for dep in dependencies:
        if isinstance(dep, NestedTgd):
            best = max(best, dep.universal_variable_count())
        elif isinstance(dep, SOTgd):
            best = max(best, dep.max_universal_variables())
    return best


def implication_bound(sigma_set: Sequence, sigma: NestedTgd) -> int:
    """The clone bound ``k = v_sigma * w_Sigma + 1`` from line 4 of IMPLIES."""
    v = sigma.skolem_function_count()
    w = _max_universal_variables(sigma_set)
    return v * w + 1


# --------------------------------------------------------------- chase cache

#: LRU cache of ``chase(I_p, Sigma)`` results, keyed by
#: (facts of the canonical source, Sigma fingerprint).  The chase is
#: deterministic, so equal keys yield identical results (including null
#: labels) and the cached instance can be shared freely.
_CHASE_CACHE: "OrderedDict[tuple, Instance]" = OrderedDict()
_CHASE_CACHE_LIMIT = 512
_CHASE_CACHE_LIMIT_DEFAULT = 512
_CHASE_CACHE_LIMIT_MAX = 8192


def _presize_chase_cache(predicted_patterns: int) -> None:
    """Grow the chase-cache LRU window toward a predicted sweep size.

    A sweep of ``n`` patterns touches at most ``n`` canonical sources; an
    LRU window smaller than that thrashes (every entry is evicted before its
    re-use).  Growth is clamped and never shrinks below the default.
    """
    global _CHASE_CACHE_LIMIT
    _CHASE_CACHE_LIMIT = max(
        _CHASE_CACHE_LIMIT,
        min(max(predicted_patterns, _CHASE_CACHE_LIMIT_DEFAULT), _CHASE_CACHE_LIMIT_MAX),
    )


def _sigma_fingerprint(lhs: Sequence) -> tuple[str, ...]:
    """A hashable identity for a normalized left-hand side (reprs are total)."""
    return tuple(repr(dep) for dep in lhs)


def clear_chase_cache() -> None:
    """Drop all cached chase results (used by benchmarks for cold-start runs)."""
    global _CHASE_CACHE_LIMIT
    _CHASE_CACHE.clear()
    _CHASE_CACHE_LIMIT = _CHASE_CACHE_LIMIT_DEFAULT


def _cached_chase(source: Instance, lhs: Sequence, fingerprint: tuple[str, ...]) -> Instance:
    key = (source.facts, fingerprint)
    cached = _CHASE_CACHE.get(key)
    if cached is not None:
        _CHASE_CACHE.move_to_end(key)
        perf.incr("implies.cache_hits")
        return cached
    perf.incr("implies.cache_misses")
    result = chase(source, lhs)
    _CHASE_CACHE[key] = result
    if len(_CHASE_CACHE) > _CHASE_CACHE_LIMIT:
        _CHASE_CACHE.popitem(last=False)
    return result


def cached_chase(source: Instance, dependencies: Sequence) -> Instance:
    """``chase(source, dependencies)`` through the process-wide LRU cache.

    Public entry point to the IMPLIES chase cache for the other Section-4
    procedures (``decide_bounded_fblock_size``, ``cq_refute``) that re-chase
    the same canonical sources across growth rounds or mapping pairs.  Sound
    because the chase is deterministic given (source, dependencies); the
    cache key uses the dependencies' reprs, which are total.
    """
    return _cached_chase(source, list(dependencies), _sigma_fingerprint(dependencies))


def _check_pattern(
    pattern: Pattern,
    lhs: Sequence,
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    fingerprint: tuple[str, ...],
) -> tuple[bool, Instance, Instance]:
    """Run one k-pattern check; return (fails, I_p, J_p)."""
    if source_egds:
        canon = legal_canonical_instances(pattern, rhs, source_egds)
    else:
        canon = canonical_instances(pattern, rhs)
    chased = _cached_chase(canon.source, lhs, fingerprint)
    perf.incr("implies.patterns")
    fails = find_homomorphism(canon.target, chased) is None
    return fails, canon.source, canon.target


# ------------------------------------------------------------ parallel sweep

_WORKER_STATE: tuple | None = None


def _init_pattern_worker(lhs, rhs, source_egds, fingerprint) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (lhs, rhs, source_egds, fingerprint)


def _pattern_worker(pattern: Pattern) -> tuple[bool, Instance | None, Instance | None]:
    lhs, rhs, source_egds, fingerprint = _WORKER_STATE
    fails, source, target = _check_pattern(pattern, lhs, rhs, source_egds, fingerprint)
    if not fails:
        return False, None, None
    return True, source, target


def _sweep_parallel(
    patterns: Sequence[Pattern],
    lhs: Sequence,
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    fingerprint: tuple[str, ...],
    k: int,
    workers: int,
) -> ImplicationResult:
    """Check patterns over a worker pool, chunked in enumeration order.

    Chunks are dispatched one at a time and scanned in order, so the first
    failing pattern (and the ``patterns_checked`` count up to it) is exactly
    the serial one; at most one chunk of extra work runs past a failure.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: fall back to the serial sweep
        return _sweep_serial(patterns, lhs, rhs, source_egds, fingerprint, k)
    chunk_size = max(1, 2 * workers)
    checked = 0
    with context.Pool(
        processes=workers,
        initializer=_init_pattern_worker,
        initargs=(list(lhs), rhs, list(source_egds), fingerprint),
    ) as pool:
        for start in range(0, len(patterns), chunk_size):
            batch = patterns[start:start + chunk_size]
            perf.incr("implies.parallel_chunks")
            for offset, (fails, source, target) in enumerate(
                pool.map(_pattern_worker, batch)
            ):
                checked += 1
                if fails:
                    return ImplicationResult(
                        holds=False,
                        k=k,
                        patterns_checked=checked,
                        failing_pattern=batch[offset],
                        counterexample_source=source,
                        counterexample_target=target,
                    )
    return ImplicationResult(holds=True, k=k, patterns_checked=checked)


def _sweep_serial(
    patterns: Sequence[Pattern],
    lhs: Sequence,
    rhs: NestedTgd,
    source_egds: Sequence[Egd],
    fingerprint: tuple[str, ...],
    k: int,
) -> ImplicationResult:
    checked = 0
    for pattern in patterns:
        fails, source, target = _check_pattern(pattern, lhs, rhs, source_egds, fingerprint)
        checked += 1
        if fails:
            return ImplicationResult(
                holds=False,
                k=k,
                patterns_checked=checked,
                failing_pattern=pattern,
                counterexample_source=source,
                counterexample_target=target,
            )
    return ImplicationResult(holds=True, k=k, patterns_checked=checked)


def implies_tgd(
    sigma_set,
    sigma,
    source_egds: Sequence[Egd] = (),
    max_patterns: int | None = 1_000_000,
    *,
    parallel: int | None = None,
    subsumption: bool = True,
    budget: int | None = None,
) -> ImplicationResult:
    """Run the procedure IMPLIES and return a result with diagnostics.

    With ``parallel=N > 1``, the per-pattern checks fan out over N worker
    processes; the result (verdict, pattern count, diagnostics) is identical
    to the serial sweep, and the sweep early-exits once a failing pattern is
    found.

    With ``budget=N``, the static cost model of
    :func:`repro.analysis.cost.sweep_cost` predicts the sweep size *before*
    enumerating anything; a predicted sweep above the budget raises
    :class:`~repro.errors.BudgetExceeded` immediately (lint finding ``CC001``
    makes the same prediction), and a predicted sweep that fits pre-sizes
    the chase cache so the sweep does not thrash it.

    With ``subsumption=True`` (the default), a sound syntactic subsumption
    pre-pass (:mod:`repro.analysis.subsumption`) answers trivially implied
    right-hand sides -- alpha-renamed copies and flat weakenings of a
    left-hand-side member -- without enumerating a single pattern.  The
    pre-pass is verdict-preserving; ``implies.subsumption_checks`` and
    ``implies.subsumption_skips`` in :mod:`repro.perf` count its work.

        >>> from repro.logic.parser import parse_nested_tgd, parse_tgd
        >>> tau = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
        >>> bool(implies_tgd([parse_tgd("S2(x2) -> R(x2, z)")], tau))
        False
        >>> bool(implies_tgd([parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")], tau))
        True
    """
    lhs = _normalize_lhs(sigma_set if not isinstance(sigma_set, (STTgd, NestedTgd, SOTgd))
                         else [sigma_set])
    rhs = _normalize_rhs(sigma)
    k = implication_bound(lhs, rhs)
    if any(dep == rhs for dep in lhs):
        # Syntactic membership short-circuit: Sigma trivially implies its own
        # members, and the full k-pattern sweep can be non-elementary.
        return ImplicationResult(holds=True, k=k, patterns_checked=0)
    if subsumption:
        from repro.analysis.subsumption import trivially_implied

        perf.incr("implies.subsumption_checks")
        if trivially_implied(lhs, rhs):
            perf.incr("implies.subsumption_skips")
            return ImplicationResult(holds=True, k=k, patterns_checked=0)
    if budget is not None:
        from repro.analysis.cost import sweep_cost

        estimate = sweep_cost(lhs, rhs, k=k)
        if estimate.cost_units > budget:
            from repro.errors import BudgetExceeded

            raise BudgetExceeded(
                "IMPLIES k-pattern sweep",
                budget,
                predicted=estimate.cost_units,
                hint=f"k={estimate.k} yields ~{estimate.pattern_count} patterns "
                "(lint finding CC001 predicts this).  Raise budget=, or prune "
                "the right-hand side's nesting depth.",
            )
        _presize_chase_cache(estimate.pattern_count)
    patterns = enumerate_k_patterns(rhs, k, max_patterns=max_patterns)
    source_egds = list(source_egds)
    fingerprint = _sigma_fingerprint(lhs)

    if parallel and parallel > 1 and len(patterns) > 1:
        return _sweep_parallel(patterns, lhs, rhs, source_egds, fingerprint, k, parallel)
    return _sweep_serial(patterns, lhs, rhs, source_egds, fingerprint, k)


def implies(
    sigma_set,
    sigma_prime_set,
    source_egds: Sequence[Egd] = (),
    max_patterns: int | None = 1_000_000,
    *,
    parallel: int | None = None,
    subsumption: bool = True,
    budget: int | None = None,
) -> bool:
    """Decide ``Sigma |= Sigma'`` for finite sets of (nested) tgds.

    Both arguments may be a single dependency or an iterable.  With
    *source_egds*, implication is relative to sources satisfying the egds
    (Theorem 5.7).
    """
    if isinstance(sigma_prime_set, (STTgd, NestedTgd)):
        sigma_prime_set = [sigma_prime_set]
    return all(
        implies_tgd(
            sigma_set, sigma, source_egds=source_egds, max_patterns=max_patterns,
            parallel=parallel, subsumption=subsumption, budget=budget,
        ).holds
        for sigma in sigma_prime_set
    )


def equivalent(
    sigma_set,
    sigma_prime_set,
    source_egds: Sequence[Egd] = (),
    max_patterns: int | None = 1_000_000,
    *,
    parallel: int | None = None,
    subsumption: bool = True,
    budget: int | None = None,
) -> bool:
    """Decide logical equivalence of two finite sets of nested tgds (Corollary 3.11)."""
    return implies(
        sigma_set, sigma_prime_set, source_egds=source_egds,
        max_patterns=max_patterns, parallel=parallel, subsumption=subsumption,
        budget=budget,
    ) and implies(
        sigma_prime_set, sigma_set, source_egds=source_egds,
        max_patterns=max_patterns, parallel=parallel, subsumption=subsumption,
        budget=budget,
    )


def implies_semantic_bounded(
    sigma_set,
    sigma,
    max_facts: int = 3,
    max_constants: int = 3,
    source_egds: Sequence[Egd] = (),
) -> bool:
    """Brute-force implication over all source instances up to a size bound.

    ``Sigma |= sigma`` holds iff for every source instance I,
    ``chase(I, sigma)`` maps homomorphically into ``chase(I, Sigma)`` (the
    closure-under-target-homomorphisms argument of Section 3).  This checker
    verifies exactly that over every source instance with at most *max_facts*
    facts over *max_constants* constants (up to isomorphism).

    It is exponential and exists as a differential-testing oracle for the
    pattern-based procedure :func:`implies_tgd`: sound refutations, and
    agreement on small instances is strong evidence of agreement everywhere
    (the k-pattern argument says small canonical instances suffice).
    """
    from repro.core.fblock_analysis import enumerate_source_instances
    from repro.engine.egd_chase import satisfies_egds

    lhs = _normalize_lhs(sigma_set if not isinstance(sigma_set, (STTgd, NestedTgd, SOTgd))
                         else [sigma_set])
    rhs = _normalize_rhs(sigma)
    schema = rhs.source_schema()
    for dep in lhs:
        schema = schema.union(dep.source_schema())
    for instance in enumerate_source_instances(schema, max_facts, max_constants):
        if source_egds and not satisfies_egds(instance, list(source_egds)):
            continue
        rhs_chase = chase(instance, [rhs])
        lhs_chase = chase(instance, lhs)
        if find_homomorphism(rhs_chase, lhs_chase) is None:
            return False
    return True


__all__ = [
    "ImplicationResult",
    "cached_chase",
    "clear_chase_cache",
    "implication_bound",
    "implies_tgd",
    "implies",
    "implies_semantic_bounded",
    "equivalent",
]
