"""The paper's contribution: pattern machinery, implication, f-block analysis,
GLAV-equivalence, and the separation tools of Sections 3-5.

- :mod:`repro.core.patterns` -- patterns, k-patterns, cloning (Definitions 3.2/3.3);
- :mod:`repro.core.canonical` -- (legal) canonical instances (Definitions 3.7, 5.4);
- :mod:`repro.core.implication` -- the procedure IMPLIES (Theorems 3.1, 5.7);
- :mod:`repro.core.fblock_analysis` -- effective threshold and bounded anchor
  (Theorems 4.4, 4.9, 4.10, 4.11, 5.5);
- :mod:`repro.core.glav_equivalence` -- equivalence to GLAV (Theorems 4.2, 5.6);
- :mod:`repro.core.separation` -- f-degree and path-length tools (Theorems 4.12, 4.16).
"""

from repro.core.patterns import (
    Pattern,
    count_k_patterns,
    enumerate_k_patterns,
    one_patterns,
)
from repro.core.canonical import (
    CanonicalInstances,
    canonical_instances,
    legal_canonical_instances,
)
from repro.core.implication import clear_chase_cache, equivalent, implies, implies_tgd
from repro.core.fblock_analysis import (
    FBlockVerdict,
    bounded_anchor_witness,
    decide_bounded_fblock_size,
    decide_bounded_fblock_size_exhaustive,
    fblock_threshold,
)
from repro.core.glav_equivalence import is_equivalent_to_glav
from repro.core.separation import (
    FBlockProfile,
    fblock_profile,
    nested_expressibility_report,
    path_length_bound,
)

__all__ = [
    "Pattern",
    "enumerate_k_patterns",
    "count_k_patterns",
    "one_patterns",
    "CanonicalInstances",
    "canonical_instances",
    "legal_canonical_instances",
    "implies",
    "implies_tgd",
    "equivalent",
    "clear_chase_cache",
    "FBlockVerdict",
    "fblock_threshold",
    "bounded_anchor_witness",
    "decide_bounded_fblock_size",
    "decide_bounded_fblock_size_exhaustive",
    "is_equivalent_to_glav",
    "FBlockProfile",
    "fblock_profile",
    "nested_expressibility_report",
    "path_length_bound",
]
