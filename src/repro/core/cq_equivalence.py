"""CQ-equivalence of schema mappings.

Two schema mappings are *CQ-equivalent* when they give the same certain
answers for every conjunctive query (the notion, due to Madhavan & Halevy
[16] and studied in [6], under which plain SO tgds are the right composition
language [2] -- see the paper's introduction).  For mappings that admit
universal solutions, CQ-equivalence is characterized instance-wise:

    M ≡_CQ M'   iff   for every source instance I,
                      core(chase(I, M)) and core(chase(I, M')) are
                      homomorphically equivalent

(certain answers are computed on any universal solution, and hom-equivalent
cores give the same answers for every CQ).

:func:`cq_refute` searches a batch of source instances for a counterexample
(exact refutation); :func:`cq_equivalent_on` is the corresponding bounded
verifier.  :func:`canonical_test_sources` generates the natural test family:
the (legal) canonical source instances of the patterns of both mappings --
for GLAV mappings these are the canonical body instances on which
CQ-equivalence is classically checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import nested_tgds_from
from repro.core.canonical import canonical_instances, legal_canonical_instances
from repro.core.implication import cached_chase
from repro.core.patterns import patterns_up_to_size
from repro.engine.core_instance import core
from repro.engine.egd_chase import satisfies_egds
from repro.engine.homomorphism import homomorphically_equivalent


@dataclass
class CQComparison:
    """Outcome of a CQ-equivalence check over a batch of sources."""

    equivalent_on_batch: bool
    checked: int
    counterexample_source: Instance | None = None

    def __bool__(self) -> bool:
        return self.equivalent_on_batch


def _normalize(mapping) -> list:
    from repro.mappings.mapping import SchemaMapping

    if isinstance(mapping, SchemaMapping):
        return list(mapping.dependencies)
    try:
        return list(mapping)
    except TypeError:
        return [mapping]


def cq_refute(
    mapping_a,
    mapping_b,
    sources: Iterable[Instance],
    source_egds: Sequence[Egd] = (),
    backend: str = "tuple",
) -> Instance | None:
    """Return a source instance separating the mappings' core solutions, or None.

    A returned instance I witnesses that the mappings are **not**
    CQ-equivalent: their cores are not hom-equivalent on I, so some CQ has
    different certain answers.  Both chases go through the IMPLIES chase
    cache: the canonical test family deliberately repeats sources across the
    two mappings and across calls.  *backend* selects the core engine
    (:func:`repro.engine.core_instance.core`); the verdict is backend-
    independent because hom-equivalence is isomorphism-invariant.
    """
    deps_a, deps_b = _normalize(mapping_a), _normalize(mapping_b)
    for source in sources:
        if source_egds and not satisfies_egds(source, list(source_egds)):
            continue
        core_a = core(cached_chase(source, deps_a), backend=backend)
        core_b = core(cached_chase(source, deps_b), backend=backend)
        if not homomorphically_equivalent(core_a, core_b):
            return source
    return None


def cq_equivalent_on(
    mapping_a,
    mapping_b,
    sources: Iterable[Instance],
    source_egds: Sequence[Egd] = (),
    backend: str = "tuple",
) -> CQComparison:
    """Check CQ-equivalence over a batch of sources (bounded verifier).

        >>> from repro.logic.parser import parse_instance, parse_tgd
        >>> a = [parse_tgd("S(x,y) -> R(x,z)")]
        >>> b = [parse_tgd("S(x,y) -> R(x,w)")]
        >>> bool(cq_equivalent_on(a, b, [parse_instance("S(a,b)")]))
        True
    """
    sources = list(sources)
    witness = cq_refute(
        mapping_a, mapping_b, sources, source_egds=source_egds, backend=backend
    )
    return CQComparison(
        equivalent_on_batch=witness is None,
        checked=len(sources),
        counterexample_source=witness,
    )


def canonical_test_sources(
    mapping_a,
    mapping_b,
    max_pattern_nodes: int = 3,
    source_egds: Sequence[Egd] = (),
) -> list[Instance]:
    """The canonical source instances of both mappings' small patterns.

    For GLAV mappings these are the canonical body instances (patterns have
    one node per tgd); for nested GLAV mappings, growing *max_pattern_nodes*
    yields ever stronger test families.  Only instances satisfying the source
    egds are returned.
    """
    sources: list[Instance] = []
    seen: set = set()
    for mapping in (mapping_a, mapping_b):
        for tgd in nested_tgds_from(_normalize(mapping)):
            for pattern in patterns_up_to_size(tgd, max_pattern_nodes):
                if source_egds:
                    canon = legal_canonical_instances(pattern, tgd, source_egds)
                else:
                    canon = canonical_instances(pattern, tgd)
                if canon.source.facts in seen:
                    continue
                seen.add(canon.source.facts)
                sources.append(canon.source)
    return sources


def cq_equivalent(
    mapping_a,
    mapping_b,
    max_pattern_nodes: int = 3,
    source_egds: Sequence[Egd] = (),
    backend: str = "tuple",
) -> CQComparison:
    """Check CQ-equivalence on the canonical test family of both mappings.

    Refutations are exact; a positive verdict means "no counterexample among
    the canonical sources with patterns of at most *max_pattern_nodes*
    nodes" -- complete for GLAV mappings at the default, a bounded verifier
    for nested mappings (grow the bound for more confidence).
    """
    sources = canonical_test_sources(
        mapping_a, mapping_b, max_pattern_nodes=max_pattern_nodes,
        source_egds=source_egds,
    )
    return cq_equivalent_on(
        mapping_a, mapping_b, sources, source_egds=source_egds, backend=backend
    )


__all__ = [
    "CQComparison",
    "cq_refute",
    "cq_equivalent_on",
    "canonical_test_sources",
    "cq_equivalent",
]
