"""GLAV unfoldings of nested tgds: the best flat approximations.

Every pattern ``p`` of a nested tgd induces the *pattern tgd* ``I_p -> J_p``
(:func:`repro.core.glav_equivalence.pattern_tgd`).  The set of pattern tgds
over patterns with at most ``n`` nodes is the *n-th unfolding* of the tgd: a
GLAV mapping that the nested tgd always implies, growing monotonically
stronger with ``n``.

The unfoldings quantify the expressiveness gap of Section 4:

- if the nested tgd has *bounded* f-block size, some unfolding is logically
  equivalent to it (this is how :func:`repro.core.glav_equivalence.to_glav`
  finds the witness);
- if it has *unbounded* f-block size -- like the introduction's running
  example -- **no** unfolding ever implies it back, and
  :func:`approximation_gap` exhibits, for each ``n``, a source instance on
  which the n-th unfolding's certain answers differ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.tgds import STTgd
from repro.core.glav_equivalence import pattern_tgd
from repro.core.implication import implies
from repro.core.patterns import patterns_up_to_size
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.homomorphism import has_homomorphism


def unfolding(tgd: NestedTgd, max_nodes: int) -> list[STTgd]:
    """The n-th GLAV unfolding: pattern tgds over patterns with <= n nodes.

        >>> from repro.logic.parser import parse_nested_tgd
        >>> sigma = parse_nested_tgd(
        ...     "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
        >>> len(unfolding(sigma, 2))
        2
        >>> len(unfolding(sigma, 3))
        3
    """
    result: list[STTgd] = []
    for pattern in patterns_up_to_size(tgd, max_nodes):
        induced = pattern_tgd(pattern, tgd)
        if induced is not None:
            result.append(induced)
    return list(dict.fromkeys(result))


@dataclass
class ApproximationGap:
    """A witness that the n-th unfolding is strictly weaker than the tgd.

    ``source`` is a source instance on which the cores of the chases differ:
    the nested tgd forces a larger correlated block than the unfolding can.
    """

    n: int
    unfolding_size: int
    source: Instance
    nested_core_size: int
    unfolding_core_size: int


def approximation_gap(tgd: NestedTgd, max_nodes: int) -> ApproximationGap | None:
    """Find a source separating *tgd* from its *max_nodes*-th unfolding.

    Returns None when the unfolding already implies the tgd back (i.e. they
    are logically equivalent -- the bounded case).  Otherwise the separating
    source is the canonical source instance of a pattern one clone larger
    than the unfolding covers.
    """
    flat = unfolding(tgd, max_nodes)
    if flat and implies(flat, tgd):
        return None
    # A pattern with max_nodes + 1 nodes escapes the unfolding: its canonical
    # source forces a correlation the unfolding cannot express.
    for pattern in patterns_up_to_size(tgd, max_nodes + 1):
        if pattern.node_count != max_nodes + 1:
            continue
        from repro.core.canonical import canonical_instances

        canon = canonical_instances(pattern, tgd)
        nested_chase = chase(canon.source, [tgd])
        unfolding_chase = chase(canon.source, flat) if flat else Instance()
        if not has_homomorphism(nested_chase, unfolding_chase):
            return ApproximationGap(
                n=max_nodes,
                unfolding_size=len(flat),
                source=canon.source,
                nested_core_size=len(core(nested_chase)),
                unfolding_core_size=len(core(unfolding_chase)),
            )
    return None


def unfolding_hierarchy_strict(tgd: NestedTgd, up_to: int) -> list[bool]:
    """For n = 1 .. up_to: is the (n+1)-th unfolding strictly stronger?

    For an unbounded nested tgd the answer is eventually always True -- the
    unfoldings form an infinite strictly increasing chain, which is exactly
    why no finite GLAV mapping captures the tgd.
    """
    results: list[bool] = []
    for n in range(1, up_to + 1):
        smaller = unfolding(tgd, n)
        bigger = unfolding(tgd, n + 1)
        if not smaller:
            results.append(bool(bigger))
            continue
        results.append(not implies(smaller, bigger))
    return results


__all__ = [
    "unfolding",
    "ApproximationGap",
    "approximation_gap",
    "unfolding_hierarchy_strict",
]
