"""Deciding equivalence of a nested GLAV mapping to a GLAV mapping
(Theorems 4.2 and 5.6), and constructing the equivalent GLAV mapping.

By Theorem 4.1 (from [FKNP08], valid also with source egds -- Section 5), a
mapping specified by a plain SO tgd is logically equivalent to a GLAV mapping
iff it has bounded f-block size.  Combining the effective threshold
(Theorem 4.4 / 5.5) and the effective bounded anchor (Theorem 4.9) makes the
boundedness question decidable for nested GLAV mappings (Theorem 4.11), and
hence equivalence to GLAV is decidable (Theorem 4.2 / 5.6).

Beyond the yes/no answer, :func:`to_glav` *constructs* the equivalent GLAV
mapping when one exists: every pattern ``p`` of a nested tgd induces the
"pattern tgd" ``I_p -> J_p`` (canonical instances read back as body and
head), which the mapping always implies; conversely, when the f-block size is
bounded, finitely many pattern tgds imply the mapping back -- which the
decision procedure IMPLIES of Section 3 verifies.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import UndecidedError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.nested import NestedTgd, nested_tgds_from
from repro.logic.tgds import STTgd
from repro.logic.values import Variable, is_null
from repro.core.canonical import canonical_instances
from repro.core.fblock_analysis import FBlockVerdict, decide_bounded_fblock_size
from repro.core.implication import implies
from repro.core.patterns import patterns_up_to_size


def is_equivalent_to_glav(
    dependencies,
    source_egds: Sequence[Egd] = (),
    parallel: int | None = None,
    backend: str = "tuple",
) -> bool:
    """Decide whether a nested GLAV mapping is logically equivalent to a GLAV mapping.

    ``parallel=N`` and ``backend=`` are forwarded to the boundedness analysis
    (core folding on N worker processes / on another core engine; same
    verdict in every configuration).

        >>> from repro.logic.parser import parse_nested_tgd
        >>> sigma = parse_nested_tgd(
        ...     "S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
        >>> is_equivalent_to_glav([sigma])   # the paper's running counterexample
        False
    """
    verdict = decide_bounded_fblock_size(
        dependencies, source_egds=source_egds, parallel=parallel, backend=backend
    )
    return verdict.bounded


def pattern_tgd(pattern, tgd: NestedTgd) -> STTgd | None:
    """The GLAV constraint induced by a pattern: ``I_p -> J_p`` as an s-t tgd.

    Fresh constants of the canonical source instance become universally
    quantified variables; the nulls (ground Skolem terms) of the canonical
    target instance become existentially quantified variables.  The mapping
    always implies its pattern tgds (universality of the chase).  Returns
    None for patterns with an empty canonical target instance (their pattern
    tgd would be trivially true).
    """
    canon = canonical_instances(pattern, tgd)
    if not len(canon.target):
        return None
    renaming: dict = {}
    counter = [0]

    def variable_for(value) -> Variable:
        if value not in renaming:
            prefix = "y" if is_null(value) else "x"
            counter[0] += 1
            renaming[value] = Variable(f"{prefix}{counter[0]}")
        return renaming[value]

    body = tuple(
        Atom(f.relation, tuple(variable_for(a) for a in f.args))
        for f in sorted(canon.source.facts, key=repr)
    )
    head = tuple(
        Atom(f.relation, tuple(variable_for(a) for a in f.args))
        for f in sorted(canon.target.facts, key=repr)
    )
    return STTgd(body=body, head=head)


def to_glav(
    dependencies,
    source_egds: Sequence[Egd] = (),
    max_pattern_nodes: int = 8,
    parallel: int | None = None,
    backend: str = "tuple",
) -> list[STTgd]:
    """Construct a GLAV mapping logically equivalent to the given nested GLAV mapping.

    Raises :class:`UndecidedError` when the mapping has unbounded f-block size
    (no equivalent GLAV mapping exists, Theorem 4.1) or when the search bound
    *max_pattern_nodes* is exhausted before the implication closes.
    ``parallel=N`` is forwarded to both the boundedness analysis (parallel
    core folding) and the closing IMPLIES sweep (parallel pattern checks);
    ``backend=`` to the boundedness analysis's core engine.  The construction
    is unchanged in every configuration.

        >>> from repro.logic.parser import parse_nested_tgd
        >>> sigma = parse_nested_tgd("S1(x1) -> (S2(x2) -> T(x1, x2))")
        >>> glav = to_glav([sigma])
        >>> len(glav)
        1
    """
    nested = nested_tgds_from(dependencies)
    verdict: FBlockVerdict = decide_bounded_fblock_size(
        nested, source_egds=source_egds, parallel=parallel, backend=backend
    )
    if not verdict.bounded:
        raise UndecidedError(
            "the mapping has unbounded f-block size and is therefore not logically "
            f"equivalent to any GLAV mapping (witness pattern {verdict.witness_pattern!r})"
        )

    for node_limit in range(1, max_pattern_nodes + 1):
        candidate: list[STTgd] = []
        for tgd in nested:
            for pattern in patterns_up_to_size(tgd, node_limit):
                induced = pattern_tgd(pattern, tgd)
                if induced is not None:
                    candidate.append(induced)
        if not candidate:
            continue
        # Deduplicate syntactically equal pattern tgds.
        candidate = list(dict.fromkeys(candidate))
        # The nested mapping always implies its pattern tgds; equivalence holds
        # as soon as the pattern tgds imply the nested mapping back.
        if implies(candidate, nested, source_egds=list(source_egds), parallel=parallel):
            return candidate
    raise UndecidedError(
        "no equivalent GLAV mapping found with patterns of at most "
        f"{max_pattern_nodes} nodes (increase max_pattern_nodes)"
    )


def glav_distance_report(
    dependencies, source_egds: Sequence[Egd] = (), backend: str = "tuple"
) -> dict:
    """A structured report for the GLAV-equivalence question.

    Returns a dict with the boundedness verdict, the witnessing growth
    sequence when unbounded, and (when bounded and small enough) the
    constructed equivalent GLAV mapping.
    """
    verdict = decide_bounded_fblock_size(
        dependencies, source_egds=source_egds, backend=backend
    )
    report: dict = {
        "bounded_fblock_size": verdict.bounded,
        "fblock_bound": verdict.bound,
        "growth": list(verdict.growth),
        "witness_pattern": verdict.witness_pattern,
        "equivalent_glav": None,
    }
    if verdict.bounded:
        try:
            report["equivalent_glav"] = to_glav(
                dependencies, source_egds=source_egds, backend=backend
            )
        except UndecidedError:
            report["equivalent_glav"] = None
    return report


__all__ = ["is_equivalent_to_glav", "pattern_tgd", "to_glav", "glav_distance_report"]
