"""Mapping optimization: redundancy removal and per-dependency normalization.

Decidable implication (Theorem 3.1) makes classic schema-mapping-management
operations *exact* for nested GLAV mappings:

- :func:`remove_redundant_dependencies` -- drop every dependency implied by
  the remaining ones (the result is logically equivalent to the input);
- :func:`minimize_tgd_body` -- drop body atoms of an s-t tgd as long as the
  dependency stays logically equivalent (the classical tableau-minimization,
  here performed with IMPLIES so that it is exact);
- :func:`normalize_tgd_head` -- replace the head by its core: fold redundant
  existential structure (e.g. ``R(x, y) & R(x, z)`` with existential ``z``
  folds onto ``R(x, y)``), treating universal variables as constants;
- :func:`optimize` -- the full pipeline over a set of dependencies, with
  ``semantic=True`` upgrading redundancy removal from the IMPLIES loop to
  the frontier-gated mapping-containment analysis of
  :mod:`repro.analysis.containment`, attaching an equivalence certificate
  checked in both directions;
- :func:`optimize_report` -- the same pipeline returning an
  :class:`OptimizeReport` (kept/dropped dependencies with reasons and the
  certificate), the payload of ``repro optimize --json``.

These operations echo the schema-mapping-optimization agenda of
[Fagin-Kolaitis-Nash-Popa, reference 6 of the paper], whose f-block results
Section 4 builds on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import DependencyError, ReproError
from repro.logic.atoms import Atom
from repro.logic.egds import Egd
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.tgds import STTgd
from repro.logic.values import Constant, Variable
from repro.core.implication import equivalent, implies
from repro.engine.core_instance import core

if TYPE_CHECKING:
    from repro.analysis.containment import EquivalenceCertificate


def remove_redundant_dependencies(
    dependencies: Sequence,
    source_egds: Sequence[Egd] = (),
) -> list:
    """Greedily drop dependencies implied by the remaining ones.

    The result is logically equivalent to the input (relative to the source
    egds) and inclusion-minimal w.r.t. the greedy order.

        >>> from repro.logic.parser import parse_tgd
        >>> strong = parse_tgd("S(x,y) -> R(x,y)")
        >>> weak = parse_tgd("S(x,y) -> R(x,z)")
        >>> remove_redundant_dependencies([strong, weak]) == [strong]
        True
    """
    kept = list(dependencies)
    changed = True
    while changed:
        changed = False
        for index, dep in enumerate(kept):
            rest = kept[:index] + kept[index + 1:]
            if rest and implies(rest, dep, source_egds=list(source_egds)):
                kept = rest
                changed = True
                break
    return kept


def minimize_tgd_body(tgd: STTgd, source_egds: Sequence[Egd] = ()) -> STTgd:
    """Drop redundant body atoms of an s-t tgd, preserving logical equivalence.

        >>> from repro.logic.parser import parse_tgd
        >>> t = parse_tgd("S(x,y) & S(x,yp) -> R(x)")
        >>> len(minimize_tgd_body(t).body)
        1
    """
    body = list(tgd.body)
    changed = True
    while changed and len(body) > 1:
        changed = False
        for index in range(len(body)):
            candidate_body = body[:index] + body[index + 1:]
            head_vars = {
                v for a in tgd.head for v in a.variable_set()
            } & set(tgd.universal_variables)
            remaining_vars = {v for a in candidate_body for v in a.variable_set()}
            if not head_vars <= remaining_vars:
                continue  # dropping would unsafely free a head variable
            candidate = STTgd(body=tuple(candidate_body), head=tgd.head, name=tgd.name)
            if equivalent([candidate], [tgd], source_egds=list(source_egds)):
                body = candidate_body
                changed = True
                break
    return STTgd(body=tuple(body), head=tgd.head, name=tgd.name)


def normalize_tgd_head(tgd: STTgd) -> STTgd:
    """Replace the head of an s-t tgd by its core.

    Universal variables are frozen as constants, existential variables become
    nulls, and the core computation folds redundant existential structure.
    The result is logically equivalent to the input.
    """
    universal = tgd.universal_variables
    existential = tgd.existential_variables
    to_value: dict[Variable, object] = {}
    for var in universal:
        to_value[var] = Constant(("$u", var.name))
    from repro.logic.values import Null

    for var in existential:
        to_value[var] = Null(("$e", var.name))

    head_instance = Instance(a.substitute(to_value) for a in tgd.head)
    head_core = core(head_instance)

    back: dict[object, Variable] = {}
    for var, value in to_value.items():
        back[value] = var

    new_head = tuple(
        Atom(f.relation, tuple(back[arg] for arg in f.args))
        for f in sorted(head_core.facts, key=repr)
    )
    return STTgd(body=tgd.body, head=new_head, name=tgd.name)


@dataclass(frozen=True)
class OptimizeReport:
    """The machine-readable outcome of :func:`optimize_report`.

    ``kept`` holds the surviving (normalized) dependencies in input order,
    ``dropped`` one ``(label, text, reason)`` triple per removed dependency.
    With ``semantic=True``, ``certificate`` carries the two-directional
    containment certificate of
    :func:`repro.analysis.containment.check_equivalence` between the
    optimized set and the original input (``None`` otherwise).
    """

    kept: tuple
    dropped: tuple[tuple[str, str, str], ...]
    semantic: bool
    certificate: EquivalenceCertificate | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view (``repro optimize --json``)."""
        return {
            "semantic": self.semantic,
            "kept": [str(dep) for dep in self.kept],
            "dropped": [
                {"dependency": label, "text": text, "reason": reason}
                for label, text, reason in self.dropped
            ],
            "equivalent": True if self.certificate is None else self.certificate.holds,
            "certificate": None if self.certificate is None else self.certificate.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        """Deterministic JSON with sorted keys."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _dep_label(dep: object, index: int) -> str:
    name = getattr(dep, "name", None)
    return name if name else f"#{index + 1}"


def optimize_report(
    dependencies: Sequence,
    source_egds: Sequence[Egd] = (),
    *,
    semantic: bool = False,
    budget: int | None = None,
) -> OptimizeReport:
    """Run the optimization pipeline and report kept/dropped dependencies.

    Flat dependencies get body minimization and head normalization (both
    equivalence-preserving via IMPLIES); then redundant dependencies are
    removed.  With ``semantic=False`` redundancy removal is the greedy
    IMPLIES loop of :func:`remove_redundant_dependencies`.  With
    ``semantic=True`` it is the frontier-gated containment elimination of
    :func:`repro.analysis.containment.eliminate_redundant` (refused queries
    keep their dependency, so uncertified sets pass through unchanged unless
    ``budget=`` is given), and the result carries an equivalence certificate
    between the optimized set and the *original* input, checked in both
    containment directions; a falsified certificate -- which would mean the
    eliminator dropped a non-redundant dependency -- raises
    :class:`~repro.errors.ReproError`.
    """
    deps = list(dependencies)
    normalized: list = []
    for dep in deps:
        if isinstance(dep, STTgd):
            dep = normalize_tgd_head(dep)
            dep = minimize_tgd_body(dep, source_egds=source_egds)
        elif isinstance(dep, NestedTgd) and dep.is_flat():
            flat = normalize_tgd_head(dep.to_st_tgd())
            dep = minimize_tgd_body(flat, source_egds=source_egds)
        elif not isinstance(dep, NestedTgd):
            raise DependencyError(f"cannot optimize dependency {dep!r}")
        normalized.append(dep)
    labels = {id(dep): _dep_label(dep, index) for index, dep in enumerate(normalized)}

    dropped: list[tuple[str, str, str]] = []
    certificate: EquivalenceCertificate | None = None
    if semantic:
        from repro.analysis.containment import check_equivalence, eliminate_redundant

        kept, removed = eliminate_redundant(
            normalized, source_egds=list(source_egds), budget=budget,
        )
        for dep, reason in removed:
            dropped.append((labels[id(dep)], str(dep), reason))
        certificate = check_equivalence(
            kept, deps, list(source_egds), budget=budget,
        )
        if certificate.holds is False:
            raise ReproError(
                "semantic optimization produced a non-equivalent mapping "
                "(the equivalence certificate is falsified); this is a bug"
            )
    else:
        kept = list(normalized)
        changed = True
        while changed:
            changed = False
            for index, dep in enumerate(kept):
                rest = kept[:index] + kept[index + 1:]
                if rest and implies(rest, dep, source_egds=list(source_egds)):
                    dropped.append((
                        labels[id(dep)], str(dep),
                        "implied by the remaining dependencies (IMPLIES)",
                    ))
                    kept = rest
                    changed = True
                    break
    return OptimizeReport(
        kept=tuple(kept),
        dropped=tuple(dropped),
        semantic=semantic,
        certificate=certificate,
    )


def optimize(
    dependencies: Sequence,
    source_egds: Sequence[Egd] = (),
    *,
    semantic: bool = False,
    budget: int | None = None,
) -> list:
    """Run the full optimization pipeline over a set of dependencies.

    Flat dependencies get body minimization and head normalization; then
    redundant dependencies are removed -- exactly (via IMPLIES) by default,
    or via the certified containment analysis with ``semantic=True`` (see
    :func:`optimize_report`, which also returns the dropped dependencies
    and the equivalence certificate).  The result is logically equivalent
    to the input (relative to the source egds).
    """
    return list(optimize_report(
        dependencies, source_egds, semantic=semantic, budget=budget,
    ).kept)


__all__ = [
    "OptimizeReport",
    "remove_redundant_dependencies",
    "minimize_tgd_body",
    "normalize_tgd_head",
    "optimize",
    "optimize_report",
]
