"""Separation tools: telling plain SO tgds apart from nested GLAV mappings
(Section 4.2 of the paper).

Two necessary conditions for a schema mapping to be logically equivalent to a
nested GLAV mapping are implemented:

- **f-degree** (Theorem 4.12): a nested GLAV mapping has bounded f-block size
  on a class C of source instances iff it has bounded f-degree on C.  Hence a
  mapping with *unbounded f-block size but bounded f-degree* on some family
  of instances is not equivalent to any nested GLAV mapping
  (Proposition 4.13: the plain SO tgd ``S(x,y) -> R(f(x),f(y))`` on successor
  relations).

- **path length** (Theorem 4.16): every nested GLAV mapping has bounded path
  length in the Gaifman graph of nulls of the cores of its universal
  solutions.  Hence a mapping with unbounded null-graph path length is not
  equivalent to any nested GLAV mapping (Example 4.14), even when its fact
  graphs are uninformative cliques.

:func:`fblock_profile` measures f-block size, f-degree and null path length
of ``core(chase(I, M))`` along an instance family;
:func:`nested_expressibility_report` turns the measured growth curves into a
verdict with the paper's theorems as justifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.logic.nested import NestedTgd
from repro.core.canonical import canonical_instances
from repro.core.patterns import one_patterns
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.gaifman import fact_block_size, fblock_degree, null_path_length
from repro.workloads.families import InstanceFamily


@dataclass
class FBlockProfile:
    """Metrics of ``core(chase(I, M))`` for one instance of a family."""

    family: str
    size: int
    fblock_size: int
    fdegree: int
    path_length: int
    core_facts: int


def fblock_profile(
    dependencies,
    family: InstanceFamily,
    sizes: Sequence[int],
    path_cutoff: int | None = None,
) -> list[FBlockProfile]:
    """Measure f-block size, f-degree, and null path length along *family*.

        >>> from repro.logic.parser import parse_so_tgd
        >>> from repro.workloads.families import SUCCESSOR_FAMILY
        >>> tau = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
        >>> profiles = fblock_profile([tau], SUCCESSOR_FAMILY, [2, 4])
        >>> [p.fblock_size for p in profiles]
        [2, 4]
        >>> [p.fdegree for p in profiles]     # bounded (Proposition 4.13)
        [1, 2]
    """
    from repro.logic.sotgd import SOTgd
    from repro.logic.tgds import STTgd

    if isinstance(dependencies, (STTgd, NestedTgd, SOTgd)):
        dependencies = [dependencies]
    profiles: list[FBlockProfile] = []
    for size in sizes:
        instance = family(size)
        solution_core = core(chase(instance, list(dependencies)))
        profiles.append(
            FBlockProfile(
                family=family.name,
                size=size,
                fblock_size=fact_block_size(solution_core),
                fdegree=fblock_degree(solution_core),
                path_length=null_path_length(solution_core, cutoff=path_cutoff),
                core_facts=len(solution_core),
            )
        )
    return profiles


def _grows(values: Sequence[int]) -> bool:
    """Heuristic growth detector: non-decreasing with the tail strictly above the head."""
    if len(values) < 2:
        return False
    non_decreasing = all(b >= a for a, b in zip(values, values[1:]))
    return non_decreasing and values[-1] > values[0]


def _bounded(values: Sequence[int]) -> bool:
    """Heuristic boundedness detector: the tail of the curve is flat."""
    if len(values) < 2:
        return True
    tail = values[len(values) // 2:]
    return max(tail) == min(tail)


@dataclass
class ExpressibilityReport:
    """The verdict of the necessary-condition checks of Section 4.2."""

    profiles: list[FBlockProfile]
    fblock_grows: bool
    fdegree_bounded: bool
    path_length_grows: bool
    nested_expressible: bool | None
    reason: str

    def __bool__(self) -> bool:
        return bool(self.nested_expressible)


def nested_expressibility_report(
    dependencies,
    family: InstanceFamily,
    sizes: Sequence[int],
) -> ExpressibilityReport:
    """Apply the f-degree and path-length tests along *family*.

    Returns ``nested_expressible=False`` when one of the paper's necessary
    conditions is violated on the measured curves, and ``None`` (inconclusive)
    otherwise -- the conditions are necessary, not sufficient.

        >>> from repro.logic.parser import parse_so_tgd
        >>> from repro.workloads.families import SUCCESSOR_FAMILY
        >>> tau = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
        >>> report = nested_expressibility_report([tau], SUCCESSOR_FAMILY, [2, 4, 6, 8])
        >>> report.nested_expressible
        False
    """
    profiles = fblock_profile(dependencies, family, sizes)
    fblock_sizes = [p.fblock_size for p in profiles]
    fdegrees = [p.fdegree for p in profiles]
    path_lengths = [p.path_length for p in profiles]

    fblock_grows = _grows(fblock_sizes)
    fdegree_bounded = _bounded(fdegrees)
    path_grows = _grows(path_lengths)

    if fblock_grows and fdegree_bounded:
        return ExpressibilityReport(
            profiles=profiles,
            fblock_grows=True,
            fdegree_bounded=True,
            path_length_grows=path_grows,
            nested_expressible=False,
            reason=(
                "unbounded f-block size with bounded f-degree on "
                f"family {family.name!r} contradicts Theorem 4.12"
            ),
        )
    if path_grows:
        return ExpressibilityReport(
            profiles=profiles,
            fblock_grows=fblock_grows,
            fdegree_bounded=fdegree_bounded,
            path_length_grows=True,
            nested_expressible=False,
            reason=(
                f"unbounded null-graph path length on family {family.name!r} "
                "contradicts Theorem 4.16"
            ),
        )
    return ExpressibilityReport(
        profiles=profiles,
        fblock_grows=fblock_grows,
        fdegree_bounded=fdegree_bounded,
        path_length_grows=path_grows,
        nested_expressible=None,
        reason="no necessary condition violated on the measured curves (inconclusive)",
    )


def path_length_bound(tgd: NestedTgd, extra_clones: int | None = None) -> int:
    """An effective bound on the null-graph path length of a nested GLAV mapping.

    Theorem 4.16 states that every nested GLAV mapping has bounded path
    length; this computes a concrete bound by saturating the pattern
    machinery: each 1-pattern subtree is cloned ``v + 1`` times (``v`` being
    the number of Skolem functions) and the longest simple path of the null
    graph of ``core(chase(I_p, sigma))`` is measured.  A simple path entering
    a cloned subtree's nulls must leave through a shared ancestor null, of
    which there are at most ``v`` per chain, so additional clones cannot
    lengthen the longest simple path further.
    """
    clones = extra_clones if extra_clones is not None else tgd.skolem_function_count() + 1
    best = 0
    for pattern in one_patterns(tgd):
        candidates = [pattern]
        paths = _all_paths(pattern)
        for path in paths:
            candidates.append(pattern.with_clones(path, clones))
        for candidate in candidates:
            canon = canonical_instances(candidate, tgd)
            solution_core = core(chase(canon.source, [tgd]))
            best = max(best, null_path_length(solution_core))
    return best


def _all_paths(pattern) -> list[tuple[int, ...]]:
    paths: list[tuple[int, ...]] = []

    def visit(node, path: tuple[int, ...]) -> None:
        for index, child in enumerate(node.children):
            child_path = path + (index,)
            paths.append(child_path)
            visit(child, child_path)

    visit(pattern, ())
    return paths


__all__ = [
    "FBlockProfile",
    "fblock_profile",
    "ExpressibilityReport",
    "nested_expressibility_report",
    "path_length_bound",
]
