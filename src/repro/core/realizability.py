"""Realizability of patterns (Example 3.4 of the paper, made effective).

Not every pattern of a nested tgd is the pattern of an actual chase tree:
"the assignment of the only variable x1 is determined by the root triggering
and thus only a single triggering of the nested part is possible"
(Example 3.4).  The paper notes that the decision procedure IMPLIES may
safely ignore realizability; this module makes the notion itself executable:

- :func:`is_realizable` -- the syntactic criterion: in a chase tree, a
  triggering of a part is identified by its assignment, and a part whose own
  universal-variable list is empty admits exactly one assignment per parent
  triggering.  Hence a pattern is realizable iff no node has two or more
  children labeled with such a "determined" part.  (Clones of parts *with*
  own variables are always realizable: the canonical source instance gives
  each clone fresh constants.)
- :func:`realized_pattern` -- the pattern actually realized by chasing the
  canonical source instance of a pattern;
- :func:`pattern_embeds` -- sub-multiset-tree embedding between patterns,
  used to cross-validate the two: a pattern is realizable iff it embeds into
  the pattern realized by its own canonical source (property-tested).
"""

from __future__ import annotations

from repro.core.canonical import canonical_instances
from repro.core.patterns import Pattern
from repro.logic.nested import NestedTgd
from repro.engine.nested_chase import chase_nested


def is_realizable(pattern: Pattern, tgd: NestedTgd) -> bool:
    """Decide whether *pattern* is the pattern of some chase tree of *tgd*.

        >>> from repro.logic.parser import parse_nested_tgd
        >>> from repro.core.patterns import Pattern
        >>> tgd = parse_nested_tgd("S1(x1) -> (S2(x1) -> T2(x1))")
        >>> is_realizable(Pattern(1, (Pattern(2),)), tgd)          # Example 3.4
        True
        >>> is_realizable(Pattern(1, (Pattern(2), Pattern(2))), tgd)
        False
    """
    pattern.validate_against(tgd)

    def check(node: Pattern) -> bool:
        counts: dict[int, int] = {}
        for child in node.children:
            counts[child.part_id] = counts.get(child.part_id, 0) + 1
        for part_id, count in counts.items():
            if count > 1 and not tgd.part(part_id).universal_vars:
                return False
        return all(check(child) for child in node.children)

    return check(pattern)


def realized_pattern(pattern: Pattern, tgd: NestedTgd) -> Pattern:
    """The pattern of the chase tree that the canonical source of *pattern* fires.

    The canonical source instance of an unrealizable pattern collapses its
    determined clones; the realized pattern records what actually happens.
    The canonical source can also fire *extra* triggerings (its atoms may
    match other parts' bodies), so the realized pattern may strictly contain
    the input even for realizable patterns.
    """
    canon = canonical_instances(pattern, tgd)
    forest = chase_nested(canon.source, tgd)
    # pick the tree whose root assignment matches the pattern's root constants
    root_assignment = canon.assignments[()]
    for tree in forest.trees:
        if all(
            tree.root.assignment.get(var) == value
            for var, value in root_assignment.items()
        ):
            return tree.pattern()
    raise AssertionError("the canonical source must fire its own root triggering")


def pattern_embeds(small: Pattern, big: Pattern) -> bool:
    """Multiset-tree embedding: can *small* be mapped into *big* injectively,
    preserving labels and the parent-child relation?

        >>> pattern_embeds(Pattern(1, (Pattern(2),)), Pattern(1, (Pattern(2), Pattern(2))))
        True
        >>> pattern_embeds(Pattern(1, (Pattern(2), Pattern(2))), Pattern(1, (Pattern(2),)))
        False
    """
    if small.part_id != big.part_id:
        return False

    def match_children(children: tuple[Pattern, ...], targets: list[Pattern]) -> bool:
        if not children:
            return True
        head, rest = children[0], children[1:]
        for index, target in enumerate(targets):
            if pattern_embeds(head, target):
                remaining = targets[:index] + targets[index + 1:]
                if match_children(rest, remaining):
                    return True
        return False

    return match_children(small.children, list(big.children))


__all__ = ["is_realizable", "realized_pattern", "pattern_embeds"]
