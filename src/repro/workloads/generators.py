"""Generators for the source instances used throughout the paper.

- :func:`successor_instance` -- ``S`` a successor relation (with optional
  ``Z`` zero marker and ``Q`` singleton), the class of instances behind
  Proposition 4.13, Examples 4.14/4.15, and Theorem 5.1;
- :func:`cycle_instance` -- the directed cycle ``I_n`` of Example 4.8;
- :func:`random_instance` -- seeded random instances for property tests.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.schema import Schema
from repro.logic.values import Constant


def _element(index: int, prefix: str) -> Constant:
    return Constant(f"{prefix}{index}")


def successor_instance(
    length: int,
    relation: str = "S",
    prefix: str = "e",
    zero_relation: str | None = None,
    extras: Iterable[Atom] = (),
) -> Instance:
    """A successor relation of the given length: ``S(e0,e1), ..., S(e{n-1},e{n})``.

    With *zero_relation* set (e.g. ``"Z"``), a fact marking the initial
    element is added, as in the Theorem 5.1 construction.

        >>> len(successor_instance(3))
        3
    """
    facts = [
        Atom(relation, (_element(i, prefix), _element(i + 1, prefix)))
        for i in range(length)
    ]
    if zero_relation is not None:
        facts.append(Atom(zero_relation, (_element(0, prefix),)))
    facts.extend(extras)
    return Instance(facts)


def cycle_instance(length: int, relation: str = "S", prefix: str = "c") -> Instance:
    """The directed cycle ``I_n = {S(1,2), S(2,3), ..., S(n,1)}`` of Example 4.8."""
    if length < 1:
        return Instance()
    return Instance(
        Atom(relation, (_element(i, prefix), _element((i + 1) % length, prefix)))
        for i in range(length)
    )


def path_instance(length: int, relation: str = "S", prefix: str = "p") -> Instance:
    """A directed path with *length* edges (alias of successor without zero)."""
    return successor_instance(length, relation=relation, prefix=prefix)


def clique_instance(size: int, relation: str = "E", prefix: str = "v") -> Instance:
    """The complete directed graph (without self-loops) on *size* elements."""
    elements = [_element(i, prefix) for i in range(size)]
    return Instance(
        Atom(relation, (a, b)) for a in elements for b in elements if a != b
    )


def grid_instance(
    rows: int, columns: int, horizontal: str = "H", vertical: str = "V", prefix: str = "g"
) -> Instance:
    """A grid with horizontal and vertical successor relations."""

    def node(r: int, c: int) -> Constant:
        return Constant(f"{prefix}{r}_{c}")

    facts: list[Atom] = []
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                facts.append(Atom(horizontal, (node(r, c), node(r, c + 1))))
            if r + 1 < rows:
                facts.append(Atom(vertical, (node(r, c), node(r + 1, c))))
    return Instance(facts)


def layered_graph_instance(
    width: int,
    degree: int,
    layers: int = 3,
    relation: str = "S",
    marker: str | None = None,
    prefix: str = "n",
) -> Instance:
    """A layered digraph: node ``(l, i)`` points to ``(l+1, (i+j) % width)``
    for ``j < degree``.

    The join-heavy shape behind the backend benchmarks: a 2-hop path join
    over the edge relation has ``width * degree**2`` matches per layer pair
    but only ``width * (2*degree - 1)`` distinct endpoints, so trigger
    matching dominates output size.  With *marker* set, each layer-0 node
    gets a unary marker fact.

        >>> len(layered_graph_instance(4, 2, marker="Q"))
        20
    """

    def node(layer: int, i: int) -> Constant:
        return Constant(f"{prefix}{layer}_{i}")

    facts: list[Atom] = []
    for layer in range(layers - 1):
        for i in range(width):
            src = node(layer, i)
            for j in range(degree):
                facts.append(Atom(relation, (src, node(layer + 1, (i + j) % width))))
    if marker is not None:
        facts.extend(Atom(marker, (node(0, i),)) for i in range(width))
    return Instance(facts)


def singleton(relation: str, *names: str) -> Instance:
    """A single fact ``relation(names...)`` with the given constant names."""
    return Instance([Atom(relation, tuple(Constant(n) for n in names))])


def random_instance(
    schema: Schema | Sequence[tuple[str, int]],
    fact_count: int,
    domain_size: int,
    seed: int = 0,
    prefix: str = "r",
) -> Instance:
    """A seeded random instance over *schema* with at most *fact_count* facts.

    Facts are drawn uniformly (relation, then argument tuple) with
    replacement, so the result may have fewer than *fact_count* distinct
    facts.  Deterministic for a given seed.
    """
    if not isinstance(schema, Schema):
        schema = Schema(schema)
    rng = random.Random(seed)
    relations = list(schema)
    domain = [_element(i, prefix) for i in range(domain_size)]
    facts: list[Atom] = []
    for __ in range(fact_count):
        rel = rng.choice(relations)
        args = tuple(rng.choice(domain) for __ in range(rel.arity))
        facts.append(Atom(rel.name, args))
    return Instance(facts)


__all__ = [
    "successor_instance",
    "cycle_instance",
    "path_instance",
    "clique_instance",
    "grid_instance",
    "layered_graph_instance",
    "singleton",
    "random_instance",
]
