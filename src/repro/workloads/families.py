"""Instance families: "classes of source instances" as first-class objects.

Section 4.2 of the paper relativizes f-block size and f-degree to a class
``C`` of source instances.  An :class:`InstanceFamily` is such a class,
presented as a generator indexed by a size parameter, which is what the
separation tools of :mod:`repro.core.separation` consume.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.logic.instances import Instance
from repro.workloads.generators import cycle_instance, successor_instance


class InstanceFamily:
    """A named, size-indexed family of source instances.

        >>> SUCCESSOR_FAMILY(3).facts_of("S")[0].relation
        'S'
    """

    def __init__(self, name: str, generator: Callable[[int], Instance]):
        self.name = name
        self._generator = generator

    def __call__(self, size: int) -> Instance:
        return self._generator(size)

    def instances(self, sizes) -> Iterator[tuple[int, Instance]]:
        """Yield ``(size, instance)`` pairs for the given sizes."""
        for size in sizes:
            yield size, self._generator(size)

    def __repr__(self) -> str:
        return f"InstanceFamily({self.name!r})"


SUCCESSOR_FAMILY = InstanceFamily("successor", lambda n: successor_instance(n))
"""Successor relations ``S`` of growing length (Proposition 4.13)."""

CYCLE_FAMILY = InstanceFamily("odd-cycle", lambda n: cycle_instance(2 * n + 3))
"""Directed cycles of odd length (Example 4.8)."""


def successor_with_singleton(n: int, singleton_relation: str = "Q") -> Instance:
    """Successor relation of length *n* plus a singleton ``Q(q)`` (Examples 4.14/4.15)."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    base = successor_instance(n)
    return base.union([Atom(singleton_relation, (Constant("q"),))])


SUCCESSOR_Q_FAMILY = InstanceFamily("successor+Q", successor_with_singleton)
"""Successor relation plus a singleton ``Q`` (Examples 4.14 and 4.15)."""


def star_instance(n: int, relation: str = "S") -> Instance:
    """A star: ``S(hub, v0), ..., S(hub, v{n-1})`` -- maximal fan-out sources."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    hub = Constant("hub")
    return Instance(
        Atom(relation, (hub, Constant(f"v{i}"))) for i in range(n)
    )


STAR_FAMILY = InstanceFamily("star", star_instance)
"""Stars of growing fan-out: worst case for nested-tgd inner triggerings."""


def binary_tree_instance(depth: int, relation: str = "S") -> Instance:
    """A complete binary tree of the given depth as an edge relation."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    facts = []
    for index in range(1, 2 ** depth):
        parent = Constant(f"t{index}")
        facts.append(Atom(relation, (parent, Constant(f"t{2 * index}"))))
        facts.append(Atom(relation, (parent, Constant(f"t{2 * index + 1}"))))
    return Instance(facts)


TREE_FAMILY = InstanceFamily("binary-tree", binary_tree_instance)
"""Complete binary trees: branching sources with logarithmic diameter."""


__all__ = [
    "InstanceFamily",
    "SUCCESSOR_FAMILY",
    "CYCLE_FAMILY",
    "SUCCESSOR_Q_FAMILY",
    "STAR_FAMILY",
    "TREE_FAMILY",
    "successor_with_singleton",
    "star_instance",
    "binary_tree_instance",
]
