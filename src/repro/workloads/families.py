"""Instance families: "classes of source instances" as first-class objects.

Section 4.2 of the paper relativizes f-block size and f-degree to a class
``C`` of source instances.  An :class:`InstanceFamily` is such a class,
presented as a generator indexed by a size parameter, which is what the
separation tools of :mod:`repro.core.separation` consume.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.logic.instances import Instance
from repro.workloads.generators import cycle_instance, successor_instance


class InstanceFamily:
    """A named, size-indexed family of source instances.

        >>> SUCCESSOR_FAMILY(3).facts_of("S")[0].relation
        'S'
    """

    def __init__(self, name: str, generator: Callable[[int], Instance]):
        self.name = name
        self._generator = generator

    def __call__(self, size: int) -> Instance:
        return self._generator(size)

    def instances(self, sizes) -> Iterator[tuple[int, Instance]]:
        """Yield ``(size, instance)`` pairs for the given sizes."""
        for size in sizes:
            yield size, self._generator(size)

    def __repr__(self) -> str:
        return f"InstanceFamily({self.name!r})"


SUCCESSOR_FAMILY = InstanceFamily("successor", lambda n: successor_instance(n))
"""Successor relations ``S`` of growing length (Proposition 4.13)."""

CYCLE_FAMILY = InstanceFamily("odd-cycle", lambda n: cycle_instance(2 * n + 3))
"""Directed cycles of odd length (Example 4.8)."""


def successor_with_singleton(n: int, singleton_relation: str = "Q") -> Instance:
    """Successor relation of length *n* plus a singleton ``Q(q)`` (Examples 4.14/4.15)."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    base = successor_instance(n)
    return base.union([Atom(singleton_relation, (Constant("q"),))])


SUCCESSOR_Q_FAMILY = InstanceFamily("successor+Q", successor_with_singleton)
"""Successor relation plus a singleton ``Q`` (Examples 4.14 and 4.15)."""


def star_instance(n: int, relation: str = "S") -> Instance:
    """A star: ``S(hub, v0), ..., S(hub, v{n-1})`` -- maximal fan-out sources."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    hub = Constant("hub")
    return Instance(
        Atom(relation, (hub, Constant(f"v{i}"))) for i in range(n)
    )


STAR_FAMILY = InstanceFamily("star", star_instance)
"""Stars of growing fan-out: worst case for nested-tgd inner triggerings."""


def binary_tree_instance(depth: int, relation: str = "S") -> Instance:
    """A complete binary tree of the given depth as an edge relation."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    facts = []
    for index in range(1, 2 ** depth):
        parent = Constant(f"t{index}")
        facts.append(Atom(relation, (parent, Constant(f"t{2 * index}"))))
        facts.append(Atom(relation, (parent, Constant(f"t{2 * index + 1}"))))
    return Instance(facts)


TREE_FAMILY = InstanceFamily("binary-tree", binary_tree_instance)
"""Complete binary trees: branching sources with logarithmic diameter."""


# --------------------------------------------- dependency-set witness families
#
# One generator per rung of the decidability frontier: programs the static
# analyzer places at a specific tier (or that only the stratified-MFA rung
# decides), used by the frontier benchmarks and the dispatch tests.


def ladder_tgds(depth: int = 3):
    """The existential ladder ``T_i(x,y) -> exists z . T_{i+1}(y,z)``.

    Weakly acyclic with coarse chase-size degree ``2 * 2^depth`` (finding
    ``CC002`` for depth >= 2 under the old single-bucket model), but the
    per-relation degree program of :mod:`repro.analysis.frontier` certifies
    Fibonacci-growing relation degrees (2, 3, 5, 8, ...): at the default
    depth 3 the maximum degree is 8, inside the PTIME tier (``CC003``).
    """
    from repro.logic.parser import parse_tgd

    return [
        parse_tgd(f"T{i}(x,y) -> exists z . T{i + 1}(y,z)") for i in range(depth)
    ]


def ladder_instance(n: int, relation: str = "T0") -> Instance:
    """A linear ``T0`` path of *n* edges seeding :func:`ladder_tgds`."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    return Instance(
        Atom(relation, (Constant(f"v{i}"), Constant(f"v{i + 1}")))
        for i in range(n)
    )


LADDER_FAMILY = InstanceFamily("ladder", ladder_instance)
"""Linear seeds for the PTIME-tier ladder program."""


def stratified_chain_tgds(length: int = 40):
    """An MFA gadget bridged into a long certified pipeline.

    The gadget (``A -> exists y . L``, ``L & B -> exists w . A``) is
    MFA-certified only; the bridge feeds a chain of *length* existential
    steps ``S_i(x) -> exists y . S_{i+1}(y)``.  The *global* critical chase
    needs more than *length* rounds, so for length beyond the MFA round
    budget (32) the monolithic verdict is inconclusive (``TD001``) -- but
    every dependency-level stratum is tiny and certified, so
    :func:`repro.analysis.acyclicity.stratified_mfa` admits the set.
    """
    from repro.logic.parser import parse_tgd

    deps = [
        parse_tgd("A(x) -> exists y . L(x,y)"),
        parse_tgd("L(x,y) & B(y) -> exists w . A(w)"),
        parse_tgd("L(x,y) -> S0(x)"),
    ]
    deps.extend(
        parse_tgd(f"S{i}(x) -> exists y . S{i + 1}(y)") for i in range(length)
    )
    return deps


def redundant_ladder_tgds(depth: int = 3):
    """:func:`ladder_tgds` plus one implied weakening per rung.

    Each weakening ``T_i(x,y) -> exists z, w . T_{i+1}(z,w)`` is strictly
    implied by its rung (any witness edge works), so containment analysis
    finds ``depth`` semantically redundant dependencies (``MC001``) and
    ``optimize(semantic=True)`` shrinks the set back to the ladder.
    """
    from repro.logic.parser import parse_tgd

    deps = ladder_tgds(depth)
    deps.extend(
        parse_tgd(f"T{i}(x,y) -> exists z, w . T{i + 1}(z,w)")
        for i in range(depth)
    )
    return deps


def containment_pair(depth: int = 2, contained: bool = True):
    """A ``(Sigma, Sigma')`` pair with a known containment verdict.

    With ``contained=True``, ``Sigma'`` consists of the per-rung weakenings
    of the depth-*depth* ladder, so ``Sigma <= Sigma'`` holds with a
    per-dependency proof map.  With ``contained=False``, ``Sigma'`` instead
    demands the *reversed* edges ``T_i(x,y) -> T_{i+1}(y,x)``, which the
    ladder does not entail -- every check yields a counterexample witness.
    """
    from repro.logic.parser import parse_tgd

    sigma = ladder_tgds(depth)
    if contained:
        sigma_prime = [
            parse_tgd(f"T{i}(x,y) -> exists z, w . T{i + 1}(z,w)")
            for i in range(depth)
        ]
    else:
        sigma_prime = [
            parse_tgd(f"T{i}(x,y) -> T{i + 1}(y,x)") for i in range(depth)
        ]
    return sigma, sigma_prime


def stratified_chain_instance(n: int) -> Instance:
    """Seeds for :func:`stratified_chain_tgds`: n ``A``/``B`` pairs."""
    from repro.logic.atoms import Atom
    from repro.logic.values import Constant

    facts = []
    for i in range(max(n, 1)):
        facts.append(Atom("A", (Constant(f"a{i}"),)))
        facts.append(Atom("B", (Constant(f"b{i}"),)))
    return Instance(facts)


__all__ = [
    "InstanceFamily",
    "SUCCESSOR_FAMILY",
    "CYCLE_FAMILY",
    "SUCCESSOR_Q_FAMILY",
    "STAR_FAMILY",
    "TREE_FAMILY",
    "successor_with_singleton",
    "star_instance",
    "binary_tree_instance",
    "LADDER_FAMILY",
    "ladder_tgds",
    "ladder_instance",
    "redundant_ladder_tgds",
    "containment_pair",
    "stratified_chain_tgds",
    "stratified_chain_instance",
]
