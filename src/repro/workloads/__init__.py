"""Workload generators: the source-instance families used in Section 4 and 5."""

from repro.workloads.generators import (
    clique_instance,
    cycle_instance,
    grid_instance,
    layered_graph_instance,
    path_instance,
    random_instance,
    singleton,
    successor_instance,
)
from repro.workloads.families import (
    CYCLE_FAMILY,
    InstanceFamily,
    STAR_FAMILY,
    SUCCESSOR_FAMILY,
    SUCCESSOR_Q_FAMILY,
    TREE_FAMILY,
    binary_tree_instance,
    star_instance,
    successor_with_singleton,
)

__all__ = [
    "successor_instance",
    "cycle_instance",
    "path_instance",
    "clique_instance",
    "grid_instance",
    "layered_graph_instance",
    "random_instance",
    "singleton",
    "InstanceFamily",
    "SUCCESSOR_FAMILY",
    "CYCLE_FAMILY",
    "SUCCESSOR_Q_FAMILY",
    "STAR_FAMILY",
    "TREE_FAMILY",
    "successor_with_singleton",
    "star_instance",
    "binary_tree_instance",
]
