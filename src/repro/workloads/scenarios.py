"""Named end-to-end data-exchange scenarios.

Reusable (mapping, source-generator) bundles for examples, benchmarks, and
integration tests: the Clio-style shop, the hospital integration, and a
university registry.  Each scenario carries a nested mapping, its naive flat
translation, and a scalable source generator -- the three ingredients every
"nested vs flat" comparison in this repository needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.nested import NestedTgd
from repro.logic.parser import parse_nested_tgd, parse_tgd
from repro.logic.tgds import STTgd
from repro.logic.values import Constant


@dataclass
class ExchangeScenario:
    """A named scenario: nested mapping, flat translation, source generator."""

    name: str
    nested: NestedTgd
    flat: list[STTgd]
    generate: Callable[[int], Instance]

    def source(self, size: int) -> Instance:
        """A source instance of the given size parameter."""
        return self.generate(size)


def _shop_source(customers: int) -> Instance:
    facts = []
    for c in range(customers):
        cid, name = Constant(f"c{c}"), Constant(f"name{c}")
        facts.append(Atom("Customer", (cid, name)))
        for o in range(2 + c % 2):
            facts.append(Atom("Ord", (cid, Constant(f"item{c}_{o}"))))
    return Instance(facts)


SHOP = ExchangeScenario(
    name="shop",
    nested=parse_nested_tgd(
        "Customer(c, n) -> exists y . "
        "(Account(y, n) & (Ord(c, i) -> Purchase(y, i)))",
        name="shop_nested",
    ),
    flat=[
        parse_tgd("Customer(c, n) -> exists y . Account(y, n)"),
        parse_tgd(
            "Customer(c, n) & Ord(c, i) -> exists y . (Account(y, n) & Purchase(y, i))"
        ),
    ],
    generate=_shop_source,
)
"""Customers and orders into accounts and purchases (the Clio motivation)."""


def _hospital_source(patients: int) -> Instance:
    wards = ["cardiology", "oncology", "neurology"]
    facts = []
    for p in range(patients):
        pid = Constant(f"p{p}")
        facts.append(Atom("Admitted", (pid, Constant(wards[p % len(wards)]))))
        for t in range(1 + p % 3):
            facts.append(Atom("Lab", (pid, Constant(f"test{p}_{t}"))))
    return Instance(facts)


HOSPITAL = ExchangeScenario(
    name="hospital",
    nested=parse_nested_tgd(
        "Admitted(p, w) -> exists c . (Cse(c, w) & (Lab(p, t) -> Finding(c, t)))",
        name="hospital_nested",
    ),
    flat=[
        parse_tgd("Admitted(p, w) -> exists c . Cse(c, w)"),
        parse_tgd(
            "Admitted(p, w) & Lab(p, t) -> exists c . (Cse(c, w) & Finding(c, t))"
        ),
    ],
    generate=_hospital_source,
)
"""Admissions and lab results into cases and findings."""


def _university_source(students: int) -> Instance:
    courses = ["db", "os", "ai", "pl"]
    facts = []
    for s in range(students):
        sid = Constant(f"s{s}")
        facts.append(Atom("Registered", (sid, Constant(f"dept{s % 2}"))))
        for c in range(1 + s % 2):
            facts.append(Atom("Takes", (sid, Constant(courses[(s + c) % len(courses)]))))
    return Instance(facts)


UNIVERSITY = ExchangeScenario(
    name="university",
    nested=parse_nested_tgd(
        "Registered(s, d) -> exists r . "
        "(Record(r, d) & (Takes(s, co) -> Grade(r, co)))",
        name="university_nested",
    ),
    flat=[
        parse_tgd("Registered(s, d) -> exists r . Record(r, d)"),
        parse_tgd(
            "Registered(s, d) & Takes(s, co) -> exists r . (Record(r, d) & Grade(r, co))"
        ),
    ],
    generate=_university_source,
)
"""Registrations and course enrollment into records and grades."""


ALL_SCENARIOS = [SHOP, HOSPITAL, UNIVERSITY]


__all__ = ["ExchangeScenario", "SHOP", "HOSPITAL", "UNIVERSITY", "ALL_SCENARIOS"]
