"""BENCH-STATIC -- analyzer runtime over representative workload families.

The value proposition of the static layer is that its verdicts cost
microseconds-to-milliseconds while the dynamic work they gate (an unbounded
chase, a non-elementary IMPLIES sweep) costs seconds to forever.  This
benchmark times the three analysis passes -- hierarchy classification
(`classify_termination`), the chase cost model (`chase_cost`), and the full
lint driver (`analyze`) -- over workload families of growing size, with all
memoization caches cleared between runs so the numbers are cold-path.

Families:

- ``chain(n)``: n weakly-acyclic copy tgds ``S_i(x,y) -> R_i(x,y)`` (the
  cheap common case the analyzer must not slow down);
- ``cycle(n)``: an n-relation existential cycle ``E_i(x,y) -> exists z .
  E_{i+1}(y,z)`` (not certified by any rung: the analyzer walks the whole
  hierarchy including the bounded MFA chase);
- ``hierarchy``: the four rung witness sets of
  ``examples/termination_hierarchy.py`` combined;
- ``sigma_star``: the paper's deep-nesting workhorse (CC001 territory);
- ``ladder-3``: the existential ladder whose coarse degree is exponential
  (CC002) but whose per-relation witnesses certify PTIME (CC003);
- ``stratified-40``: the bridged MFA chain only the stratified rung decides.

The ``frontier`` axis times the decidability-frontier passes
(:func:`repro.analysis.frontier.frontier_report`: triangular guardedness +
tier stratification) over the same families, and the ``ladder_chase`` axis
*measures* the polynomial chase the PTIME tier promises: facts and seconds
for the ladder program over growing instances, next to the refined
per-relation bound and the (astronomically larger) coarse CC002 bound.

The ``containment`` axis times the mapping-containment analyzer
(:mod:`repro.analysis.containment`) over the redundant-ladder and
counterexample families of :mod:`repro.workloads.families`: verdict,
refuted/redundant counts, and milliseconds per query.

Run::

    PYTHONPATH=src python benchmarks/bench_static_analysis.py [--json PATH]
"""

import argparse
import json
import pathlib
import time

from repro.analysis.acyclicity import classify_termination, clear_acyclicity_cache
from repro.analysis.cost import chase_cost, sweep_cost
from repro.analysis.frontier import clear_frontier_cache, frontier_report
from repro.analysis.static import analyze
from repro.analysis.termination import clear_termination_cache
from repro.logic.parser import parse_nested_tgd, parse_tgd
from repro.workloads.families import (
    containment_pair,
    ladder_instance,
    ladder_tgds,
    redundant_ladder_tgds,
    stratified_chain_tgds,
)

SIGMA_STAR = parse_nested_tgd(
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)


def chain(n: int) -> list:
    return [parse_tgd(f"S{i}(x,y) -> R{i}(x,y)") for i in range(n)]


def cycle(n: int) -> list:
    return [
        parse_tgd(f"E{i}(x,y) -> exists z . E{(i + 1) % n}(y,z)") for i in range(n)
    ]


def hierarchy() -> list:
    return [
        parse_tgd("P(x,y) -> Q(x,y)"),
        parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)"),
        parse_tgd("S(x) -> exists y, z . R(y,z) & R(z,y)"),
        parse_tgd("R(u,u) -> exists w . S(w)"),
        parse_tgd("A(x) -> exists y . L(x,y)"),
        parse_tgd("L(x,y) & B(y) -> exists w . A(w)"),
    ]


def _timed(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        clear_acyclicity_cache()
        clear_termination_cache()
        clear_frontier_cache()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ladder_chase_axis() -> list[dict]:
    """Measure the chase the PTIME tier certifies: polynomial, not 2^degree."""
    from repro.engine.fixpoint_chase import fixpoint_chase

    deps = ladder_tgds(3)
    report = frontier_report(deps)
    rows = []
    for n in (50, 100, 200, 400):
        instance = ladder_instance(n)
        start = time.perf_counter()
        result = fixpoint_chase(instance, deps)
        elapsed = time.perf_counter() - start
        domain = {value for fact in instance for value in fact.args}
        rows.append(
            {
                "n": n,
                "input_facts": len(instance),
                "chase_facts": len(result.instance),
                "chase_s": elapsed,
                "refined_bound": report.tier.fact_bound(len(domain)),
                "coarse_bound": report.cost.fact_bound(len(domain)),
            }
        )
    return rows


def _containment_axis() -> list[dict]:
    """Time the containment analyzer over known-verdict workload pairs."""
    from repro.analysis.containment import check_containment, redundancy_report
    from repro.core.implication import clear_chase_cache

    rows = []
    for depth in (2, 3):
        for contained in (True, False):
            sigma, sigma_prime = containment_pair(depth, contained=contained)
            clear_chase_cache()
            best = _timed(
                lambda s=sigma, sp=sigma_prime: check_containment(s, sp)
            )
            report = check_containment(sigma, sigma_prime)
            rows.append(
                {
                    "family": f"{'contained' if contained else 'refuted'}-ladder-{depth}",
                    "lhs": len(sigma),
                    "rhs": len(sigma_prime),
                    "status": report.status,
                    "refuted": sum(
                        1 for v in report.verdicts if v.status == "refuted"
                    ),
                    "contain_ms": best * 1000,
                }
            )
    for depth in (2, 3):
        deps = redundant_ladder_tgds(depth)
        clear_chase_cache()
        best = _timed(lambda d=deps: redundancy_report(d))
        entries = redundancy_report(deps)
        rows.append(
            {
                "family": f"redundant-ladder-{depth}",
                "lhs": len(deps),
                "rhs": len(deps),
                "status": "redundancy-scan",
                "refuted": sum(1 for e in entries if e.status == "redundant"),
                "contain_ms": best * 1000,
            }
        )
    return rows


def run_benchmark() -> dict:
    families = {
        "chain-8": chain(8),
        "chain-32": chain(32),
        "cycle-4": cycle(4),
        "cycle-8": cycle(8),
        "hierarchy": hierarchy(),
        "sigma_star": [SIGMA_STAR],
        "ladder-3": ladder_tgds(3),
        "stratified-40": stratified_chain_tgds(40),
    }
    results = []
    frontier_rows = []
    for name, deps in families.items():
        classify_s = _timed(lambda deps=deps: classify_termination(deps))
        cost_s = _timed(lambda deps=deps: chase_cost(deps))
        analyze_s = _timed(lambda deps=deps: analyze(deps))
        frontier_s = _timed(lambda deps=deps: frontier_report(deps))
        clear_acyclicity_cache()
        clear_termination_cache()
        clear_frontier_cache()
        verdict = classify_termination(deps)
        report = frontier_report(deps, verdict=verdict)
        results.append(
            {
                "family": name,
                "dependencies": len(deps),
                "termination_class": verdict.cls.value,
                "classify_ms": classify_s * 1000,
                "chase_cost_ms": cost_s * 1000,
                "analyze_ms": analyze_s * 1000,
            }
        )
        frontier_rows.append(
            {
                "family": name,
                "tier": report.tier.tier.value,
                "triangular_guarded": report.triangular.guarded,
                "max_degree": report.tier.max_degree,
                "frontier_ms": frontier_s * 1000,
            }
        )
    # the CC001 prediction must be cheap even though the sweep it prevents
    # is non-elementary
    sweep_s = _timed(lambda: sweep_cost([SIGMA_STAR], SIGMA_STAR))
    return {
        "benchmark": "BENCH-STATIC",
        "families": results,
        "frontier": frontier_rows,
        "ladder_chase": _ladder_chase_axis(),
        "containment": _containment_axis(),
        "sigma_star_sweep_prediction_ms": sweep_s * 1000,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", help="write the summary as JSON")
    args = parser.parse_args(argv)
    summary = run_benchmark()
    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")
    header = f"{'family':12s} {'deps':>4s} {'class':24s} {'classify':>9s} {'cost':>8s} {'analyze':>8s}"
    print(header)
    for row in summary["families"]:
        print(
            f"{row['family']:12s} {row['dependencies']:4d} "
            f"{row['termination_class']:24s} {row['classify_ms']:8.2f}m "
            f"{row['chase_cost_ms']:7.2f}m {row['analyze_ms']:7.2f}m"
        )
    print()
    header = f"{'family':14s} {'tier':16s} {'guarded':>7s} {'maxdeg':>6s} {'frontier':>9s}"
    print(header)
    for row in summary["frontier"]:
        degree = "-" if row["max_degree"] is None else str(row["max_degree"])
        print(
            f"{row['family']:14s} {row['tier']:16s} "
            f"{str(row['triangular_guarded']):>7s} {degree:>6s} "
            f"{row['frontier_ms']:8.2f}m"
        )
    print()
    print(f"{'n':>5s} {'facts':>7s} {'chase_s':>8s} {'refined':>9s} {'coarse':>22s}")
    for row in summary["ladder_chase"]:
        print(
            f"{row['n']:5d} {row['chase_facts']:7d} {row['chase_s']:8.3f} "
            f"{row['refined_bound']:9d} {row['coarse_bound']:22d}"
        )
    print()
    header = f"{'containment family':22s} {'lhs':>3s} {'rhs':>3s} {'status':>16s} {'hits':>4s} {'ms':>8s}"
    print(header)
    for row in summary["containment"]:
        print(
            f"{row['family']:22s} {row['lhs']:3d} {row['rhs']:3d} "
            f"{row['status']:>16s} {row['refuted']:4d} {row['contain_ms']:8.2f}"
        )
    print(
        "sigma* sweep prediction: "
        f"{summary['sigma_star_sweep_prediction_ms']:.3f} ms "
        "(the sweep itself would be non-elementary)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
