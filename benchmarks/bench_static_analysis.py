"""BENCH-STATIC -- analyzer runtime over representative workload families.

The value proposition of the static layer is that its verdicts cost
microseconds-to-milliseconds while the dynamic work they gate (an unbounded
chase, a non-elementary IMPLIES sweep) costs seconds to forever.  This
benchmark times the three analysis passes -- hierarchy classification
(`classify_termination`), the chase cost model (`chase_cost`), and the full
lint driver (`analyze`) -- over workload families of growing size, with all
memoization caches cleared between runs so the numbers are cold-path.

Families:

- ``chain(n)``: n weakly-acyclic copy tgds ``S_i(x,y) -> R_i(x,y)`` (the
  cheap common case the analyzer must not slow down);
- ``cycle(n)``: an n-relation existential cycle ``E_i(x,y) -> exists z .
  E_{i+1}(y,z)`` (not certified by any rung: the analyzer walks the whole
  hierarchy including the bounded MFA chase);
- ``hierarchy``: the four rung witness sets of
  ``examples/termination_hierarchy.py`` combined;
- ``sigma_star``: the paper's deep-nesting workhorse (CC001 territory).

Run::

    PYTHONPATH=src python benchmarks/bench_static_analysis.py [--json PATH]
"""

import argparse
import json
import pathlib
import time

from repro.analysis.acyclicity import classify_termination, clear_acyclicity_cache
from repro.analysis.cost import chase_cost, sweep_cost
from repro.analysis.static import analyze
from repro.analysis.termination import clear_termination_cache
from repro.logic.parser import parse_nested_tgd, parse_tgd

SIGMA_STAR = parse_nested_tgd(
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)


def chain(n: int) -> list:
    return [parse_tgd(f"S{i}(x,y) -> R{i}(x,y)") for i in range(n)]


def cycle(n: int) -> list:
    return [
        parse_tgd(f"E{i}(x,y) -> exists z . E{(i + 1) % n}(y,z)") for i in range(n)
    ]


def hierarchy() -> list:
    return [
        parse_tgd("P(x,y) -> Q(x,y)"),
        parse_tgd("E(x,y) & E(y,x) -> exists z . E(y,z)"),
        parse_tgd("S(x) -> exists y, z . R(y,z) & R(z,y)"),
        parse_tgd("R(u,u) -> exists w . S(w)"),
        parse_tgd("A(x) -> exists y . L(x,y)"),
        parse_tgd("L(x,y) & B(y) -> exists w . A(w)"),
    ]


def _timed(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        clear_acyclicity_cache()
        clear_termination_cache()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark() -> dict:
    families = {
        "chain-8": chain(8),
        "chain-32": chain(32),
        "cycle-4": cycle(4),
        "cycle-8": cycle(8),
        "hierarchy": hierarchy(),
        "sigma_star": [SIGMA_STAR],
    }
    results = []
    for name, deps in families.items():
        classify_s = _timed(lambda deps=deps: classify_termination(deps))
        cost_s = _timed(lambda deps=deps: chase_cost(deps))
        analyze_s = _timed(lambda deps=deps: analyze(deps))
        clear_acyclicity_cache()
        clear_termination_cache()
        verdict = classify_termination(deps)
        results.append(
            {
                "family": name,
                "dependencies": len(deps),
                "termination_class": verdict.cls.value,
                "classify_ms": classify_s * 1000,
                "chase_cost_ms": cost_s * 1000,
                "analyze_ms": analyze_s * 1000,
            }
        )
    # the CC001 prediction must be cheap even though the sweep it prevents
    # is non-elementary
    sweep_s = _timed(lambda: sweep_cost([SIGMA_STAR], SIGMA_STAR))
    return {
        "benchmark": "BENCH-STATIC",
        "families": results,
        "sigma_star_sweep_prediction_ms": sweep_s * 1000,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", help="write the summary as JSON")
    args = parser.parse_args(argv)
    summary = run_benchmark()
    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")
    header = f"{'family':12s} {'deps':>4s} {'class':24s} {'classify':>9s} {'cost':>8s} {'analyze':>8s}"
    print(header)
    for row in summary["families"]:
        print(
            f"{row['family']:12s} {row['dependencies']:4d} "
            f"{row['termination_class']:24s} {row['classify_ms']:8.2f}m "
            f"{row['chase_cost_ms']:7.2f}m {row['analyze_ms']:7.2f}m"
        )
    print(
        "sigma* sweep prediction: "
        f"{summary['sigma_star_sweep_prediction_ms']:.3f} ms "
        "(the sweep itself would be non-elementary)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
