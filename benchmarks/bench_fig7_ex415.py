"""FIG7/EX415 -- Example 4.15 and Figure 7: same f-blocks, nested-expressible.

The SO tgd ``S(x,y) & Q(z) -> R(f(x,y,z), g(z), x)`` has the same clique
f-blocks as Example 4.14 on successor+Q sources, but its null graph is a star
(path length 2, constant), consistent with Theorem 4.16 -- and indeed it is
logically equivalent to the nested tgd
``Q(z) -> exists u (S(x,y) -> exists v R(v,u,x))``.
"""

from repro.core.implication import implies
from repro.core.separation import (
    fblock_profile,
    nested_expressibility_report,
    path_length_bound,
)
from repro.engine.chase import chase
from repro.engine.homomorphism import homomorphically_equivalent
from repro.workloads.families import SUCCESSOR_Q_FAMILY


def test_fig7_null_graph_path_constant(benchmark, so_tgd_415):
    profiles = benchmark(
        fblock_profile, [so_tgd_415], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5]
    )
    assert [p.path_length for p in profiles] == [2, 2, 2, 2]


def test_fig7_same_fblocks_as_fig6(benchmark, so_tgd_414, so_tgd_415):
    """The two examples are indistinguishable by f-block size."""

    def both_profiles():
        left = fblock_profile([so_tgd_414], SUCCESSOR_Q_FAMILY, [3, 4])
        right = fblock_profile([so_tgd_415], SUCCESSOR_Q_FAMILY, [3, 4])
        return left, right

    left, right = benchmark(both_profiles)
    assert [p.fblock_size for p in left] == [p.fblock_size for p in right]


def test_ex415_inconclusive_and_equivalent(benchmark, so_tgd_415, nested_415):
    report = nested_expressibility_report(
        [so_tgd_415], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5]
    )
    assert report.nested_expressible is None  # no necessary condition violated

    # equivalence evidence: IMPLIES one way, chase hom-equivalence on samples
    assert benchmark(implies, [so_tgd_415], nested_415)
    for n in (1, 2, 3):
        source = SUCCESSOR_Q_FAMILY(n)
        assert homomorphically_equivalent(
            chase(source, so_tgd_415), chase(source, nested_415)
        )


def test_ex415_nested_path_bound(benchmark, nested_415):
    """Theorem 4.16's effective bound for the nested tgd: the star's 2."""
    assert benchmark(path_length_bound, nested_415) == 2
