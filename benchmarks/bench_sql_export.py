"""SQL -- the Clio claim, measured: chase engine vs compiled SQL on SQLite.

Compares the Python oblivious chase with the generated INSERT ... SELECT
statements executed on an in-memory SQLite database, over the named exchange
scenarios at growing source sizes.  The deliverable is the agreement (the
results are isomorphic); the timing contrast shows what a real engine buys.
"""

import pytest

from repro.engine.chase import chase
from repro.export.sql import compile_mapping_to_sql, execute_exchange, render_instance_values
from repro.workloads.scenarios import HOSPITAL, SHOP


@pytest.mark.parametrize("size", [10, 30])
def test_sql_exchange_shop(benchmark, size):
    source = SHOP.source(size)
    result = benchmark(execute_exchange, source, [SHOP.nested])
    assert len(result.facts_of("Account")) == size


@pytest.mark.parametrize("size", [10, 30])
def test_chase_exchange_shop(benchmark, size):
    source = SHOP.source(size)
    result = benchmark(chase, source, [SHOP.nested])
    assert len(result.facts_of("Account")) == size


def test_sql_chase_agreement_at_scale(benchmark):
    source = HOSPITAL.source(20)

    def both():
        return (
            execute_exchange(source, [HOSPITAL.nested]),
            render_instance_values(chase(source, [HOSPITAL.nested])),
        )

    via_sql, via_chase = benchmark(both)
    assert via_sql.isomorphic(via_chase)


def test_compilation_is_cheap(benchmark):
    statements = benchmark(compile_mapping_to_sql, [SHOP.nested, HOSPITAL.nested])
    assert len(statements) == 4  # two head atoms per scenario mapping
