"""SCALE-CHASE -- chase runtime scaling per dependency formalism.

Measures ``chase(I, sigma)`` on successor sources of growing length for a
flat s-t tgd, the introduction's nested tgd, and a plain SO tgd.  The nested
tgd's quadratic output (every (x1,x2) root re-scans x3) should dominate the
linear-output flat and SO tgds.
"""

import pytest

from repro.engine.chase import chase
from repro.logic.parser import parse_nested_tgd, parse_so_tgd, parse_tgd
from repro.workloads import successor_instance


FLAT = parse_tgd("S(x,y) -> R(x,z)")
NESTED = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
PLAIN_SO = parse_so_tgd("S(x,y) -> R(f(x), f(y))")


@pytest.mark.parametrize("n", [10, 20, 40])
def test_scale_chase_flat(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase, source, FLAT)
    assert len(result) == n


@pytest.mark.parametrize("n", [10, 20, 40])
def test_scale_chase_nested(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase, source, NESTED)
    assert len(result) == n  # on a successor relation each x1 has one x3

def test_scale_chase_nested_fanout(benchmark):
    """A star source makes the nested tgd's inner part fan out: n roots x n
    inner triggerings."""
    from repro.logic.atoms import Atom
    from repro.logic.instances import Instance
    from repro.logic.values import Constant

    n = 15
    star = Instance(
        Atom("S", (Constant("hub"), Constant(f"v{i}"))) for i in range(n)
    )
    result = benchmark(chase, star, NESTED)
    assert len(result) == n * n


@pytest.mark.parametrize("n", [10, 20, 40])
def test_scale_chase_plain_so(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase, source, PLAIN_SO)
    assert len(result) == n
