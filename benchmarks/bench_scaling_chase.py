"""SCALE-CHASE -- chase runtime scaling per dependency formalism.

Measures ``chase(I, sigma)`` on successor sources of growing length for a
flat s-t tgd, the introduction's nested tgd, and a plain SO tgd.  The nested
tgd's quadratic output (every (x1,x2) root re-scans x3) should dominate the
linear-output flat and SO tgds.

The ``test_delta_*`` benchmarks compare the incremental
(:class:`~repro.engine.builder.InstanceBuilder`-backed, semi-naive) engines
against the seed baselines preserved in :mod:`repro.engine.naive`, which
rebuild an immutable :class:`Instance` per fired trigger / fixpoint round.
The delta engines must win by >= 3x at the largest size.

Run as a script to record the comparison in ``BENCH_chase.json``::

    PYTHONPATH=src python benchmarks/bench_scaling_chase.py [--smoke] [--json PATH]
"""

import time

import pytest

from repro.engine.chase import chase
from repro.engine.egd_chase import chase_egds
from repro.engine.naive import chase_egds_naive, standard_chase_naive
from repro.engine.standard_chase import standard_chase
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_egd, parse_nested_tgd, parse_so_tgd, parse_tgd
from repro.logic.values import Constant
from repro.workloads import successor_instance


FLAT = parse_tgd("S(x,y) -> R(x,z)")
NESTED = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
PLAIN_SO = parse_so_tgd("S(x,y) -> R(f(x), f(y))")

STANDARD_TGDS = [
    parse_tgd("S(x,y) -> R(x,y)"),
    parse_tgd("S(x,y) -> exists u . T(x,u)"),
]
CHAIN_EGD = [parse_egd("S(z,x) & S(z,y) -> x = y")]

STANDARD_SIZES = [50, 100, 200]
EGD_DEPTHS = [10, 20, 40]
SMOKE_STANDARD_SIZES = [20, 40, 80]
SMOKE_EGD_DEPTHS = [5, 10, 20]


def merge_chain(depth: int) -> Instance:
    """A source whose egd chase cascades *depth* rounds deep.

    Two parallel successor chains ``x1 -> ... -> x_depth`` and
    ``y1 -> ... -> y_depth`` hang off one root.  The functionality egd merges
    ``x1 = y1`` in round 1; only after that rewrite do ``S(x1, x2)`` and
    ``S(x1, y2)`` share a first argument and force ``x2 = y2``, and so on --
    exactly one new merge becomes derivable per round.
    """
    facts = [
        Atom("S", (Constant("root"), Constant("x1"))),
        Atom("S", (Constant("root"), Constant("y1"))),
    ]
    for i in range(1, depth):
        facts.append(Atom("S", (Constant(f"x{i}"), Constant(f"x{i + 1}"))))
        facts.append(Atom("S", (Constant(f"y{i}"), Constant(f"y{i + 1}"))))
    return Instance(facts)


def _best_of(func, *args, repeats: int = 3, **kwargs):
    """Minimum wall time of *repeats* runs, and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def compare_standard_chase(n: int) -> dict:
    """Time the builder-backed standard chase against the per-trigger-union
    seed baseline on a successor source of length *n*."""
    source = successor_instance(n)
    delta_s, fast = _best_of(standard_chase, source, STANDARD_TGDS)
    naive_s, slow = _best_of(standard_chase_naive, source, STANDARD_TGDS)
    assert fast == slow
    return {"n": n, "delta_s": delta_s, "naive_s": naive_s,
            "speedup": naive_s / delta_s}


def compare_egd_chase(depth: int) -> dict:
    """Time the semi-naive egd chase against the full-rematch seed baseline
    on a merge cascade *depth* fixpoint rounds deep."""
    source = merge_chain(depth)
    delta_s, fast = _best_of(
        chase_egds, source, CHAIN_EGD, allow_constant_merge=True
    )
    naive_s, slow = _best_of(
        chase_egds_naive, source, CHAIN_EGD, allow_constant_merge=True
    )
    assert fast == slow
    return {"depth": depth, "delta_s": delta_s, "naive_s": naive_s,
            "speedup": naive_s / delta_s}


@pytest.mark.parametrize("n", [10, 20, 40])
def test_scale_chase_flat(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase, source, FLAT)
    assert len(result) == n


@pytest.mark.parametrize("n", [10, 20, 40])
def test_scale_chase_nested(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase, source, NESTED)
    assert len(result) == n  # on a successor relation each x1 has one x3

def test_scale_chase_nested_fanout(benchmark):
    """A star source makes the nested tgd's inner part fan out: n roots x n
    inner triggerings."""
    from repro.logic.atoms import Atom
    from repro.logic.instances import Instance
    from repro.logic.values import Constant

    n = 15
    star = Instance(
        Atom("S", (Constant("hub"), Constant(f"v{i}"))) for i in range(n)
    )
    result = benchmark(chase, star, NESTED)
    assert len(result) == n * n


@pytest.mark.parametrize("n", [10, 20, 40])
def test_scale_chase_plain_so(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase, source, PLAIN_SO)
    assert len(result) == n


@pytest.mark.parametrize("n", STANDARD_SIZES)
def test_delta_standard_chase(benchmark, n):
    source = successor_instance(n)
    result = benchmark(standard_chase, source, STANDARD_TGDS)
    assert len(result) == 2 * n


def test_delta_standard_chase_speedup():
    """Acceptance: >= 3x over the seed engine at the largest size."""
    row = compare_standard_chase(STANDARD_SIZES[-1])
    assert row["speedup"] >= 3.0, row


@pytest.mark.parametrize("depth", EGD_DEPTHS)
def test_delta_egd_chase(benchmark, depth):
    source = merge_chain(depth)
    chased, _ = benchmark(
        chase_egds, source, CHAIN_EGD, allow_constant_merge=True
    )
    assert len(chased) == depth  # the two chains zipped into one


def test_delta_egd_chase_speedup():
    """Acceptance: >= 3x over the seed engine at the deepest cascade."""
    row = compare_egd_chase(EGD_DEPTHS[-1])
    assert row["speedup"] >= 3.0, row


def main(argv=None) -> dict:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller sizes (CI smoke run)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_chase.json",
                        help="where to write the results (default: %(default)s)")
    args = parser.parse_args(argv)

    sizes = SMOKE_STANDARD_SIZES if args.smoke else STANDARD_SIZES
    depths = SMOKE_EGD_DEPTHS if args.smoke else EGD_DEPTHS
    report = {
        "benchmark": "scale-chase-delta",
        "smoke": args.smoke,
        "standard_chase": [compare_standard_chase(n) for n in sizes],
        "egd_chase": [compare_egd_chase(d) for d in depths],
    }
    report["largest_standard_speedup"] = report["standard_chase"][-1]["speedup"]
    report["largest_egd_speedup"] = report["egd_chase"][-1]["speedup"]

    # Merge over any existing file so sections written by other scripts
    # (e.g. bench_backend_chase.py's "backend_chase") survive a re-run.
    try:
        with open(args.json) as handle:
            merged = json.load(handle)
    except (OSError, ValueError):
        merged = {}
    merged.update(report)
    report = merged

    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["standard_chase"]:
        print(f"standard n={row['n']:4d}  delta {row['delta_s']:.4f}s  "
              f"naive {row['naive_s']:.4f}s  speedup {row['speedup']:.1f}x")
    for row in report["egd_chase"]:
        print(f"egd depth={row['depth']:3d}  delta {row['delta_s']:.4f}s  "
              f"naive {row['naive_s']:.4f}s  speedup {row['speedup']:.1f}x")
    print(f"wrote {args.json}")
    assert report["largest_standard_speedup"] >= 3.0
    return report


if __name__ == "__main__":
    main()
