"""WARM -- does warm-start performance survive a process restart?

Before ``repro.cache``, every cache tier (chase LRU, fold memo, interned
universe) died with the process: the second run of a sweep was fast only
*within* one interpreter.  This benchmark measures the implication sweeps of
``bench_pattern_sweep`` across real process boundaries sharing one
``REPRO_CACHE_DIR``:

- **cold process** -- a fresh interpreter over an empty store (the store is
  write-through, so the cold run also populates it);
- **warm-disk process** -- a *second* fresh interpreter over the store the
  cold one left behind: memory tiers empty, disk tier warm;
- **in-process warm** -- the classic same-interpreter re-run, for scale.

Each child asserts verdict agreement (holds + patterns checked) and reports
its ``cache.disk.*`` counters, so the parent can verify the warm run really
answered from disk rather than re-deriving.

Run as a script to merge a ``warm_restart`` axis into ``BENCH_sweep.json``
and ``BENCH_implication.json``::

    PYTHONPATH=src python benchmarks/bench_warm_restart.py [--smoke]

``--smoke`` runs only the Example 3.10 workload and gates warm-restart at
>= 2x with at least one disk hit -- the CI perf gate.  The full run also
sweeps the deep workload (3125 patterns) and gates it at >= 3x -- the
acceptance criterion of the persistence layer.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

from bench_pattern_sweep import WORKLOADS

SWEEP_JSON = "BENCH_sweep.json"
IMPLICATION_JSON = "BENCH_implication.json"

SMOKE_GATE = 2.0
FULL_GATE = 3.0


def _run_sweep(lhs, rhs):
    from repro.core.implication import implies_tgd

    start = time.perf_counter()
    result = implies_tgd(lhs, rhs, max_patterns=100_000, subsumption=False,
                         incremental=True)
    return time.perf_counter() - start, result


def child(mode: str, label: str, repeat: int) -> None:
    """One measured process: run the workload *repeat* times, print JSON.

    ``cold`` starts every repetition with all tiers empty (including disk)
    and leaves the store populated for the warm process; ``warm`` starts
    every repetition with empty memory tiers over the inherited disk store.
    """
    import repro.cache as cache
    from repro import perf

    lhs, rhs = next((l, r) for (name, l, r) in WORKLOADS if name == label)
    assert cache.get_store() is not None, "child needs REPRO_CACHE_DIR"

    best = None
    result = None
    counters: dict[str, int] = {}
    for __ in range(repeat):
        cache.clear_all_caches(disk=(mode == "cold"))
        with perf.measuring() as stats:
            elapsed, result = _run_sweep(lhs, rhs)
        if best is None or elapsed < best:
            best = elapsed
            counters = stats.snapshot()

    inprocess_warm = None
    if mode == "cold":
        # the classic same-interpreter warm run: every tier still hot
        inprocess_warm, again = _run_sweep(lhs, rhs)
        assert again.holds == result.holds

    print(json.dumps({
        "mode": mode,
        "workload": label,
        "best_s": best,
        "holds": result.holds,
        "patterns": result.patterns_checked,
        "inprocess_warm_s": inprocess_warm,
        "disk_hits": counters.get("cache.disk.hits", 0),
        "disk_writes": counters.get("cache.disk.writes", 0),
        "verdict_hits": counters.get("implies.verdict_disk_hits", 0),
    }))


def _spawn(mode: str, label: str, repeat: int, cache_dir: str) -> dict:
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--child", mode, "--workload", label, "--repeat", str(repeat)],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{mode} child failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def measure_workload(label: str, repeat: int) -> dict:
    """Cold process, then warm-disk process, over one shared store."""
    with tempfile.TemporaryDirectory(prefix="repro-warm-restart-") as tmp:
        cold = _spawn("cold", label, repeat, tmp)
        warm = _spawn("warm", label, repeat, tmp)
    assert cold["holds"] == warm["holds"], f"{label}: verdicts disagree"
    assert cold["patterns"] == warm["patterns"], f"{label}: sweeps disagree"
    return {
        "workload": label,
        "patterns": cold["patterns"],
        "cold_process_s": round(cold["best_s"], 6),
        "warm_disk_process_s": round(warm["best_s"], 6),
        "inprocess_warm_s": round(cold["inprocess_warm_s"], 6),
        "speedup_warm_restart": round(cold["best_s"] / warm["best_s"], 2)
        if warm["best_s"] else float("inf"),
        "disk_writes_cold": cold["disk_writes"],
        "disk_hits_warm": warm["disk_hits"],
        "verdict_hits_warm": warm["verdict_hits"],
    }


def _merge_axis(path: str, rows: list[dict]) -> None:
    """Attach the warm-restart rows to an existing BENCH artifact in place."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError):
        report = {"benchmark": os.path.basename(path)}
    report["warm_restart"] = {
        "gate": {"smoke_min_speedup": SMOKE_GATE, "full_min_speedup": FULL_GATE},
        "rows": rows,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)


def main(argv=None) -> list[dict]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="Example 3.10 only; assert the CI perf gate")
    parser.add_argument("--child", metavar="MODE",
                        choices=["cold", "warm"], help=argparse.SUPPRESS)
    parser.add_argument("--workload", help=argparse.SUPPRESS)
    parser.add_argument("--repeat", type=int, default=3, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        child(args.child, args.workload, args.repeat)
        return []

    labels = ["ex310"] if args.smoke else ["ex310", "deep"]
    rows = [measure_workload(label, repeat=5 if label == "ex310" else 1)
            for label in labels]
    for row in rows:
        print(f"{row['workload']:>6}: {row['patterns']:>5} patterns  "
              f"cold {row['cold_process_s']:.4f}s  "
              f"warm-restart {row['warm_disk_process_s']:.4f}s  "
              f"in-process {row['inprocess_warm_s']:.4f}s  "
              f"restart speedup {row['speedup_warm_restart']:.1f}x  "
              f"(disk hits {row['disk_hits_warm']})")

    by_label = {row["workload"]: row for row in rows}
    gate = by_label["ex310"]
    assert gate["disk_hits_warm"] > 0, (
        "perf gate: the warm-restart process never touched the disk store"
    )
    assert gate["speedup_warm_restart"] >= SMOKE_GATE, (
        f"perf gate: warm restart {gate['speedup_warm_restart']}x < "
        f"{SMOKE_GATE}x on Example 3.10"
    )
    if not args.smoke:
        deep = by_label["deep"]
        assert deep["speedup_warm_restart"] >= FULL_GATE, (
            f"acceptance: warm restart {deep['speedup_warm_restart']}x < "
            f"{FULL_GATE}x on the deep sweep"
        )
        assert deep["disk_hits_warm"] > 0

    _merge_axis(SWEEP_JSON, rows)
    _merge_axis(IMPLICATION_JSON, rows)
    print(f"merged warm_restart axis into {SWEEP_JSON} and {IMPLICATION_JSON}")
    return rows


if __name__ == "__main__":
    main()
