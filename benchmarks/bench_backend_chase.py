"""BENCH-BACKEND -- one exchange, three execution backends.

Runs the same weakly-acyclic data-exchange program through the tuple engine
(:func:`repro.engine.chase.chase`), the columnar store
(:func:`repro.engine.columnar.columnar_execute_exchange`), and the SQL
pushdown backend (:func:`repro.engine.sql_backend.sql_execute_exchange`),
checks that all three produce *exactly* the same fact set, and records the
wall-time ratios.

The workload is a layered digraph (:func:`repro.workloads.layered_graph_instance`)
with a 2-hop path join, a dedup-heavy projection, and one existential copy:
trigger matching grows with ``width * degree**2`` while the output stays
near ``width * degree``, which is the regime where pushing the join into
SQLite's C executor pays off.  Acceptance: at the largest standard size
(>= 100k source facts) the SQL backend must be >= 5x faster than the tuple
engine end to end (encode + joins + decode included).

Run as a script to merge the comparison into ``BENCH_chase.json``::

    PYTHONPATH=src python benchmarks/bench_backend_chase.py [--smoke] [--json PATH]
"""

import time

import pytest

from repro.engine.chase import chase, compile_clause_program
from repro.engine.columnar import columnar_execute_exchange
from repro.engine.sql_backend import sql_execute_exchange
from repro.logic.parser import parse_tgd
from repro.workloads import layered_graph_instance


DEPS = [
    parse_tgd("S(x,y) & S(y,z) -> R(x,z)"),
    parse_tgd("S(x,y) & S(x,z) -> P(x)"),
    parse_tgd("Q(x) -> exists w . T(x,w)"),
]

#: (width, degree) per size; source has ``2 * width * degree + width`` facts.
SIZES = [(1000, 10), (2000, 16), (2500, 24)]
SMOKE_SIZES = [(200, 6), (500, 8)]


def backend_source(width: int, degree: int):
    return layered_graph_instance(width, degree, marker="Q")


def _best_of(func, *args, repeats: int = 3, **kwargs):
    """Minimum wall time of *repeats* runs, and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def compare_backends(width: int, degree: int, repeats: int = 1) -> dict:
    """Time all three backends on one layered-graph exchange; assert that
    they compute exactly the same target facts (set equality, not just
    isomorphism -- the shared clause program pins the Skolem labels)."""
    source = backend_source(width, degree)
    clauses = compile_clause_program(DEPS)
    tuple_s, tuple_result = _best_of(chase, source, DEPS, repeats=repeats)
    columnar_s, columnar_result = _best_of(
        columnar_execute_exchange, source, clauses, repeats=repeats
    )
    sql_s, sql_result = _best_of(
        sql_execute_exchange, source, clauses, repeats=repeats
    )
    assert set(columnar_result.facts) == set(tuple_result.facts)
    assert set(sql_result.facts) == set(tuple_result.facts)
    return {
        "width": width,
        "degree": degree,
        "source_facts": len(source),
        "target_facts": len(tuple_result),
        "tuple_s": tuple_s,
        "columnar_s": columnar_s,
        "sql_s": sql_s,
        "columnar_speedup": tuple_s / columnar_s,
        "sql_speedup": tuple_s / sql_s,
    }


@pytest.mark.parametrize("width,degree", SMOKE_SIZES)
def test_backend_exchange_tuple(benchmark, width, degree):
    source = backend_source(width, degree)
    result = benchmark(chase, source, DEPS)
    assert len(result) > 0


@pytest.mark.parametrize("width,degree", SMOKE_SIZES)
def test_backend_exchange_columnar(benchmark, width, degree):
    source = backend_source(width, degree)
    clauses = compile_clause_program(DEPS)
    result = benchmark(columnar_execute_exchange, source, clauses)
    assert len(result) > 0


@pytest.mark.parametrize("width,degree", SMOKE_SIZES)
def test_backend_exchange_sql(benchmark, width, degree):
    source = backend_source(width, degree)
    clauses = compile_clause_program(DEPS)
    result = benchmark(sql_execute_exchange, source, clauses)
    assert len(result) > 0


def test_backend_smoke_sql_not_slower():
    """CI gate: SQL pushdown must not lose to the tuple engine even at the
    largest smoke size (where per-run fixed costs weigh heaviest)."""
    row = compare_backends(*SMOKE_SIZES[-1], repeats=3)
    assert row["sql_speedup"] >= 1.0, row


def test_backend_sql_speedup():
    """Acceptance: >= 5x over the tuple engine at the largest standard size
    (>= 100k source facts).  Expensive -- run explicitly, not in CI smoke."""
    width, degree = SIZES[-1]
    row = compare_backends(width, degree)
    assert row["source_facts"] >= 100_000, row
    assert row["sql_speedup"] >= 5.0, row


def main(argv=None) -> dict:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller sizes (CI smoke run)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_chase.json",
                        help="file to merge the results into (default: %(default)s)")
    args = parser.parse_args(argv)

    sizes = SMOKE_SIZES if args.smoke else SIZES
    repeats = 3 if args.smoke else 1
    rows = [compare_backends(w, d, repeats=repeats) for w, d in sizes]
    section = {
        "smoke": args.smoke,
        "workload": "layered-graph exchange (path join + projection + copy)",
        "sizes": rows,
        "largest_sql_speedup": rows[-1]["sql_speedup"],
        "largest_columnar_speedup": rows[-1]["columnar_speedup"],
    }

    try:
        with open(args.json) as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {}
    report["backend_chase"] = section
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)

    for row in rows:
        print(f"n={row['source_facts']:7d}  tuple {row['tuple_s']:7.2f}s  "
              f"columnar {row['columnar_s']:7.2f}s ({row['columnar_speedup']:.1f}x)  "
              f"sql {row['sql_s']:7.2f}s ({row['sql_speedup']:.1f}x)")
    print(f"merged into {args.json}")
    assert section["largest_sql_speedup"] >= (1.0 if args.smoke else 5.0)
    return report


if __name__ == "__main__":
    main()
