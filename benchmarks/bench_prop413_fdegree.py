"""PROP413 -- Proposition 4.13: unbounded f-block size, bounded f-degree.

On successor relations, ``S(x,y) -> R(f(x),f(y))`` produces a single f-block
of the same size as S in which no null occurs more than twice: f-block size
grows linearly while the f-degree stays at 2.  By Theorem 4.12 this rules out
equivalence to any nested GLAV mapping.
"""

from repro.core.separation import fblock_profile, nested_expressibility_report
from repro.workloads.families import SUCCESSOR_FAMILY


SIZES = [2, 4, 6, 8]


def test_prop413_profile(benchmark, so_tgd_413):
    profiles = benchmark(fblock_profile, [so_tgd_413], SUCCESSOR_FAMILY, SIZES)
    assert [p.fblock_size for p in profiles] == SIZES  # grows with n
    assert [p.fdegree for p in profiles][1:] == [2, 2, 2]  # the paper's constant


def test_prop413_verdict(benchmark, so_tgd_413):
    report = benchmark(
        nested_expressibility_report, [so_tgd_413], SUCCESSOR_FAMILY, SIZES
    )
    assert report.nested_expressible is False
    assert "4.12" in report.reason
