"""FIG3 -- Figure 3 of the paper: a 3-pattern obtained by cloning, and its
canonical source instance.

The figure shows p8 with one clone of the node sigma_2 and two clones of the
node sigma_4: the canonical source then has one extra S2 atom and two extra
S4 atoms (each S4 clone binding a fresh x4 under the same x3).
"""

from collections import Counter

from repro.core.canonical import canonical_instances
from repro.core.patterns import Pattern


def build_fig3_pattern() -> Pattern:
    p8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))
    cloned = p8.with_extra_clone((0,))  # one clone of sigma_2 (children sorted)
    deep_index = next(
        i for i, child in enumerate(cloned.children) if child.children
    )
    return cloned.with_clones((deep_index, 0), 2)  # two clones of sigma_4


def test_fig3_pattern_shape(benchmark, sigma_star):
    pattern = benchmark(build_fig3_pattern)
    assert pattern.node_count == 8
    assert pattern.is_k_pattern(3)
    assert not pattern.is_k_pattern(2)
    pattern.validate_against(sigma_star)


def test_fig3_canonical_source(benchmark, sigma_star):
    pattern = build_fig3_pattern()
    canon = benchmark(canonical_instances, pattern, sigma_star)
    assert Counter(f.relation for f in canon.source) == Counter(
        {"S1": 1, "S2": 2, "S3": 2, "S4": 3}
    )
    # all three S4 clones hang off the same x3 constant
    s4_parents = {f.args[0] for f in canon.source.facts_of("S4")}
    assert len(s4_parents) == 1
