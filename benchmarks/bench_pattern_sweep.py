"""SWEEP -- from-scratch vs DAG-incremental k-pattern sweeps for IMPLIES.

The from-scratch sweep rebuilds and re-chases the canonical instances of
every k-pattern independently; the DAG-incremental sweep (the default of
``implies_tgd``) extends each pattern's chase state from its parent pattern
by the delta one new leaf contributes.  This benchmark measures both on
implication queries whose right-hand sides nest progressively deeper, cold
(empty chase cache) and warm (second run), serial and with the work-stealing
parallel sweep.

Run as a script to record the results in ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_pattern_sweep.py [--json PATH] [--smoke]

``--smoke`` runs only the small workloads with repetitions and asserts the
incremental sweep is not slower than the from-scratch sweep on the
Example 3.10 query -- the CI perf gate.  The full run also sweeps the deep
workload and asserts the incremental sweep is at least 5x faster there.
"""

from __future__ import annotations

import time

from repro import perf
from repro.core.implication import clear_chase_cache, implies_tgd
from repro.core.patterns import count_k_patterns
from repro.logic.parser import parse_nested_tgd, parse_tgd

EX310_TAU = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
EX310_TAU_DP = parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")

WIDE_RHS = parse_nested_tgd(
    "S1(x1) -> exists y . ((S2(x2) -> R2(y, x2)) & (S3(x3) -> R3(y, x3)))"
)
WIDE_LHS = parse_nested_tgd(
    "S1(u1) -> exists w . ((S2(u2) -> R2(w, u2)) & (S3(u3) -> R3(w, u3)))"
)

DEEP_RHS = parse_nested_tgd(
    "S1(x1) -> exists y . (S2(x2) -> R2(y, x2) & (S3(x3) -> R3(y, x3)))"
)
DEEP_LHS = parse_nested_tgd(
    "S1(u1) -> exists w . (S2(u2) -> R2(w, u2) & (S3(u3) -> R3(w, u3)))"
)

#: (label, Sigma, sigma): implication holds in each, so the sweep runs to the
#: end (renamed copies dodge the syntactic membership shortcut; the
#: subsumption pre-pass is disabled explicitly).
WORKLOADS = [
    ("ex310", [EX310_TAU_DP], EX310_TAU),
    ("wide", [WIDE_LHS], WIDE_RHS),
    ("deep", [DEEP_LHS], DEEP_RHS),
]


def _timed_sweep(lhs, rhs, *, incremental, parallel=None, cold=True, repeat=1):
    """Best-of-*repeat* wall time of one sweep; cold clears the chase cache."""
    best = None
    result = None
    for __ in range(repeat):
        if cold:
            clear_chase_cache()
        start = time.perf_counter()
        result = implies_tgd(lhs, rhs, max_patterns=100_000, subsumption=False,
                             incremental=incremental, parallel=parallel)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def sweep_workload(label, lhs, rhs, *, repeat=1, parallel_workers=2):
    """Measure one workload every way; return a result row."""
    from repro.core.implication import _normalize_lhs, implication_bound

    k = implication_bound(_normalize_lhs(lhs), rhs)
    fresh_s, fresh = _timed_sweep(lhs, rhs, incremental=False, repeat=repeat)
    perf.reset()
    incr_s, incr = _timed_sweep(lhs, rhs, incremental=True, repeat=repeat)
    counters = perf.snapshot()
    # every cold repetition contributes the same counts; report one run's worth
    hits_per_run = counters.get("implies.sweep.incremental_hits", 0) // repeat
    # warm: same query again without clearing the cache
    warm_s, __ = _timed_sweep(lhs, rhs, incremental=True, cold=False,
                              repeat=repeat)
    par_s, par = _timed_sweep(lhs, rhs, incremental=True,
                              parallel=parallel_workers, repeat=repeat)
    assert incr.holds == fresh.holds == par.holds
    assert incr.patterns_checked == fresh.patterns_checked == par.patterns_checked
    return {
        "workload": label,
        "k": k,
        "patterns": incr.patterns_checked,
        "pattern_count_formula": count_k_patterns(rhs, k),
        "fresh_cold_s": round(fresh_s, 6),
        "incremental_cold_s": round(incr_s, 6),
        "incremental_warm_s": round(warm_s, 6),
        "parallel_cold_s": round(par_s, 6),
        "speedup_cold": round(fresh_s / incr_s, 2) if incr_s else float("inf"),
        "incremental_hits": hits_per_run,
    }


# ------------------------------------------------------------ pytest entry


def test_sweep_incremental_not_slower_ex310(benchmark):
    """CI smoke property: the incremental sweep beats (or ties) the
    from-scratch sweep on the Example 3.10 workload, and every non-root
    pattern is an incremental extension."""
    row = benchmark(sweep_workload, *WORKLOADS[0], repeat=5)
    assert row["incremental_hits"] == row["patterns"] - 1
    assert row["incremental_cold_s"] <= row["fresh_cold_s"]


def test_sweep_wide_incremental_agrees(benchmark):
    row = benchmark(sweep_workload, *WORKLOADS[1], repeat=3)
    assert row["patterns"] == row["pattern_count_formula"]
    assert row["incremental_hits"] == row["patterns"] - 1


def test_sweep_deep_speedup():
    """Acceptance: at the deepest nesting the DAG-incremental sweep is at
    least 5x faster than re-chasing every pattern from scratch."""
    row = sweep_workload(*WORKLOADS[2])
    assert row["patterns"] == row["pattern_count_formula"]
    assert row["speedup_cold"] >= 5.0


def main(argv=None) -> dict:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH", default="BENCH_sweep.json",
                        help="where to write the results (default: %(default)s)")
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads only; assert the CI perf gate")
    args = parser.parse_args(argv)

    workloads = WORKLOADS[:2] if args.smoke else WORKLOADS
    repeat = 5 if args.smoke else 1
    rows = [sweep_workload(label, lhs, rhs, repeat=repeat)
            for label, lhs, rhs in workloads]
    report = {"benchmark": "pattern-sweep", "smoke": args.smoke, "rows": rows}
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in rows:
        print(f"{row['workload']:>6}: {row['patterns']:>5} patterns  "
              f"fresh {row['fresh_cold_s']:.4f}s  "
              f"incr {row['incremental_cold_s']:.4f}s  "
              f"warm {row['incremental_warm_s']:.4f}s  "
              f"par {row['parallel_cold_s']:.4f}s  "
              f"speedup {row['speedup_cold']:.1f}x")
    print(f"wrote {args.json}")
    by_label = {row["workload"]: row for row in rows}
    gate = by_label["ex310"]
    assert gate["incremental_cold_s"] <= gate["fresh_cold_s"], (
        "perf gate: the incremental sweep regressed below the from-scratch "
        f"sweep on Example 3.10 ({gate['incremental_cold_s']:.4f}s vs "
        f"{gate['fresh_cold_s']:.4f}s)"
    )
    if not args.smoke:
        deep = by_label["deep"]
        assert deep["speedup_cold"] >= 5.0, (
            f"acceptance: expected >= 5x at the deepest nesting, got "
            f"{deep['speedup_cold']}x"
        )
    return report


if __name__ == "__main__":
    main()
