"""ABLATION -- engine primitives vs their naive reference implementations.

Quantifies the two engine design choices DESIGN.md calls out:

- CQ matching with greedy atom reordering and per-position index seeding,
  vs brute-force scanning (``find_matches_naive``);
- homomorphism search with f-block decomposition and candidate seeding,
  vs raw backtracking over the whole fact list (``find_homomorphism_naive``).
"""

import pytest

from repro.engine.chase import chase
from repro.engine.homomorphism import find_homomorphism
from repro.engine.matching import find_matches
from repro.engine.naive import find_homomorphism_naive, find_matches_naive
from repro.logic.parser import parse_atom, parse_tgd
from repro.workloads import successor_instance


CHAIN_QUERY = [
    parse_atom("S(x1, x2)"),
    parse_atom("S(x2, x3)"),
    parse_atom("S(x3, x4)"),
]


@pytest.mark.parametrize("n", [20, 40])
def test_ablation_matching_indexed(benchmark, n):
    instance = successor_instance(n)
    matches = benchmark(lambda: list(find_matches(CHAIN_QUERY, instance)))
    assert len(matches) == n - 2


@pytest.mark.parametrize("n", [20, 40])
def test_ablation_matching_naive(benchmark, n):
    instance = successor_instance(n)
    matches = benchmark(lambda: list(find_matches_naive(CHAIN_QUERY, instance)))
    assert len(matches) == n - 2


def _hom_pair(n):
    """A multi-block chase result and a larger target to embed it into."""
    tgd = parse_tgd("S(x,y) -> R(x,z) & T(z,y)")
    source = chase(successor_instance(n), tgd)
    target = chase(successor_instance(n + 4), tgd)
    return source, target


@pytest.mark.parametrize("n", [6, 12])
def test_ablation_homomorphism_blocks(benchmark, n):
    source, target = _hom_pair(n)
    mapping = benchmark(find_homomorphism, source, target)
    assert mapping is not None


@pytest.mark.parametrize("n", [6, 12])
def test_ablation_homomorphism_naive(benchmark, n):
    source, target = _hom_pair(n)
    mapping = benchmark(find_homomorphism_naive, source, target)
    assert mapping is not None


def test_ablation_agreement():
    """Both implementations agree on existence (sanity for the comparison)."""
    source, target = _hom_pair(5)
    assert (find_homomorphism(source, target) is None) == (
        find_homomorphism_naive(source, target) is None
    )
    # and on a negative case
    assert find_homomorphism(target, source) is None
    assert find_homomorphism_naive(target, source) is None
