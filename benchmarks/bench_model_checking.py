"""MC -- the data-complexity contrast of the introduction.

"The data complexity of the model checking problem of nested tgds is in
LOGSPACE, while the data complexity of plain SO tgds is NP-complete."

We measure the two checkers on the same growing instances: the nested tgd of
Example 4.15 and its equivalent plain SO tgd.  The nested checker is a
first-order recursion (polynomial); the SO checker searches for function
interpretations (exponential worst case).  The shape to observe is the
growth-rate gap, not absolute times.
"""

import pytest

from repro.engine.chase import chase
from repro.engine.model_check import satisfies_nested, satisfies_so
from repro.workloads.families import SUCCESSOR_Q_FAMILY


def solution_for(dep, n):
    return SUCCESSOR_Q_FAMILY(n), chase(SUCCESSOR_Q_FAMILY(n), dep)


@pytest.mark.parametrize("n", [2, 4, 6])
def test_mc_nested_checker(benchmark, nested_415, n):
    source, target = solution_for(nested_415, n)
    assert benchmark(satisfies_nested, source, target, nested_415)


@pytest.mark.parametrize("n", [2, 4, 6])
def test_mc_so_checker(benchmark, so_tgd_415, n):
    source, target = solution_for(so_tgd_415, n)
    assert benchmark(satisfies_so, source, target, so_tgd_415)


def test_mc_checkers_agree(nested_415, so_tgd_415):
    """On solutions and non-solutions alike, the two formalisms agree here
    (the dependencies are logically equivalent)."""
    from repro.logic.instances import Instance

    for n in (1, 2, 3):
        source, target = solution_for(nested_415, n)
        assert satisfies_nested(source, target, nested_415)
        assert satisfies_so(source, target, so_tgd_415)
        broken = Instance(list(target)[:-1]) if len(target) else target
        assert satisfies_nested(source, broken, nested_415) == satisfies_so(
            source, broken, so_tgd_415
        )
