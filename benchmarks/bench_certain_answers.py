"""CQ -- certain answers over nested vs flat mappings (extension, [5]).

Measures certain-answer computation as the source grows, and reproduces the
semantic gap that motivates nested mappings: joins through the shared
existential are certain under the nested mapping and lost under the naive
flat translation.
"""

import pytest

from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_nested_tgd, parse_tgd
from repro.logic.values import Constant
from repro.queries import certain_answers, parse_query


NESTED = parse_nested_tgd(
    "Customer(c, n) -> exists y . (Account(y, n) & (Order(c, i) -> Purchase(y, i)))"
)
FLAT = [
    parse_tgd("Customer(c, n) -> exists y . Account(y, n)"),
    parse_tgd("Customer(c, n) & Order(c, i) -> exists y . (Account(y, n) & Purchase(y, i))"),
]
JOIN_QUERY = parse_query("q(n, i) :- Account(y, n) & Purchase(y, i)")


def shop_source(customers: int, orders_each: int) -> Instance:
    facts = []
    for c in range(customers):
        cid, name = Constant(f"c{c}"), Constant(f"name{c}")
        facts.append(Atom("Customer", (cid, name)))
        for o in range(orders_each):
            facts.append(Atom("Order", (cid, Constant(f"item{c}_{o}"))))
    return Instance(facts)


@pytest.mark.parametrize("customers", [5, 10])
def test_certain_answers_nested(benchmark, customers):
    source = shop_source(customers, 3)
    answers = benchmark(certain_answers, JOIN_QUERY, source, [NESTED])
    assert len(answers) == customers * 3  # every order joins its account


@pytest.mark.parametrize("customers", [5, 10])
def test_certain_answers_flat(benchmark, customers):
    source = shop_source(customers, 3)
    answers = benchmark(certain_answers, JOIN_QUERY, source, FLAT)
    assert len(answers) == customers * 3  # account created together with purchase


def test_certain_answers_correlation_gap(benchmark):
    """The correlation query separates the mappings: items of the same
    customer are certainly co-owned only under the nested mapping."""
    source = shop_source(4, 2)
    query = parse_query(
        "q(i1, i2) :- Purchase(y, i1) & Purchase(y, i2)"
    )

    def both():
        return (
            certain_answers(query, source, [NESTED]),
            certain_answers(query, source, FLAT),
        )

    nested_answers, flat_answers = benchmark(both)
    # nested: each customer's 2 items pair up (4 customers x 2x2 pairs)
    assert len(nested_answers) == 4 * 4
    # flat: only the trivial (i, i) pairs
    assert len(flat_answers) == 8
    assert flat_answers < nested_answers
