"""SCALE-CORE -- core computation scaling.

Measures ``core`` on chased instances of growing size, in the two regimes the
paper's constructions produce: foldable chases (many isomorphic blocks that
collapse) and rigid chases (odd undirected cycles that are already cores).
"""

import pytest

from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.logic.parser import parse_nested_tgd
from repro.workloads import cycle_instance


NESTED = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")


def star_source(n):
    from repro.logic.atoms import Atom
    from repro.logic.instances import Instance
    from repro.logic.values import Constant

    return Instance(Atom("S", (Constant("hub"), Constant(f"v{i}"))) for i in range(n))


@pytest.mark.parametrize("n", [4, 8, 12])
def test_scale_core_foldable_blocks(benchmark, n):
    """n isomorphic blocks of size n fold down to a single block."""
    chased = chase(star_source(n), NESTED)
    assert len(chased) == n * n
    result = benchmark(core, chased)
    assert len(result) == n


@pytest.mark.parametrize("n", [5, 7, 9])
def test_scale_core_rigid_odd_cycle(benchmark, n, so_tgd_48):
    """Odd undirected cycles are cores: the computation must prove rigidity."""
    chased = chase(cycle_instance(n), so_tgd_48)
    result = benchmark(core, chased)
    assert len(result) == 2 * n
