"""ABLATION -- oblivious vs standard vs core chase.

The paper's Section 3 machinery is built on the *oblivious* chase (its
chase-forest structure is what patterns abstract).  This ablation quantifies
the design choice: the oblivious chase materializes one null per trigger
(larger output, trivial per-trigger cost), the standard chase suppresses
satisfied triggers (smaller output, a homomorphism check per trigger), and
the core chase pays a full core computation for the minimal result.
"""

import pytest

from repro.engine.chase import chase_st_tgds
from repro.engine.core_instance import core
from repro.engine.homomorphism import homomorphically_equivalent
from repro.engine.standard_chase import core_chase, standard_chase
from repro.logic.parser import parse_instance, parse_tgd
from repro.workloads import successor_instance


# the ground tgd comes first so that the standard chase can use its facts to
# suppress the weaker existential tgd's triggers
TGDS = [
    parse_tgd("S(x,y) -> R(x,y)"),
    parse_tgd("S(x,y) -> R(x,z)"),
    parse_tgd("S(x,y) & S(y,z) -> R(x,w) & T(w,z)"),
]


@pytest.mark.parametrize("n", [10, 20])
def test_ablation_oblivious_chase(benchmark, n):
    source = successor_instance(n)
    result = benchmark(chase_st_tgds, source, TGDS)
    # one null per trigger of tgds 1 and 3
    assert len(result.nulls()) == n + (n - 1)


@pytest.mark.parametrize("n", [10, 20])
def test_ablation_standard_chase(benchmark, n):
    source = successor_instance(n)
    result = benchmark(standard_chase, source, TGDS)
    # R(x,y) from tgd 2 satisfies tgd 1's triggers: no nulls from tgd 1
    assert len(result.nulls()) == n - 1


@pytest.mark.parametrize("n", [6, 10])
def test_ablation_core_chase(benchmark, n):
    source = successor_instance(n)
    result = benchmark(core_chase, source, TGDS)
    oblivious = chase_st_tgds(source, TGDS)
    assert homomorphically_equivalent(result, oblivious)
    assert len(result) <= len(oblivious)


def test_ablation_size_ordering():
    """core chase <= standard chase <= oblivious chase, all hom-equivalent."""
    source = successor_instance(8)
    oblivious = chase_st_tgds(source, TGDS)
    standard = standard_chase(source, TGDS)
    minimal = core_chase(source, TGDS)
    assert len(minimal) <= len(standard) <= len(oblivious)
    assert homomorphically_equivalent(minimal, oblivious)
    assert len(minimal) == len(core(oblivious))
