"""FIG5/EX48 -- Example 4.8 and Figure 5: odd cycles and the bounded anchor.

The SO tgd ``S(x,y) -> R(f(x),f(y)) & R(f(y),f(x))`` turns a directed cycle
into an undirected cycle.  For odd n, ``core(chase(I_n))`` is the whole
undirected n-cycle (left of Figure 5); the bounded anchor cannot be found
among subinstances of I_n (a sub-path collapses to one undirected edge), but
I_3 -- not a subinstance of I_n -- provides it (right of Figure 5).  This is
the counterexample to the proof step of [FK12, Theorem 5.2].
"""

from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.gaifman import fact_block_size
from repro.workloads import cycle_instance, path_instance


def core_of_cycle(n, so_tgd):
    return core(chase(cycle_instance(n), so_tgd))


def test_fig5_odd_cycle_core(benchmark, so_tgd_48):
    solution = benchmark(core_of_cycle, 7, so_tgd_48)
    assert len(solution) == 14
    assert fact_block_size(solution) == 14


def test_fig5_odd_cycle_series(so_tgd_48):
    """The series the figure depicts: odd cores persist, even cores collapse."""
    odd = [len(core_of_cycle(n, so_tgd_48)) for n in (3, 5, 7)]
    even = [len(core_of_cycle(n, so_tgd_48)) for n in (4, 6)]
    assert odd == [6, 10, 14]
    assert even == [2, 2]


def test_fig5_subinstances_cannot_anchor(benchmark, so_tgd_48):
    """Any proper subinstance of the cycle (a path) gives a tiny core."""

    def path_core(n):
        return core(chase(path_instance(n), so_tgd_48))

    solution = benchmark(path_core, 6)
    assert len(solution) == 2


def test_fig5_triangle_is_the_anchor(benchmark, so_tgd_48):
    solution = benchmark(core_of_cycle, 3, so_tgd_48)
    assert len(solution) == 6  # |J'| >= |J| = 6, with |I_3| = 3 small
