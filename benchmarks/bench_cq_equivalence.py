"""CQ-EQ -- CQ-equivalence of mappings (extension, [16]/[6]/[2]).

Measures the core-comparison procedure on the canonical test family, and
reproduces the semantic layering: logically equivalent mappings are
CQ-equivalent; the introduction's nested tgd is CQ-separated from each of
its finite unfoldings -- on ever larger witnesses as the unfolding grows.
"""

import pytest

from repro.core.cq_equivalence import cq_equivalent, cq_refute, canonical_test_sources
from repro.core.unfoldings import unfolding
from repro.logic.parser import parse_nested_tgd, parse_tgd


INTRO = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")


def test_cq_equivalent_positive(benchmark):
    left = [parse_tgd("S(x,y) & T(y,z) -> R(x,z)")]
    right = [parse_tgd("T(y,z) & S(x,y) -> R(x,z)")]
    report = benchmark(cq_equivalent, left, right)
    assert report.equivalent_on_batch


@pytest.mark.parametrize("n", [1, 2])
def test_cq_separation_from_unfoldings(benchmark, n):
    """The n-th unfolding is CQ-separated from the nested tgd, with the
    witness source growing with n (one more sibling each time)."""
    flat = unfolding(INTRO, n + 1)

    def separate():
        sources = canonical_test_sources([INTRO], flat, max_pattern_nodes=n + 2)
        return cq_refute([INTRO], flat, sources)

    witness = benchmark(separate)
    assert witness is not None
    assert len(witness.facts_of("S")) >= n + 1


def test_cq_equivalence_with_constructed_glav(benchmark):
    nested = parse_nested_tgd("S1(x1) -> (S2(x2) -> exists y . T(x1, x2, y))")
    from repro.core.glav_equivalence import to_glav

    glav = to_glav([nested])
    report = benchmark(cq_equivalent, [nested], glav)
    assert report.equivalent_on_batch
