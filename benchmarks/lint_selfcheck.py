"""LINT-SELFCHECK -- run the static analyzer over the repo's own corpora.

The dependency programs this repository ships -- the workload scenarios, the
paper's canonical dependencies, and every dependency literal appearing in the
``examples/`` scripts -- are exactly the programs the analyzer should be able
to vet without surprises.  This script runs :func:`repro.analysis.static.analyze`
over each corpus and writes one JSON artifact with the full reports, which CI
uploads next to the ``BENCH_*.json`` files.

The self-check *fails* (exit code 1) if any corpus produces an error-severity
finding: the shipped corpora are all hierarchy-certified by construction
(most weakly acyclic, the termination-hierarchy tour deliberately higher), so
an error here means either a corpus regression or an analyzer regression.

With ``--sarif PATH`` the script additionally writes one aggregated SARIF
2.1.0 log with one run per corpus -- the artifact the ``lint-sarif`` CI job
uploads for code-scanning consumption.  The summary also tallies which
termination (``TD00x``) and cost (``CC00x``) codes fired across the corpora,
so coverage of the new analyzer passes is visible at a glance.

With ``--analyze PATH`` it writes one *deterministic* JSON document of
decidability-frontier certificates (:func:`repro.analysis.frontier.
frontier_report` per corpus: tier, guards, degree witnesses) -- no timings,
sorted keys, so two runs must produce byte-identical files; the ``lint-sarif``
CI job runs it twice and diffs the artifacts to pin the analyzer's
determinism.

Run::

    PYTHONPATH=src python benchmarks/lint_selfcheck.py \\
        [--json PATH] [--sarif PATH] [--analyze PATH]
"""

import argparse
import ast
import json
import pathlib
import sys
import time

from repro.analysis.static import analyze
from repro.errors import ReproError
from repro.logic.parser import parse_nested_tgd, parse_so_tgd, parse_tgd

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

_PARSERS = {
    "parse_tgd": parse_tgd,
    "parse_nested_tgd": parse_nested_tgd,
    "parse_so_tgd": parse_so_tgd,
}


def _literal_dependencies(script: pathlib.Path) -> list:
    """Extract the dependencies built from string literals in an example script.

    Scans the AST for ``parse_tgd`` / ``parse_nested_tgd`` / ``parse_so_tgd``
    calls whose first argument is a (possibly implicitly concatenated) string
    literal, and parses each one.  The scripts are not executed.
    """
    deps = []
    tree = ast.parse(script.read_text())
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        parser = _PARSERS.get(name or "")
        if parser is None or not node.args:
            continue
        try:
            text = ast.literal_eval(node.args[0])
        except ValueError:
            continue
        if not isinstance(text, str):
            continue
        try:
            deps.append(parser(text))
        except ReproError:
            # Some examples demonstrate *rejected* inputs on purpose.
            continue
    return deps


def corpora() -> dict[str, list]:
    """The dependency corpora to self-check, keyed by corpus name."""
    from repro.workloads.scenarios import ALL_SCENARIOS

    result: dict[str, list] = {}
    for scenario in ALL_SCENARIOS:
        result[f"scenario:{scenario.name}:nested"] = [scenario.nested]
        result[f"scenario:{scenario.name}:flat"] = list(scenario.flat)
    for script in sorted(EXAMPLES_DIR.glob("*.py")):
        deps = _literal_dependencies(script)
        if deps:
            result[f"example:{script.stem}"] = deps
    return result


def run_selfcheck() -> tuple[dict, dict]:
    """Analyze every corpus; return (JSON-ready summary, aggregated SARIF log)."""
    from repro.analysis.sarif import SARIF_SCHEMA, sarif_report

    reports = {}
    errors = 0
    code_counts: dict[str, int] = {}
    sarif_runs = []
    start = time.perf_counter()
    for name, deps in corpora().items():
        report = analyze(deps)
        reports[name] = report.to_dict()
        errors += len(report.errors)
        for finding in report.findings:
            code_counts[finding.code] = code_counts.get(finding.code, 0) + 1
        sarif_runs.append(sarif_report(report, tool_name=f"repro-lint:{name}")["runs"][0])
    elapsed = time.perf_counter() - start
    summary = {
        "benchmark": "LINT-SELFCHECK",
        "corpora": len(reports),
        "error_findings": errors,
        "finding_codes": dict(sorted(code_counts.items())),
        "analyzer_runtime_s": elapsed,
        "reports": reports,
    }
    sarif_log = {"$schema": SARIF_SCHEMA, "version": "2.1.0", "runs": sarif_runs}
    return summary, sarif_log


def run_analyze() -> dict:
    """Frontier certificates for every corpus -- fully deterministic JSON."""
    from repro.analysis.frontier import clear_frontier_cache, frontier_report

    clear_frontier_cache()
    return {
        name: frontier_report(deps).to_dict()
        for name, deps in sorted(corpora().items())
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", help="write the summary as JSON")
    parser.add_argument(
        "--sarif", metavar="PATH", help="write an aggregated SARIF 2.1.0 log"
    )
    parser.add_argument(
        "--analyze", metavar="PATH",
        help="write deterministic frontier certificates (tier/guards/degrees)",
    )
    args = parser.parse_args(argv)
    summary, sarif_log = run_selfcheck()
    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")
    if args.sarif:
        pathlib.Path(args.sarif).write_text(
            json.dumps(sarif_log, indent=2, sort_keys=True) + "\n"
        )
    if args.analyze:
        pathlib.Path(args.analyze).write_text(
            json.dumps(run_analyze(), indent=2, sort_keys=True) + "\n"
        )
    for name, report in summary["reports"].items():
        cls = (report.get("hierarchy") or {}).get("class", "?")
        counts = {}
        for finding in report["findings"]:
            counts[finding["severity"]] = counts.get(finding["severity"], 0) + 1
        print(f"{name:45s} {cls:22s} findings={counts or '{}'}")
    print(f"finding codes: {summary['finding_codes'] or '{}'}")
    print(
        f"{summary['corpora']} corpora analyzed in "
        f"{summary['analyzer_runtime_s'] * 1000:.1f} ms, "
        f"{summary['error_findings']} error finding(s)"
    )
    return 1 if summary["error_findings"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
