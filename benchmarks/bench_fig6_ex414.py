"""FIG6/EX414 -- Example 4.14 and Figure 6: clique fact graphs, growing
null-graph paths.

The SO tgd ``S(x,y) & Q(z) -> R(f(z,x), f(z,y), g(z))`` on successor+Q
sources produces f-blocks that are cliques (so the f-degree tool of
Theorem 4.12 is useless), yet its null graph contains a simple path that
grows with the successor length -- which by Theorem 4.16 shows the tgd is
not equivalent to any nested GLAV mapping.
"""

from repro.core.separation import fblock_profile, nested_expressibility_report
from repro.engine.chase import chase
from repro.engine.core_instance import core
from repro.engine.gaifman import full_fact_graph
from repro.workloads.families import SUCCESSOR_Q_FAMILY


def test_fig6_fact_graph_is_clique(benchmark, so_tgd_414):
    """Top of Figure 6: the fact graph for successor length 5 is complete."""

    def clique_check():
        solution = core(chase(SUCCESSOR_Q_FAMILY(5), so_tgd_414))
        return full_fact_graph(solution)

    graph = benchmark(clique_check)
    n = graph.number_of_nodes()
    assert n == 5
    assert graph.number_of_edges() == n * (n - 1) // 2


def test_fig6_null_graph_path_grows(benchmark, so_tgd_414):
    """Bottom of Figure 6: the null graph has a growing simple path."""
    profiles = benchmark(
        fblock_profile, [so_tgd_414], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5]
    )
    paths = [p.path_length for p in profiles]
    assert all(b > a for a, b in zip(paths, paths[1:]))


def test_ex414_verdict(benchmark, so_tgd_414):
    report = benchmark(
        nested_expressibility_report, [so_tgd_414], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5]
    )
    assert report.nested_expressible is False
    assert "4.16" in report.reason  # only the path-length tool can separate here
