"""COMPOSE -- composition of GLAV mappings into SO tgds (extension, [8]).

Measures the composition algorithm and the agreement between the one-step
chase (with the composed SO tgd) and the two-step chase.  Clause count scales
multiplicatively in the resolution choices -- the combinatorics that make SO
tgds, not GLAV, the composition language.
"""

import pytest

from repro.engine.chase import chase_so_tgd
from repro.engine.homomorphism import homomorphically_equivalent
from repro.logic.parser import parse_instance, parse_tgd
from repro.mappings.composition import compose, compose_chase
from repro.workloads import successor_instance


FIRST = [
    parse_tgd("Takes(n, co) -> Takes1(n, co)"),
    parse_tgd("Takes(n, co) -> exists s . Student(n, s)"),
]
SECOND = [parse_tgd("Student(n, s) & Takes1(n, co) -> Enrolled(s, co)")]


def test_compose_construction(benchmark):
    composed = benchmark(compose, FIRST, SECOND)
    assert len(composed.clauses) == 1
    assert len(composed.functions) == 1


def test_compose_clause_blowup(benchmark):
    """k ways to derive each of m body atoms gives k^m clauses."""
    first = [
        parse_tgd("A(x, y) -> M(x, y)"),
        parse_tgd("B(x, y) -> M(x, y)"),
        parse_tgd("C(x, y) -> M(x, y)"),
    ]
    second = [parse_tgd("M(x, y) & M(y, z) -> T(x, z)")]
    composed = benchmark(compose, first, second)
    assert len(composed.clauses) == 9


@pytest.mark.parametrize("n", [4, 8])
def test_compose_chase_agreement(benchmark, n):
    source = parse_instance(
        ", ".join(f"Takes(p{i}, c{i % 3})" for i in range(n))
    )
    composed = compose(FIRST, SECOND)

    def both():
        return (
            chase_so_tgd(source, composed),
            compose_chase(source, FIRST, SECOND),
        )

    one_step, two_step = benchmark(both)
    assert homomorphically_equivalent(one_step, two_step)


def test_compose_iterated(benchmark):
    """Three-mapping pipeline composed pairwise: (A ∘ B) is GLAV-free, so the
    second composition uses the two-step chase as the reference."""
    a = [parse_tgd("S(x, y) -> M1(x, y)")]
    b = [parse_tgd("M1(x, y) -> exists z . M2(x, z)")]
    ab = benchmark(compose, a, b)
    source = successor_instance(5)
    # the composed chase equals chasing through the pipeline
    assert homomorphically_equivalent(
        chase_so_tgd(source, ab), compose_chase(source, a, b)
    )
