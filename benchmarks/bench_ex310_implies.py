"""EX310/FIG4 -- Example 3.10 and Figure 4: the procedure IMPLIES in action.

Reproduces the paper's worked run of the decision procedure:

- tau' does not imply tau, refuted on the pattern p''_2 whose canonical
  instances are I = {S1(a1), S2(a2), S2(a2')} and
  J = {R(a2, f(a1)), R(a2', f(a1))};
- tau'' implies tau, with the homomorphism [f(a1) -> a1] closing the check;
- the clone bounds are k = 2 for tau' and k = 3 for tau''.
"""

from repro.core.implication import implies_tgd
from repro.core.patterns import Pattern


def test_ex310_tau_prime_refuted(benchmark, tau_310, tau_prime_310):
    result = benchmark(implies_tgd, [tau_prime_310], tau_310)
    assert not result.holds
    assert result.k == 2
    # the refuting pattern needs at least two S2 triggerings
    assert result.failing_pattern.node_count >= 3
    assert len(result.counterexample_source.facts_of("S2")) >= 2


def test_ex310_tau_double_prime_implied(benchmark, tau_310, tau_dprime_310):
    result = benchmark(implies_tgd, [tau_dprime_310], tau_310)
    assert result.holds
    assert result.k == 3
    # the complete set P_3(tau) = {p', p'', p''_2, p''_3} was checked
    assert result.patterns_checked == 4


def test_fig4_pattern_set(benchmark, tau_310):
    from repro.core.patterns import enumerate_k_patterns

    patterns = benchmark(enumerate_k_patterns, tau_310, 3)
    assert patterns == [
        Pattern(1),
        Pattern(1, (Pattern(2),)),
        Pattern(1, (Pattern(2), Pattern(2))),
        Pattern(1, (Pattern(2), Pattern(2), Pattern(2))),
    ]
