"""SCALE-HOM -- indexed homomorphism kernel and core engine vs the seed baselines.

Three workloads, each with a predictable asymptotic gap:

- **pinpoint**: n independent single-null blocks ``R(c_i, _x_i)`` against n
  ground facts ``R(c_i, d_i)``.  The kernel seeds each block's candidates
  from the per-(relation, position, value) index (O(1) per block); the naive
  finder scans every fact of ``R`` per source fact (O(n) per fact, O(n^2)
  total).
- **hub / hub-unsat**: a star of m spokes ``R(_h, _x_i)`` whose hub null is
  pinned by a single ``T(_h, c)`` fact, against g candidate hubs.  AC-3
  propagation intersects the hub's domain to one value (or none, in the
  unsatisfiable variant) before any search; the naive backtracker re-binds
  the hub g times and re-scans g candidates per spoke.
- **core**: the core of the chase of a star source under the introduction's
  nested tgd -- n isomorphic f-blocks of n facts each that must fold into
  one.  The block-memoizing worklist engine
  (:func:`repro.engine.core_instance.core`) against the seed loop preserved
  as :func:`repro.engine.naive.core_naive` (restricted immutable instance
  per candidate null, restart per elimination).

Two further axes compare the columnar/SQL backends of this PR's core stack:

- **columnar kernel** (``columnar_*`` keys): the id-space kernel
  (:mod:`repro.engine.hom_kernel_columnar`) against the generic kernel
  decoding the *same* :class:`ColumnarInstance` target through the
  ``FactIndex`` protocol, on every hom workload above.
- **core backends** (``core_backends`` key): cold-cache
  ``core(backend="tuple"/"columnar"/"sql")`` wall times on the star chase.

Run as a script to record the comparison in ``BENCH_hom.json``::

    PYTHONPATH=src python benchmarks/bench_scaling_hom.py [--smoke] [--json PATH]

Acceptance: the pinpoint workload must show a >= 10x kernel-vs-naive speedup
at the largest size, and the id-space kernel must be at least as fast as
decode-through on the hub workload at the largest size (both asserted in
smoke runs too -- the perf-smoke CI gate).
"""

import time

import pytest

from repro.engine.chase import chase
from repro.engine.columnar import ColumnarInstance
from repro.engine.core_instance import clear_fold_cache, core
from repro.engine.hom_kernel import (
    block_homomorphism_generic,
    find_homomorphism_indexed,
)
from repro.engine.homomorphism import find_homomorphism, is_homomorphism
from repro.engine.naive import core_naive, find_homomorphism_naive
from repro.logic.atoms import Atom
from repro.logic.instances import Instance
from repro.logic.parser import parse_nested_tgd
from repro.logic.values import Constant, Null

NESTED = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")

HOM_SIZES = [100, 200, 400]
SMOKE_HOM_SIZES = [30, 60, 120]
CORE_SIZES = [6, 9, 12]
SMOKE_CORE_SIZES = [4, 6, 8]

HUB_SPOKES = 10


def pinpoint_instances(n: int) -> tuple[Instance, Instance]:
    """n independent single-null blocks, each with exactly one image fact."""
    source = Instance(Atom("R", (Constant(f"c{i}"), Null(f"x{i}"))) for i in range(n))
    target = Instance(Atom("R", (Constant(f"c{i}"), Constant(f"d{i}"))) for i in range(n))
    return source, target


def hub_instances(g: int, satisfiable: bool = True) -> tuple[Instance, Instance]:
    """One block: a hub null with HUB_SPOKES spokes, g candidate hub values.

    A single ``T(_h, c0)`` fact pins the hub to the last candidate; in the
    unsatisfiable variant the pinning fact has no image at all.
    """
    hub = Null("h")
    source_facts = [Atom("R", (hub, Null(f"x{i}"))) for i in range(HUB_SPOKES)]
    source_facts.append(Atom("T", (hub, Constant("c0"))))
    target_facts = [
        Atom("R", (Constant(f"h{j}"), Constant(f"y{j}"))) for j in range(g)
    ]
    pin = Constant("c0") if satisfiable else Constant("c1")
    target_facts.append(Atom("T", (Constant(f"h{g - 1}"), pin)))
    return Instance(source_facts), Instance(target_facts)


def star_chase(n: int) -> Instance:
    """Chase of an n-spoke star under NESTED: n isomorphic blocks of n facts."""
    star = Instance(Atom("S", (Constant("hub"), Constant(f"v{i}"))) for i in range(n))
    return chase(star, NESTED)


def _best_of(func, *args, repeats: int = 3, **kwargs):
    """Minimum wall time of *repeats* runs, and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def compare_hom(workload: str, n: int) -> dict:
    """Time the indexed kernel against the naive finder on one workload."""
    source, target, expect = _hom_workload(workload, n)
    kernel_s, kernel_map = _best_of(find_homomorphism, source, target)
    naive_s, naive_map = _best_of(find_homomorphism_naive, source, target)
    assert (kernel_map is not None) == expect, workload
    assert (naive_map is not None) == expect, workload
    if expect:
        assert is_homomorphism(kernel_map, source, target)
        assert is_homomorphism(naive_map, source, target)
    return {"workload": workload, "n": n, "kernel_s": kernel_s,
            "naive_s": naive_s, "speedup": naive_s / kernel_s}


def _hom_workload(workload: str, n: int) -> tuple[Instance, Instance, bool]:
    if workload == "pinpoint":
        source, target = pinpoint_instances(n)
        return source, target, True
    if workload == "hub":
        source, target = hub_instances(n, satisfiable=True)
        return source, target, True
    if workload == "hub_unsat":
        source, target = hub_instances(n, satisfiable=False)
        return source, target, False
    raise ValueError(workload)


def compare_hom_columnar(workload: str, n: int) -> dict:
    """Time the id-space kernel against decode-through on a columnar target.

    Both contestants see the *same* :class:`ColumnarInstance`:
    ``find_homomorphism_indexed`` dispatches to the integer-domain kernel,
    while ``block_homomorphism_generic`` decodes rows through the
    ``FactIndex`` protocol (``facts_of`` / ``facts_with``) -- the cost the
    id-space kernel exists to avoid.
    """
    source, target, expect = _hom_workload(workload, n)
    store = ColumnarInstance(target)
    idspace_s, idspace_map = _best_of(find_homomorphism_indexed, source, store)
    decode_s, decode_map = _best_of(block_homomorphism_generic, source, store)
    assert (idspace_map is not None) == expect, workload
    assert (decode_map is not None) == expect, workload
    if expect:
        assert is_homomorphism(idspace_map, source, target)
        assert is_homomorphism(decode_map, source, target)
    return {"workload": workload, "n": n, "idspace_s": idspace_s,
            "decode_s": decode_s, "speedup": decode_s / idspace_s}


def compare_core_backends(n: int) -> dict:
    """Cold-cache core wall times across the three backends on the star chase."""
    chased = star_chase(n)

    def cold(backend: str) -> Instance:
        clear_fold_cache()
        return core(chased, backend=backend)

    times: dict[str, float] = {}
    results: dict[str, Instance] = {}
    for backend in ("tuple", "columnar", "sql"):
        times[backend], results[backend] = _best_of(cold, backend)
    for backend in ("columnar", "sql"):
        assert len(results[backend]) == len(results["tuple"]) == n
        assert results[backend].isomorphic(results["tuple"])
    return {"n": n, "chase_facts": len(chased), "tuple_s": times["tuple"],
            "columnar_s": times["columnar"], "sql_s": times["sql"]}


def _cold_core(instance: Instance) -> Instance:
    """Run the new core engine with an emptied fold cache (cold-start timing)."""
    clear_fold_cache()
    return core(instance)


def compare_core(n: int) -> dict:
    """Time the block-memoizing core engine against the seed elimination loop."""
    chased = star_chase(n)
    kernel_s, folded = _best_of(_cold_core, chased)
    naive_s, folded_naive = _best_of(core_naive, chased)
    assert len(folded) == len(folded_naive) == n  # one block of n facts survives
    assert find_homomorphism(folded, folded_naive) is not None
    assert find_homomorphism(folded_naive, folded) is not None
    return {"n": n, "chase_facts": len(chased), "kernel_s": kernel_s,
            "naive_s": naive_s, "speedup": naive_s / kernel_s}


@pytest.mark.parametrize("n", [50, 100, 200])
def test_scale_hom_pinpoint(benchmark, n):
    source, target = pinpoint_instances(n)
    mapping = benchmark(find_homomorphism, source, target)
    assert mapping is not None


@pytest.mark.parametrize("g", [50, 100, 200])
def test_scale_hom_hub(benchmark, g):
    source, target = hub_instances(g)
    mapping = benchmark(find_homomorphism, source, target)
    assert mapping is not None and mapping[Null("h")] == Constant(f"h{g - 1}")


@pytest.mark.parametrize("n", CORE_SIZES)
def test_scale_core_star(benchmark, n):
    chased = star_chase(n)
    folded = benchmark(_cold_core, chased)
    assert len(folded) == n


def test_hom_kernel_speedup():
    """Acceptance: >= 10x over the naive finder at the largest pinpoint size."""
    row = compare_hom("pinpoint", HOM_SIZES[-1])
    assert row["speedup"] >= 10.0, row


def test_columnar_kernel_hub_gate():
    """Acceptance: the id-space kernel is at least as fast as decoding the
    same columnar target through the FactIndex protocol, on the hub workload
    at the largest smoke size (the perf-smoke CI gate)."""
    row = compare_hom_columnar("hub", SMOKE_HOM_SIZES[-1])
    assert row["speedup"] >= 1.0, row


@pytest.mark.parametrize("backend", ["tuple", "columnar", "sql"])
def test_scale_core_backends(benchmark, backend):
    chased = star_chase(SMOKE_CORE_SIZES[-1])

    def cold():
        clear_fold_cache()
        return core(chased, backend=backend)

    folded = benchmark(cold)
    assert len(folded) == SMOKE_CORE_SIZES[-1]


def main(argv=None) -> dict:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller sizes (CI smoke run)")
    parser.add_argument("--json", metavar="PATH", default="BENCH_hom.json",
                        help="where to write the results (default: %(default)s)")
    args = parser.parse_args(argv)

    hom_sizes = SMOKE_HOM_SIZES if args.smoke else HOM_SIZES
    core_sizes = SMOKE_CORE_SIZES if args.smoke else CORE_SIZES
    report = {
        "benchmark": "scale-hom-kernel",
        "smoke": args.smoke,
        "pinpoint": [compare_hom("pinpoint", n) for n in hom_sizes],
        "hub": [compare_hom("hub", n) for n in hom_sizes],
        "hub_unsat": [compare_hom("hub_unsat", n) for n in hom_sizes],
        "core": [compare_core(n) for n in core_sizes],
        "columnar_pinpoint": [compare_hom_columnar("pinpoint", n)
                              for n in hom_sizes],
        "columnar_hub": [compare_hom_columnar("hub", n) for n in hom_sizes],
        "columnar_hub_unsat": [compare_hom_columnar("hub_unsat", n)
                               for n in hom_sizes],
        "core_backends": [compare_core_backends(n) for n in core_sizes],
    }
    report["largest_pinpoint_speedup"] = report["pinpoint"][-1]["speedup"]
    report["largest_hub_speedup"] = report["hub"][-1]["speedup"]
    report["largest_core_speedup"] = report["core"][-1]["speedup"]
    report["largest_hub_columnar_speedup"] = \
        report["columnar_hub"][-1]["speedup"]

    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)
    for key in ("pinpoint", "hub", "hub_unsat"):
        for row in report[key]:
            print(f"{key:9s} n={row['n']:4d}  kernel {row['kernel_s']:.4f}s  "
                  f"naive {row['naive_s']:.4f}s  speedup {row['speedup']:.1f}x")
    for row in report["core"]:
        print(f"core      n={row['n']:4d}  kernel {row['kernel_s']:.4f}s  "
              f"naive {row['naive_s']:.4f}s  speedup {row['speedup']:.1f}x")
    for key in ("columnar_pinpoint", "columnar_hub", "columnar_hub_unsat"):
        for row in report[key]:
            print(f"{key:18s} n={row['n']:4d}  id-space {row['idspace_s']:.4f}s  "
                  f"decode {row['decode_s']:.4f}s  speedup {row['speedup']:.1f}x")
    for row in report["core_backends"]:
        print(f"core_backends      n={row['n']:4d}  "
              f"tuple {row['tuple_s']:.4f}s  columnar {row['columnar_s']:.4f}s  "
              f"sql {row['sql_s']:.4f}s")
    print(f"wrote {args.json}")
    # The columnar-kernel hub gate holds at every size tier (smoke included:
    # the perf-smoke CI job runs this script with --smoke).
    assert report["largest_hub_columnar_speedup"] >= 1.0
    if not args.smoke:
        assert report["largest_pinpoint_speedup"] >= 10.0
    return report


if __name__ == "__main__":
    main()
