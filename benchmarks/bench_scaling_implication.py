"""SCALE-IMPL -- runtime scaling of the decision procedure IMPLIES.

The cost of IMPLIES is driven by the clone bound ``k = v * w + 1`` (which
fixes how many k-patterns must be checked) and by the chase-plus-homomorphism
work per pattern.  We scale ``w`` (universal variables on the left-hand side)
and the nesting of the right-hand side.
"""

import pytest

from repro.core.implication import implies_tgd
from repro.logic.parser import parse_nested_tgd, parse_tgd


def wide_lhs(width: int):
    """S1(x1) & ... & Sw(xw) & S2(y) -> R(y, x1): w+1 universal variables."""
    body = " & ".join(f"B{i}(x{i})" for i in range(1, width + 1))
    return parse_tgd(f"{body} & S2(y) -> R(y, x1)")


@pytest.mark.parametrize("width", [1, 2, 3])
def test_scale_implies_by_lhs_width(benchmark, width, tau_310):
    """Growing w grows k and with it the number of patterns checked."""
    lhs = wide_lhs(width)
    result = benchmark(implies_tgd, [lhs], tau_310)
    assert result.k == width + 2
    assert not result.holds  # B-atoms never match tau's canonical sources


@pytest.mark.parametrize("parts", [2, 3])
def test_scale_implies_by_rhs_nesting(benchmark, parts):
    """Deeper right-hand sides multiply the pattern count."""
    if parts == 2:
        rhs = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
    else:
        rhs = parse_nested_tgd(
            "S1(x1) -> exists y . (S2(x2) -> (S3(x3) -> R(x2, x3, y)))"
        )
    lhs = parse_tgd("S1(x1) -> T(x1)")
    result = benchmark(implies_tgd, [lhs], rhs, (), 100_000)
    assert not result.holds  # T does not help with R


def test_scale_implies_self_implication(benchmark, intro_nested):
    """Implication between variable-renamed copies of the introduction's
    nested tgd (k = 4): the procedure must do the full 5-pattern sweep
    because the copies are not syntactically equal."""
    renamed = parse_nested_tgd(
        "S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))"
    )
    result = benchmark(implies_tgd, [intro_nested], renamed, (), 200_000)
    assert result.holds
    assert result.k == 4
    assert result.patterns_checked == 5


def test_scale_implies_syntactic_shortcircuit(benchmark, sigma_star):
    """Literal self-implication is answered without touching the pattern
    machinery (whose k = 9 sweep would be non-elementary)."""
    result = benchmark(implies_tgd, [sigma_star], sigma_star, (), 200_000)
    assert result.holds
    assert result.patterns_checked == 0


def test_scale_implies_nonelementary_wall(sigma_star):
    """Implication between renamed copies of the 4-part sigma (*) has k = 9
    and |P_9| = 10 * 10^10 patterns: the honest non-elementary blow-up of
    Section 3.  The procedure reports the wall instead of running forever."""
    import pytest as _pytest

    from repro.core.patterns import count_k_patterns
    from repro.errors import ResourceLimitExceeded

    renamed = parse_nested_tgd(
        "S1(u1) -> exists w1 . ((S2(u2) -> R2(w1,u2)) & (S3(u1,u3) -> R3(w1,u3) "
        "& (S4(u3,u4) -> exists w2 . R4(w2,u4))))"
    )
    k = renamed.skolem_function_count() * sigma_star.universal_variable_count() + 1
    assert k == 9
    assert count_k_patterns(renamed, k) == 10 * 10 ** 10
    with _pytest.raises(ResourceLimitExceeded):
        implies_tgd([sigma_star], renamed, (), 200_000)
