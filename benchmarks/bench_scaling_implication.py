"""SCALE-IMPL -- runtime scaling of the decision procedure IMPLIES.

The cost of IMPLIES is driven by the clone bound ``k = v * w + 1`` (which
fixes how many k-patterns must be checked) and by the chase-plus-homomorphism
work per pattern.  We scale ``w`` (universal variables on the left-hand side)
and the nesting of the right-hand side.

The ``test_cache_*`` benchmarks exercise the per-pattern chase cache on the
Example 3.10 workload (``tau``, ``tau'``, ``tau''``): a cold sweep populates
the cache, repeated sweeps with the same left-hand side re-chase nothing.

Run as a script to record the cache behaviour in ``BENCH_implication.json``::

    PYTHONPATH=src python benchmarks/bench_scaling_implication.py [--json PATH]
"""

import time

import pytest

from repro import perf
from repro.core.implication import clear_chase_cache, implies_tgd
from repro.logic.parser import parse_nested_tgd, parse_tgd


# Example 3.10: tau, tau', tau''
EX310_TAU = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
EX310_TAU_P = parse_tgd("S2(x2) -> exists z . R(x2, z)")
EX310_TAU_PP = parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")


def cache_workload() -> dict:
    """Run the Example 3.10 IMPLIES checks cold and warm; report timings and
    the cache counters.  The warm pass repeats the same queries, so every
    ``chase(I_p, sigma)`` is a cache hit (``implies.cache_hits > 0``)."""
    queries = [
        ([EX310_TAU_PP], EX310_TAU, True),
        ([EX310_TAU_P], EX310_TAU, False),
    ]

    def sweep() -> int:
        patterns = 0
        for lhs, rhs, expected in queries:
            result = implies_tgd(lhs, rhs)
            assert result.holds == expected
            patterns += result.patterns_checked
        return patterns

    clear_chase_cache()
    with perf.measuring() as stats:
        start = time.perf_counter()
        cold_patterns = sweep()
        cold_s = time.perf_counter() - start
        cold_hits = stats.get("implies.cache_hits")
        start = time.perf_counter()
        sweep()
        warm_s = time.perf_counter() - start
    return {
        "workload": "example-3.10",
        "cold_s": cold_s,
        "warm_s": warm_s,
        "patterns_per_sweep": cold_patterns,
        "cache_hits_cold": cold_hits,
        "cache_hits_warm": stats.get("implies.cache_hits") - cold_hits,
        "cache_misses": stats.get("implies.cache_misses"),
    }


def prepass_workload() -> dict:
    """Measure the syntactic subsumption pre-pass and the static analyzer.

    The workload asks IMPLIES queries that are *trivial* (the right-hand side
    is a renamed copy or weakening of a left-hand-side member) -- including
    the renamed 4-part sigma(*) whose k = 9 sweep would otherwise hit the
    non-elementary wall -- and records how many sweeps the pre-pass skipped,
    plus the runtime of a full `analyze()` over the benchmark dependencies.
    """
    from repro.analysis.static import analyze

    sigma_star = parse_nested_tgd(
        "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
        "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
    )
    sigma_star_renamed = parse_nested_tgd(
        "S1(u1) -> exists w1 . ((S2(u2) -> R2(w1,u2)) & (S3(u1,u3) -> R3(w1,u3) "
        "& (S4(u3,u4) -> exists w2 . R4(w2,u4))))"
    )
    intro = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
    intro_renamed = parse_nested_tgd(
        "S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))"
    )
    queries = [
        ([sigma_star], sigma_star_renamed),   # alpha-equivalent, k = 9
        ([intro], intro_renamed),             # alpha-equivalent, k = 4
        ([intro], parse_tgd("S(x1,x2) & S(x1,x3) -> exists y . R(y,x3)")),  # projection
        ([EX310_TAU_PP], parse_tgd("S1(x1) & S2(x2) -> exists z . R(x2, z)")),  # weakening
    ]
    with perf.measuring() as stats:
        start = time.perf_counter()
        for lhs, rhs in queries:
            result = implies_tgd(lhs, rhs, (), 200_000)
            assert result.holds
            assert result.patterns_checked == 0
        prepass_s = time.perf_counter() - start
        checks = stats.get("implies.subsumption_checks")
        skips = stats.get("implies.subsumption_skips")

    deps = [sigma_star, intro, EX310_TAU, EX310_TAU_P, EX310_TAU_PP]
    start = time.perf_counter()
    report = analyze(deps)
    analyzer_s = time.perf_counter() - start
    return {
        "workload": "trivial-implications",
        "queries": len(queries),
        "prepass_s": prepass_s,
        "subsumption_checks": checks,
        "subsumption_skips": skips,
        "analyzer_runtime_ms": analyzer_s * 1000,
        "analyzer_weakly_acyclic": report.termination.weakly_acyclic,
        "analyzer_findings": len(report.findings),
    }


def wide_lhs(width: int):
    """S1(x1) & ... & Sw(xw) & S2(y) -> R(y, x1): w+1 universal variables."""
    body = " & ".join(f"B{i}(x{i})" for i in range(1, width + 1))
    return parse_tgd(f"{body} & S2(y) -> R(y, x1)")


@pytest.mark.parametrize("width", [1, 2, 3])
def test_scale_implies_by_lhs_width(benchmark, width, tau_310):
    """Growing w grows k and with it the number of patterns checked."""
    lhs = wide_lhs(width)
    result = benchmark(implies_tgd, [lhs], tau_310)
    assert result.k == width + 2
    assert not result.holds  # B-atoms never match tau's canonical sources


@pytest.mark.parametrize("parts", [2, 3])
def test_scale_implies_by_rhs_nesting(benchmark, parts):
    """Deeper right-hand sides multiply the pattern count."""
    if parts == 2:
        rhs = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
    else:
        rhs = parse_nested_tgd(
            "S1(x1) -> exists y . (S2(x2) -> (S3(x3) -> R(x2, x3, y)))"
        )
    lhs = parse_tgd("S1(x1) -> T(x1)")
    result = benchmark(implies_tgd, [lhs], rhs, (), 100_000)
    assert not result.holds  # T does not help with R


def test_scale_implies_self_implication(benchmark, intro_nested):
    """Implication between variable-renamed copies of the introduction's
    nested tgd (k = 4): with the syntactic pre-pass disabled the procedure
    must do the full 5-pattern sweep because the copies are not equal."""
    renamed = parse_nested_tgd(
        "S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))"
    )
    result = benchmark(implies_tgd, [intro_nested], renamed, (), 200_000,
                       subsumption=False)
    assert result.holds
    assert result.k == 4
    assert result.patterns_checked == 5


def test_subsumption_prepass_skips_renamed_copy(benchmark, intro_nested):
    """The same renamed-copy query with the (default) pre-pass enabled is
    answered by alpha-equivalence: zero patterns chased."""
    renamed = parse_nested_tgd(
        "S(u1,u2) -> exists w . (R(w,u2) & (S(u1,u3) -> R(w,u3)))"
    )
    result = benchmark(implies_tgd, [intro_nested], renamed, (), 200_000)
    assert result.holds
    assert result.patterns_checked == 0


def test_scale_implies_syntactic_shortcircuit(benchmark, sigma_star):
    """Literal self-implication is answered without touching the pattern
    machinery (whose k = 9 sweep would be non-elementary)."""
    result = benchmark(implies_tgd, [sigma_star], sigma_star, (), 200_000)
    assert result.holds
    assert result.patterns_checked == 0


def test_cache_hits_on_ex310_workload(benchmark):
    """Acceptance: the chase cache reports hits (> 0) on the Example 3.10
    workload -- the warm sweep re-chases no canonical instance."""
    row = benchmark(cache_workload)
    assert row["cache_hits_warm"] > 0
    assert row["cache_hits_warm"] == row["patterns_per_sweep"]
    assert row["cache_misses"] <= row["patterns_per_sweep"]


def test_parallel_sweep_matches_serial_diagnostics(benchmark):
    """The parallel sweep returns the same verdict and diagnostics as the
    serial one on the failing Example 3.10 check."""
    clear_chase_cache()
    serial = implies_tgd([EX310_TAU_P], EX310_TAU)
    clear_chase_cache()
    parallel = benchmark(implies_tgd, [EX310_TAU_P], EX310_TAU, (), 1_000_000,
                         parallel=2)
    assert not parallel.holds
    assert parallel.patterns_checked == serial.patterns_checked
    assert parallel.failing_pattern == serial.failing_pattern
    assert parallel.counterexample_source == serial.counterexample_source


def test_scale_implies_nonelementary_wall(sigma_star):
    """Implication between renamed copies of the 4-part sigma (*) has k = 9
    and |P_9| = 10 * 10^10 patterns: the honest non-elementary blow-up of
    Section 3.  The procedure reports the wall instead of running forever."""
    import pytest as _pytest

    from repro.core.patterns import count_k_patterns
    from repro.errors import ResourceLimitExceeded

    renamed = parse_nested_tgd(
        "S1(u1) -> exists w1 . ((S2(u2) -> R2(w1,u2)) & (S3(u1,u3) -> R3(w1,u3) "
        "& (S4(u3,u4) -> exists w2 . R4(w2,u4))))"
    )
    k = renamed.skolem_function_count() * sigma_star.universal_variable_count() + 1
    assert k == 9
    assert count_k_patterns(renamed, k) == 10 * 10 ** 10
    with _pytest.raises(ResourceLimitExceeded):
        implies_tgd([sigma_star], renamed, (), 200_000, subsumption=False)
    # The syntactic pre-pass recognizes the renamed copy and answers the same
    # query without enumerating a single pattern.
    shortcut = implies_tgd([sigma_star], renamed, (), 200_000)
    assert shortcut.holds
    assert shortcut.patterns_checked == 0


def main(argv=None) -> dict:
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH",
                        default="BENCH_implication.json",
                        help="where to write the results (default: %(default)s)")
    args = parser.parse_args(argv)

    report = {"benchmark": "scale-implication-cache",
              "cache": cache_workload(),
              "subsumption": prepass_workload()}
    with open(args.json, "w") as handle:
        json.dump(report, handle, indent=2)
    row = report["cache"]
    print(f"ex3.10 cold {row['cold_s']:.4f}s  warm {row['warm_s']:.4f}s  "
          f"hits(warm) {row['cache_hits_warm']}  misses {row['cache_misses']}")
    sub = report["subsumption"]
    print(f"pre-pass: {sub['subsumption_skips']}/{sub['queries']} sweeps skipped "
          f"in {sub['prepass_s']:.4f}s  "
          f"(analyzer: {sub['analyzer_runtime_ms']:.1f} ms)")
    print(f"wrote {args.json}")
    assert row["cache_hits_warm"] > 0
    assert sub["subsumption_skips"] == sub["queries"]
    return report


if __name__ == "__main__":
    main()
