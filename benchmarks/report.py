"""Regenerate every paper artifact as text:  python benchmarks/report.py

One section per experiment id of DESIGN.md.  The output of this script is
the data recorded in EXPERIMENTS.md (paper-vs-measured).
"""

from __future__ import annotations

import time

from repro import (
    Pattern,
    clear_chase_cache,
    canonical_instances,
    chase,
    count_k_patterns,
    decide_bounded_fblock_size,
    enumerate_k_patterns,
    fact_block_size,
    fblock_profile,
    implies_tgd,
    nested_expressibility_report,
    one_patterns,
    parse_egd,
    parse_instance,
    parse_nested_tgd,
    parse_so_tgd,
    parse_tgd,
)
from repro import perf
from repro.core.canonical import legal_canonical_instances
from repro.engine.chase import chase_so_tgd
from repro.engine.core_instance import core
from repro.engine.gaifman import fblock_degree, full_fact_graph
from repro.engine.model_check import satisfies_nested, satisfies_so
from repro.turing.encoding import run_source_instance
from repro.turing.machine import halting_machine, looping_machine
from repro.turing.reduction import build_reduction, enumeration_chain_length
from repro.workloads import cycle_instance, successor_instance
from repro.workloads.families import SUCCESSOR_FAMILY, SUCCESSOR_Q_FAMILY


SIGMA_STAR = parse_nested_tgd(
    "S1(x1) -> exists y1 . ((S2(x2) -> R2(y1,x2)) & (S3(x1,x3) -> R3(y1,x3) "
    "& (S4(x3,x4) -> exists y2 . R4(y2,x4))))"
)
INTRO = parse_nested_tgd("S(x1,x2) -> exists y . (R(y,x2) & (S(x1,x3) -> R(y,x3)))")
TAU = parse_nested_tgd("S1(x1) -> exists y . (S2(x2) -> R(x2, y))")
TAU_P = parse_tgd("S2(x2) -> exists z . R(x2, z)")
TAU_PP = parse_tgd("S1(x1) & S2(x2) -> R(x2, x1)")
SO_48 = parse_so_tgd("S(x,y) -> R(f(x), f(y)) & R(f(y), f(x))")
SO_413 = parse_so_tgd("S(x,y) -> R(f(x), f(y))")
SO_414 = parse_so_tgd("S(x,y) & Q(z) -> R(f(z,x), f(z,y), g(z))")
SO_415 = parse_so_tgd("S(x,y) & Q(z) -> R(f(x,y,z), g(z), x)")
NESTED_415 = parse_nested_tgd("Q(z) -> exists u . (S(x,y) -> exists v . R(v,u,x))")
SIGMA_53 = parse_nested_tgd("Q(z) -> exists y . (P1(z,x1) & P2(z,x2) -> R(y,x1,x2))")
EGD_53 = parse_egd("P1(z,x1) & P1(z,xp) -> x1 = xp")


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def fig1() -> None:
    section("FIG1 -- Figure 1: the 1-patterns of sigma (*)")
    patterns = one_patterns(SIGMA_STAR)
    print(f"|P_1(sigma)| = {len(patterns)}   (paper: 8 patterns p1..p8)")
    for index, pattern in enumerate(patterns, start=1):
        print(f"  p{index}: {pattern}")


def fig2() -> None:
    section("FIG2 -- Figure 2: canonical instances of p8")
    p8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))
    canon = canonical_instances(p8, SIGMA_STAR)
    print("I_p8:", ", ".join(sorted(map(repr, canon.source))))
    print("J_p8:", ", ".join(sorted(map(repr, canon.target))))


def fig3() -> None:
    section("FIG3 -- Figure 3: a 3-pattern and its canonical source")
    p8 = Pattern(1, (Pattern(2), Pattern(3), Pattern(3, (Pattern(4),))))
    cloned = p8.with_extra_clone((0,))
    deep = next(i for i, c in enumerate(cloned.children) if c.children)
    cloned = cloned.with_clones((deep, 0), 2)
    canon = canonical_instances(cloned, SIGMA_STAR)
    print("pattern:", cloned)
    print("I_p:", ", ".join(sorted(map(repr, canon.source))))


def ex310() -> None:
    section("EX310/FIG4 -- Example 3.10: the procedure IMPLIES")
    clear_chase_cache()
    print("P_3(tau):", enumerate_k_patterns(TAU, 3))
    with perf.measuring() as stats:
        for name, lhs, expected_k in (("tau'", TAU_P, 2), ("tau''", TAU_PP, 3)):
            result = implies_tgd([lhs], TAU)
            print(
                f"IMPLIES({{{name}}}, tau) = {result.holds}   "
                f"k = {result.k} (paper: {expected_k}), "
                f"patterns checked = {result.patterns_checked}"
            )
            if not result.holds:
                print(f"  refuting pattern: {result.failing_pattern}")
                print(f"  I_p = {result.counterexample_source}")
                print(f"  J_p = {result.counterexample_target}")
        # Repeat the sweep warm: every canonical-instance chase is cached.
        for lhs in (TAU_P, TAU_PP):
            implies_tgd([lhs], TAU)
    print(
        f"engine stats: patterns = {stats.get('implies.patterns')}, "
        f"chase-cache hits = {stats.get('implies.cache_hits')}, "
        f"misses = {stats.get('implies.cache_misses')} "
        f"(second sweep re-chases nothing)"
    )


def fig5() -> None:
    section("FIG5/EX48 -- Example 4.8: odd cycles and the bounded anchor")
    print(f"{'n':>3} {'|core(chase(I_n))|':>20} {'fblock':>8}   (paper: 2n for odd n)")
    for n in (3, 4, 5, 6, 7):
        solution = core(chase(cycle_instance(n), SO_48))
        print(f"{n:>3} {len(solution):>20} {fact_block_size(solution):>8}")
    print("subinstance (path of length 6) core size:",
          len(core(chase(successor_instance(6), SO_48))), "  (collapses: no anchor)")
    print("I_3 core size:", len(core(chase(cycle_instance(3), SO_48))),
          "  (the anchor of Figure 5, right)")


def prop413() -> None:
    section("PROP413 -- Proposition 4.13: f-block vs f-degree on successors")
    profiles = fblock_profile([SO_413], SUCCESSOR_FAMILY, [2, 4, 6, 8])
    print(f"{'n':>3} {'fblock':>7} {'fdegree':>8}   (paper: fblock = n, fdegree = 2)")
    for p in profiles:
        print(f"{p.size:>3} {p.fblock_size:>7} {p.fdegree:>8}")
    report = nested_expressibility_report([SO_413], SUCCESSOR_FAMILY, [2, 4, 6, 8])
    print("verdict:", report.reason)


def fig6() -> None:
    section("FIG6/EX414 -- Example 4.14: clique fact graph, growing null path")
    solution = core(chase(SUCCESSOR_Q_FAMILY(5), SO_414))
    graph = full_fact_graph(solution)
    n = graph.number_of_nodes()
    print(f"fact graph at n=5: {n} nodes, {graph.number_of_edges()} edges "
          f"(complete: {n * (n - 1) // 2})")
    profiles = fblock_profile([SO_414], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5])
    print("null-graph path lengths:", [p.path_length for p in profiles],
          "(paper: grows with n)")
    report = nested_expressibility_report([SO_414], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5])
    print("verdict:", report.reason)


def fig7() -> None:
    section("FIG7/EX415 -- Example 4.15: same f-blocks, nested-expressible")
    left = fblock_profile([SO_414], SUCCESSOR_Q_FAMILY, [3, 4])
    right = fblock_profile([SO_415], SUCCESSOR_Q_FAMILY, [3, 4])
    print("fblock sizes 4.14 vs 4.15:", [p.fblock_size for p in left], "vs",
          [p.fblock_size for p in right], "(identical)")
    profiles = fblock_profile([SO_415], SUCCESSOR_Q_FAMILY, [2, 3, 4, 5])
    print("null-graph path lengths:", [p.path_length for p in profiles],
          "(paper: star, constant 2)")
    print("IMPLIES(so_415, nested_415):", implies_tgd([SO_415], NESTED_415).holds)


def fig8() -> None:
    section("FIG8/THM51 -- Theorem 5.1: Turing-machine enumeration")
    for name, machine in (("halting(3)", halting_machine(3)), ("looping", looping_machine())):
        reduction = build_reduction(machine)
        print(f"{name}: {len(reduction.so_tgd.clauses)} clauses, "
              f"key = {reduction.key_dependency}")
        print(f"  {'n':>3} {'origin chain':>13} {'fdegree':>8}")
        for n in (4, 6, 8, 10):
            source = run_source_instance(machine, "", max_steps=n, length=n)
            target = chase_so_tgd(source, reduction.so_tgd)
            print(f"  {n:>3} {enumeration_chain_length(reduction, target):>13} "
                  f"{fblock_degree(target):>8}")


def ex53() -> None:
    section("EX53 -- Example 5.3: legal canonical instances")
    pattern = Pattern(1, (Pattern(2), Pattern(2)))
    plain = canonical_instances(pattern, SIGMA_53)
    legal = legal_canonical_instances(pattern, SIGMA_53, [EGD_53])
    print("plain I_p:", ", ".join(sorted(map(repr, plain.source))))
    print("legal I_p^s:", ", ".join(sorted(map(repr, legal.source))))
    print("legal J_p^s:", ", ".join(sorted(map(repr, legal.target))))


def hierarchy() -> None:
    section("SEC2-SEP -- the strict hierarchy GLAV < nested < plain SO")
    verdict = decide_bounded_fblock_size([INTRO])
    print("intro nested tgd bounded f-block size:", verdict.bounded,
          "growth:", verdict.growth)
    report = nested_expressibility_report([SO_413], SUCCESSOR_FAMILY, [2, 4, 6, 8])
    print("S(x,y)->R(f(x),f(y)) nested-expressible:", report.nested_expressible)


def model_checking() -> None:
    section("MC -- model checking: FO recursion vs function search")
    print(f"{'n':>3} {'nested (ms)':>12} {'SO (ms)':>9}")
    for n in (2, 4, 6, 8):
        source = SUCCESSOR_Q_FAMILY(n)
        target = chase(source, NESTED_415)
        start = time.perf_counter()
        assert satisfies_nested(source, target, NESTED_415)
        nested_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        assert satisfies_so(source, chase(source, SO_415), SO_415)
        so_ms = (time.perf_counter() - start) * 1000
        print(f"{n:>3} {nested_ms:>12.2f} {so_ms:>9.2f}")


def scaling() -> None:
    section("SCALE-PAT -- non-elementary pattern counts")
    print(f"{'k':>3} {'|P_k(sigma*)|':>15} {'|P_k(tau)|':>12}")
    for k in (1, 2, 3, 4):
        print(f"{k:>3} {count_k_patterns(SIGMA_STAR, k):>15} "
              f"{count_k_patterns(TAU, k):>12}")
    deep = parse_nested_tgd(
        "S1(x1) -> (S2(x2) -> (S3(x3) -> (S4(x4) -> T(x1))))"
    )
    print("depth-4 linear nesting at k=2:", count_k_patterns(deep, 2),
          "(= 3^27: the wall)")


def ablations() -> None:
    section("ABL -- chase variants and engine primitives")
    from repro.engine.chase import chase_st_tgds
    from repro.engine.standard_chase import core_chase, standard_chase

    tgds = [
        parse_tgd("S(x,y) -> R(x,y)"),
        parse_tgd("S(x,y) -> R(x,z)"),
        parse_tgd("S(x,y) & S(y,z) -> R(x,w) & T(w,z)"),
    ]
    source = successor_instance(12)
    oblivious = chase_st_tgds(source, tgds)
    standard = standard_chase(source, tgds)
    minimal = core_chase(source, tgds)
    print(f"oblivious chase: {len(oblivious)} facts, {len(oblivious.nulls())} nulls")
    print(f"standard chase:  {len(standard)} facts, {len(standard.nulls())} nulls")
    print(f"core chase:      {len(minimal)} facts, {len(minimal.nulls())} nulls")


def engine_counters() -> None:
    section("ENGINE -- delta-driven fixpoint counters (repro.perf)")
    from repro.engine.egd_chase import chase_egds

    # A star source: all n roots inherit the same x1 = hub, so n - 1 of the
    # n child-body matching runs are shared via the memo.
    star = parse_instance(", ".join(f"S(hub, v{i})" for i in range(30)))
    with perf.measuring() as stats:
        chase(star, INTRO)
    print(
        f"nested chase (intro tgd, star n=30): "
        f"triggers = {stats.get('chase.triggers')}, "
        f"memoized child-match hits = {stats.get('match.memo_hits')}"
    )

    # Two parallel successor chains zipped together by a functionality egd:
    # one new merge becomes derivable per semi-naive round.
    chain = parse_instance(
        ", ".join(["S(root, x1), S(root, y1)"]
                  + [f"S(x{i}, x{i + 1}), S(y{i}, y{i + 1})" for i in range(1, 15)])
    )
    with perf.measuring() as stats:
        chase_egds(chain, [parse_egd("S(z,x) & S(z,y) -> x = y")],
                   allow_constant_merge=True)
    print(
        f"egd chase (merge cascade, depth 15): rounds = {stats.get('chase.rounds')}, "
        f"delta facts = {stats.get('chase.delta_facts')} "
        f"(vs {len(chain)} facts rematched per round naively)"
    )

    # A hub block whose null is pinned by one fact among 40 candidate hubs:
    # AC-3 propagation collapses the hub's domain before any search node.
    from repro.engine.homomorphism import find_homomorphism
    from repro.logic.atoms import Atom
    from repro.logic.instances import Instance
    from repro.logic.values import Constant, Null

    hub = Null("h")
    hom_source = Instance(
        [Atom("R", (hub, Null(f"x{i}"))) for i in range(8)]
        + [Atom("T", (hub, Constant("c")))]
    )
    hom_target = Instance(
        [Atom("R", (Constant(f"h{j}"), Constant(f"y{j}"))) for j in range(40)]
        + [Atom("T", (Constant("h39"), Constant("c")))]
    )
    with perf.measuring() as stats:
        assert find_homomorphism(hom_source, hom_target) is not None
    print(
        f"hom kernel (pinned hub, 40 candidates): "
        f"ac3 revisions = {stats.get('hom.ac3_revisions')}, "
        f"search nodes = {stats.get('hom.search_nodes')}, "
        f"backtracks = {stats.get('hom.backtracks')}"
    )

    # The same pinned hub against a columnar target: the id-space kernel
    # runs AC-3 and search over integer ids with no atom decode on the hot
    # path (the hom.columnar.* counters mirror their hom.* twins).
    from repro.engine.columnar import ColumnarInstance
    from repro.engine.hom_kernel import find_homomorphism_indexed

    store = ColumnarInstance(hom_target)
    with perf.measuring() as stats:
        assert find_homomorphism_indexed(hom_source, store) is not None
    print(
        f"id-space kernel (same hub, columnar target): "
        f"kernel calls = {stats.get('hom.columnar.kernel_calls')}, "
        f"ac3 revisions = {stats.get('hom.columnar.ac3_revisions')}, "
        f"search nodes = {stats.get('hom.columnar.search_nodes')}, "
        f"decoded rows = {stats.get('backend.columnar.decoded_rows')}"
    )

    # The chase of the star has n isomorphic blocks: the core engine folds
    # one and drops the other n - 1 by canonical-form deduplication.
    from repro.engine.core_instance import clear_fold_cache

    chased_star = chase(star, INTRO)
    clear_fold_cache()
    with perf.measuring() as stats:
        folded = core(chased_star)
    print(
        f"core engine (star n=30): blocks = {stats.get('core.blocks')}, "
        f"iso folds = {stats.get('core.iso_folds')}, "
        f"memo hits/misses = {stats.get('core.memo_hits')}"
        f"/{stats.get('core.memo_misses')}, "
        f"eliminations = {stats.get('core.eliminations')}, "
        f"rigid blocks = {stats.get('core.rigid_blocks')} "
        f"(core size {len(folded)})"
    )

    # The same core in id-space: fingerprints are byte-identical to the
    # tuple engine's, so the two share one persistent fold tier.
    clear_fold_cache()
    with perf.measuring() as stats:
        folded = core(chased_star, backend="columnar")
    print(
        f"columnar core (same star): "
        f"blocks = {stats.get('core.columnar.blocks')}, "
        f"iso folds = {stats.get('core.columnar.iso_folds')}, "
        f"memo hits/misses = {stats.get('core.columnar.memo_hits')}"
        f"/{stats.get('core.columnar.memo_misses')}, "
        f"eliminations = {stats.get('core.columnar.eliminations')}, "
        f"probe memo hits = {stats.get('backend.columnar.probe_hits')} "
        f"(core size {len(folded)})"
    )

    # And pushed down to SQL: eliminating homomorphisms as SELECT joins,
    # retractions as exact-row DELETEs.
    with perf.measuring() as stats:
        folded = core(chased_star, backend="sql")
    print(
        f"sql core (same star): blocks = {stats.get('core.sql.blocks')}, "
        f"queries = {stats.get('core.sql.queries')}, "
        f"eliminations = {stats.get('core.sql.eliminations')}, "
        f"rigid blocks = {stats.get('core.sql.rigid_blocks')}, "
        f"duckdb sessions = {stats.get('core.sql.duckdb_sessions')} "
        f"(core size {len(folded)})"
    )


def cache_persistence() -> None:
    section("CACHE -- persistent store: cold vs warm-restart (repro.cache)")
    import tempfile

    import repro.cache as cache

    tau_workload = [(TAU_P,), (TAU_PP,)]
    with tempfile.TemporaryDirectory() as tmp:
        cache.configure(tmp)
        try:
            cache.clear_all_caches()
            with perf.measuring() as cold:
                for (lhs,) in tau_workload:
                    implies_tgd([lhs], TAU)
            # Warm restart: memory tiers dropped, disk tier kept -- the state
            # a fresh process inherits from a populated REPRO_CACHE_DIR.
            cache.clear_all_caches(disk=False)
            with perf.measuring() as warm:
                for (lhs,) in tau_workload:
                    implies_tgd([lhs], TAU)
            stats = cache.cache_stats()
            print(
                f"cold run:  disk misses = {cold.get('cache.disk.misses')}, "
                f"writes = {cold.get('cache.disk.writes')}, "
                f"write bytes = {cold.get('cache.disk.write_bytes')}"
            )
            print(
                f"warm run:  disk hits = {warm.get('cache.disk.hits')}, "
                f"verdict hits = {warm.get('implies.verdict_disk_hits')}, "
                f"read bytes = {warm.get('cache.disk.read_bytes')} "
                f"(re-chases nothing, re-sweeps nothing)"
            )
            print(
                f"store: {stats['entries']} entries, "
                f"{stats['size_bytes']} bytes on disk, "
                f"lifetime counters = {stats['counters']}"
            )
        finally:
            cache.configure()


def extensions() -> None:
    section("EXT -- composition, certain answers, SQL, unfoldings")
    from repro.core.unfoldings import unfolding
    from repro.export.sql import compile_mapping_to_sql, execute_exchange, \
        render_instance_values
    from repro.mappings.composition import compose
    from repro.queries import certain_answers, parse_query
    from repro.workloads.scenarios import SHOP

    first = [
        parse_tgd("Takes(n, co) -> Takes1(n, co)"),
        parse_tgd("Takes(n, co) -> exists s . Student(n, s)"),
    ]
    second = [parse_tgd("Student(n, s) & Takes1(n, co) -> Enrolled(s, co)")]
    composed = compose(first, second)
    print("composition of the FKPT example:", composed)
    print("  plain:", composed.is_plain(), "(equalities appear)")

    query = parse_query("q(i1, i2) :- Purchase(y, i1) & Purchase(y, i2)")
    source = SHOP.source(3)
    nested_certain = certain_answers(query, source, [SHOP.nested])
    flat_certain = certain_answers(query, source, SHOP.flat)
    print(f"co-purchase certain answers: nested {len(nested_certain)}, "
          f"flat {len(flat_certain)}")

    via_sql = execute_exchange(source, [SHOP.nested])
    via_chase = render_instance_values(chase(source, [SHOP.nested]))
    print("SQL execution agrees with the chase:", via_sql.isomorphic(via_chase))
    print("compiled statements:", len(compile_mapping_to_sql([SHOP.nested])))

    sizes = [len(unfolding(INTRO, n)) for n in (1, 2, 3, 4)]
    print("GLAV unfolding sizes of the intro tgd:", sizes, "(an infinite strict chain)")


def static_analysis() -> None:
    section("STATIC -- analyzer verdicts on the paper's dependencies")
    from repro.analysis.static import analyze
    from repro.analysis.termination import termination_report

    named = [
        ("copy", parse_tgd("S(x,y) -> R(x,y)")),
        ("sigma(*)", SIGMA_STAR),
        ("intro", INTRO),
        ("so_413", SO_413),
        ("so_414", SO_414),
        ("diverging", parse_tgd("E(x,y) -> exists z . E(y,z)")),
    ]
    print(f"{'dependency':>10} {'weakly acyclic':>15} {'depth bound':>12}")
    start = time.perf_counter()
    for name, dep in named:
        verdict = termination_report([dep])
        bound = verdict.depth_bound if verdict.weakly_acyclic else "-"
        print(f"{name:>10} {str(verdict.weakly_acyclic):>15} {bound!s:>12}")
    elapsed_ms = (time.perf_counter() - start) * 1000
    report = analyze([dep for _, dep in named])
    print(f"combined report: ok = {report.ok}, "
          f"{len(report.errors)} error(s), {len(report.warnings)} warning(s), "
          f"{len(report.findings)} finding(s) total "
          f"(termination analysis: {elapsed_ms:.1f} ms)")
    for finding in report.errors:
        print(f"  {finding.code}: {finding.message}")


def containment_analysis() -> None:
    section("CONTAIN -- mapping containment Sigma <= Sigma' (Cali-Torlone)")
    from repro.analysis.containment import check_containment, verify_witness
    from repro.core.normalization import optimize_report
    from repro.workloads.families import containment_pair, redundant_ladder_tgds

    with perf.measuring() as stats:
        sigma, sigma_prime = containment_pair(3, contained=True)
        report = check_containment(sigma, sigma_prime)
        print(f"ladder-3 <= weakened-ladder-3: {report.status} "
              f"(tier {report.tier}, proof map over "
              f"{len(report.proof_map())} dependencies)")
        sigma, sigma_prime = containment_pair(3, contained=False)
        report = check_containment(sigma, sigma_prime)
        witness = report.counterexample
        print(f"ladder-3 <= reversed-ladder-3: {report.status}")
        print(f"  witness source: "
              f"{', '.join(str(f) for f in witness.source)}; unmatched: "
              f"{', '.join(str(f) for f in witness.target)}; machine-check: "
              f"{verify_witness(witness, sigma, sigma_prime[0])}")
        opt = optimize_report(redundant_ladder_tgds(3), semantic=True)
        print(f"optimize --semantic on redundant-ladder-3: "
              f"{len(opt.kept) + len(opt.dropped)} -> {len(opt.kept)} "
              f"dependencies, certificate holds = {opt.certificate.holds}")
    print(f"counters: queries = {stats.get('containment.queries')}, "
          f"sweeps = {stats.get('containment.checks')}, "
          f"refuted = {stats.get('containment.refuted')}, "
          f"redundant = {stats.get('containment.redundant')}")


def main() -> None:
    fig1()
    fig2()
    fig3()
    ex310()
    static_analysis()
    containment_analysis()
    fig5()
    prop413()
    fig6()
    fig7()
    fig8()
    ex53()
    hierarchy()
    model_checking()
    scaling()
    ablations()
    engine_counters()
    cache_persistence()
    extensions()
    print("\ndone.")


if __name__ == "__main__":
    main()
