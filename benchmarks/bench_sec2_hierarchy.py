"""SEC2-SEP -- the strict hierarchy GLAV < nested GLAV < plain SO tgds.

Reproduces both strict separations the paper builds on:

- the introduction's nested tgd is not logically equivalent to any GLAV
  mapping (decided by Theorem 4.2's procedure);
- the plain SO tgd ``S(x,y) -> R(f(x),f(y))`` is not logically equivalent to
  any nested GLAV mapping (Proposition 4.13 via Theorem 4.12);
- and the positive directions: every s-t tgd is a nested tgd, and every
  Skolemized nested tgd is a plain SO tgd.
"""

from repro.core.fblock_analysis import decide_bounded_fblock_size
from repro.core.glav_equivalence import is_equivalent_to_glav, to_glav
from repro.core.implication import equivalent
from repro.core.separation import nested_expressibility_report
from repro.logic.parser import parse_nested_tgd, parse_tgd
from repro.workloads.families import SUCCESSOR_FAMILY


def test_hierarchy_nested_strictly_above_glav(benchmark, intro_nested):
    assert not benchmark(is_equivalent_to_glav, [intro_nested])


def test_hierarchy_plain_so_strictly_above_nested(benchmark, so_tgd_413):
    report = benchmark(
        nested_expressibility_report, [so_tgd_413], SUCCESSOR_FAMILY, [2, 4, 6, 8]
    )
    assert report.nested_expressible is False


def test_hierarchy_bounded_nested_collapses_to_glav(benchmark):
    """A nested tgd with bounded f-block size has an equivalent GLAV mapping,
    and the library constructs it."""
    tgd = parse_nested_tgd("S1(x1) -> (S2(x2) -> exists y . T(x1, x2, y))")
    glav = benchmark(to_glav, [tgd])
    assert equivalent(glav, [tgd])


def test_hierarchy_every_st_tgd_is_nested(benchmark):
    tgd = parse_tgd("S(x,y) -> R(x,z)")
    verdict = benchmark(decide_bounded_fblock_size, [tgd])
    assert verdict.bounded  # flat tgds always have bounded f-blocks


def test_hierarchy_skolemized_nested_is_plain_so(benchmark, sigma_star):
    so = benchmark(sigma_star.skolemize)
    assert so.is_plain()
